(** The mix executor: run a {!Schedule}'s job stream against one shared
    heap, with HALO plans applied per workload under a plan budget.

    All jobs share a single {!Vmem} address space, one jemalloc-model
    fallback allocator, and one cache {!Hierarchy} — the multi-tenant
    setting the paper's per-binary evaluation never exercises. Each
    workload under plan additionally gets its own specialised
    {!Group_alloc} carved from the same address space (chunks interleave
    with every other tenant's), instantiated from a {!Pipeline} plan
    profiled at test scale.

    Staleness model: only the [plan_budget] hottest workloads of the
    recent window hold live plans (plans are memory/deploy budget, so
    eviction is real); jobs for uncovered workloads run on the fallback
    allocator. Re-planning every [reprofile_every] ticks re-selects the
    hot set — as the schedule drifts, a long cadence leaves the covered
    set pointing at yesterday's traffic, and the lost coverage shows up
    directly in the L1 miss rate. Re-profiling cost is charged at one
    cycle per profiled access (a deliberate lower bound) into
    [net_cycles].

    The executor is strictly sequential — tenants share a heap, so there
    is no safe fan-out inside one run — which makes every report field a
    pure function of [(seed, schedule, config)]; [--jobs] parallelism
    lives one level up, across runs (see {!Traffic_study}). *)

type config = {
  plan_budget : int;  (** Hottest-K workloads holding live plans. *)
  reprofile_every : int;
      (** Ticks between re-plans; [0] plans once at tick 0 and lets the
          plan age forever — the stale baseline. *)
  window : int;
      (** Ticks of traffic history (including the tick being planned)
          that vote on the hot set. *)
  scale : Workload.scale;  (** Job program scale. *)
  pipeline : Pipeline.config;
  engine : Engine.kind;
      (** Execution engine running every job (and, via the pipeline,
          profiling). Engines are observably identical, so the traffic
          digests and counters do not depend on this knob. *)
}

val default_config : config
(** [plan_budget = 3], [reprofile_every = 0], [window = 4],
    [scale = Test], {!Pipeline.default_config}. *)

type tenant_stats = {
  ts_tenant : string;
  ts_workload : string;
  ts_jobs : int;
  ts_covered_jobs : int;
  ts_instructions : int;
  ts_accesses : int;
  ts_l1_misses : int;
}

type phase_stats = {
  ph_phase : int;
  ph_label : string;
  ph_jobs : int;
  ph_covered_jobs : int;
  ph_accesses : int;
  ph_l1_misses : int;
  ph_mean_plan_age : float;
      (** Mean ticks since plan creation over covered jobs; 0 when none. *)
}

type report = {
  schedule_digest : string;  (** {!Schedule.digest} of the event stream. *)
  exec_digest : string;
      (** FNV-1a 64 over per-job execution observables (instructions and
          miss deltas) — pins the whole shared-heap execution, not just
          the schedule. *)
  jobs : int;
  instructions : int;
  counters : Hierarchy.counters;  (** Aggregate over all jobs. *)
  cycles : float;
  sim_seconds : float;
  miss_rate : float;  (** [l1_misses / accesses]; 0 when no accesses. *)
  covered_jobs : int;
  coverage : float;  (** [covered_jobs / jobs]; 0 when no jobs. *)
  replans : int;  (** Hot-set re-selections (including tick 0). *)
  profile_runs : int;  (** Test-scale profiler invocations performed. *)
  profile_accesses : int;  (** Total accesses observed by those runs. *)
  net_cycles : float;  (** [cycles + profile_accesses] (1 cycle/access). *)
  tenants : tenant_stats list;  (** Sorted by tenant name. *)
  phases : phase_stats list;  (** In schedule order. *)
}

val run : ?obs:Obs.t -> ?config:config -> seed:int -> Schedule.t -> report
(** Telemetry (with [obs]): a [traffic.run] span over the whole
    execution, [traffic.jobs] / [traffic.jobs.covered] /
    [traffic.replans] / [traffic.profile.runs] counters, a
    [traffic.coverage] gauge, per-job [traffic.plan.age] histogram
    samples, and one [traffic.phase] series event per phase boundary
    carrying the label and tenant shares. *)

val report_table : report -> Table.t
(** Totals plus one row per phase. *)

val tenant_table : report -> Table.t

val report_to_json : report -> Json.t
