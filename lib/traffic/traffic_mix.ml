type config = {
  plan_budget : int;
  reprofile_every : int;
  window : int;
  scale : Workload.scale;
  pipeline : Pipeline.config;
  engine : Engine.kind;
}

let default_config =
  {
    plan_budget = 3;
    reprofile_every = 0;
    window = 4;
    scale = Workload.Test;
    pipeline = Pipeline.default_config;
    engine = Engine.Interp;
  }

type tenant_stats = {
  ts_tenant : string;
  ts_workload : string;
  ts_jobs : int;
  ts_covered_jobs : int;
  ts_instructions : int;
  ts_accesses : int;
  ts_l1_misses : int;
}

type phase_stats = {
  ph_phase : int;
  ph_label : string;
  ph_jobs : int;
  ph_covered_jobs : int;
  ph_accesses : int;
  ph_l1_misses : int;
  ph_mean_plan_age : float;
}

type report = {
  schedule_digest : string;
  exec_digest : string;
  jobs : int;
  instructions : int;
  counters : Hierarchy.counters;
  cycles : float;
  sim_seconds : float;
  miss_rate : float;
  covered_jobs : int;
  coverage : float;
  replans : int;
  profile_runs : int;
  profile_accesses : int;
  net_cycles : float;
  tenants : tenant_stats list;
  phases : phase_stats list;
}

let fnv_init = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let workload_pipeline_config (base : Pipeline.config) w =
  {
    base with
    Pipeline.grouping = w.Workload.halo_grouping base.Pipeline.grouping;
    allocator = w.Workload.halo_allocator base.Pipeline.allocator;
  }

(* Mutable per-tenant accumulator. *)
type tacc = {
  ta_workload : string;
  mutable ta_jobs : int;
  mutable ta_covered : int;
  mutable ta_instr : int;
  mutable ta_acc : int;
  mutable ta_l1 : int;
}

type pacc = {
  mutable pa_jobs : int;
  mutable pa_covered : int;
  mutable pa_acc : int;
  mutable pa_l1 : int;
  mutable pa_age_sum : int;
}

let run ?obs ?(config = default_config) ~seed sched =
  let events = Schedule.events ~seed sched in
  let schedule_digest = Schedule.digest events in
  let total_ticks = Schedule.total_ticks sched in
  let by_tick = Array.make (max 1 total_ticks) [] in
  List.iter
    (fun e -> by_tick.(e.Schedule.ev_tick) <- e :: by_tick.(e.Schedule.ev_tick))
    events;
  Array.iteri (fun i l -> by_tick.(i) <- List.rev l) by_tick;
  let phase_labels =
    Array.of_list (List.map (fun p -> p.Schedule.p_label) sched)
  in
  (* First global tick of each phase, for boundary telemetry. *)
  let phase_start = Array.make (Array.length phase_labels) 0 in
  ignore
    (List.fold_left
       (fun (i, tick) p ->
         if i < Array.length phase_start then phase_start.(i) <- tick;
         (i + 1, tick + p.Schedule.p_ticks))
       (0, 0) sched);
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let hier = Hierarchy.create ?obs () in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_access = (fun addr size _write -> Hierarchy.access hier addr size);
    }
  in
  let programs : (string, Workload.t * Ir.program) Hashtbl.t =
    Hashtbl.create 16
  in
  let program_for name =
    match Hashtbl.find_opt programs name with
    | Some p -> p
    | None ->
        let w =
          match Workloads.lookup name with
          | Ok w -> w
          | Error e -> invalid_arg (Workloads.lookup_error_to_string e)
        in
        let p = (w, w.Workload.make config.scale) in
        Hashtbl.add programs name p;
        p
  in
  (* Live plans: workload name -> (runtime, tick planned at). *)
  let plans : (string, Pipeline.runtime * int) Hashtbl.t = Hashtbl.create 8 in
  let replans = ref 0 in
  let profile_runs = ref 0 in
  let profile_accesses = ref 0 in
  let window_counts tick =
    let h = Hashtbl.create 16 in
    let lo = max 0 (tick - (config.window - 1)) in
    for t = lo to tick do
      List.iter
        (fun e ->
          let k = e.Schedule.ev_workload in
          Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
        by_tick.(t)
    done;
    h
  in
  let replan tick =
    incr replans;
    Obs.count obs "traffic.replans" 1;
    let counts = window_counts tick in
    let ranked =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
      |> List.sort (fun (na, ca) (nb, cb) ->
             match compare cb ca with 0 -> compare na nb | c -> c)
    in
    let hot =
      List.filteri (fun i _ -> i < config.plan_budget) ranked
      |> List.map fst
    in
    Hashtbl.iter
      (fun name _ -> if not (List.mem name hot) then Hashtbl.remove plans name)
      (Hashtbl.copy plans);
    List.iter
      (fun name ->
        if not (Hashtbl.mem plans name) then begin
          let w, _ = program_for name in
          let pconfig = workload_pipeline_config config.pipeline w in
          let plan =
            Pipeline.plan ?obs ~engine:config.engine ~config:pconfig
              (w.Workload.make Workload.Test)
          in
          incr profile_runs;
          profile_accesses :=
            !profile_accesses + plan.Pipeline.profile.Profiler.total_accesses;
          Obs.count obs "traffic.profile.runs" 1;
          let rt = Pipeline.instantiate ?obs plan ~fallback vmem in
          Hashtbl.replace plans name (rt, tick)
        end)
      hot
  in
  let tenants : (string, tacc) Hashtbl.t = Hashtbl.create 16 in
  let phases =
    Array.init (Array.length phase_labels) (fun _ ->
        { pa_jobs = 0; pa_covered = 0; pa_acc = 0; pa_l1 = 0; pa_age_sum = 0 })
  in
  let jobs = ref 0 in
  let covered_jobs = ref 0 in
  let instructions = ref 0 in
  let acc = ref 0 and l1 = ref 0 and l2 = ref 0 and l3 = ref 0 in
  let tlb = ref 0 and pref = ref 0 in
  let digest = ref fnv_init in
  let run_all () =
    for tick = 0 to total_ticks - 1 do
      Array.iteri
        (fun pi start ->
          if start = tick then
            Obs.event obs ~name:"traffic.phase"
              ~attrs:
                [
                  ("label", Json.String phase_labels.(pi));
                  ("phase", Json.Int pi);
                ]
              (float_of_int tick))
        phase_start;
      if tick = 0 || (config.reprofile_every > 0 && tick mod config.reprofile_every = 0)
      then replan tick;
      List.iter
        (fun e ->
          let _, program = program_for e.Schedule.ev_workload in
          let plan = Hashtbl.find_opt plans e.Schedule.ev_workload in
          let before = Hierarchy.counters hier in
          let interp =
            match plan with
            | Some (rt, _) ->
                Engine.create ~kind:config.engine ~seed:e.Schedule.ev_seed
                  ~hooks ~patches:rt.Pipeline.patches ~env:rt.Pipeline.env ?obs
                  ~program
                  ~alloc:(Group_alloc.iface rt.Pipeline.galloc)
                  ()
            | None ->
                Engine.create ~kind:config.engine ~seed:e.Schedule.ev_seed
                  ~hooks ~patches:[] ?obs ~program ~alloc:fallback ()
          in
          ignore (Engine.run interp : int);
          let after = Hierarchy.counters hier in
          let d_instr = Engine.instructions interp in
          let d_acc = after.Hierarchy.accesses - before.Hierarchy.accesses in
          let d_l1 = after.Hierarchy.l1_misses - before.Hierarchy.l1_misses in
          incr jobs;
          instructions := !instructions + d_instr;
          acc := !acc + d_acc;
          l1 := !l1 + d_l1;
          l2 := !l2 + (after.Hierarchy.l2_misses - before.Hierarchy.l2_misses);
          l3 := !l3 + (after.Hierarchy.l3_misses - before.Hierarchy.l3_misses);
          tlb :=
            !tlb + (after.Hierarchy.tlb_misses - before.Hierarchy.tlb_misses);
          pref :=
            !pref + (after.Hierarchy.prefetches - before.Hierarchy.prefetches);
          let covered = plan <> None in
          if covered then incr covered_jobs;
          Obs.count obs "traffic.jobs" 1;
          if covered then Obs.count obs "traffic.jobs.covered" 1;
          let age =
            match plan with Some (_, at) -> tick - at | None -> 0
          in
          if covered then Obs.observe obs "traffic.plan.age" (float_of_int age);
          let ta =
            match Hashtbl.find_opt tenants e.Schedule.ev_tenant with
            | Some ta -> ta
            | None ->
                let ta =
                  {
                    ta_workload = e.Schedule.ev_workload;
                    ta_jobs = 0;
                    ta_covered = 0;
                    ta_instr = 0;
                    ta_acc = 0;
                    ta_l1 = 0;
                  }
                in
                Hashtbl.add tenants e.Schedule.ev_tenant ta;
                ta
          in
          ta.ta_jobs <- ta.ta_jobs + 1;
          if covered then ta.ta_covered <- ta.ta_covered + 1;
          ta.ta_instr <- ta.ta_instr + d_instr;
          ta.ta_acc <- ta.ta_acc + d_acc;
          ta.ta_l1 <- ta.ta_l1 + d_l1;
          let pa = phases.(e.Schedule.ev_phase) in
          pa.pa_jobs <- pa.pa_jobs + 1;
          if covered then begin
            pa.pa_covered <- pa.pa_covered + 1;
            pa.pa_age_sum <- pa.pa_age_sum + age
          end;
          pa.pa_acc <- pa.pa_acc + d_acc;
          pa.pa_l1 <- pa.pa_l1 + d_l1;
          digest :=
            fnv_string !digest
              (Printf.sprintf "%d|%s|%s|%b|%d|%d|%d\n" tick
                 e.Schedule.ev_tenant e.Schedule.ev_workload covered d_instr
                 d_acc d_l1))
        by_tick.(tick)
    done
  in
  Obs.span obs "traffic.run"
    ~attrs:
      [
        ("phases", Json.Int (List.length sched));
        ("ticks", Json.Int total_ticks);
        ("events", Json.Int (List.length events));
        ("seed", Json.Int seed);
        ("plan_budget", Json.Int config.plan_budget);
        ("reprofile_every", Json.Int config.reprofile_every);
      ]
    run_all;
  let counters =
    {
      Hierarchy.accesses = !acc;
      l1_misses = !l1;
      l2_misses = !l2;
      l3_misses = !l3;
      tlb_misses = !tlb;
      prefetches = !pref;
    }
  in
  let model = Timing.skylake_sp in
  let cycles = Timing.cycles model ~instructions:!instructions counters in
  let coverage =
    if !jobs > 0 then float_of_int !covered_jobs /. float_of_int !jobs else 0.0
  in
  Obs.set_gauge obs "traffic.coverage" coverage;
  {
    schedule_digest;
    exec_digest = Printf.sprintf "%016Lx" !digest;
    jobs = !jobs;
    instructions = !instructions;
    counters;
    cycles;
    sim_seconds = Timing.seconds model ~instructions:!instructions counters;
    miss_rate =
      (if !acc > 0 then float_of_int !l1 /. float_of_int !acc else 0.0);
    covered_jobs = !covered_jobs;
    coverage;
    replans = !replans;
    profile_runs = !profile_runs;
    profile_accesses = !profile_accesses;
    net_cycles = cycles +. float_of_int !profile_accesses;
    tenants =
      Hashtbl.fold
        (fun name ta acc ->
          {
            ts_tenant = name;
            ts_workload = ta.ta_workload;
            ts_jobs = ta.ta_jobs;
            ts_covered_jobs = ta.ta_covered;
            ts_instructions = ta.ta_instr;
            ts_accesses = ta.ta_acc;
            ts_l1_misses = ta.ta_l1;
          }
          :: acc)
        tenants []
      |> List.sort (fun a b -> compare a.ts_tenant b.ts_tenant);
    phases =
      Array.to_list
        (Array.mapi
           (fun i pa ->
             {
               ph_phase = i;
               ph_label = phase_labels.(i);
               ph_jobs = pa.pa_jobs;
               ph_covered_jobs = pa.pa_covered;
               ph_accesses = pa.pa_acc;
               ph_l1_misses = pa.pa_l1;
               ph_mean_plan_age =
                 (if pa.pa_covered > 0 then
                    float_of_int pa.pa_age_sum /. float_of_int pa.pa_covered
                  else 0.0);
             })
           phases);
  }

let pct x = Table.fmt_pct x

let report_table r =
  let t =
    Table.create ~title:"Traffic mix"
      ~headers:
        [ "phase"; "jobs"; "covered"; "miss rate"; "mean plan age" ]
      ()
  in
  Table.set_aligns t
    [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.ph_label;
          string_of_int p.ph_jobs;
          (if p.ph_jobs > 0 then
             pct (float_of_int p.ph_covered_jobs /. float_of_int p.ph_jobs)
           else "-");
          (if p.ph_accesses > 0 then
             pct (float_of_int p.ph_l1_misses /. float_of_int p.ph_accesses)
           else "-");
          Table.fmt_float ~decimals:1 p.ph_mean_plan_age;
        ])
    r.phases;
  Table.add_rule t;
  Table.add_row t
    [
      "total";
      string_of_int r.jobs;
      pct r.coverage;
      pct r.miss_rate;
      Printf.sprintf "%d replans / %d profiles" r.replans r.profile_runs;
    ];
  t

let tenant_table r =
  let t =
    Table.create ~title:"Tenants"
      ~headers:[ "tenant"; "workload"; "jobs"; "covered"; "miss rate" ]
      ()
  in
  Table.set_aligns t
    [ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ];
  List.iter
    (fun ts ->
      Table.add_row t
        [
          ts.ts_tenant;
          ts.ts_workload;
          string_of_int ts.ts_jobs;
          (if ts.ts_jobs > 0 then
             pct (float_of_int ts.ts_covered_jobs /. float_of_int ts.ts_jobs)
           else "-");
          (if ts.ts_accesses > 0 then
             pct (float_of_int ts.ts_l1_misses /. float_of_int ts.ts_accesses)
           else "-");
        ])
    r.tenants;
  t

let report_to_json r =
  let counters c =
    Json.Obj
      [
        ("accesses", Json.Int c.Hierarchy.accesses);
        ("l1_misses", Json.Int c.Hierarchy.l1_misses);
        ("l2_misses", Json.Int c.Hierarchy.l2_misses);
        ("l3_misses", Json.Int c.Hierarchy.l3_misses);
        ("tlb_misses", Json.Int c.Hierarchy.tlb_misses);
        ("prefetches", Json.Int c.Hierarchy.prefetches);
      ]
  in
  Json.Obj
    [
      ("schedule_digest", Json.String r.schedule_digest);
      ("exec_digest", Json.String r.exec_digest);
      ("jobs", Json.Int r.jobs);
      ("instructions", Json.Int r.instructions);
      ("counters", counters r.counters);
      ("cycles", Json.Float r.cycles);
      ("sim_seconds", Json.Float r.sim_seconds);
      ("miss_rate", Json.Float r.miss_rate);
      ("covered_jobs", Json.Int r.covered_jobs);
      ("coverage", Json.Float r.coverage);
      ("replans", Json.Int r.replans);
      ("profile_runs", Json.Int r.profile_runs);
      ("profile_accesses", Json.Int r.profile_accesses);
      ("net_cycles", Json.Float r.net_cycles);
      ( "tenants",
        Json.List
          (List.map
             (fun ts ->
               Json.Obj
                 [
                   ("tenant", Json.String ts.ts_tenant);
                   ("workload", Json.String ts.ts_workload);
                   ("jobs", Json.Int ts.ts_jobs);
                   ("covered_jobs", Json.Int ts.ts_covered_jobs);
                   ("instructions", Json.Int ts.ts_instructions);
                   ("accesses", Json.Int ts.ts_accesses);
                   ("l1_misses", Json.Int ts.ts_l1_misses);
                 ])
             r.tenants) );
      ( "phases",
        Json.List
          (List.map
             (fun p ->
               Json.Obj
                 [
                   ("phase", Json.Int p.ph_phase);
                   ("label", Json.String p.ph_label);
                   ("jobs", Json.Int p.ph_jobs);
                   ("covered_jobs", Json.Int p.ph_covered_jobs);
                   ("accesses", Json.Int p.ph_accesses);
                   ("l1_misses", Json.Int p.ph_l1_misses);
                   ("mean_plan_age", Json.Float p.ph_mean_plan_age);
                 ])
             r.phases) );
    ]
