(** The plan-staleness drift study: sweep drift rate × re-profile cadence
    over the shared {!Schedule.drifting} traffic shape and report when
    re-profiling beats running on a stale plan.

    Each cell runs the {!Traffic_mix} executor on the same drifting
    schedule shape with a different [(drift, cadence)] pair. Cells are
    independent (each builds its own heap and hierarchy), so they fan
    out on the {!Par} pool; {!Par.map}'s submission-order results keep
    the study byte-identical at any [--jobs].

    The verdict column compares each cell's [net_cycles] (job cycles
    plus re-profiling charged at one cycle per profiled access — a lower
    bound that still penalises over-eager cadences) against the stale
    baseline of the same drift rate: the [cadence = 0] cell, which plans
    once at tick 0 and never again. *)

type params = {
  drifts : float list;  (** Expected ranking rotations per epoch. *)
  cadences : int list;
      (** Re-profile periods in ticks; [0] = never (the stale baseline —
          keep it in the list so the comparison column has its anchor). *)
  phases : int;  (** Epochs in the drifting schedule. *)
  ticks_per_phase : int;
  rate : float;  (** Jobs per tick. *)
  workloads : string list option;  (** Default: the full registry. *)
  seed : int;
  mix : Traffic_mix.config;
      (** Budget/window/scale/pipeline; [reprofile_every] is overridden
          per cell. *)
}

val default_params : params
(** [drifts = \[0.0; 0.25; 1.0\]], [cadences = \[0; 1; 2; 4\]],
    [phases = 6], [ticks_per_phase = 2], [rate = 4.0], [seed = 1],
    {!Traffic_mix.default_config}. *)

type cell = {
  c_drift : float;
  c_cadence : int;
  c_report : Traffic_mix.report;
  c_net_speedup : float;
      (** {!Timing.speedup} of [net_cycles] vs the same-drift stale
          baseline; positive = re-profiling pays. *)
  c_beats_stale : bool;
}

type t = { p : params; cells : cell list }

val run : ?obs:Obs.t -> ?jobs:int -> params -> t
(** Cells in [drifts × cadences] order (cadence varies fastest). *)

val table : t -> Table.t
val to_json : t -> Json.t
(** Includes every cell's full {!Traffic_mix} report — the determinism
    tests compare this rendering across [--jobs] values. *)
