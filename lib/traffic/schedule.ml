type curve =
  | Const of float
  | Linear of { from_ : float; to_ : float }
  | Exp of { from_ : float; to_ : float }

let eval c ~pos =
  let pos = Float.max 0.0 (Float.min 1.0 pos) in
  match c with
  | Const v -> v
  | Linear { from_; to_ } -> from_ +. ((to_ -. from_) *. pos)
  | Exp { from_; to_ } -> from_ *. ((to_ /. from_) ** pos)

type burst = { period : int; width : int; gain : float }

type tenant = { t_name : string; t_workload : string; t_share : curve }

type phase = {
  p_label : string;
  p_ticks : int;
  p_rate : curve;
  p_burst : burst option;
  p_tenants : tenant list;
}

type t = phase list

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let tenant ?name ?(share = Const 1.0) workload =
  {
    t_name = Option.value name ~default:workload;
    t_workload = workload;
    t_share = share;
  }

let phase ?burst ~label ~ticks ~rate tenants =
  {
    p_label = label;
    p_ticks = ticks;
    p_rate = rate;
    p_burst = burst;
    p_tenants = tenants;
  }

let pause ~label ~ticks = phase ~label ~ticks ~rate:(Const 0.0) []

let repeat n s = List.concat (List.init (max 0 n) (fun _ -> s))

let total_ticks s = List.fold_left (fun acc p -> acc + p.p_ticks) 0 s

let rotate a =
  let n = Array.length a in
  if n > 1 then begin
    let head = a.(0) in
    Array.blit a 1 a 0 (n - 1);
    a.(n - 1) <- head
  end

let drifting ?workloads ?(ticks_per_phase = 1) ?(rate = 100.0) ~phases ~drift ()
    =
  let workloads =
    match workloads with Some ws -> ws | None -> Workloads.names
  in
  let n = List.length workloads in
  if n = 0 then invalid_arg "Schedule.drifting: no workloads";
  (* Quadratic skew toward rank 0: P(rank < k) = sqrt(k/n), so the head
     of the ranking takes most of the traffic without a real Zipf
     sampler — the same popularity law the fleet simulator used. *)
  let share k =
    sqrt (float_of_int (k + 1) /. float_of_int n)
    -. sqrt (float_of_int k /. float_of_int n)
  in
  let ranking = Array.of_list workloads in
  let carry = ref 0.0 in
  List.init phases (fun i ->
      if i > 0 then begin
        (* Error-diffusion rotation: [drift] rotations per phase on
           average, applied at exact integer crossings — no coin flips,
           so the shape is identical for every seed. *)
        carry := !carry +. drift;
        let rot = int_of_float (floor !carry) in
        carry := !carry -. float_of_int rot;
        for _ = 1 to rot do
          rotate ranking
        done
      end;
      let tenants =
        Array.to_list
          (Array.mapi
             (fun k w ->
               { t_name = w; t_workload = w; t_share = Const (share k) })
             ranking)
      in
      phase
        ~label:(Printf.sprintf "epoch-%d" i)
        ~ticks:ticks_per_phase ~rate:(Const rate) tenants)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate_curve what = function
  | Const v when v < 0.0 -> Error (Printf.sprintf "%s: negative constant" what)
  | Exp { from_; to_ } when from_ <= 0.0 || to_ <= 0.0 ->
      Error (Printf.sprintf "%s: exp endpoints must be positive" what)
  | _ -> Ok ()

let ( let* ) = Result.bind

let validate_phase i p =
  let where what = Printf.sprintf "phase %d (%s): %s" i p.p_label what in
  let* () =
    if p.p_ticks <= 0 then Error (where "ticks must be positive") else Ok ()
  in
  let* () =
    Result.map_error where (validate_curve "rate" p.p_rate)
  in
  let* () =
    match p.p_burst with
    | None -> Ok ()
    | Some b ->
        if b.period <= 0 || b.width <= 0 || b.width > b.period then
          Error (where "burst needs 0 < width <= period")
        else if b.gain < 0.0 then Error (where "burst gain must be >= 0")
        else Ok ()
  in
  let* () =
    let names = List.map (fun t -> t.t_name) p.p_tenants in
    if List.length (List.sort_uniq compare names) <> List.length names then
      Error (where "duplicate tenant name")
    else Ok ()
  in
  List.fold_left
    (fun acc t ->
      let* () = acc in
      let* () =
        Result.map_error where
          (validate_curve (Printf.sprintf "tenant %s share" t.t_name) t.t_share)
      in
      match Workloads.lookup t.t_workload with
      | Ok _ -> Ok ()
      | Error e -> Error (where (Workloads.lookup_error_to_string e)))
    (Ok ()) p.p_tenants

let validate s =
  let rec go i = function
    | [] -> Ok ()
    | p :: rest ->
        let* () = validate_phase i p in
        go (i + 1) rest
  in
  go 0 s

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_tick : int;
  ev_phase : int;
  ev_label : string;
  ev_tenant : string;
  ev_workload : string;
  ev_seed : int;
}

let events ~seed s =
  (match validate s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Schedule.events: " ^ e));
  let root = Rng.create ~seed in
  (* Labelled splits read the root without advancing it, so each
     tenant's stream depends only on (seed, tenant name) — never on
     which other tenants exist or in what order they were reached. *)
  let streams : (string, Rng.t) Hashtbl.t = Hashtbl.create 16 in
  let stream name =
    match Hashtbl.find_opt streams name with
    | Some r -> r
    | None ->
        let r = Rng.split ~label:("tenant:" ^ name) root in
        Hashtbl.add streams name r;
        r
  in
  let out = ref [] in
  let rate_carry = ref 0.0 in
  let tick = ref 0 in
  List.iteri
    (fun pi p ->
      for pt = 0 to p.p_ticks - 1 do
        let pos =
          if p.p_ticks <= 1 then 0.0
          else float_of_int pt /. float_of_int (p.p_ticks - 1)
        in
        let rate =
          let r = eval p.p_rate ~pos in
          match p.p_burst with
          | Some b when pt mod b.period < b.width -> r *. b.gain
          | _ -> r
        in
        (* Error-diffusion rate rounding: fractional rates accumulate in
           a carry and emit a job exactly at integer crossings, so the
           long-run arrival count matches the curve's integral without
           any randomness. *)
        rate_carry := !rate_carry +. Float.max 0.0 rate;
        let n = int_of_float (floor !rate_carry) in
        rate_carry := !rate_carry -. float_of_int n;
        if n > 0 && p.p_tenants <> [] then begin
          let shares =
            List.map
              (fun t -> (t, Float.max 0.0 (eval t.t_share ~pos)))
              p.p_tenants
          in
          let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 shares in
          if total > 0.0 then begin
            (* Largest-remainder apportionment of the n jobs across
               tenants. Quotas depend only on shares, and ties break on
               tenant name, so a tenant's per-tick count is invariant
               under reordering of the tenant list. *)
            let quotas =
              List.map
                (fun (t, w) ->
                  let q = float_of_int n *. w /. total in
                  let base = int_of_float (floor q) in
                  (t, base, q -. float_of_int base))
                shares
            in
            let assigned =
              List.fold_left (fun acc (_, b, _) -> acc + b) 0 quotas
            in
            let remainder = n - assigned in
            let order =
              List.stable_sort
                (fun (ta, _, fa) (tb, _, fb) ->
                  match compare fb fa with
                  | 0 -> compare ta.t_name tb.t_name
                  | c -> c)
                quotas
            in
            let bonus = Hashtbl.create 8 in
            List.iteri
              (fun i (t, _, _) ->
                if i < remainder then Hashtbl.replace bonus t.t_name ())
              order;
            List.iter
              (fun (t, base, _) ->
                let count =
                  base + (if Hashtbl.mem bonus t.t_name then 1 else 0)
                in
                let rng = stream t.t_name in
                for _ = 1 to count do
                  out :=
                    {
                      ev_tick = !tick;
                      ev_phase = pi;
                      ev_label = p.p_label;
                      ev_tenant = t.t_name;
                      ev_workload = t.t_workload;
                      ev_seed = Rng.int_in rng 1 1_000_000;
                    }
                    :: !out
                done)
              quotas
          end
        end;
        incr tick
      done)
    s;
  List.rev !out

let fnv_init = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let fnv_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let digest evs =
  let h =
    List.fold_left
      (fun h e ->
        fnv_string h
          (Printf.sprintf "%d|%d|%s|%s|%s|%d\n" e.ev_tick e.ev_phase e.ev_label
             e.ev_tenant e.ev_workload e.ev_seed))
      fnv_init evs
  in
  Printf.sprintf "%016Lx" h

(* ------------------------------------------------------------------ *)
(* Mix-spec text format                                                *)
(* ------------------------------------------------------------------ *)

let curve_to_spec = function
  | Const v -> Printf.sprintf "%g" v
  | Linear { from_; to_ } -> Printf.sprintf "ramp:%g:%g" from_ to_
  | Exp { from_; to_ } -> Printf.sprintf "exp:%g:%g" from_ to_

let parse_float s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad number %S" s)

let parse_curve s =
  match String.split_on_char ':' s with
  | [ v ] ->
      let* v = parse_float v in
      Ok (Const v)
  | [ "ramp"; a; b ] ->
      let* from_ = parse_float a in
      let* to_ = parse_float b in
      Ok (Linear { from_; to_ })
  | [ "exp"; a; b ] ->
      let* from_ = parse_float a in
      let* to_ = parse_float b in
      Ok (Exp { from_; to_ })
  | _ -> Error (Printf.sprintf "bad curve %S (want N | ramp:A:B | exp:A:B)" s)

let parse_tenant s =
  let head, curve_s =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let workload, name =
    match String.index_opt head '@' with
    | None -> (head, head)
    | Some i ->
        ( String.sub head 0 i,
          String.sub head (i + 1) (String.length head - i - 1) )
  in
  if workload = "" || name = "" then Error (Printf.sprintf "bad tenant %S" s)
  else
    let* share =
      match curve_s with None -> Ok (Const 1.0) | Some c -> parse_curve c
    in
    Ok { t_name = name; t_workload = workload; t_share = share }

let parse_tenants s =
  let parts = String.split_on_char ',' s in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      let* t = parse_tenant part in
      Ok (t :: acc))
    (Ok []) parts
  |> Result.map List.rev

let parse_burst s =
  match String.split_on_char ':' s with
  | [ p; w; g ] -> (
      match (int_of_string_opt p, int_of_string_opt w, parse_float g) with
      | Some period, Some width, Ok gain -> Ok { period; width; gain }
      | _ -> Error (Printf.sprintf "bad burst %S" s))
  | _ -> Error (Printf.sprintf "bad burst %S (want period:width:gain)" s)

let parse_kv tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" tok)
  | Some i ->
      Ok
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )

let parse_phase_line ~pause_only tokens =
  match tokens with
  | label :: kvs ->
      let* kvs =
        List.fold_left
          (fun acc tok ->
            let* acc = acc in
            let* kv = parse_kv tok in
            Ok (kv :: acc))
          (Ok []) kvs
      in
      let find k = List.assoc_opt k kvs in
      let* ticks =
        match find "ticks" with
        | Some v -> (
            match int_of_string_opt v with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "bad ticks %S" v))
        | None -> Error "missing ticks="
      in
      if pause_only then
        match kvs with
        | [ (_, _) ] -> Ok (pause ~label ~ticks)
        | _ -> Error "pause takes only ticks="
      else
        let* rate =
          match find "rate" with
          | Some v -> parse_curve v
          | None -> Error "missing rate="
        in
        let* burst =
          match find "burst" with
          | None -> Ok None
          | Some v ->
              let* b = parse_burst v in
              Ok (Some b)
        in
        let* tenants =
          match find "tenants" with
          | Some v -> parse_tenants v
          | None -> Error "missing tenants="
        in
        Ok (phase ?burst ~label ~ticks ~rate tenants)
  | [] -> Error "missing phase label"

let of_spec text =
  let lines = String.split_on_char '\n' text in
  let* phases =
    List.fold_left
      (fun acc (lineno, line) ->
        let* acc = acc in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun t -> t <> "")
        in
        match tokens with
        | [] -> Ok acc
        | "phase" :: rest ->
            let* p =
              Result.map_error
                (Printf.sprintf "line %d: %s" lineno)
                (parse_phase_line ~pause_only:false rest)
            in
            Ok (p :: acc)
        | "pause" :: rest ->
            let* p =
              Result.map_error
                (Printf.sprintf "line %d: %s" lineno)
                (parse_phase_line ~pause_only:true rest)
            in
            Ok (p :: acc)
        | tok :: _ ->
            Error
              (Printf.sprintf "line %d: unknown directive %S" lineno tok))
      (Ok [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  let s = List.rev phases in
  let* () = validate s in
  Ok s

let to_spec s =
  let buf = Buffer.create 256 in
  List.iter
    (fun p ->
      if p.p_rate = Const 0.0 && p.p_tenants = [] then
        Buffer.add_string buf
          (Printf.sprintf "pause %s ticks=%d\n" p.p_label p.p_ticks)
      else begin
        Buffer.add_string buf
          (Printf.sprintf "phase %s ticks=%d rate=%s" p.p_label p.p_ticks
             (curve_to_spec p.p_rate));
        (match p.p_burst with
        | None -> ()
        | Some b ->
            Buffer.add_string buf
              (Printf.sprintf " burst=%d:%d:%g" b.period b.width b.gain));
        let tenant_spec t =
          let head =
            if t.t_name = t.t_workload then t.t_workload
            else t.t_workload ^ "@" ^ t.t_name
          in
          match t.t_share with
          | Const 1.0 -> head
          | c -> head ^ ":" ^ curve_to_spec c
        in
        Buffer.add_string buf
          (" tenants="
          ^ String.concat "," (List.map tenant_spec p.p_tenants)
          ^ "\n")
      end)
    s;
  Buffer.contents buf
