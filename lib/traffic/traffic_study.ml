type params = {
  drifts : float list;
  cadences : int list;
  phases : int;
  ticks_per_phase : int;
  rate : float;
  workloads : string list option;
  seed : int;
  mix : Traffic_mix.config;
}

let default_params =
  {
    drifts = [ 0.0; 0.25; 1.0 ];
    cadences = [ 0; 1; 2; 4 ];
    phases = 6;
    ticks_per_phase = 2;
    rate = 4.0;
    workloads = None;
    seed = 1;
    mix = Traffic_mix.default_config;
  }

type cell = {
  c_drift : float;
  c_cadence : int;
  c_report : Traffic_mix.report;
  c_net_speedup : float;
  c_beats_stale : bool;
}

type t = { p : params; cells : cell list }

let run ?obs ?jobs p =
  let inputs =
    List.concat_map
      (fun drift -> List.map (fun cadence -> (drift, cadence)) p.cadences)
      p.drifts
  in
  let reports =
    Par.map_obs ?obs ~name:"traffic.study" ?jobs
      (fun wobs (drift, cadence) ->
        let sched =
          Schedule.drifting ?workloads:p.workloads
            ~ticks_per_phase:p.ticks_per_phase ~rate:p.rate ~phases:p.phases
            ~drift ()
        in
        let config = { p.mix with Traffic_mix.reprofile_every = cadence } in
        Traffic_mix.run ?obs:wobs ~config ~seed:p.seed sched)
      inputs
  in
  let rows = List.combine inputs reports in
  (* The stale anchor per drift: the cadence-0 report when present, the
     longest cadence otherwise. *)
  let stale_net drift =
    let same =
      List.filter_map
        (fun ((d, c), r) -> if d = drift then Some (c, r) else None)
        rows
    in
    match List.assoc_opt 0 same with
    | Some r -> r.Traffic_mix.net_cycles
    | None -> (
        match
          List.sort (fun (ca, _) (cb, _) -> compare cb ca) same
        with
        | (_, r) :: _ -> r.Traffic_mix.net_cycles
        | [] -> 0.0)
  in
  let cells =
    List.map
      (fun ((drift, cadence), r) ->
        let baseline = stale_net drift in
        let net_speedup =
          if baseline > 0.0 then
            Timing.speedup ~baseline ~optimised:r.Traffic_mix.net_cycles
          else 0.0
        in
        {
          c_drift = drift;
          c_cadence = cadence;
          c_report = r;
          c_net_speedup = net_speedup;
          c_beats_stale = net_speedup > 0.0;
        })
      rows
  in
  { p; cells }

let table t =
  let tb =
    Table.create ~title:"Plan-staleness drift study"
      ~headers:
        [
          "drift";
          "cadence";
          "coverage";
          "L1 miss";
          "profiles";
          "net vs stale";
          "verdict";
        ]
      ()
  in
  Table.set_aligns tb
    [
      Table.Right;
      Table.Right;
      Table.Right;
      Table.Right;
      Table.Right;
      Table.Right;
      Table.Left;
    ];
  let last_drift = ref nan in
  List.iter
    (fun c ->
      if !last_drift = !last_drift && c.c_drift <> !last_drift then
        Table.add_rule tb;
      last_drift := c.c_drift;
      let r = c.c_report in
      Table.add_row tb
        [
          Printf.sprintf "%g" c.c_drift;
          (if c.c_cadence = 0 then "never" else string_of_int c.c_cadence);
          Table.fmt_pct r.Traffic_mix.coverage;
          Table.fmt_pct r.Traffic_mix.miss_rate;
          string_of_int r.Traffic_mix.profile_runs;
          Table.fmt_pct c.c_net_speedup;
          (if c.c_cadence = 0 then "stale baseline"
           else if c.c_beats_stale then "reprofile wins"
           else "stale wins");
        ])
    t.cells;
  tb

let to_json t =
  Json.Obj
    [
      ("phases", Json.Int t.p.phases);
      ("ticks_per_phase", Json.Int t.p.ticks_per_phase);
      ("rate", Json.Float t.p.rate);
      ("seed", Json.Int t.p.seed);
      ("plan_budget", Json.Int t.p.mix.Traffic_mix.plan_budget);
      ( "cells",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("drift", Json.Float c.c_drift);
                   ("cadence", Json.Int c.c_cadence);
                   ("net_speedup", Json.Float c.c_net_speedup);
                   ("beats_stale", Json.Bool c.c_beats_stale);
                   ("report", Traffic_mix.report_to_json c.c_report);
                 ])
             t.cells) );
    ]
