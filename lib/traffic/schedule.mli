(** Traffic schedules: shaped, drifting, multi-tenant composition of the
    workload registry.

    A schedule is a sequence of {e phases}. Each phase runs for a number
    of abstract {e ticks} and carries a job-arrival {e rate curve}, an
    optional periodic {e burst}, and a set of {e tenants} — named slices
    of traffic, each bound to a registry workload with a time-varying
    {e share curve}. {!events} lowers a schedule to a flat, deterministic
    job-event stream; everything downstream (the mix executor, the drift
    study, the serve fleet simulator) consumes that one representation,
    so all traffic in the system flows through the same model.

    Determinism: rates and shares are lowered to integer job counts by
    error-diffusion carries and largest-remainder apportionment — no
    coin flips — and each tenant draws its per-job seeds from an
    {!Rng.split}[ ~label]-derived substream keyed by tenant name, so a
    tenant's own event subsequence is independent of how tenants are
    ordered or interleaved. The full stream is a pure function of
    [(seed, schedule)]; any [--jobs] fan-out above it inherits
    byte-identical results from {!Par}'s ordering guarantee. *)

type curve =
  | Const of float
  | Linear of { from_ : float; to_ : float }
      (** Linear ramp across the phase: [from_] at the first tick, [to_]
          at the last. *)
  | Exp of { from_ : float; to_ : float }
      (** Geometric ramp; both endpoints must be positive. *)

val eval : curve -> pos:float -> float
(** [eval c ~pos] with [pos] in \[0,1\] (clamped). *)

type burst = { period : int; width : int; gain : float }
(** Every [period] ticks, the first [width] ticks of the cycle multiply
    the phase rate by [gain]. *)

type tenant = {
  t_name : string;  (** Stable identity; keys the tenant's RNG substream. *)
  t_workload : string;  (** Registry workload name. *)
  t_share : curve;  (** Relative weight; normalised per tick. *)
}

type phase = {
  p_label : string;
  p_ticks : int;
  p_rate : curve;  (** Jobs per tick (fractional rates accumulate). *)
  p_burst : burst option;
  p_tenants : tenant list;
}

type t = phase list

(** {1 Combinators} *)

val tenant : ?name:string -> ?share:curve -> string -> tenant
(** [tenant workload] — [name] defaults to the workload name, [share] to
    [Const 1.0]. *)

val phase :
  ?burst:burst -> label:string -> ticks:int -> rate:curve -> tenant list -> phase

val pause : label:string -> ticks:int -> phase
(** Zero-rate, zero-tenant phase: ticks elapse, no jobs arrive. *)

val repeat : int -> t -> t
(** [repeat n s] concatenates [n] copies of [s]. *)

val total_ticks : t -> int

val drifting :
  ?workloads:string list ->
  ?ticks_per_phase:int ->
  ?rate:float ->
  phases:int ->
  drift:float ->
  unit ->
  t
(** The shared fleet/study traffic shape: one phase per epoch over
    [workloads] (default: the full registry), tenant shares following the
    quadratic-skew popularity of a ranking ([P(rank < k) = sqrt(k/n)],
    the fleet simulator's cheap Zipf stand-in). [drift] is the expected
    number of head-of-ranking rotations per phase, applied by
    error-diffusion carry — [drift = 0.25] rotates exactly once every
    four phases — so the whole shape is seed-independent and the RNG
    only ever influences per-job seeds. [ticks_per_phase] defaults to 1,
    [rate] (jobs per tick) to 100. *)

(** {1 Events} *)

type event = {
  ev_tick : int;  (** Global tick, counted across phases from 0. *)
  ev_phase : int;  (** Phase index in the schedule. *)
  ev_label : string;  (** Phase label. *)
  ev_tenant : string;
  ev_workload : string;
  ev_seed : int;  (** Per-job interpreter/profiling seed, in \[1, 1e6\]. *)
}

val validate : t -> (unit, string) result
(** Checks phase ticks are positive, burst fields sane, [Exp] endpoints
    positive, tenant names unique within a phase, and every tenant's
    workload resolvable via {!Workloads.lookup}. *)

val events : seed:int -> t -> event list
(** Lower the schedule to its deterministic event stream. Within a tick,
    events are grouped by tenant in phase-declaration order; each
    tenant's own subsequence (count and seeds) is invariant under tenant
    reordering. Raises [Invalid_argument] if {!validate} fails. *)

val digest : event list -> string
(** FNV-1a 64 over the rendered stream, as 16 hex digits — the identity
    pinned by the golden test and the CI smoke. *)

(** {1 Mix-spec text format}

    One directive per line; [#] comments and blank lines are skipped:
    {v
    phase warm  ticks=20 rate=ramp:2:10 tenants=health:0.7,ft:0.3
    phase spike ticks=10 rate=10 burst=5:2:3 tenants=health@hot:ramp:0.7:0.2,ft
    pause cool  ticks=4
    v}
    Curves are [N], [ramp:A:B] or [exp:A:B]; tenants are
    [workload\[@name\]\[:curve\]]; bursts are [period:width:gain]. *)

val of_spec : string -> (t, string) result
(** Parse and {!validate}; errors carry the offending line number. *)

val to_spec : t -> string
(** Render back to the text format ([of_spec (to_spec s)] re-reads to an
    equivalent schedule). *)
