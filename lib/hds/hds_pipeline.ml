type config = {
  streams : Hot_streams.config;
  max_trace : int;
  max_tracked_size : int;
  max_sets : int option;
  seed : int;
}

let default_config =
  {
    streams = Hot_streams.default_config;
    max_trace = 1_000_000;
    max_tracked_size = 4096;
    max_sets = None;
    seed = 1;
  }

type plan = {
  groups : int list array;
  stream_count : int;
  selected_streams : int;
  trace_length : int;
  grammar_rules : int;
  coverage : float;
}

let plan ?(config = default_config) ?(merge_identical = false) program =
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let contexts = Context.create () in
  let heap = Heap_model.create () in
  let grammar = Sequitur.create () in
  let site_of_oid = Hashtbl.create 4096 in
  let last_oid = ref (-1) in
  (* Context arrays arrive physically stable per (stack, site) from the
     interpreter's cache — memoise interning on identity (see
     Profiler.track). *)
  let last_sites = ref [||] in
  let last_cid = ref (-1) in
  let track addr size site ctx_sites =
    if size <= config.max_tracked_size then begin
      (* The context table is only used for oid bookkeeping here; HDS
         identification sees just the immediate site. *)
      let cid =
        if ctx_sites == !last_sites then !last_cid
        else begin
          let cid = Context.intern contexts ctx_sites in
          last_sites := ctx_sites;
          last_cid := cid;
          cid
        end
      in
      let o = Heap_model.on_alloc heap ~addr ~size ~ctx:cid in
      Hashtbl.replace site_of_oid o.Heap_model.oid site
    end
  in
  let hooks =
    {
      Interp.on_access =
        (fun addr _size _write ->
          if Sequitur.input_length grammar < config.max_trace then
            match Heap_model.find heap addr with
            | None -> ()
            | Some o ->
                (* Same macro-access deduplication as HALO's profiler, so
                   the two techniques see the same abstract trace. *)
                if o.Heap_model.oid <> !last_oid then begin
                  last_oid := o.Heap_model.oid;
                  Sequitur.push grammar o.Heap_model.oid
                end);
      on_alloc = (fun addr size site ctx -> track addr size site ctx);
      on_realloc =
        (fun old_addr addr size site ctx ->
          ignore (Heap_model.on_free heap ~addr:old_addr : Heap_model.obj option);
          track addr size site ctx);
      on_free =
        (fun addr -> ignore (Heap_model.on_free heap ~addr : Heap_model.obj option));
    }
  in
  let interp = Interp.create ~seed:config.seed ~hooks ~program ~alloc () in
  ignore (Interp.run interp : int);
  let hot = Hot_streams.extract ~config:config.streams grammar in
  let candidates =
    List.map
      (fun (s : Hot_streams.stream) ->
        let sites =
          Array.to_list s.objects
          |> List.filter_map (fun oid -> Hashtbl.find_opt site_of_oid oid)
        in
        (* The projected benefit of enacting a stream's co-allocation set
           is proportional to the trace positions it accounts for. *)
        { Set_packing.sites; weight = s.heat })
      hot.Hot_streams.streams
  in
  let groups =
    Array.of_list
      (Set_packing.pack ~merge_identical ?max_sets:config.max_sets candidates)
  in
  {
    groups;
    stream_count = hot.Hot_streams.candidate_count;
    selected_streams = List.length hot.Hot_streams.streams;
    trace_length = hot.Hot_streams.trace_length;
    grammar_rules = Sequitur.rule_count grammar;
    coverage =
      (if hot.Hot_streams.trace_length = 0 then 0.0
       else
         float_of_int hot.Hot_streams.covered
         /. float_of_int hot.Hot_streams.trace_length);
  }

let classifier plan =
  let group_of_site = Hashtbl.create 64 in
  Array.iteri
    (fun gi sites ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem group_of_site s) then Hashtbl.replace group_of_site s gi)
        sites)
    plan.groups;
  fun ~env ~size:_ -> Hashtbl.find_opt group_of_site env.Exec_env.cur_alloc_site
