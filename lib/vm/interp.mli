(** The workload interpreter — target machine, Pin, and BOLT in one.

    Runs a finalized {!Ir.program} against a pluggable allocator, playing
    three roles from the paper's pipeline:

    - {b the machine}: executes statements, maintains heap contents, counts
      retired instructions for the timing model;
    - {b the Pin instrumentation tool} (§4.1): optional {!hooks} observe
      every load/store and every allocation event, including the
      allocation's reduced call-stack context from the {!Shadow_stack};
    - {b the BOLT-rewritten binary} (§4.3): [patches] attach a group-state
      bit to chosen call sites; the bit is set on entry to the site's
      dynamic extent and cleared on exit (recursion-safe via a depth
      count), so the {!Exec_env} vector always reflects which instrumented
      sites are live on the call stack.

    Heap contents behave like real (non-zeroing) malloc: memory retains
    stale values across free/reuse, so programs must initialise what they
    read — [calloc]'s zeroing is only honoured for never-written cells. *)

type hooks = {
  on_access : Addr.t -> int -> bool -> unit;
      (** [on_access addr size is_write], for every program load/store. *)
  on_alloc : Addr.t -> int -> Ir.site -> Ir.site array -> unit;
      (** [on_alloc addr size site ctx]: a malloc/calloc completed; [ctx]
          is the reduced context {e including} [site] as its innermost
          element. *)
  on_realloc : Addr.t -> Addr.t -> int -> Ir.site -> Ir.site array -> unit;
      (** [on_realloc old_addr new_addr size site ctx]. *)
  on_free : Addr.t -> unit;
}

val no_hooks : hooks

type t

val create :
  ?seed:int ->
  ?hooks:hooks ->
  ?patches:(Ir.site * int) list ->
  ?env:Exec_env.t ->
  ?memcheck:Vmem.t ->
  ?obs:Obs.t ->
  program:Ir.program ->
  alloc:Alloc_iface.t ->
  unit ->
  t
(** [create ~program ~alloc ()] compiles the program (variables resolved to
    slots, patch bits resolved per site) ready to run. [seed] feeds the
    program's own [Rand] stream (default 1). [patches] maps call sites to
    bit indices in [env]'s group-state vector; sites must exist in the
    program and bits must be within capacity. [obs] enables telemetry:
    [vm.calls] / [vm.allocs] counters and the [vm.shadow_stack.depth]
    histogram. Metric handles are resolved here and the instrumented
    closures compiled only when [obs] is given — omitting it compiles the
    exact uninstrumented interpreter. *)

val run : t -> int
(** Execute [main] (no arguments); returns its return value. Can only be
    called once per [t]. Raises [Failure] for simulated crashes (division
    by zero, allocator misuse, shadow-stack bugs). *)

val instructions : t -> int
(** Retired-instruction count: 1 per simple statement, [n] per
    [Compute n], a fixed surcharge per allocator call, 2 + arity per
    call. *)

val env : t -> Exec_env.t

val load_store_counts : t -> int * int
(** [(loads, stores)] — counts of executed load and store {e events}
    (one per [Load]/[Store] statement retired, regardless of the access
    width in bytes). Drives the hot-path throughput benchmark and test
    sanity checks. *)
