(** The workload interpreter — target machine, Pin, and BOLT in one.

    Runs a finalized {!Ir.program} against a pluggable allocator, playing
    three roles from the paper's pipeline:

    - {b the machine}: executes statements, maintains heap contents, counts
      retired instructions for the timing model;
    - {b the Pin instrumentation tool} (§4.1): optional {!hooks} observe
      every load/store and every allocation event, including the
      allocation's reduced call-stack context from the {!Shadow_stack};
    - {b the BOLT-rewritten binary} (§4.3): [patches] attach a group-state
      bit to chosen call sites; the bit is set on entry to the site's
      dynamic extent and cleared on exit (recursion-safe via a depth
      count), so the {!Exec_env} vector always reflects which instrumented
      sites are live on the call stack.

    Heap contents behave like real (non-zeroing) malloc: memory retains
    stale values across free/reuse, so programs must initialise what they
    read — [calloc]'s zeroing is only honoured for never-written cells. *)

type hooks = {
  on_access : Addr.t -> int -> bool -> unit;
      (** [on_access addr size is_write], for every program load/store. *)
  on_alloc : Addr.t -> int -> Ir.site -> Ir.site array -> unit;
      (** [on_alloc addr size site ctx]: a malloc/calloc completed; [ctx]
          is the reduced context {e including} [site] as its innermost
          element. *)
  on_realloc : Addr.t -> Addr.t -> int -> Ir.site -> Ir.site array -> unit;
      (** [on_realloc old_addr new_addr size site ctx]. *)
  on_free : Addr.t -> unit;
}

val no_hooks : hooks

type t

val create :
  ?seed:int ->
  ?hooks:hooks ->
  ?patches:(Ir.site * int) list ->
  ?env:Exec_env.t ->
  ?memcheck:Vmem.t ->
  ?obs:Obs.t ->
  program:Ir.program ->
  alloc:Alloc_iface.t ->
  unit ->
  t
(** [create ~program ~alloc ()] compiles the program (variables resolved to
    slots, patch bits resolved per site) ready to run. [seed] feeds the
    program's own [Rand] stream (default 1). [patches] maps call sites to
    bit indices in [env]'s group-state vector; sites must exist in the
    program and bits must be within capacity. [obs] enables telemetry:
    [vm.calls] / [vm.allocs] counters and the [vm.shadow_stack.depth]
    histogram. Metric handles are resolved here and the instrumented
    closures compiled only when [obs] is given — omitting it compiles the
    exact uninstrumented interpreter. *)

val run : t -> int
(** Execute [main] (no arguments); returns its return value. Can only be
    called once per [t]. Raises {!Interp_error.Error} for simulated
    program crashes (division/modulo by zero, bad [Rand] bounds, calloc
    overflow), [Failure] for memory-check violations, and
    {!Alloc_iface.Alloc_error} for allocator misuse. *)

val instructions : t -> int
(** Retired-instruction count: 1 per simple statement, [n] per
    [Compute n], a fixed surcharge per allocator call, 2 + arity per
    call. *)

val env : t -> Exec_env.t

val load_store_counts : t -> int * int
(** [(loads, stores)] — counts of executed load and store {e events}
    (one per [Load]/[Store] statement retired, regardless of the access
    width in bytes). Drives the hot-path throughput benchmark and test
    sanity checks. *)

(** {2 Engine seam}

    The pieces below are the compiler's internals, exposed so that
    {!Trace_compile} can build a second execution engine over the same
    runtime state and delegate every statement it does not fuse to the
    exact closures the interpreter would have run. They are not a stable
    API for anything else. *)

val cost_malloc : int
val cost_free : int
val cost_realloc : int
val cost_call : int
(** Instruction surcharges of the timing model (identical across
    engines and configurations by construction). *)

(** Pre-resolved metric handles; [None] disables the instrumented
    closures entirely. *)
type rt_obs = {
  h_shadow_depth : Metrics.histogram;
  m_calls : Metrics.counter;
  m_allocs : Metrics.counter;
}

(** The mutable machine state every compiled closure runs against. *)
type rt = {
  alloc : Alloc_iface.t;
  hooks : hooks;
  memcheck : Vmem.t option;
  env : Exec_env.t;
  shadow : Shadow_stack.t;
  mem : Paged_mem.t;
  rng : Rng.t;
  patch_depth : int array;
  globals : int array;
  obs : rt_obs option;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
}

exception Ret of int
(** Raised by compiled [Return] statements; caught by function wrappers. *)

(** Per-function compilation context: slot numbering for locals, the
    program-wide global numbering and patch table, and the table of
    compiled functions for call resolution. *)
type compile_ctx = {
  c_rt : rt;
  locals : (string, int) Hashtbl.t;
  c_globals : (string, int) Hashtbl.t;
  patches : (Ir.site, int) Hashtbl.t;
  cfuncs : (string, int array -> int) Hashtbl.t;
  fname : string;
  nslots : int ref;
}

val local_slot : compile_ctx -> string -> int
(** Slot of a local, allocating a fresh slot on first sight. *)

val local_slot_read : compile_ctx -> string -> int
(** Slot of a local that must already exist (reads). *)

val global_slot : compile_ctx -> string -> int
(** Slot of a global collected by {!make_rt}. *)

val bit_of_site : compile_ctx -> Ir.site -> int option
(** The patch bit attached to a site, if any. *)

val prescan_stmt : compile_ctx -> Ir.stmt -> unit
(** Assign slots for every lvalue in a statement tree (run over a whole
    body before compiling, so loop-carried reads resolve). *)

val compile_expr : compile_ctx -> Ir.expr -> int array -> int
val compile_stmt : compile_ctx -> Ir.stmt -> int array -> unit
val compile_block : compile_ctx -> Ir.stmt list -> int array -> unit
(** The interpreter's own statement/expression compilers — the baseline
    closures that fused traces deoptimise back into. *)

val make_rt :
  ?seed:int ->
  ?hooks:hooks ->
  ?patches:(Ir.site * int) list ->
  ?env:Exec_env.t ->
  ?memcheck:Vmem.t ->
  ?obs:Obs.t ->
  program:Ir.program ->
  alloc:Alloc_iface.t ->
  unit ->
  rt * (Ir.site, int) Hashtbl.t * (string, int) Hashtbl.t
(** Validate patches, number the program's globals, and build the
    runtime state. Returns [(rt, patch_table, global_table)]; the same
    construction {!create} performs before compiling. *)

val check_main : Ir.program -> string
(** Validate that the entry function takes no parameters and return its
    name. *)
