(** Sparse paged memory for the interpreter's heap image.

    A page directory (hashtable of page index -> flat [int array] page)
    fronted by a direct-mapped page cache: loads and stores on the hot
    path are a shift, an indexed compare and an array index, even when
    the access stream alternates between distant pages. Works over the
    full [int]
    address range — page indices come from an arithmetic shift, so
    negative and very large addresses page correctly.

    Semantics match the hashtable it replaces: cells never stored read
    [0]; stored values persist until overwritten (memory is never
    cleared on free — real malloc does not zero). *)

type t

val create : ?page_bits:int -> unit -> t
(** [page_bits] sets the page size to [2^page_bits] cells (default 12,
    i.e. 4096). Raises [Invalid_argument] outside [1..20]. *)

val load : t -> Addr.t -> int
(** O(1); [0] for never-written cells. *)

val store : t -> Addr.t -> int -> unit
(** O(1) amortised; creates the page zero-filled on first touch. *)

val copy : t -> src:Addr.t -> dst:Addr.t -> len:int -> unit
(** Realloc's memcpy: copy [len] cells from [src] to [dst], page-wise
    via [Array.blit]. Source pages never written are skipped, leaving
    the destination range untouched (the old per-cell copy skipped
    absent cells the same way). Ranges are assumed disjoint — the
    allocator hands realloc a fresh block when it moves. *)

val page_size : t -> int
val page_count : t -> int
(** Pages materialised so far — for tests and diagnostics. *)
