(** The profiler's shadow call stack (§4.1).

    During profiling HALO maintains a shadow stack that deliberately differs
    from the true call stack: it records, for each active call, the exact
    call site from which the function was invoked. At an allocation, the
    stack is flattened into the allocation's {e context}.

    Stacks containing recursive calls are transformed into a canonical
    {e reduced} form in which only the most recent occurrence of any
    (function, call site) pair is retained — bounding contexts for
    arbitrarily deep recursion without imposing fixed size limits, while
    avoiding the overfitting of raw unbounded stacks.

    Internally the stack is a calling-context tree: every distinct stack
    is interned as a node, push/pop walk the tree, and reductions are
    cached per node — so capturing an allocation's context inside a loop
    costs O(1) after the first iteration instead of O(depth) per event. *)

type t

val create : unit -> t

val intern_name : t -> string -> int
(** Intern a function name to a dense id. Stable for the lifetime of
    [t]; the interpreter calls this once per call site at compile time
    so that {!push_id} never touches a string. *)

val push : t -> func:string -> site:Ir.site -> unit

val push_id : t -> fid:int -> site:Ir.site -> unit
(** [push] with a pre-interned function id — the hot-path variant. *)

val pop : t -> unit
(** Raises [Failure] on underflow (an interpreter bug, not a program one). *)

val depth : t -> int
(** Raw (un-reduced) depth. *)

val reduced : t -> Ir.site array
(** The canonical reduced context: call sites from outermost to innermost,
    with only the most recent occurrence of each (function, site) pair
    kept. The allocation site itself is {e not} included — callers append
    it (see {!Profiler}). Returns a fresh array. *)

val context : t -> site:Ir.site -> Ir.site array
(** [reduced t] with [site] appended as the innermost element — the
    full allocation context, served from a per-node one-entry cache.
    The returned array is {b shared}: repeated calls at the same stack
    and site return the {e same physically-equal} array (so callers may
    memoise on [==]), and it must not be mutated. *)

val reduce_sites : (string * Ir.site) array -> Ir.site array
(** Pure reduction on an explicit outermost-to-innermost stack of
    (function, site) frames — exposed for direct testing of the
    canonicalisation rule. *)
