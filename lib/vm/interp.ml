type hooks = {
  on_access : Addr.t -> int -> bool -> unit;
  on_alloc : Addr.t -> int -> Ir.site -> Ir.site array -> unit;
  on_realloc : Addr.t -> Addr.t -> int -> Ir.site -> Ir.site array -> unit;
  on_free : Addr.t -> unit;
}

let no_hooks =
  {
    on_access = (fun _ _ _ -> ());
    on_alloc = (fun _ _ _ _ -> ());
    on_realloc = (fun _ _ _ _ _ -> ());
    on_free = (fun _ -> ());
  }

(* Instruction surcharges for the timing model: calls into the allocator
   retire far more instructions than a plain statement does. The exact
   values only need to be plausible and identical across configurations. *)
let cost_malloc = 30
let cost_free = 20
let cost_realloc = 40
let cost_call = 2

(* Pre-resolved metric handles; [None] when observability is disabled, in
   which case compilation emits the exact uninstrumented closures. *)
type rt_obs = {
  h_shadow_depth : Metrics.histogram; (* vm.shadow_stack.depth *)
  m_calls : Metrics.counter; (* vm.calls *)
  m_allocs : Metrics.counter; (* vm.allocs *)
}

type rt = {
  alloc : Alloc_iface.t;
  hooks : hooks;
  memcheck : Vmem.t option;
  env : Exec_env.t;
  shadow : Shadow_stack.t;
  mem : Paged_mem.t;
  rng : Rng.t;
  patch_depth : int array;
  globals : int array;
  obs : rt_obs option;
  mutable instructions : int;
  mutable loads : int;
  mutable stores : int;
}

type t = {
  rt : rt;
  main : unit -> int;
  mutable ran : bool;
}

exception Ret of int

(* The BOLT-inserted set/unset-bit instructions are real instructions:
   charge one each so the §5.2 instrumentation-overhead control measures a
   true (tiny) cost instead of exactly zero. *)
let enter_bit rt b =
  rt.instructions <- rt.instructions + 1;
  rt.patch_depth.(b) <- rt.patch_depth.(b) + 1;
  if rt.patch_depth.(b) = 1 then Bitset.set rt.env.Exec_env.group_state b

let exit_bit rt b =
  rt.instructions <- rt.instructions + 1;
  rt.patch_depth.(b) <- rt.patch_depth.(b) - 1;
  if rt.patch_depth.(b) = 0 then Bitset.clear rt.env.Exec_env.group_state b

(* Served from the shadow stack's per-node cache: the same stack and
   site yield the same physically-equal (shared, never-mutated) array,
   which downstream consumers use to memoise context interning. *)
let ctx_of rt site = Shadow_stack.context rt.shadow ~site

(* Calder-style name: XOR of the last four context entries. *)
let name4_of_ctx ctx =
  let n = Array.length ctx in
  let acc = ref 0 in
  for k = max 0 (n - 4) to n - 1 do
    acc := !acc lxor ctx.(k)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Compilation: names resolved to slots, patch bits resolved per site. *)
(* ------------------------------------------------------------------ *)

type compile_ctx = {
  c_rt : rt;
  locals : (string, int) Hashtbl.t;
  c_globals : (string, int) Hashtbl.t;
  patches : (Ir.site, int) Hashtbl.t;
  cfuncs : (string, int array -> int) Hashtbl.t;
  fname : string;
  nslots : int ref;
}

let local_slot cc name =
  match Hashtbl.find_opt cc.locals name with
  | Some s -> s
  | None ->
      let s = !(cc.nslots) in
      incr cc.nslots;
      Hashtbl.replace cc.locals name s;
      s

let local_slot_read cc name =
  match Hashtbl.find_opt cc.locals name with
  | Some s -> s
  | None ->
      invalid_arg
        (Printf.sprintf "Interp: variable %S is never assigned in function %S" name
           cc.fname)

let global_slot cc name =
  match Hashtbl.find_opt cc.c_globals name with
  | Some s -> s
  | None ->
      invalid_arg (Printf.sprintf "Interp: unknown global %S (never assigned)" name)

(* Pre-scan a function body so that reads of locals assigned later in the
   text (loop-carried variables) resolve, and collect global names. *)
let rec prescan_stmt cc st =
  match st with
  | Ir.Let (x, _) | Ir.Malloc (x, _, _) | Ir.Calloc (x, _, _, _)
  | Ir.Realloc (x, _, _, _) | Ir.Load (x, _, _, _) ->
      ignore (local_slot cc x : int)
  | Ir.Call (dst, _, _, _) ->
      Option.iter (fun x -> ignore (local_slot cc x : int)) dst
  | Ir.Gassign (x, _) ->
      if not (Hashtbl.mem cc.c_globals x) then
        Hashtbl.replace cc.c_globals x (Hashtbl.length cc.c_globals)
  | Ir.If (_, a, b) ->
      List.iter (prescan_stmt cc) a;
      List.iter (prescan_stmt cc) b
  | Ir.While (_, a) -> List.iter (prescan_stmt cc) a
  | Ir.Free _ | Ir.Store _ | Ir.Return _ | Ir.Compute _ -> ()

let rec compile_expr cc (e : Ir.expr) : int array -> int =
  let rt = cc.c_rt in
  match e with
  | Int n -> fun _ -> n
  | Var x ->
      let s = local_slot_read cc x in
      fun slots -> slots.(s)
  | Gvar x ->
      let s = global_slot cc x in
      fun _ -> rt.globals.(s)
  | Rand b ->
      let b = compile_expr cc b in
      let fname = cc.fname in
      fun slots ->
        let bound = b slots in
        if bound <= 0 then Interp_error.error ~fname (Rand_bound bound)
        else Rng.int rt.rng bound
  | Not e ->
      let e = compile_expr cc e in
      fun slots -> if e slots = 0 then 1 else 0
  | Binop (op, a, b) -> (
      let a = compile_expr cc a and b = compile_expr cc b in
      let fname = cc.fname in
      match op with
      | Add -> fun s -> a s + b s
      | Sub -> fun s -> a s - b s
      | Mul -> fun s -> a s * b s
      | Div ->
          fun s ->
            let d = b s in
            if d = 0 then Interp_error.error ~fname Division_by_zero
            else a s / d
      | Rem ->
          fun s ->
            let d = b s in
            if d = 0 then Interp_error.error ~fname Modulo_by_zero
            else a s mod d
      | Lt -> fun s -> if a s < b s then 1 else 0
      | Le -> fun s -> if a s <= b s then 1 else 0
      | Gt -> fun s -> if a s > b s then 1 else 0
      | Ge -> fun s -> if a s >= b s then 1 else 0
      | Eq -> fun s -> if a s = b s then 1 else 0
      | Ne -> fun s -> if a s <> b s then 1 else 0
      | And -> fun s -> if a s <> 0 && b s <> 0 then 1 else 0
      | Or -> fun s -> if a s <> 0 || b s <> 0 then 1 else 0)

let bit_of_site cc site = Hashtbl.find_opt cc.patches site

let do_alloc rt ~site ~bit ~size =
  rt.instructions <- rt.instructions + cost_malloc;
  (match rt.obs with None -> () | Some o -> Metrics.incr o.m_allocs);
  (match bit with Some b -> enter_bit rt b | None -> ());
  let ctx = ctx_of rt site in
  rt.env.Exec_env.cur_alloc_site <- site;
  rt.env.Exec_env.cur_name4 <- name4_of_ctx ctx;
  let addr = rt.alloc.Alloc_iface.malloc size in
  rt.env.Exec_env.cur_alloc_site <- 0;
  rt.env.Exec_env.cur_name4 <- 0;
  (match bit with Some b -> exit_bit rt b | None -> ());
  rt.hooks.on_alloc addr size site ctx;
  addr

let rec compile_stmt cc (st : Ir.stmt) : int array -> unit =
  let rt = cc.c_rt in
  match st with
  | Let (x, e) ->
      let s = local_slot cc x and e = compile_expr cc e in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        slots.(s) <- e slots
  | Gassign (x, e) ->
      let s = global_slot cc x and e = compile_expr cc e in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        rt.globals.(s) <- e slots
  | Malloc (x, sz, site) ->
      let s = local_slot cc x
      and sz = compile_expr cc sz
      and bit = bit_of_site cc site in
      fun slots -> slots.(s) <- do_alloc rt ~site ~bit ~size:(sz slots)
  | Calloc (x, n, sz, site) ->
      let s = local_slot cc x
      and n = compile_expr cc n
      and sz = compile_expr cc sz
      and bit = bit_of_site cc site in
      let fname = cc.fname in
      fun slots ->
        (* Operands in the historical order of [n slots * sz slots]
           (right-to-left), so Rand draws in the arguments keep their
           stream positions. *)
        let size = sz slots in
        let count = n slots in
        let total = count * size in
        if count < 0 || size < 0 || (size <> 0 && total / size <> count) then
          Interp_error.error ~fname ~site (Calloc_overflow { count; size });
        slots.(s) <- do_alloc rt ~site ~bit ~size:total
  | Realloc (x, p, sz, site) ->
      let s = local_slot cc x
      and p = compile_expr cc p
      and sz = compile_expr cc sz
      and bit = bit_of_site cc site in
      fun slots ->
        let old = p slots and size = sz slots in
        rt.instructions <- rt.instructions + cost_realloc;
        let old_usable =
          if old = Addr.null then 0
          else Option.value (rt.alloc.Alloc_iface.usable_size old) ~default:0
        in
        (match bit with Some b -> enter_bit rt b | None -> ());
        let ctx = ctx_of rt site in
        rt.env.Exec_env.cur_alloc_site <- site;
        rt.env.Exec_env.cur_name4 <- name4_of_ctx ctx;
        let addr = rt.alloc.Alloc_iface.realloc old size in
        rt.env.Exec_env.cur_alloc_site <- 0;
        rt.env.Exec_env.cur_name4 <- 0;
        (match bit with Some b -> exit_bit rt b | None -> ());
        (* memcpy semantics when the block moved. *)
        if addr <> old && old <> Addr.null then
          Paged_mem.copy rt.mem ~src:old ~dst:addr
            ~len:(min old_usable size);
        rt.hooks.on_realloc old addr size site ctx;
        slots.(s) <- addr
  | Free e ->
      let e = compile_expr cc e in
      fun slots ->
        rt.instructions <- rt.instructions + cost_free;
        let addr = e slots in
        if addr <> Addr.null then begin
          rt.hooks.on_free addr;
          rt.alloc.Alloc_iface.free addr
        end
  | Load (x, p, off, bytes) ->
      let s = local_slot cc x
      and p = compile_expr cc p
      and off = compile_expr cc off in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        rt.loads <- rt.loads + 1;
        let addr = p slots + off slots in
        (match rt.memcheck with Some v -> Vmem.touch v addr bytes | None -> ());
        rt.hooks.on_access addr bytes false;
        slots.(s) <- Paged_mem.load rt.mem addr
  | Store (p, off, value, bytes) ->
      let p = compile_expr cc p
      and off = compile_expr cc off
      and value = compile_expr cc value in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        rt.stores <- rt.stores + 1;
        let addr = p slots + off slots in
        (match rt.memcheck with Some v -> Vmem.touch v addr bytes | None -> ());
        rt.hooks.on_access addr bytes true;
        Paged_mem.store rt.mem addr (value slots)
  | Call (dst, callee, args, site) ->
      let dst = Option.map (local_slot cc) dst in
      let args = Array.of_list (List.map (compile_expr cc) args) in
      let bit = bit_of_site cc site in
      let fid = Shadow_stack.intern_name rt.shadow callee in
      let callee_fn = ref None in
      let fname = cc.fname in
      let base slots =
        rt.instructions <- rt.instructions + cost_call + Array.length args;
        let f =
          match !callee_fn with
          | Some f -> f
          | None ->
              let f =
                match Hashtbl.find_opt cc.cfuncs callee with
                | Some f -> f
                | None ->
                    Interp_error.error ~fname ~site (Uncompiled_callee callee)
              in
              callee_fn := Some f;
              f
        in
        let argv = Array.map (fun a -> a slots) args in
        Shadow_stack.push_id rt.shadow ~fid ~site;
        (match bit with Some b -> enter_bit rt b | None -> ());
        (* Hand-rolled Fun.protect: the cleanup is two writes, and
           skipping the two closure allocations per call is measurable
           on call-heavy workloads. *)
        match f argv with
        | result ->
            (match bit with Some b -> exit_bit rt b | None -> ());
            Shadow_stack.pop rt.shadow;
            (match dst with Some s -> slots.(s) <- result | None -> ())
        | exception e ->
            (match bit with Some b -> exit_bit rt b | None -> ());
            Shadow_stack.pop rt.shadow;
            raise e
      in
      (* Shadow-stack depth distribution: observed per call, specialised at
         compile time so the disabled path is the bare closure above. *)
      (match rt.obs with
      | None -> base
      | Some o ->
          fun slots ->
            Metrics.incr o.m_calls;
            Metrics.observe o.h_shadow_depth
              (float_of_int (Shadow_stack.depth rt.shadow + 1));
            base slots)
  | If (c, a, b) ->
      let c = compile_expr cc c
      and a = compile_block cc a
      and b = compile_block cc b in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        if c slots <> 0 then a slots else b slots
  | While (c, body) ->
      let c = compile_expr cc c and body = compile_block cc body in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        while c slots <> 0 do
          body slots;
          rt.instructions <- rt.instructions + 1
        done
  | Return e ->
      let e = compile_expr cc e in
      fun slots ->
        rt.instructions <- rt.instructions + 1;
        raise (Ret (e slots))
  | Compute n ->
      fun _ -> rt.instructions <- rt.instructions + n

and compile_block cc stmts =
  let compiled = Array.of_list (List.map (compile_stmt cc) stmts) in
  fun slots -> Array.iter (fun f -> f slots) compiled

let compile_func rt c_globals patches cfuncs (f : Ir.func) =
  let cc =
    {
      c_rt = rt;
      locals = Hashtbl.create 16;
      c_globals;
      patches;
      cfuncs;
      fname = f.Ir.fname;
      nslots = ref 0;
    }
  in
  (* Parameters take the first slots, in order. *)
  List.iter (fun p -> ignore (local_slot cc p : int)) f.Ir.params;
  List.iter (prescan_stmt cc) f.Ir.body;
  let body = compile_block cc f.Ir.body in
  let nslots = !(cc.nslots) in
  let nparams = List.length f.Ir.params in
  fun argv ->
    if Array.length argv <> nparams then
      Interp_error.error ~fname:f.Ir.fname
        (Arity_mismatch
           { callee = f.Ir.fname; expected = nparams; got = Array.length argv });
    let slots = Array.make (max nslots 1) 0 in
    Array.blit argv 0 slots 0 nparams;
    try
      body slots;
      0
    with Ret v -> v

(* Shared with the trace engine: validate patches, number globals, and
   build the runtime state. Returns the patch and global tables so a
   second compiler can build [compile_ctx]s against the same [rt]. *)
let make_rt ?(seed = 1) ?(hooks = no_hooks) ?(patches = []) ?env ?memcheck ?obs
    ~program ~alloc () =
  let env = match env with Some e -> e | None -> Exec_env.create () in
  let patch_tbl = Hashtbl.create 16 in
  let all_sites = Ir.sites program in
  let site_set = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace site_set s ()) all_sites;
  List.iter
    (fun (site, bit) ->
      if not (Hashtbl.mem site_set site) then
        invalid_arg (Printf.sprintf "Interp.create: patch at unknown site 0x%x" site);
      if bit < 0 || bit >= Bitset.length env.Exec_env.group_state then
        invalid_arg (Printf.sprintf "Interp.create: patch bit %d out of range" bit);
      if Hashtbl.mem patch_tbl site then
        invalid_arg (Printf.sprintf "Interp.create: duplicate patch at 0x%x" site);
      Hashtbl.replace patch_tbl site bit)
    patches;
  (* Collect globals across the whole program first so that every function
     sees the same global slot numbering. *)
  let c_globals = Hashtbl.create 16 in
  let rec collect_globals st =
    match st with
    | Ir.Gassign (x, _) ->
        if not (Hashtbl.mem c_globals x) then
          Hashtbl.replace c_globals x (Hashtbl.length c_globals)
    | Ir.If (_, a, b) ->
        List.iter collect_globals a;
        List.iter collect_globals b
    | Ir.While (_, a) -> List.iter collect_globals a
    | _ -> ()
  in
  List.iter (fun f -> List.iter collect_globals f.Ir.body) (Ir.funcs program);
  let rt =
    {
      alloc;
      hooks;
      memcheck;
      env;
      shadow = Shadow_stack.create ();
      mem = Paged_mem.create ();
      rng = Rng.create ~seed;
      patch_depth = Array.make (Bitset.length env.Exec_env.group_state) 0;
      globals = Array.make (max (Hashtbl.length c_globals) 1) 0;
      obs =
        Option.map
          (fun o ->
            let m = Obs.metrics o in
            {
              h_shadow_depth = Metrics.histogram m "vm.shadow_stack.depth";
              m_calls = Metrics.counter m "vm.calls";
              m_allocs = Metrics.counter m "vm.allocs";
            })
          obs;
      instructions = 0;
      loads = 0;
      stores = 0;
    }
  in
  (rt, patch_tbl, c_globals)

let check_main program =
  let main_name = Ir.main program in
  (match Ir.find_func program main_name with
  | Some f when f.Ir.params <> [] ->
      invalid_arg "Interp.create: main must take no parameters"
  | _ -> ());
  main_name

let create ?seed ?hooks ?patches ?env ?memcheck ?obs ~program ~alloc () =
  let rt, patch_tbl, c_globals =
    make_rt ?seed ?hooks ?patches ?env ?memcheck ?obs ~program ~alloc ()
  in
  let cfuncs = Hashtbl.create 64 in
  List.iter
    (fun f ->
      Hashtbl.replace cfuncs f.Ir.fname (compile_func rt c_globals patch_tbl cfuncs f))
    (Ir.funcs program);
  let main_name = check_main program in
  let main () = (Hashtbl.find cfuncs main_name) [||] in
  { rt; main; ran = false }

let run t =
  if t.ran then invalid_arg "Interp.run: already ran";
  t.ran <- true;
  t.main ()

let instructions t = t.rt.instructions
let env t = t.rt.env
let load_store_counts t = (t.rt.loads, t.rt.stores)
