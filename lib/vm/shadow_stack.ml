(* The shadow stack as a calling-context tree.

   The naive representation (a frame list, re-reduced from scratch at
   every allocation) makes context capture O(depth) with a hashtable
   per event. Instead, every distinct stack the program ever reaches is
   interned as a CCT node keyed by (parent, function, call site);
   push/pop walk the tree. A loop calling the same wrapper returns to
   the same node every iteration, so per-node caches hit:

   - the reduced context is computed at most once per node (derived
     incrementally from the parent's cached reduction, so the amortised
     cost is O(1) per new node, not O(depth));
   - [context] keeps a one-entry (site -> context array) cache per
     node, so an allocation site inside a loop reuses one physically
     stable array — callers can in turn memoise interning on physical
     equality.

   Function names are interned to ints once ([intern_name], done at
   interpreter compile time), so the hot path never touches a string. *)

type node = {
  parent : int; (* -1 for the root *)
  fid : int;
  site : Ir.site;
  node_depth : int;
  mutable children : int array; (* node ids; linear scan, fan-out is small *)
  mutable nchildren : int;
  (* Cached canonical reduction of this node's stack, outermost first,
     with a parallel fid array for (fid, site) dedup during derivation.
     [r_sites == no_reduction] marks "not yet computed". *)
  mutable r_sites : Ir.site array;
  mutable r_fids : int array;
  (* One-entry context cache: the reduction with [cache_site] appended. *)
  mutable cache_site : Ir.site;
  mutable cache_ctx : Ir.site array;
}

let no_reduction = [| min_int |]

type t = {
  mutable nodes : node array;
  mutable nnodes : int;
  names : (string, int) Hashtbl.t;
  mutable cur : int;
}

let mk_node ~parent ~fid ~site ~node_depth =
  {
    parent;
    fid;
    site;
    node_depth;
    children = [||];
    nchildren = 0;
    r_sites = no_reduction;
    r_fids = no_reduction;
    cache_site = min_int;
    cache_ctx = [||];
  }

let create () =
  let root = mk_node ~parent:(-1) ~fid:(-1) ~site:0 ~node_depth:0 in
  root.r_sites <- [||];
  root.r_fids <- [||];
  { nodes = Array.make 64 root; nnodes = 1; names = Hashtbl.create 64; cur = 0 }

let intern_name t func =
  match Hashtbl.find_opt t.names func with
  | Some fid -> fid
  | None ->
      let fid = Hashtbl.length t.names in
      Hashtbl.replace t.names func fid;
      fid

let add_node t node =
  if t.nnodes = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.nnodes) node in
    Array.blit t.nodes 0 bigger 0 t.nnodes;
    t.nodes <- bigger
  end;
  let id = t.nnodes in
  t.nodes.(id) <- node;
  t.nnodes <- id + 1;
  id

let push_id t ~fid ~site =
  let cur = t.nodes.(t.cur) in
  let child = ref (-1) in
  let i = ref 0 in
  while !child < 0 && !i < cur.nchildren do
    let c = cur.children.(!i) in
    let n = t.nodes.(c) in
    if n.fid = fid && n.site = site then child := c;
    incr i
  done;
  if !child < 0 then begin
    let node =
      mk_node ~parent:t.cur ~fid ~site ~node_depth:(cur.node_depth + 1)
    in
    let id = add_node t node in
    if cur.nchildren = Array.length cur.children then begin
      let bigger = Array.make (max 4 (2 * cur.nchildren)) 0 in
      Array.blit cur.children 0 bigger 0 cur.nchildren;
      cur.children <- bigger
    end;
    cur.children.(cur.nchildren) <- id;
    cur.nchildren <- cur.nchildren + 1;
    child := id
  end;
  t.cur <- !child

let push t ~func ~site = push_id t ~fid:(intern_name t func) ~site

let pop t =
  let cur = t.nodes.(t.cur) in
  if cur.parent < 0 then failwith "Shadow_stack.pop: underflow";
  t.cur <- cur.parent

let depth t = t.nodes.(t.cur).node_depth

(* Derive a node's canonical reduction from its parent's: drop the
   parent's occurrence of this (fid, site) pair if present — only the
   most recent occurrence is kept — and append this frame's site. *)
let rec reduction t id =
  let n = t.nodes.(id) in
  if n.r_sites != no_reduction then n.r_sites
  else begin
    let psites = reduction t n.parent in
    let pfids = t.nodes.(n.parent).r_fids in
    let plen = Array.length psites in
    let dup = ref (-1) in
    for k = 0 to plen - 1 do
      if !dup < 0 && pfids.(k) = n.fid && psites.(k) = n.site then dup := k
    done;
    let len = if !dup < 0 then plen + 1 else plen in
    let sites = Array.make len n.site in
    let fids = Array.make len n.fid in
    let w = ref 0 in
    for k = 0 to plen - 1 do
      if k <> !dup then begin
        sites.(!w) <- psites.(k);
        fids.(!w) <- pfids.(k);
        incr w
      end
    done;
    sites.(len - 1) <- n.site;
    fids.(len - 1) <- n.fid;
    n.r_sites <- sites;
    n.r_fids <- fids;
    sites
  end

let reduced t = Array.copy (reduction t t.cur)

let context t ~site =
  let n = t.nodes.(t.cur) in
  if n.cache_site = site then n.cache_ctx
  else begin
    let red = reduction t t.cur in
    let len = Array.length red in
    let out = Array.make (len + 1) site in
    Array.blit red 0 out 0 len;
    n.cache_site <- site;
    n.cache_ctx <- out;
    out
  end

(* Pure reduction on an explicit stack — the reference implementation
   the CCT path is tested against. *)
let reduce_sites arr =
  let seen = Hashtbl.create 16 in
  let n = Array.length arr in
  let keep = Array.make n false in
  let kept = ref 0 in
  (* Innermost (last) to outermost, keeping first sight of each pair. *)
  for k = n - 1 downto 0 do
    if not (Hashtbl.mem seen arr.(k)) then begin
      Hashtbl.replace seen arr.(k) ();
      keep.(k) <- true;
      incr kept
    end
  done;
  let out = Array.make !kept 0 in
  let w = ref 0 in
  for k = 0 to n - 1 do
    if keep.(k) then begin
      out.(!w) <- snd arr.(k);
      incr w
    end
  done;
  out
