(* Sparse paged memory: a page directory over flat [int array] pages.

   The interpreter's heap image was a single (addr -> value) hashtable;
   every load and store paid a hash + probe, and realloc's memcpy paid
   one lookup per cell. Here an address splits into a page index
   (arithmetic shift, so the full int range including negatives works)
   and an offset (mask); absent cells read 0 — exactly the old
   Not_found -> 0 behaviour — and pages are created zero-filled on
   first store.

   The directory is fronted by a direct-mapped cache. A one-entry cache
   only covers sequential runs: workloads that alternate between a hot
   object and a large table (leela's pattern lookups, omnetpp's routing
   reads) thrash it and pay a [Hashtbl] probe — tens of ns — on nearly
   every access. The direct-mapped array covers a working set of
   hundreds of pages at an indexed compare per access. *)

type t = {
  page_bits : int;
  mask : int; (* page_size - 1 *)
  pages : (int, int array) Hashtbl.t; (* authoritative directory *)
  cache_idx : int array; (* direct-mapped: slot -> page index, or min_int *)
  cache_pg : int array array; (* slot -> the page itself *)
  cmask : int; (* cache slots - 1 *)
}

(* 512 slots covers every workload's resident page set with room to
   spare; consecutive page indices never conflict. *)
let cache_slots = 512

let no_page = [||]

let create ?(page_bits = 12) () =
  if page_bits < 1 || page_bits > 20 then
    invalid_arg "Paged_mem.create: page_bits out of range";
  {
    page_bits;
    mask = (1 lsl page_bits) - 1;
    pages = Hashtbl.create 64;
    (* min_int is unreachable: [addr asr page_bits] never yields it. *)
    cache_idx = Array.make cache_slots min_int;
    cache_pg = Array.make cache_slots no_page;
    cmask = cache_slots - 1;
  }

let page_size t = t.mask + 1
let page_count t = Hashtbl.length t.pages

(* Page holding index [idx], creating it zero-filled if absent; fills
   the cache slot either way. *)
let page_for t idx =
  let slot = idx land t.cmask in
  let p =
    match Hashtbl.find t.pages idx with
    | p -> p
    | exception Not_found ->
        let p = Array.make (t.mask + 1) 0 in
        Hashtbl.replace t.pages idx p;
        p
  in
  t.cache_idx.(slot) <- idx;
  t.cache_pg.(slot) <- p;
  p

(* Absent pages are cached too, as [no_page] entries — calloc'd regions
   are read long before (or without ever) being written, and paying a
   [Not_found] raise per such load dwarfs the load itself. A cached
   absence stays consistent because a page's cache slot is a pure
   function of its index: [page_for] (the only creator) always
   overwrites exactly that slot. *)
let load t addr =
  let idx = addr asr t.page_bits in
  let slot = idx land t.cmask in
  if Array.unsafe_get t.cache_idx slot = idx then begin
    let p = Array.unsafe_get t.cache_pg slot in
    (* [addr land mask] < page length by construction, so the unchecked
       read is safe. *)
    if p == no_page then 0 else Array.unsafe_get p (addr land t.mask)
  end
  else begin
    t.cache_idx.(slot) <- idx;
    match Hashtbl.find t.pages idx with
    | p ->
        t.cache_pg.(slot) <- p;
        Array.unsafe_get p (addr land t.mask)
    | exception Not_found ->
        t.cache_pg.(slot) <- no_page;
        0
  end

let store t addr v =
  let idx = addr asr t.page_bits in
  let slot = idx land t.cmask in
  let p =
    if Array.unsafe_get t.cache_idx slot = idx then begin
      let p = Array.unsafe_get t.cache_pg slot in
      if p == no_page then page_for t idx else p
    end
    else page_for t idx
  in
  Array.unsafe_set p (addr land t.mask) v

(* Write [len] cells from [src_page.(src_off ..)] at address [dst],
   splitting across destination pages as needed. *)
let rec blit_out t src_page src_off dst len =
  if len > 0 then begin
    let idx = dst asr t.page_bits in
    let off = dst land t.mask in
    let p = page_for t idx in
    let n = min len (t.mask + 1 - off) in
    Array.blit src_page src_off p off n;
    blit_out t src_page (src_off + n) (dst + n) (len - n)
  end

let copy t ~src ~dst ~len =
  if len < 0 then invalid_arg "Paged_mem.copy: negative length";
  let i = ref 0 in
  while !i < len do
    let sa = src + !i in
    let idx = sa asr t.page_bits in
    let off = sa land t.mask in
    let chunk = min (t.mask + 1 - off) (len - !i) in
    (match Hashtbl.find_opt t.pages idx with
    | Some p -> blit_out t p off (dst + !i) chunk
    | None ->
        (* A fully-unwritten source page: the old per-cell copy skipped
           absent cells, leaving the destination untouched; do the same
           rather than smearing zeroes over it. *)
        ());
    i := !i + chunk
  done
