(* Sparse paged memory: a page directory over flat [int array] pages.

   The interpreter's heap image was a single (addr -> value) hashtable;
   every load and store paid a hash + probe, and realloc's memcpy paid
   one lookup per cell. Here an address splits into a page index
   (arithmetic shift, so the full int range including negatives works)
   and an offset (mask); a one-entry page cache makes the sequential
   runs that dominate real access streams a single compare + array
   index. Absent cells read 0 — exactly the old Not_found -> 0
   behaviour — and pages are created zero-filled on first store. *)

type t = {
  page_bits : int;
  mask : int; (* page_size - 1 *)
  pages : (int, int array) Hashtbl.t;
  mutable last_idx : int; (* one-entry directory cache *)
  mutable last_page : int array;
}

let create ?(page_bits = 12) () =
  if page_bits < 1 || page_bits > 20 then
    invalid_arg "Paged_mem.create: page_bits out of range";
  {
    page_bits;
    mask = (1 lsl page_bits) - 1;
    pages = Hashtbl.create 64;
    last_idx = min_int; (* no address maps here: min_int asr page_bits <> min_int *)
    last_page = [||];
  }

let page_size t = t.mask + 1
let page_count t = Hashtbl.length t.pages

(* Page holding [addr], creating it zero-filled if absent. *)
let page_for t idx =
  match Hashtbl.find t.pages idx with
  | p ->
      t.last_idx <- idx;
      t.last_page <- p;
      p
  | exception Not_found ->
      let p = Array.make (t.mask + 1) 0 in
      Hashtbl.replace t.pages idx p;
      t.last_idx <- idx;
      t.last_page <- p;
      p

let load t addr =
  let idx = addr asr t.page_bits in
  if idx = t.last_idx then t.last_page.(addr land t.mask)
  else
    match Hashtbl.find t.pages idx with
    | p ->
        t.last_idx <- idx;
        t.last_page <- p;
        p.(addr land t.mask)
    | exception Not_found -> 0

let store t addr v =
  let idx = addr asr t.page_bits in
  let p = if idx = t.last_idx then t.last_page else page_for t idx in
  p.(addr land t.mask) <- v

(* Write [len] cells from [src_page.(src_off ..)] at address [dst],
   splitting across destination pages as needed. *)
let rec blit_out t src_page src_off dst len =
  if len > 0 then begin
    let idx = dst asr t.page_bits in
    let off = dst land t.mask in
    let p = if idx = t.last_idx then t.last_page else page_for t idx in
    let n = min len (t.mask + 1 - off) in
    Array.blit src_page src_off p off n;
    blit_out t src_page (src_off + n) (dst + n) (len - n)
  end

let copy t ~src ~dst ~len =
  if len < 0 then invalid_arg "Paged_mem.copy: negative length";
  let i = ref 0 in
  while !i < len do
    let sa = src + !i in
    let idx = sa asr t.page_bits in
    let off = sa land t.mask in
    let chunk = min (t.mask + 1 - off) (len - !i) in
    (match Hashtbl.find_opt t.pages idx with
    | Some p -> blit_out t p off (dst + !i) chunk
    | None ->
        (* A fully-unwritten source page: the old per-cell copy skipped
           absent cells, leaving the destination untouched; do the same
           rather than smearing zeroes over it. *)
        ());
    i := !i + chunk
  done
