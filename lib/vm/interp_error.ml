(* Typed runtime errors for the workload interpreter, mirroring the
   [Alloc_error] idiom: a structured payload instead of a formatted
   [Failure] string, plus a registered printer so uncaught errors and
   [Printexc.to_string] stay readable. *)

type cause =
  | Division_by_zero
  | Modulo_by_zero
  | Rand_bound of int  (* the non-positive bound that was drawn with *)
  | Uncompiled_callee of string
  | Arity_mismatch of { callee : string; expected : int; got : int }
  | Calloc_overflow of { count : int; size : int }

exception Error of { fname : string; site : Ir.site option; cause : cause }

let cause_message = function
  | Division_by_zero -> "division by zero"
  | Modulo_by_zero -> "modulo by zero"
  | Rand_bound b -> Printf.sprintf "Rand with non-positive bound %d" b
  | Uncompiled_callee callee ->
      Printf.sprintf "call to uncompiled function %S" callee
  | Arity_mismatch { callee; expected; got } ->
      Printf.sprintf "%s expects %d argument(s), got %d" callee expected got
  | Calloc_overflow { count; size } ->
      Printf.sprintf "calloc %d * %d elements overflows" count size

let () =
  Printexc.register_printer (function
    | Error { fname; site; cause } ->
        Some
          (Printf.sprintf "Interp_error(%s%s: %s)" fname
             (match site with
             | None -> ""
             | Some s -> Printf.sprintf " at site 0x%x" s)
             (cause_message cause))
    | _ -> None)

let error ~fname ?site cause = raise (Error { fname; site; cause })
