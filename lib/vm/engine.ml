type kind = Interp | Traced | Selfcheck

let to_string = function
  | Interp -> "interp"
  | Traced -> "traced"
  | Selfcheck -> "selfcheck"

let of_string = function
  | "interp" -> Some Interp
  | "traced" -> Some Traced
  | "selfcheck" -> Some Selfcheck
  | _ -> None

let all = [ Interp; Traced; Selfcheck ]

type t = I of Interp.t | T of Trace_compile.t

let create ?(kind = Interp) ?threshold ?seed ?hooks ?patches ?env ?memcheck
    ?obs ~program ~alloc () =
  match kind with
  | Interp ->
      I (Interp.create ?seed ?hooks ?patches ?env ?memcheck ?obs ~program
           ~alloc ())
  | Traced ->
      T
        (Trace_compile.create ~mode:Trace_compile.Fast ?threshold ?seed ?hooks
           ?patches ?env ?memcheck ?obs ~program ~alloc ())
  | Selfcheck ->
      T
        (Trace_compile.create ~mode:Trace_compile.Selfcheck ?threshold ?seed
           ?hooks ?patches ?env ?memcheck ?obs ~program ~alloc ())

let run = function I t -> Interp.run t | T t -> Trace_compile.run t

let instructions = function
  | I t -> Interp.instructions t
  | T t -> Trace_compile.instructions t

let env = function I t -> Interp.env t | T t -> Trace_compile.env t

let load_store_counts = function
  | I t -> Interp.load_store_counts t
  | T t -> Trace_compile.load_store_counts t
