(** Typed runtime errors raised by the execution engines.

    Replaces the interpreter's historical [Failure "Interp: ..."] strings
    with a structured exception carrying the function being executed and,
    where one exists, the IR site — mirroring {!Alloc_iface.Alloc_error}.
    A printer is registered so campaign logs and uncaught-exception
    reports render as [Interp_error(fname at site 0x..: message)]. *)

type cause =
  | Division_by_zero
  | Modulo_by_zero
  | Rand_bound of int
      (** [Rand] evaluated with this non-positive bound. *)
  | Uncompiled_callee of string
      (** Call to a function name absent from the compiled program. *)
  | Arity_mismatch of { callee : string; expected : int; got : int }
  | Calloc_overflow of { count : int; size : int }
      (** [Calloc count size] whose total byte count is negative or
          overflows the native int. *)

exception Error of { fname : string; site : Ir.site option; cause : cause }

val cause_message : cause -> string
(** Human-readable message for the cause alone (no location). *)

val error : fname:string -> ?site:Ir.site -> cause -> 'a
(** Raise {!Error} at the given location. *)
