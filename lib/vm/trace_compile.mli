(** Trace-compiled execution engine over {!Interp}'s runtime state.

    A second compiler for finalized {!Ir.program}s: loop back-edges and
    function entries carry hotness counters and, past [threshold], the
    hot region is recompiled as a fused trace — straight-line runs
    collapsed into a handful of closures, expression trees flattened,
    timing-model counter updates batched into one precomputed increment
    per chunk (placed so a mid-chunk raise observes exactly the
    interpreter's counters), strongly-biased branches speculated with
    guarded deoptimisation back to the interpreter's own closures.
    Everything outside traces — calls, allocation, unfusable control
    flow — runs the interpreter's compiled closures unchanged, so both
    engines share one semantics definition.

    [Selfcheck] mode is the lambdachine-style oracle: each fused region
    first runs as a rolled-back shadow (stores undo-logged, hooks
    suppressed, access streams digested), then the interpreter replays
    it authoritatively; the (instructions, loads, stores, digest) deltas
    are compared at the region boundary and the first mismatch raises
    {!Divergence}. *)

type mode =
  | Fast  (** Hot regions run fused; the default engine behaviour. *)
  | Selfcheck
      (** Every fused region is cross-checked against the interpreter. *)

exception
  Divergence of { region : string; sites : string list; detail : string }
(** Raised in [Selfcheck] mode at the first region whose fused execution
    disagrees with the interpreter's. [region] is [fname/trace#n];
    [sites] are the enclosing function's allocation/call site labels. *)

(** Engine counters, for tests and diagnostics. *)
type stats = {
  mutable regions : int;  (** fused regions compiled *)
  mutable promotions : int;  (** hotness-counter promotions *)
  mutable deopts : int;  (** speculation guard failures *)
  mutable checkpoints : int;  (** selfcheck region comparisons *)
}

type t

val default_threshold : int
(** Hotness threshold used when [create] is not given one (16). *)

val create :
  ?mode:mode ->
  ?threshold:int ->
  ?cost_skew:int ->
  ?seed:int ->
  ?hooks:Interp.hooks ->
  ?patches:(Ir.site * int) list ->
  ?env:Exec_env.t ->
  ?memcheck:Vmem.t ->
  ?obs:Obs.t ->
  program:Ir.program ->
  alloc:Alloc_iface.t ->
  unit ->
  t
(** Same contract as {!Interp.create}, plus the engine knobs.
    [threshold] is the promotion threshold in back-edges/calls
    (clamped to at least 1). [cost_skew] is a test hook: extra
    instructions charged per fused chunk, used to inject a deliberate
    divergence that [Selfcheck] must catch at the first checkpoint;
    leave it 0 for correct execution. *)

val run : t -> int
(** Execute [main]; returns its return value. Once per [t]. Raises the
    same exceptions as {!Interp.run}, plus {!Divergence} in [Selfcheck]
    mode. *)

val instructions : t -> int
val env : t -> Exec_env.t
val load_store_counts : t -> int * int
(** Identical meaning to the {!Interp} accessors — the engines share the
    timing model. *)

val stats : t -> stats
