(* The trace-compiled execution engine: a second compiler over
   [Interp]'s runtime state.

   [Interp] compiles one closure per statement and charges the timing
   model one counter update at a time. This engine watches loop
   back-edges and function entries with hotness counters and, past a
   threshold, recompiles the hot region as a fused trace:

   - maximal runs of simple statements collapse into a handful of
     closures with operand slots resolved once and expression trees
     flattened (no closure per [Binop] node);
   - [rt.instructions]/[loads]/[stores] updates are batched into one
     precomputed increment per chunk, placed so that a mid-chunk raise
     observes exactly the counters the interpreter would have charged
     (a chunk's charges are flushed up front, and only its final
     statement may raise);
   - strongly-biased fusable [If]s are speculated: a guard checks the
     expected direction and, on mismatch, deoptimises to the
     interpreter's own compiled closures for the unexpected branch and
     the remainder of the trace;
   - pure counted loops defer even the batched updates to loop exit,
     retiring [n * per_iteration] in one step;
   - with no hooks and no memcheck installed (the bare [interp] bench
     config) loads and stores compile to bare [Paged_mem] operations.

   Everything the engine does not fuse — calls, allocation statements,
   unfusable branches — delegates to [Interp.compile_stmt], so the two
   engines share one semantics definition outside traces.

   Selfcheck mode (lambdachine-style): every fused region first runs in
   a shadow: stores are undo-logged, hooks suppressed, access streams
   digested; then the machine state is rolled back (heap undo, slot and
   global snapshots, RNG rewind, counter restore) and the interpreter's
   own closures run the same region authoritatively. The two
   executions' (instructions, loads, stores, load/store digests) deltas
   are diffed at the region boundary; the first mismatch raises
   [Divergence] naming the region and its function's site labels. *)

type mode = Fast | Selfcheck

exception
  Divergence of { region : string; sites : string list; detail : string }

let () =
  Printexc.register_printer (function
    | Divergence { region; sites; detail } ->
        Some
          (Printf.sprintf "Trace_compile.Divergence(%s: %s%s)" region detail
             (match sites with
             | [] -> ""
             | l -> "; sites " ^ String.concat ", " l))
    | _ -> None)

type stats = {
  mutable regions : int;  (* fused regions compiled *)
  mutable promotions : int;  (* hotness-counter promotions *)
  mutable deopts : int;  (* guard failures *)
  mutable checkpoints : int;  (* selfcheck region comparisons *)
}

(* Selfcheck scratch state: FNV digests over the load/store streams and
   the store undo log for heap rollback. *)
type sc_state = {
  mutable ld : int;
  mutable sd : int;
  mutable ua : int array;
  mutable uv : int array;
  mutable un : int;
}

let fnv0 = 0x811c9dc5
let fnv h v = (h lxor v) * 0x01000193

let undo_push sc a v =
  (if sc.un = Array.length sc.ua then begin
     let cap = max 64 (2 * sc.un) in
     let ua = Array.make cap 0 and uv = Array.make cap 0 in
     Array.blit sc.ua 0 ua 0 sc.un;
     Array.blit sc.uv 0 uv 0 sc.un;
     sc.ua <- ua;
     sc.uv <- uv
   end);
  sc.ua.(sc.un) <- a;
  sc.uv.(sc.un) <- v;
  sc.un <- sc.un + 1

type st = {
  rt : Interp.rt;
  program : Ir.program;
  mode : mode;
  threshold : int;
  skew : int;  (* test hook: extra instructions charged per fused chunk *)
  obs_access : bool;  (* hooks or memcheck installed *)
  stats : stats;
  sc : sc_state;
  patch_tbl : (Ir.site, int) Hashtbl.t;
  c_globals : (string, int) Hashtbl.t;
  cfuncs : (string, int array -> int) Hashtbl.t;
  mutable next_region : int;
}

(* Per-function compile state: the interpreter compile context (shared
   slot numbering for baseline and fused code) plus the function's site
   labels for divergence reports. *)
type fs = { st : st; cc : Interp.compile_ctx; fsites : string list }

(* Whether fused code is running for real or as a selfcheck shadow. *)
type role = Rfast | Rshadow

(* Branch-profile tree, isomorphic to a statement list. The baseline
   compiler counts [If] directions here during warmup; the fused
   compiler reads the counters to pick speculation directions. *)
type bias =
  | Bleaf
  | Bif of { taken : int ref; nottaken : int ref; bt : bias list; bf : bias list }
  | Bwhile of bias list

let rec zbias (stm : Ir.stmt) =
  match stm with
  | Ir.If (_, a, b) ->
      Bif
        {
          taken = ref 0;
          nottaken = ref 0;
          bt = List.map zbias a;
          bf = List.map zbias b;
        }
  | Ir.While (_, body) -> Bwhile (List.map zbias body)
  | _ -> Bleaf

(* ------------------------------------------------------------------ *)
(* Fusability and purity                                              *)
(* ------------------------------------------------------------------ *)

(* Pure: no [Rand] (RNG effect, can raise) and no [Div]/[Rem] (can
   raise). Pure expressions can be evaluated early, late, or not at
   all without observable difference. *)
let rec pure_expr (e : Ir.expr) =
  match e with
  | Ir.Int _ | Ir.Var _ | Ir.Gvar _ -> true
  | Ir.Rand _ -> false
  | Ir.Not e -> pure_expr e
  | Ir.Binop ((Ir.Div | Ir.Rem), _, _) -> false
  | Ir.Binop (_, a, b) -> pure_expr a && pure_expr b

(* Segment members: statements whose only effects are slot/global/heap
   writes, counter charges, and expression evaluation. Calls, allocator
   statements and loops break segments. An [If] fuses only when its
   condition is pure (so guards can re-evaluate it) and both branches
   fuse. *)
let rec stmt_fusable (stm : Ir.stmt) =
  match stm with
  | Ir.Let _ | Ir.Gassign _ | Ir.Compute _ | Ir.Load _ | Ir.Store _ -> true
  | Ir.If (c, a, b) ->
      pure_expr c && List.for_all stmt_fusable a && List.for_all stmt_fusable b
  | Ir.Malloc _ | Ir.Calloc _ | Ir.Realloc _ | Ir.Free _ | Ir.Call _
  | Ir.While _ | Ir.Return _ ->
      false

(* Timing-model charges of a segment member (If handled separately). *)
let charges (stm : Ir.stmt) =
  match stm with
  | Ir.Let _ | Ir.Gassign _ -> (1, 0, 0)
  | Ir.Compute n -> (n, 0, 0)
  | Ir.Load _ -> (1, 1, 0)
  | Ir.Store _ -> (1, 0, 1)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Flattened expressions                                              *)
(* ------------------------------------------------------------------ *)

(* Unchecked slot/global access for the fused closures. Slot and global
   indices are assigned by the compiler strictly within the array sizes
   it later allocates ([max nslots 1] locals, the globals table), so the
   bound can't be exceeded; the fused hot path is exactly where the
   redundant check is measurable. *)
let ( .%() ) = Array.unsafe_get
let ( .%()<- ) = Array.unsafe_set

type atom = Aint of int | Aslot of int | Aglob of int

let atom_of cc (e : Ir.expr) =
  match e with
  | Ir.Int n -> Some (Aint n)
  | Ir.Var x -> Some (Aslot (Interp.local_slot_read cc x))
  | Ir.Gvar x -> Some (Aglob (Interp.global_slot cc x))
  | _ -> None

let aval gl = function
  | Aint n -> fun _ -> n
  | Aslot i -> fun (s : int array) -> s.%(i)
  | Aglob g -> fun _ -> gl.%(g)

(* Generic operator application over two compiled operands — the exact
   closure shapes [Interp.compile_expr] emits, so evaluation order and
   raise behaviour match the interpreter even for impure operands. *)
let apply_op fname (op : Ir.binop) (a : int array -> int) (b : int array -> int)
    =
  match op with
  | Ir.Add -> fun s -> a s + b s
  | Ir.Sub -> fun s -> a s - b s
  | Ir.Mul -> fun s -> a s * b s
  | Ir.Div ->
      fun s ->
        let d = b s in
        if d = 0 then Interp_error.error ~fname Division_by_zero else a s / d
  | Ir.Rem ->
      fun s ->
        let d = b s in
        if d = 0 then Interp_error.error ~fname Modulo_by_zero else a s mod d
  | Ir.Lt -> fun s -> if a s < b s then 1 else 0
  | Ir.Le -> fun s -> if a s <= b s then 1 else 0
  | Ir.Gt -> fun s -> if a s > b s then 1 else 0
  | Ir.Ge -> fun s -> if a s >= b s then 1 else 0
  | Ir.Eq -> fun s -> if a s = b s then 1 else 0
  | Ir.Ne -> fun s -> if a s <> b s then 1 else 0
  | Ir.And -> fun s -> if a s <> 0 && b s <> 0 then 1 else 0
  | Ir.Or -> fun s -> if a s <> 0 || b s <> 0 then 1 else 0

(* slot-op-slot, slot-op-int and int-op-slot shapes collapse to single
   closures; everything else goes through [apply_op] on atom readers. *)
let bin_ss fname (op : Ir.binop) i j =
  match op with
  | Ir.Add -> fun (s : int array) -> s.%(i) + s.%(j)
  | Ir.Sub -> fun s -> s.%(i) - s.%(j)
  | Ir.Mul -> fun s -> s.%(i) * s.%(j)
  | Ir.Div ->
      fun s ->
        let d = s.%(j) in
        if d = 0 then Interp_error.error ~fname Division_by_zero else s.%(i) / d
  | Ir.Rem ->
      fun s ->
        let d = s.%(j) in
        if d = 0 then Interp_error.error ~fname Modulo_by_zero else s.%(i) mod d
  | Ir.Lt -> fun s -> if s.%(i) < s.%(j) then 1 else 0
  | Ir.Le -> fun s -> if s.%(i) <= s.%(j) then 1 else 0
  | Ir.Gt -> fun s -> if s.%(i) > s.%(j) then 1 else 0
  | Ir.Ge -> fun s -> if s.%(i) >= s.%(j) then 1 else 0
  | Ir.Eq -> fun s -> if s.%(i) = s.%(j) then 1 else 0
  | Ir.Ne -> fun s -> if s.%(i) <> s.%(j) then 1 else 0
  | Ir.And -> fun s -> if s.%(i) <> 0 && s.%(j) <> 0 then 1 else 0
  | Ir.Or -> fun s -> if s.%(i) <> 0 || s.%(j) <> 0 then 1 else 0

let bin_si fname (op : Ir.binop) i n =
  match op with
  | Ir.Add -> fun (s : int array) -> s.%(i) + n
  | Ir.Sub -> fun s -> s.%(i) - n
  | Ir.Mul -> fun s -> s.%(i) * n
  | Ir.Div ->
      if n = 0 then fun _ -> Interp_error.error ~fname Division_by_zero
      else fun s -> s.%(i) / n
  | Ir.Rem ->
      if n = 0 then fun _ -> Interp_error.error ~fname Modulo_by_zero
      else fun s -> s.%(i) mod n
  | Ir.Lt -> fun s -> if s.%(i) < n then 1 else 0
  | Ir.Le -> fun s -> if s.%(i) <= n then 1 else 0
  | Ir.Gt -> fun s -> if s.%(i) > n then 1 else 0
  | Ir.Ge -> fun s -> if s.%(i) >= n then 1 else 0
  | Ir.Eq -> fun s -> if s.%(i) = n then 1 else 0
  | Ir.Ne -> fun s -> if s.%(i) <> n then 1 else 0
  | Ir.And -> fun s -> if s.%(i) <> 0 && n <> 0 then 1 else 0
  | Ir.Or -> fun s -> if s.%(i) <> 0 || n <> 0 then 1 else 0

let bin_is fname (op : Ir.binop) n j =
  match op with
  | Ir.Add -> fun (s : int array) -> n + s.%(j)
  | Ir.Sub -> fun s -> n - s.%(j)
  | Ir.Mul -> fun s -> n * s.%(j)
  | Ir.Div ->
      fun s ->
        let d = s.%(j) in
        if d = 0 then Interp_error.error ~fname Division_by_zero else n / d
  | Ir.Rem ->
      fun s ->
        let d = s.%(j) in
        if d = 0 then Interp_error.error ~fname Modulo_by_zero else n mod d
  | Ir.Lt -> fun s -> if n < s.%(j) then 1 else 0
  | Ir.Le -> fun s -> if n <= s.%(j) then 1 else 0
  | Ir.Gt -> fun s -> if n > s.%(j) then 1 else 0
  | Ir.Ge -> fun s -> if n >= s.%(j) then 1 else 0
  | Ir.Eq -> fun s -> if n = s.%(j) then 1 else 0
  | Ir.Ne -> fun s -> if n <> s.%(j) then 1 else 0
  | Ir.And -> fun s -> if n <> 0 && s.%(j) <> 0 then 1 else 0
  | Ir.Or -> fun s -> if n <> 0 || s.%(j) <> 0 then 1 else 0

let rec flat cc (e : Ir.expr) : int array -> int =
  let rt = cc.Interp.c_rt in
  let fname = cc.Interp.fname in
  match e with
  | Ir.Int n -> fun _ -> n
  | Ir.Var x ->
      let s = Interp.local_slot_read cc x in
      fun slots -> slots.%(s)
  | Ir.Gvar x ->
      let g = Interp.global_slot cc x in
      let gl = rt.Interp.globals in
      fun _ -> gl.%(g)
  | Ir.Rand b ->
      let fb = flat cc b in
      let rng = rt.Interp.rng in
      fun slots ->
        let bound = fb slots in
        if bound <= 0 then Interp_error.error ~fname (Rand_bound bound)
        else Rng.int rng bound
  | Ir.Not e ->
      let f = flat cc e in
      fun slots -> if f slots = 0 then 1 else 0
  | Ir.Binop (op, a, b) -> (
      match (atom_of cc a, atom_of cc b) with
      | Some (Aslot i), Some (Aslot j) -> bin_ss fname op i j
      | Some (Aslot i), Some (Aint n) -> bin_si fname op i n
      | Some (Aint n), Some (Aslot j) -> bin_is fname op n j
      | Some pa, Some pb ->
          let gl = rt.Interp.globals in
          apply_op fname op (aval gl pa) (aval gl pb)
      | _ -> apply_op fname op (flat cc a) (flat cc b))

let mirror_cmp (op : Ir.binop) =
  match op with
  | Ir.Lt -> Ir.Gt
  | Ir.Le -> Ir.Ge
  | Ir.Gt -> Ir.Lt
  | Ir.Ge -> Ir.Le
  | op -> op

(* Boolean compilation for pure conditions: comparisons over atoms skip
   materialising 0/1. Only ever called on pure expressions. *)
let rec flat_cond cc (e : Ir.expr) : int array -> bool =
  match e with
  | Ir.Binop (((Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge | Ir.Eq | Ir.Ne) as op), a, b)
    -> (
      match (atom_of cc a, atom_of cc b) with
      | Some (Aslot i), Some (Aint n) -> (
          match op with
          | Ir.Lt -> fun (s : int array) -> s.%(i) < n
          | Ir.Le -> fun s -> s.%(i) <= n
          | Ir.Gt -> fun s -> s.%(i) > n
          | Ir.Ge -> fun s -> s.%(i) >= n
          | Ir.Eq -> fun s -> s.%(i) = n
          | _ -> fun s -> s.%(i) <> n)
      | Some (Aslot i), Some (Aslot j) -> (
          match op with
          | Ir.Lt -> fun (s : int array) -> s.%(i) < s.%(j)
          | Ir.Le -> fun s -> s.%(i) <= s.%(j)
          | Ir.Gt -> fun s -> s.%(i) > s.%(j)
          | Ir.Ge -> fun s -> s.%(i) >= s.%(j)
          | Ir.Eq -> fun s -> s.%(i) = s.%(j)
          | _ -> fun s -> s.%(i) <> s.%(j))
      | Some (Aint _), Some (Aslot _) ->
          flat_cond cc (Ir.Binop (mirror_cmp op, b, a))
      | _ ->
          let f = flat cc e in
          fun s -> f s <> 0)
  | Ir.Not e ->
      let f = flat cc e in
      fun s -> f s = 0
  | Ir.Var x ->
      let i = Interp.local_slot_read cc x in
      fun s -> s.%(i) <> 0
  | _ ->
      let f = flat cc e in
      fun s -> f s <> 0

(* Pointer-plus-offset addressing, the hottest expression shape. *)
let flat_addr cc p off : int array -> int =
  match (atom_of cc p, atom_of cc off) with
  | Some (Aslot i), Some (Aint 0) -> fun (s : int array) -> s.%(i)
  | Some (Aslot i), Some (Aint n) -> fun s -> s.%(i) + n
  | Some (Aslot i), Some (Aslot j) -> fun s -> s.%(i) + s.%(j)
  | _ ->
      let fp = flat cc p and fo = flat cc off in
      fun s -> fp s + fo s

(* ------------------------------------------------------------------ *)
(* Segment member actions                                             *)
(* ------------------------------------------------------------------ *)

let set_act cc x e =
  let sx = Interp.local_slot cc x in
  match e with
  | Ir.Int n -> fun (s : int array) -> s.%(sx) <- n
  | Ir.Var y ->
      let sy = Interp.local_slot_read cc y in
      fun s -> s.%(sx) <- s.%(sy)
  | Ir.Gvar y ->
      let g = Interp.global_slot cc y in
      let gl = cc.Interp.c_rt.Interp.globals in
      fun s -> s.%(sx) <- gl.%(g)
  | Ir.Binop (Ir.Add, a, b) -> (
      match (atom_of cc a, atom_of cc b) with
      | Some (Aslot i), Some (Aint n) -> fun (s : int array) -> s.%(sx) <- s.%(i) + n
      | Some (Aslot i), Some (Aslot j) -> fun s -> s.%(sx) <- s.%(i) + s.%(j)
      | _ ->
          let f = flat cc e in
          fun s -> s.%(sx) <- f s)
  | Ir.Binop (Ir.Sub, a, b) -> (
      match (atom_of cc a, atom_of cc b) with
      | Some (Aslot i), Some (Aint n) -> fun (s : int array) -> s.%(sx) <- s.%(i) - n
      | Some (Aslot i), Some (Aslot j) -> fun s -> s.%(sx) <- s.%(i) - s.%(j)
      | _ ->
          let f = flat cc e in
          fun s -> s.%(sx) <- f s)
  | _ ->
      let f = flat cc e in
      fun s -> s.%(sx) <- f s

let gset_act cc x e =
  let g = Interp.global_slot cc x in
  let gl = cc.Interp.c_rt.Interp.globals in
  let f = flat cc e in
  fun s -> gl.%(g) <- f s

(* Fast-mode load/store. Hooked variants replicate the interpreter's
   exact effect order (address, memcheck touch, hook, heap op); the
   bare variant drops the no-op hook call and touch test entirely. *)
let fast_load fs (x, p, off, bytes) =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let s = Interp.local_slot cc x in
  let mem = rt.Interp.mem in
  if fs.st.obs_access then
    let addr = flat_addr cc p off in
    let hooks = rt.Interp.hooks in
    let mc = rt.Interp.memcheck in
    fun slots ->
      let a = addr slots in
      (match mc with Some v -> Vmem.touch v a bytes | None -> ());
      hooks.Interp.on_access a bytes false;
      slots.%(s) <- Paged_mem.load mem a
  else
    (* Bare path: fold the dominant addressing shapes into the load
       closure itself — one indirect call per load, not two. *)
    match (atom_of cc p, atom_of cc off) with
    | Some (Aslot i), Some (Aint 0) ->
        fun slots -> slots.%(s) <- Paged_mem.load mem slots.%(i)
    | Some (Aslot i), Some (Aint n) ->
        fun slots -> slots.%(s) <- Paged_mem.load mem (slots.%(i) + n)
    | Some (Aslot i), Some (Aslot j) ->
        fun slots -> slots.%(s) <- Paged_mem.load mem (slots.%(i) + slots.%(j))
    | _ ->
        let addr = flat_addr cc p off in
        fun slots -> slots.%(s) <- Paged_mem.load mem (addr slots)

let fast_store fs (p, off, value, bytes) =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let mem = rt.Interp.mem in
  if fs.st.obs_access then
    let addr = flat_addr cc p off in
    let fv = flat cc value in
    let hooks = rt.Interp.hooks in
    let mc = rt.Interp.memcheck in
    fun slots ->
      let a = addr slots in
      (match mc with Some v -> Vmem.touch v a bytes | None -> ());
      hooks.Interp.on_access a bytes true;
      Paged_mem.store mem a (fv slots)
  else
    (* Bare path: same single-closure folding as [fast_load], including
       the increment-store shape ([*(p+8) = vis + 1]) ward-list style
       workloads live in. *)
    match (atom_of cc p, atom_of cc off, value) with
    | Some (Aslot i), Some (Aint n), Ir.Binop (Ir.Add, Ir.Var y, Ir.Int m) ->
        let sy = Interp.local_slot_read cc y in
        fun slots -> Paged_mem.store mem (slots.%(i) + n) (slots.%(sy) + m)
    | Some (Aslot i), Some (Aint n), Ir.Var y ->
        let sy = Interp.local_slot_read cc y in
        fun slots -> Paged_mem.store mem (slots.%(i) + n) slots.%(sy)
    | Some (Aslot i), Some (Aint n), Ir.Int m ->
        fun slots -> Paged_mem.store mem (slots.%(i) + n) m
    | Some (Aslot i), Some (Aint n), _ ->
        let fv = flat cc value in
        fun slots -> Paged_mem.store mem (slots.%(i) + n) (fv slots)
    | _ ->
        let addr = flat_addr cc p off in
        let fv = flat cc value in
        fun slots ->
          let a = addr slots in
          Paged_mem.store mem a (fv slots)

(* Shadow-mode load/store: no hooks, stores undo-logged, both streams
   digested. Counter charges still go through the chunk machinery. *)
let shadow_load fs (x, p, off, bytes) =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let s = Interp.local_slot cc x in
  let addr = flat_addr cc p off in
  let mem = rt.Interp.mem in
  let mc = rt.Interp.memcheck in
  let sc = fs.st.sc in
  fun slots ->
    let a = addr slots in
    (match mc with Some v -> Vmem.touch v a bytes | None -> ());
    let v = Paged_mem.load mem a in
    sc.ld <- fnv (fnv sc.ld a) v;
    slots.(s) <- v

let shadow_store fs (p, off, value, bytes) =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let addr = flat_addr cc p off in
  let fv = flat cc value in
  let mem = rt.Interp.mem in
  let mc = rt.Interp.memcheck in
  let sc = fs.st.sc in
  fun slots ->
    let a = addr slots in
    (match mc with Some v -> Vmem.touch v a bytes | None -> ());
    undo_push sc a (Paged_mem.load mem a);
    let v = fv slots in
    Paged_mem.store mem a v;
    sc.sd <- fnv (fnv sc.sd a) v

let member_act fs role (stm : Ir.stmt) : (int array -> unit) option =
  let cc = fs.cc in
  match stm with
  | Ir.Let (x, e) -> Some (set_act cc x e)
  | Ir.Gassign (x, e) -> Some (gset_act cc x e)
  | Ir.Compute _ -> None
  | Ir.Load (x, p, off, bytes) ->
      Some
        ((match role with Rfast -> fast_load | Rshadow -> shadow_load)
           fs (x, p, off, bytes))
  | Ir.Store (p, off, value, bytes) ->
      Some
        ((match role with Rfast -> fast_store | Rshadow -> shadow_store)
           fs (p, off, value, bytes))
  | _ -> assert false

(* Whether a member can raise (or must otherwise flush before running):
   any impure expression can raise; with hooks or memcheck installed
   every access is an observation point and ends its chunk, so a raise
   from inside the hook/touch path still sees exact counters. *)
let member_raising fs role (stm : Ir.stmt) =
  match stm with
  | Ir.Let (_, e) | Ir.Gassign (_, e) -> not (pure_expr e)
  | Ir.Compute _ -> false
  | Ir.Load (_, p, off, _) ->
      (match role with Rshadow -> true | Rfast -> fs.st.obs_access)
      || not (pure_expr p && pure_expr off)
  | Ir.Store (p, off, v, _) ->
      (match role with Rshadow -> true | Rfast -> fs.st.obs_access)
      || not (pure_expr p && pure_expr off && pure_expr v)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Chunk assembly                                                     *)
(* ------------------------------------------------------------------ *)

let rec chain acts k =
  match acts with
  | [] -> k
  | [ a ] -> fun s -> a s; k s
  | [ a; b ] ->
      fun s ->
        a s;
        b s;
        k s
  | a :: b :: c :: tl ->
      let k' = chain tl k in
      fun s ->
        a s;
        b s;
        c s;
        k' s

let nothing (_ : int array) = ()
let chain_all acts = chain acts nothing

(* One batched counter update for a chunk, compiled down to the fields
   it actually touches. *)
let flush (rt : Interp.rt) cost nl ns k =
  match (nl, ns) with
  | 0, 0 ->
      if cost = 0 then k
      else
        fun s ->
          rt.Interp.instructions <- rt.Interp.instructions + cost;
          k s
  | _, 0 ->
      fun s ->
        rt.Interp.instructions <- rt.Interp.instructions + cost;
        rt.Interp.loads <- rt.Interp.loads + nl;
        k s
  | 0, _ ->
      fun s ->
        rt.Interp.instructions <- rt.Interp.instructions + cost;
        rt.Interp.stores <- rt.Interp.stores + ns;
        k s
  | _ ->
      fun s ->
        rt.Interp.instructions <- rt.Interp.instructions + cost;
        rt.Interp.loads <- rt.Interp.loads + nl;
        rt.Interp.stores <- rt.Interp.stores + ns;
        k s

(* Compile a fusable run into chained chunks. [base_of] compiles a
   (statement, bias) pair to the closure deopt paths fall back to: the
   interpreter's own closures in fast mode, shadow closures in
   selfcheck shadows. The first chunk also charges [st.skew] — the
   selfcheck divergence-injection hook, 0 in real use. *)
let comp_seg fs role ~base_of (pairs : (Ir.stmt * bias) list) :
    int array -> unit =
  let rt = fs.cc.Interp.c_rt in
  let stats = fs.st.stats in
  (* Speculation budget: each guard duplicates the compiled tail of its
     segment, so cap guards per segment to bound code growth. *)
  let nspec = ref 4 in
  let rec go cost nl ns acts pairs =
    match pairs with
    | [] -> close cost nl ns acts None nothing
    | (Ir.If (c, a, b), bias) :: rest -> (
        let taken, nottaken, bt, bf =
          match bias with
          | Bif { taken; nottaken; bt; bf } -> (taken, nottaken, bt, bf)
          | _ -> assert false
        in
        let t = !taken and nt = !nottaken in
        let cost = cost + 1 in
        let cond = flat_cond fs.cc c in
        let strongly_biased =
          t = 0 || nt = 0 || t >= 4 * nt || nt >= 4 * t
        in
        if !nspec > 0 && strongly_biased then begin
          decr nspec;
          let expect_then = t >= nt in
          let br, other, obias =
            if expect_then then (List.combine a bt, b, bf)
            else (List.combine b bf, a, bt)
          in
          let fast = go_fresh (br @ rest) in
          let slow_branch = chain_all (List.map base_of (List.combine other obias)) in
          let base_rest = chain_all (List.map base_of rest) in
          let deopt s =
            stats.deopts <- stats.deopts + 1;
            slow_branch s;
            base_rest s
          in
          let guard =
            if expect_then then fun s -> if cond s then fast s else deopt s
            else fun s -> if cond s then deopt s else fast s
          in
          close cost nl ns acts None guard
        end
        else
          (* Balanced branch: fuse both sides and rejoin; no guard. *)
          let fa = go_fresh (List.combine a bt)
          and fb = go_fresh (List.combine b bf)
          and k = go_fresh rest in
          close cost nl ns acts None (fun s ->
              (if cond s then fa s else fb s);
              k s))
    | (stm, _) :: rest -> (
        let dc, dl, ds = charges stm in
        let cost = cost + dc and nl = nl + dl and ns = ns + ds in
        match member_act fs role stm with
        | None -> go cost nl ns acts rest
        | Some act ->
            if member_raising fs role stm then
              close cost nl ns acts (Some act) (go_fresh rest)
            else go cost nl ns (act :: acts) rest)
  and go_fresh pairs = go 0 0 0 [] pairs
  and close cost nl ns acts_rev raiser k =
    let acts = List.rev acts_rev in
    let tail =
      match raiser with
      | None -> chain acts k
      | Some r ->
          chain acts (fun s ->
              r s;
              k s)
    in
    flush rt cost nl ns tail
  in
  go fs.st.skew 0 0 [] pairs

(* ------------------------------------------------------------------ *)
(* Grouping                                                           *)
(* ------------------------------------------------------------------ *)

(* Split a body into maximal fusable runs and single unfused items. *)
let group_pairs (pairs : (Ir.stmt * bias) list) =
  let rec split acc run pairs =
    match pairs with
    | [] -> List.rev (flush_run acc run)
    | ((stm, _) as p) :: tl ->
        if stmt_fusable stm then split acc (p :: run) tl
        else split (`One p :: flush_run acc run) [] tl
  and flush_run acc run =
    match run with [] -> acc | run -> `Seg (List.rev run) :: acc
  in
  split [] [] pairs

(* ------------------------------------------------------------------ *)
(* Loops                                                              *)
(* ------------------------------------------------------------------ *)

(* A loop body qualifies for deferred accounting when nothing in it can
   raise or be observed mid-iteration: counters then accumulate in a
   local and retire as [n * per_iteration] at loop exit. *)
let deferrable fs body =
  (not fs.st.obs_access)
  && List.for_all
       (fun (stm : Ir.stmt) ->
         match stm with
         | Ir.If _ -> false
         | Ir.Let (_, e) | Ir.Gassign (_, e) -> pure_expr e
         | Ir.Compute _ -> true
         | Ir.Load (_, p, off, _) -> pure_expr p && pure_expr off
         | Ir.Store (p, off, v, _) ->
             pure_expr p && pure_expr off && pure_expr v
         | _ -> false)
       body

(* Mutually recursive compilers.

   [base_stmt]/[base_block]: warmup code — the interpreter's closures
   plus branch-direction counting and self-promoting loops.

   [fast_block]: hot code — fusable runs become segments, loops fuse
   directly, everything else delegates to [Interp.compile_stmt].

   [compile_hot_loop]: a fully-fusable loop's hot implementation,
   entered at the condition check (the entry charge stays with the
   caller). *)
let rec base_block fs (stmts : Ir.stmt list) :
    (int array -> unit) * bias list =
  let items = List.map (base_stmt fs) stmts in
  (chain_all (List.map fst items), List.map snd items)

and base_stmt fs (stm : Ir.stmt) : (int array -> unit) * bias =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  match stm with
  | Ir.If (c, a, b) ->
      let fc = Interp.compile_expr cc c in
      let ca, bt = base_block fs a and cb, bf = base_block fs b in
      let taken = ref 0 and nottaken = ref 0 in
      ( (fun slots ->
          rt.Interp.instructions <- rt.Interp.instructions + 1;
          if fc slots <> 0 then begin
            incr taken;
            ca slots
          end
          else begin
            incr nottaken;
            cb slots
          end),
        Bif { taken; nottaken; bt; bf } )
  | Ir.While (c, body) ->
      let cbody, bb = base_block fs body in
      let fcond = Interp.compile_expr cc c in
      let pairs = List.combine body bb in
      let hot = lazy (hot_loop fs Rfast c pairs ~fcond) in
      (promoting_loop fs fcond cbody hot, Bwhile bb)
  | stm -> (Interp.compile_stmt cc stm, Bleaf)

(* Back-edge counting loop: run baseline iterations until the counter
   crosses the threshold, then compile the hot form and finish the
   current execution (and all future ones) through it. The hot form
   enters at the condition check, so mid-loop promotion is seamless. *)
and promoting_loop fs fcond cbody hot =
  let rt = fs.cc.Interp.c_rt in
  let st = fs.st in
  let state = ref None and backedges = ref 0 in
  fun slots ->
    rt.Interp.instructions <- rt.Interp.instructions + 1;
    match !state with
    | Some f -> f slots
    | None ->
        let live = ref true in
        while !live && fcond slots <> 0 do
          cbody slots;
          rt.Interp.instructions <- rt.Interp.instructions + 1;
          incr backedges;
          if !backedges > st.threshold then begin
            let f = Lazy.force hot in
            state := Some f;
            st.stats.promotions <- st.stats.promotions + 1;
            f slots;
            live := false
          end
        done

(* Hot loop implementation (no entry charge; caller charges it).
   Fully-fusable bodies become fused traces — deferred-counter when
   nothing can raise, per-iteration chunks otherwise (the synthetic
   trailing [Compute 1] is the back-edge charge, so deopt paths retire
   it too). Other bodies keep the loop shape with a fused body. *)
and hot_loop fs role c (pairs : (Ir.stmt * bias) list) ~fcond :
    int array -> unit =
  let rt = fs.cc.Interp.c_rt in
  let stmts = List.map fst pairs in
  if pure_expr c && List.for_all stmt_fusable stmts then begin
    fs.st.stats.regions <- fs.st.stats.regions + 1;
    let cond = flat_cond fs.cc c in
    if role = Rfast && deferrable fs stmts then begin
      let cost = ref (1 + fs.st.skew) and nl = ref 0 and ns = ref 0 in
      List.iter
        (fun stm ->
          let dc, dl, ds = charges stm in
          cost := !cost + dc;
          nl := !nl + dl;
          ns := !ns + ds)
        stmts;
      let per_i = !cost and per_l = !nl and per_s = !ns in
      let acts = chain_all (List.filter_map (member_act fs role) stmts) in
      let retire =
        if per_l = 0 && per_s = 0 then fun n ->
          rt.Interp.instructions <- rt.Interp.instructions + (n * per_i)
        else fun n ->
          rt.Interp.instructions <- rt.Interp.instructions + (n * per_i);
          rt.Interp.loads <- rt.Interp.loads + (n * per_l);
          rt.Interp.stores <- rt.Interp.stores + (n * per_s)
      in
      fun slots ->
        let n = ref 0 in
        while cond slots do
          acts slots;
          incr n
        done;
        if !n > 0 then retire !n
    end
    else
      let base_of (stm, _) =
        match role with
        | Rfast -> Interp.compile_stmt fs.cc stm
        | Rshadow -> shadow_stmt fs stm
      in
      let body =
        comp_seg fs role ~base_of (pairs @ [ (Ir.Compute 1, Bleaf) ])
      in
      fun slots ->
        while cond slots do
          body slots
        done
  end
  else
    (* Partially-fusable: keep the interpreter's loop shape, fuse what
       the body contains. *)
    let fb = fast_block fs role pairs in
    fun slots ->
      while fcond slots <> 0 do
        fb slots;
        rt.Interp.instructions <- rt.Interp.instructions + 1
      done

and fast_block fs role (pairs : (Ir.stmt * bias) list) : int array -> unit =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let compile_group = function
    | `Seg run ->
        fs.st.stats.regions <- fs.st.stats.regions + 1;
        let base_of (stm, _) =
          match role with
          | Rfast -> Interp.compile_stmt cc stm
          | Rshadow -> shadow_stmt fs stm
        in
        comp_seg fs role ~base_of run
    | `One (Ir.While (c, body), Bwhile bb) ->
        let fcond = Interp.compile_expr cc c in
        let impl = hot_loop fs role c (List.combine body bb) ~fcond in
        fun slots ->
          rt.Interp.instructions <- rt.Interp.instructions + 1;
          impl slots
    | `One (Ir.If (c, a, b), Bif bi) ->
        let fc = Interp.compile_expr cc c in
        let fa = fast_block fs role (List.combine a bi.bt)
        and fb = fast_block fs role (List.combine b bi.bf) in
        fun slots ->
          rt.Interp.instructions <- rt.Interp.instructions + 1;
          if fc slots <> 0 then fa slots else fb slots
    | `One (stm, _) -> Interp.compile_stmt cc stm
  in
  chain_all (List.map compile_group (group_pairs pairs))

(* Shadow statement compiler for selfcheck deopt tails and fallback
   paths: identical to the interpreter's closures except that accesses
   digest their stream, skip hooks, and undo-log stores. Slot, global,
   RNG and counter effects need no special casing — the snapshot
   rollback covers them. *)
and shadow_stmt fs (stm : Ir.stmt) : int array -> unit =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  match stm with
  | Ir.Load (x, p, off, bytes) ->
      let act = shadow_load fs (x, p, off, bytes) in
      fun slots ->
        rt.Interp.instructions <- rt.Interp.instructions + 1;
        rt.Interp.loads <- rt.Interp.loads + 1;
        act slots
  | Ir.Store (p, off, value, bytes) ->
      let act = shadow_store fs (p, off, value, bytes) in
      fun slots ->
        rt.Interp.instructions <- rt.Interp.instructions + 1;
        rt.Interp.stores <- rt.Interp.stores + 1;
        act slots
  | Ir.If (c, a, b) ->
      let fc = Interp.compile_expr cc c in
      let fa = chain_all (List.map (shadow_stmt fs) a)
      and fb = chain_all (List.map (shadow_stmt fs) b) in
      fun slots ->
        rt.Interp.instructions <- rt.Interp.instructions + 1;
        if fc slots <> 0 then fa slots else fb slots
  | stm -> Interp.compile_stmt cc stm

(* ------------------------------------------------------------------ *)
(* Selfcheck                                                          *)
(* ------------------------------------------------------------------ *)

let rec func_sites acc (stm : Ir.stmt) =
  match stm with
  | Ir.Malloc (_, _, s) | Ir.Calloc (_, _, _, s) | Ir.Realloc (_, _, _, s)
  | Ir.Call (_, _, _, s) ->
      s :: acc
  | Ir.If (_, a, b) ->
      List.fold_left func_sites (List.fold_left func_sites acc a) b
  | Ir.While (_, a) -> List.fold_left func_sites acc a
  | _ -> acc

let func_site_labels st (f : Ir.func) =
  let sites = List.rev (List.fold_left func_sites [] f.Ir.body) in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> [ "..." ]
    | s :: tl -> Ir.site_label st.program s :: take (n - 1) tl
  in
  take 6 sites

(* The authoritative replay side of a checkpoint: the interpreter's own
   closures, with accesses additionally digested so the comparison
   covers the access streams, not just the counters. Hooks fire here —
   exactly once per region, after the shadow has been rolled back. *)
let rec check_stmt fs (stm : Ir.stmt) : int array -> unit =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let sc = fs.st.sc in
  match stm with
  | Ir.Load (x, p, off, bytes) ->
      let s = Interp.local_slot cc x in
      let fp = Interp.compile_expr cc p and fo = Interp.compile_expr cc off in
      let mem = rt.Interp.mem in
      let mc = rt.Interp.memcheck in
      let hooks = rt.Interp.hooks in
      fun slots ->
        rt.Interp.instructions <- rt.Interp.instructions + 1;
        rt.Interp.loads <- rt.Interp.loads + 1;
        let a = fp slots + fo slots in
        (match mc with Some v -> Vmem.touch v a bytes | None -> ());
        hooks.Interp.on_access a bytes false;
        let v = Paged_mem.load mem a in
        sc.ld <- fnv (fnv sc.ld a) v;
        slots.(s) <- v
  | Ir.Store (p, off, value, bytes) ->
      let fp = Interp.compile_expr cc p
      and fo = Interp.compile_expr cc off
      and fv = Interp.compile_expr cc value in
      let mem = rt.Interp.mem in
      let mc = rt.Interp.memcheck in
      let hooks = rt.Interp.hooks in
      fun slots ->
        rt.Interp.instructions <- rt.Interp.instructions + 1;
        rt.Interp.stores <- rt.Interp.stores + 1;
        let a = fp slots + fo slots in
        (match mc with Some v -> Vmem.touch v a bytes | None -> ());
        hooks.Interp.on_access a bytes true;
        let v = fv slots in
        Paged_mem.store mem a v;
        sc.sd <- fnv (fnv sc.sd a) v
  | Ir.If (c, a, b) ->
      let fc = Interp.compile_expr cc c in
      let fa = chain_all (List.map (check_stmt fs) a)
      and fb = chain_all (List.map (check_stmt fs) b) in
      fun slots ->
        rt.Interp.instructions <- rt.Interp.instructions + 1;
        if fc slots <> 0 then fa slots else fb slots
  | stm -> Interp.compile_stmt cc stm

(* One checkpointed region: run the fused trace as a shadow, roll the
   machine back, replay through the interpreter, diff the deltas. *)
let sc_segment fs (run : Ir.stmt list) : int array -> unit =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let st = fs.st in
  let sc = st.sc in
  st.stats.regions <- st.stats.regions + 1;
  let id = st.next_region in
  st.next_region <- id + 1;
  let region = Printf.sprintf "%s/trace#%d" cc.Interp.fname id in
  let sites = fs.fsites in
  let pairs = List.map (fun stm -> (stm, zbias stm)) run in
  let fused = comp_seg fs Rshadow ~base_of:(fun (stm, _) -> shadow_stmt fs stm) pairs in
  let base = chain_all (List.map (check_stmt fs) run) in
  let gl = rt.Interp.globals in
  fun slots ->
    let slots0 = Array.copy slots in
    let g0 = Array.copy gl in
    let rng0 = Rng.save rt.Interp.rng in
    let i0 = rt.Interp.instructions
    and l0 = rt.Interp.loads
    and s0 = rt.Interp.stores in
    sc.ld <- fnv0;
    sc.sd <- fnv0;
    sc.un <- 0;
    let shadow_exn =
      match fused slots with () -> None | exception e -> Some e
    in
    let f_i = rt.Interp.instructions - i0
    and f_l = rt.Interp.loads - l0
    and f_s = rt.Interp.stores - s0
    and f_ld = sc.ld
    and f_sd = sc.sd in
    (* Roll back: heap stores in reverse, then snapshots. A store that
       materialised a fresh zero page stays materialised — the replayed
       store would create the same page anyway. *)
    for k = sc.un - 1 downto 0 do
      Paged_mem.store rt.Interp.mem sc.ua.(k) sc.uv.(k)
    done;
    Array.blit slots0 0 slots 0 (Array.length slots0);
    Array.blit g0 0 gl 0 (Array.length g0);
    Rng.restore rt.Interp.rng rng0;
    rt.Interp.instructions <- i0;
    rt.Interp.loads <- l0;
    rt.Interp.stores <- s0;
    sc.ld <- fnv0;
    sc.sd <- fnv0;
    let base_exn = match base slots with () -> None | exception e -> Some e in
    let b_i = rt.Interp.instructions - i0
    and b_l = rt.Interp.loads - l0
    and b_s = rt.Interp.stores - s0
    and b_ld = sc.ld
    and b_sd = sc.sd in
    st.stats.checkpoints <- st.stats.checkpoints + 1;
    let mismatches = ref [] in
    let cmp what fv bv =
      if fv <> bv then
        mismatches :=
          Printf.sprintf "%s: trace %d vs interp %d" what fv bv :: !mismatches
    in
    cmp "instructions" f_i b_i;
    cmp "loads" f_l b_l;
    cmp "stores" f_s b_s;
    cmp "load digest" f_ld b_ld;
    cmp "store digest" f_sd b_sd;
    let diverge detail = raise (Divergence { region; sites; detail }) in
    match (shadow_exn, base_exn) with
    | None, None ->
        if !mismatches <> [] then
          diverge (String.concat "; " (List.rev !mismatches))
    | Some se, Some be ->
        let ss = Printexc.to_string se and bs = Printexc.to_string be in
        if ss <> bs then
          diverge (Printf.sprintf "trace raised %s, interp raised %s" ss bs)
        else if !mismatches <> [] then
          diverge (String.concat "; " (List.rev !mismatches))
        else raise be
    | Some se, None ->
        diverge
          (Printf.sprintf "trace raised %s, interp completed"
             (Printexc.to_string se))
    | None, Some be ->
        diverge
          (Printf.sprintf "interp raised %s, trace completed"
             (Printexc.to_string be))

(* Selfcheck body compiler: fusable runs become checkpointed regions
   (loops check per iteration), everything else runs on interpreter
   closures. *)
let rec sc_block fs (stmts : Ir.stmt list) : int array -> unit =
  let cc = fs.cc in
  let rt = cc.Interp.c_rt in
  let pairs = List.map (fun stm -> (stm, Bleaf)) stmts in
  let compile_group = function
    | `Seg run -> sc_segment fs (List.map fst run)
    | `One (Ir.While (c, body), _) ->
        let fc = Interp.compile_expr cc c in
        let fb = sc_block fs body in
        fun slots ->
          rt.Interp.instructions <- rt.Interp.instructions + 1;
          while fc slots <> 0 do
            fb slots;
            rt.Interp.instructions <- rt.Interp.instructions + 1
          done
    | `One (Ir.If (c, a, b), _) ->
        let fc = Interp.compile_expr cc c in
        let fa = sc_block fs a and fb = sc_block fs b in
        fun slots ->
          rt.Interp.instructions <- rt.Interp.instructions + 1;
          if fc slots <> 0 then fa slots else fb slots
    | `One (stm, _) -> Interp.compile_stmt cc stm
  in
  chain_all (List.map compile_group (group_pairs pairs))

(* ------------------------------------------------------------------ *)
(* Functions and the engine handle                                    *)
(* ------------------------------------------------------------------ *)

type t = { st : st; main : unit -> int; mutable ran : bool }

let compile_func st (f : Ir.func) =
  let cc =
    {
      Interp.c_rt = st.rt;
      locals = Hashtbl.create 16;
      c_globals = st.c_globals;
      patches = st.patch_tbl;
      cfuncs = st.cfuncs;
      fname = f.Ir.fname;
      nslots = ref 0;
    }
  in
  List.iter (fun p -> ignore (Interp.local_slot cc p : int)) f.Ir.params;
  List.iter (Interp.prescan_stmt cc) f.Ir.body;
  let fs = { st; cc; fsites = func_site_labels st f } in
  let body =
    match st.mode with
    | Selfcheck -> sc_block fs f.Ir.body
    | Fast ->
        let cold, bias = base_block fs f.Ir.body in
        let pairs = List.combine f.Ir.body bias in
        let hot = lazy (fast_block fs Rfast pairs) in
        let impl = ref cold and calls = ref 0 and promoted = ref false in
        let stats = st.stats and threshold = st.threshold in
        fun slots ->
          (if not !promoted then begin
             incr calls;
             if !calls > threshold then begin
               promoted := true;
               stats.promotions <- stats.promotions + 1;
               impl := Lazy.force hot
             end
           end);
          !impl slots
  in
  let nslots = !(cc.Interp.nslots) in
  let nparams = List.length f.Ir.params in
  let fname = f.Ir.fname in
  fun argv ->
    if Array.length argv <> nparams then
      Interp_error.error ~fname
        (Arity_mismatch
           { callee = fname; expected = nparams; got = Array.length argv });
    let slots = Array.make (max nslots 1) 0 in
    Array.blit argv 0 slots 0 nparams;
    try
      body slots;
      0
    with Interp.Ret v -> v

let default_threshold = 16

let create ?(mode = Fast) ?(threshold = default_threshold) ?(cost_skew = 0)
    ?seed ?hooks ?patches ?env ?memcheck ?obs ~program ~alloc () =
  let rt, patch_tbl, c_globals =
    Interp.make_rt ?seed ?hooks ?patches ?env ?memcheck ?obs ~program ~alloc ()
  in
  let stats = { regions = 0; promotions = 0; deopts = 0; checkpoints = 0 } in
  let st =
    {
      rt;
      program;
      mode;
      threshold = max 1 threshold;
      skew = cost_skew;
      obs_access = rt.Interp.hooks != Interp.no_hooks || rt.Interp.memcheck <> None;
      stats;
      sc = { ld = fnv0; sd = fnv0; ua = [||]; uv = [||]; un = 0 };
      patch_tbl;
      c_globals;
      cfuncs = Hashtbl.create 64;
      next_region = 0;
    }
  in
  List.iter
    (fun f -> Hashtbl.replace st.cfuncs f.Ir.fname (compile_func st f))
    (Ir.funcs program);
  let main_name = Interp.check_main program in
  { st; main = (fun () -> (Hashtbl.find st.cfuncs main_name) [||]); ran = false }

let run t =
  if t.ran then invalid_arg "Trace_compile.run: already ran";
  t.ran <- true;
  t.main ()

let instructions t = t.st.rt.Interp.instructions
let env t = t.st.rt.Interp.env
let load_store_counts t = (t.st.rt.Interp.loads, t.st.rt.Interp.stores)
let stats t = t.st.stats
