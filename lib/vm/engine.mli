(** Execution-engine selection.

    Uniform front door over the two execution engines so that every
    consumer (runner, profiler, fuzz oracle, traffic generator, CLI)
    takes one [kind] knob instead of hard-wiring {!Interp}:

    - [Interp]: the baseline closure-threaded interpreter;
    - [Traced]: {!Trace_compile} in [Fast] mode — hot regions fused;
    - [Selfcheck]: {!Trace_compile} in [Selfcheck] mode — every fused
      region cross-checked against the interpreter, raising
      {!Trace_compile.Divergence} on the first disagreement.

    All three produce bit-identical program results, counters, and heap
    contents; they differ only in speed (and [Selfcheck]'s oracle
    raises). *)

type kind = Interp | Traced | Selfcheck

val to_string : kind -> string

val of_string : string -> kind option
(** Parses ["interp" | "traced" | "selfcheck"]. *)

val all : kind list

type t

val create :
  ?kind:kind ->
  ?threshold:int ->
  ?seed:int ->
  ?hooks:Interp.hooks ->
  ?patches:(Ir.site * int) list ->
  ?env:Exec_env.t ->
  ?memcheck:Vmem.t ->
  ?obs:Obs.t ->
  program:Ir.program ->
  alloc:Alloc_iface.t ->
  unit ->
  t
(** Same contract as {!Interp.create} (the default [kind]).
    [threshold] is {!Trace_compile}'s promotion threshold and is ignored
    by the [Interp] engine. *)

val run : t -> int
val instructions : t -> int
val env : t -> Exec_env.t
val load_store_counts : t -> int * int
