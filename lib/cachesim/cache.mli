(** A single set-associative cache level with true-LRU replacement.

    The reproduction's stand-in for the hardware counters used in §5:
    every simulated load/store is pushed through a model of the Xeon
    W-2195's cache hierarchy, and "L1 data-cache misses" in the reproduced
    figures are misses counted here. Physical indexing, inclusive write-
    allocate behaviour and LRU are sufficient: the paper's effect operates
    through line-granularity spatial locality, not replacement-policy
    subtleties. *)

type t

val create : name:string -> size_bytes:int -> assoc:int -> line_bytes:int -> t
(** [create ~name ~size_bytes ~assoc ~line_bytes]. [size_bytes] must be
    divisible by [assoc * line_bytes] and [line_bytes] a power of two.
    When the resulting set count is itself a power of two (every level
    of the modelled Xeon except its 11-way L3), set/tag extraction on
    the per-access path is a precomputed mask and shift; other set
    counts use the exact mod/div formula. *)

val access : t -> Addr.t -> bool
(** [access t addr] looks up (and on miss, fills) the line containing
    [addr]. Returns [true] on hit. One call covers one line; callers split
    straddling accesses (see {!Hierarchy.access}). *)

val name : t -> string
val line_bytes : t -> int
val sets : t -> int
val assoc : t -> int

val hits : t -> int
val misses : t -> int
val accesses : t -> int

val reset_counters : t -> unit
(** Zero the hit/miss counters without disturbing cache contents — used to
    exclude warm-up phases from measurement, like discarding the first trial
    in §5.1. *)

val fill : t -> Addr.t -> unit
(** Insert the line containing [addr] without touching the hit/miss
    counters (prefetch fill). The line becomes most-recently-used; if it
    is already present only its recency updates. *)

val contains : t -> Addr.t -> bool
(** Probe without side effects (no fill, no counter, no LRU update). *)

val locate : t -> Addr.t -> int * int
(** [(set, tag)] for the line containing [addr] — equal to
    [(line mod sets, line / sets)] for the power-of-two set counts
    {!create} enforces; exposed so tests can pin that equivalence. *)

val flush : t -> unit
(** Invalidate every line and zero the counters. *)
