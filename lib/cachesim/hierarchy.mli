(** The full memory hierarchy of the paper's testbed.

    §5.1: a 64-bit Xeon W-2195 with 32 KiB per-core L1 data caches,
    1,024 KiB per-core L2 caches, and a 25,344 KiB shared L3 cache.
    Workloads run single-threaded, so one core's private hierarchy plus the
    shared L3 is the whole machine from the program's point of view. *)

type config = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  l3_size : int;
  l3_assoc : int;
  line_bytes : int;
  tlb_entries : int;
  tlb_assoc : int;
  prefetch : bool;
      (** Next-line prefetcher at the L1 (an extension beyond the paper's
          setup, off by default): every demand L1 miss also fills the
          following line into L1 and L2 without charging a miss.
          Sequentially laid-out pools benefit disproportionately — the
          "prefetching failures" effect §2.1 attributes to scattered
          heaps. *)
}

val xeon_w2195 : config
(** The evaluation machine: L1D 32 KiB/8-way, L2 1 MiB/16-way,
    L3 25,344 KiB/11-way, 64 B lines, 64-entry 4-way DTLB. *)

type counters = {
  accesses : int;  (** Program loads/stores (not line-split sub-accesses). *)
  l1_misses : int;
  l2_misses : int;
  l3_misses : int;  (** Equivalently: DRAM accesses. *)
  tlb_misses : int;
  prefetches : int;  (** Prefetch fills issued (0 with [prefetch = false]). *)
}

type t

val create : ?config:config -> ?obs:Obs.t -> ?sample_every:int -> unit -> t
(** [obs] enables the per-level miss streams: every [sample_every]
    (default 4096) program accesses, one [{"type":"metric"}] trace event
    per level ([cache.l1.misses], [cache.l2.misses], [cache.l3.misses],
    [cache.tlb.misses]) carrying the {e cumulative} miss count and the
    access index — differentiate to recover windowed miss rates. Without
    [obs] the access path is the uninstrumented seed code. *)

val access : t -> Addr.t -> int -> unit
(** [access t addr size] simulates one program-level load or store of
    [size] bytes at [addr]. Accesses that straddle line boundaries touch
    every covered line (and page, for the TLB). Misses propagate down the
    hierarchy: an L1 miss probes L2, an L2 miss probes L3. *)

val counters : t -> counters
val reset_counters : t -> unit
val config : t -> config

val pp_counters : Format.formatter -> counters -> unit
