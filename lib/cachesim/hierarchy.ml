type config = {
  l1_size : int;
  l1_assoc : int;
  l2_size : int;
  l2_assoc : int;
  l3_size : int;
  l3_assoc : int;
  line_bytes : int;
  tlb_entries : int;
  tlb_assoc : int;
  prefetch : bool;
}

let xeon_w2195 =
  {
    l1_size = 32 * 1024;
    l1_assoc = 8;
    l2_size = 1024 * 1024;
    l2_assoc = 16;
    l3_size = 25344 * 1024;
    l3_assoc = 11;
    line_bytes = 64;
    tlb_entries = 64;
    tlb_assoc = 4;
    prefetch = false;
  }

type counters = {
  accesses : int;
  l1_misses : int;
  l2_misses : int;
  l3_misses : int;
  tlb_misses : int;
  prefetches : int;
}

(* Miss-stream sampling state; [None] when observability is disabled. *)
type hobs = { o : Obs.t option; sample_every : int; mutable until_sample : int }

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  tlb : Tlb.t;
  obs : hobs option;
  mutable accesses : int;
  mutable prefetches : int;
}

let create ?(config = xeon_w2195) ?obs ?(sample_every = 4096) () =
  if sample_every < 1 then invalid_arg "Hierarchy.create: sample_every must be >= 1";
  {
    cfg = config;
    obs =
      Option.map
        (fun o -> { o = Some o; sample_every; until_sample = sample_every })
        obs;
    l1 =
      Cache.create ~name:"L1D" ~size_bytes:config.l1_size ~assoc:config.l1_assoc
        ~line_bytes:config.line_bytes;
    l2 =
      Cache.create ~name:"L2" ~size_bytes:config.l2_size ~assoc:config.l2_assoc
        ~line_bytes:config.line_bytes;
    l3 =
      Cache.create ~name:"L3" ~size_bytes:config.l3_size ~assoc:config.l3_assoc
        ~line_bytes:config.line_bytes;
    tlb = Tlb.create ~entries:config.tlb_entries ~assoc:config.tlb_assoc ();
    accesses = 0;
    prefetches = 0;
  }

(* One cumulative sample per level: the consumer differentiates the series
   to recover per-window miss rates. *)
let emit_samples t ho =
  let point name v =
    Obs.event ho.o ~name
      ~attrs:[ ("accesses", Json.Int t.accesses) ]
      (float_of_int v)
  in
  point "cache.l1.misses" (Cache.misses t.l1);
  point "cache.l2.misses" (Cache.misses t.l2);
  point "cache.l3.misses" (Cache.misses t.l3);
  point "cache.tlb.misses" (Tlb.misses t.tlb)

let access t addr size =
  if size <= 0 then invalid_arg "Hierarchy.access: non-positive size";
  t.accesses <- t.accesses + 1;
  (match t.obs with
  | None -> ()
  | Some ho ->
      ho.until_sample <- ho.until_sample - 1;
      if ho.until_sample = 0 then begin
        ho.until_sample <- ho.sample_every;
        emit_samples t ho
      end);
  let line = t.cfg.line_bytes in
  let first = Addr.align_down addr line in
  let last = Addr.align_down (addr + size - 1) line in
  let a = ref first in
  while !a <= last do
    if not (Cache.access t.l1 !a) then begin
      if not (Cache.access t.l2 !a) then ignore (Cache.access t.l3 !a : bool);
      if t.cfg.prefetch then begin
        (* Next-line prefetch: fill L1/L2 without charging a miss. *)
        let nxt = !a + line in
        if not (Cache.contains t.l1 nxt) then begin
          Cache.fill t.l1 nxt;
          Cache.fill t.l2 nxt;
          t.prefetches <- t.prefetches + 1
        end
      end
    end;
    a := !a + line
  done;
  let page = Tlb.page_bytes t.tlb in
  let firstp = Addr.align_down addr page in
  let lastp = Addr.align_down (addr + size - 1) page in
  let p = ref firstp in
  while !p <= lastp do
    ignore (Tlb.access t.tlb !p : bool);
    p := !p + page
  done

let counters t =
  {
    accesses = t.accesses;
    l1_misses = Cache.misses t.l1;
    l2_misses = Cache.misses t.l2;
    l3_misses = Cache.misses t.l3;
    tlb_misses = Tlb.misses t.tlb;
    prefetches = t.prefetches;
  }

let reset_counters t =
  t.accesses <- 0;
  t.prefetches <- 0;
  Cache.reset_counters t.l1;
  Cache.reset_counters t.l2;
  Cache.reset_counters t.l3;
  Tlb.reset_counters t.tlb

let config t = t.cfg

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "accesses=%d l1_miss=%d l2_miss=%d l3_miss=%d tlb_miss=%d prefetch=%d"
    c.accesses c.l1_misses c.l2_misses c.l3_misses c.tlb_misses c.prefetches
