type t = {
  name : string;
  line_bytes : int;
  line_bits : int;
  sets : int;
  (* For power-of-two set counts (every level of the modelled Xeon but
     its 11-way L3), set/tag extraction is a mask and a shift;
     [set_mask = -1] marks the exact mod/div fallback. *)
  set_bits : int;
  set_mask : int;
  assoc : int;
  (* tags.(set * assoc + way); recency.(set * assoc + way) — larger is more
     recently used. A global stamp gives O(assoc) LRU with no list
     shuffling. *)
  tags : int array;
  recency : int array;
  valid : bool array;
  mutable stamp : int;
  mutable hits : int;
  mutable misses : int;
}

let log2_exact n =
  if not (Addr.is_power_of_two n) then invalid_arg "Cache: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~name ~size_bytes ~assoc ~line_bytes =
  if assoc <= 0 then invalid_arg "Cache.create: non-positive associativity";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line";
  let sets = size_bytes / (assoc * line_bytes) in
  if sets <= 0 then invalid_arg "Cache.create: zero sets";
  let pow2 = Addr.is_power_of_two sets in
  {
    name;
    line_bytes;
    line_bits = log2_exact line_bytes;
    sets;
    set_bits = (if pow2 then log2_exact sets else 0);
    set_mask = (if pow2 then sets - 1 else -1);
    assoc;
    tags = Array.make (sets * assoc) 0;
    recency = Array.make (sets * assoc) 0;
    valid = Array.make (sets * assoc) false;
    stamp = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let line = addr lsr t.line_bits in
  let set = if t.set_mask >= 0 then line land t.set_mask else line mod t.sets in
  let tag = if t.set_mask >= 0 then line lsr t.set_bits else line / t.sets in
  let base = set * t.assoc in
  t.stamp <- t.stamp + 1;
  let found = ref (-1) in
  let victim = ref base in
  let oldest = ref max_int in
  for w = base to base + t.assoc - 1 do
    if !found < 0 then begin
      if t.valid.(w) && t.tags.(w) = tag then found := w
      else if (not t.valid.(w)) && !oldest > min_int then begin
        (* Prefer an invalid way as the victim. *)
        victim := w;
        oldest := min_int
      end
      else if t.valid.(w) && t.recency.(w) < !oldest then begin
        victim := w;
        oldest := t.recency.(w)
      end
    end
  done;
  if !found >= 0 then begin
    t.recency.(!found) <- t.stamp;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.tags.(!victim) <- tag;
    t.valid.(!victim) <- true;
    t.recency.(!victim) <- t.stamp;
    t.misses <- t.misses + 1;
    false
  end

let locate t addr =
  let line = addr lsr t.line_bits in
  if t.set_mask >= 0 then (line land t.set_mask, line lsr t.set_bits)
  else (line mod t.sets, line / t.sets)

let contains t addr =
  let set, tag = locate t addr in
  let base = set * t.assoc in
  let rec go w =
    if w >= base + t.assoc then false
    else (t.valid.(w) && t.tags.(w) = tag) || go (w + 1)
  in
  go base

let fill t addr =
  let set, tag = locate t addr in
  let base = set * t.assoc in
  t.stamp <- t.stamp + 1;
  let found = ref (-1) in
  let victim = ref base in
  let oldest = ref max_int in
  for w = base to base + t.assoc - 1 do
    if !found < 0 then begin
      if t.valid.(w) && t.tags.(w) = tag then found := w
      else if (not t.valid.(w)) && !oldest > min_int then begin
        victim := w;
        oldest := min_int
      end
      else if t.valid.(w) && t.recency.(w) < !oldest then begin
        victim := w;
        oldest := t.recency.(w)
      end
    end
  done;
  if !found >= 0 then t.recency.(!found) <- t.stamp
  else begin
    t.tags.(!victim) <- tag;
    t.valid.(!victim) <- true;
    t.recency.(!victim) <- t.stamp
  end

let line_bytes t = t.line_bytes
let sets t = t.sets
let assoc t = t.assoc
let hits t = t.hits
let misses t = t.misses
let accesses t = t.hits + t.misses

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0

let flush t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  reset_counters t

let name t = t.name
