type entry = {
  oid : int;
  ctx : Context.id;
  bytes : int;
  seq : int;
  log : Heap_model.log; (* ctx's sequence log, resolved at enqueue time *)
}

(* The ring capacity is always a power of two, so index arithmetic is a
   mask, not a division. The per-traversal double-counting guard is an
   open-addressed table stamped with a generation counter: bumping the
   generation invalidates every slot at once, where the hashtable it
   replaces paid a full [Hashtbl.reset] per macro access. Entries with
   a stale generation read as empty. The window never holds more than
   [affinity_distance] entries (every entry contributes >= 1 byte), so
   the table is sized at twice the ring and stays sparse.

   Co-allocatability is memoised per (object, context) rather than per
   object pair: the test "did context c allocate strictly between the
   two objects' sequence numbers" only needs c's first allocation
   after the older object's seq, and that successor is immutable once
   it exists (logs append ever-larger seqs). With a handful of contexts
   the memo is a short int row per object — [next_rows.(oid).(c)]:

     -1         not computed yet
     s >= 0     c's first seq after this object's seq (final)
     -(w + 2)   no successor as of allocation watermark w: c had not
                allocated past this object when last probed, so the
                answer is only valid for interval ends <= w and is
                recomputed beyond that. *)
type t = {
  a : int; (* affinity distance, bytes *)
  heap : Heap_model.t;
  on_affinity : Context.id -> Context.id -> unit;
  mutable ring : entry array;
  mutable mask : int; (* Array.length ring - 1 *)
  mutable start : int; (* index of oldest entry *)
  mutable count : int;
  mutable accesses : int;
  mutable seen_oid : int array;
  mutable seen_gen : int array;
  mutable gen : int;
  mutable log_ctx : Context.id; (* one-entry ctx -> log memo *)
  mutable log_memo : Heap_model.log;
  mutable next_rows : int array array; (* oid -> per-context successor memo *)
}

let no_row = [||] (* shared placeholder for rows not materialised yet *)

let create ~affinity_distance ~heap ~on_affinity () =
  if affinity_distance <= 0 then
    invalid_arg "Affinity_queue.create: affinity distance must be positive";
  let dummy =
    { oid = -1; ctx = -1; bytes = 0; seq = -1; log = Heap_model.ctx_log heap (-1) }
  in
  {
    a = affinity_distance;
    heap;
    on_affinity;
    ring = Array.make 64 dummy;
    mask = 63;
    start = 0;
    count = 0;
    accesses = 0;
    seen_oid = Array.make 128 0;
    seen_gen = Array.make 128 0;
    gen = 0;
    log_ctx = -1;
    log_memo = dummy.log;
    next_rows = Array.make 1024 no_row;
  }

let length t = t.count
let accesses t = t.accesses

let nth_newest t i =
  (* i = 0 is the newest entry. *)
  t.ring.((t.start + t.count - 1 - i) land t.mask)

let push t e =
  if t.count = Array.length t.ring then begin
    let cap = 2 * t.count in
    let bigger = Array.make cap e in
    for i = 0 to t.count - 1 do
      bigger.(i) <- t.ring.((t.start + i) land t.mask)
    done;
    t.ring <- bigger;
    t.mask <- cap - 1;
    t.start <- 0;
    (* Keep the guard at twice the ring; fresh arrays start a fresh
       generation epoch. *)
    t.seen_oid <- Array.make (2 * cap) 0;
    t.seen_gen <- Array.make (2 * cap) 0;
    t.gen <- 0
  end;
  t.ring.((t.start + t.count) land t.mask) <- e;
  t.count <- t.count + 1

let drop_oldest t n =
  let n = min n t.count in
  t.start <- (t.start + n) land t.mask;
  t.count <- t.count - n

(* True iff [oid] was not yet marked this generation; marks it.
   (Tail-recursive probe: local [ref] cells would heap-allocate on
   every call of this per-window-entry path.) *)
let seen_first t oid =
  let mask = Array.length t.seen_oid - 1 in
  let rec probe i =
    if t.seen_gen.(i) <> t.gen then begin
      t.seen_gen.(i) <- t.gen;
      t.seen_oid.(i) <- oid;
      true
    end
    else if t.seen_oid.(i) = oid then false
    else probe ((i + 1) land mask)
  in
  probe (oid * 0x9E3779B1 land mask)

(* [w]'s successor-memo row, materialised and wide enough for [c]. *)
let row_for t oid c =
  if oid >= Array.length t.next_rows then begin
    let cap = max (2 * Array.length t.next_rows) (oid + 1) in
    let rows = Array.make cap no_row in
    Array.blit t.next_rows 0 rows 0 (Array.length t.next_rows);
    t.next_rows <- rows
  end;
  let row = t.next_rows.(oid) in
  if c < Array.length row then row
  else begin
    let wider = Array.make (max 8 (max (2 * Array.length row) (c + 1))) (-1) in
    Array.blit row 0 wider 0 (Array.length row);
    t.next_rows.(oid) <- wider;
    wider
  end

(* "Context [c] made no allocation strictly between [w.seq] and [hi]",
   i.e. c's first seq after w.seq is >= hi. [clog] is c's log. *)
let no_alloc_between t (w : entry) c clog hi =
  let row = row_for t w.oid c in
  let m = row.(c) in
  if m >= 0 then m >= hi
  else if m <> -1 && hi + 2 <= -m then true
  else begin
    let s = Heap_model.log_next clog ~after:w.seq in
    if s <> max_int then begin
      row.(c) <- s;
      s >= hi
    end
    else begin
      (* No successor yet: sound for interval ends up to the current
         allocation watermark, revisited past it. *)
      let watermark = Heap_model.allocs_total t.heap in
      row.(c) <- -(watermark + 2);
      hi <= watermark
    end
  end

let co_allocatable t (u : entry) (v : entry) =
  let w, hi = if u.seq <= v.seq then (u, v.seq) else (v, u.seq) in
  no_alloc_between t w u.ctx u.log hi
  && (v.ctx = u.ctx || no_alloc_between t w v.ctx v.log hi)

let add t (o : Heap_model.obj) ~bytes =
  if bytes <= 0 then invalid_arg "Affinity_queue.add: non-positive access size";
  (* Deduplication: a repeat of the immediately preceding object is part of
     the same macro-level access. *)
  if t.count > 0 && (nth_newest t 0).oid = o.Heap_model.oid then false
  else begin
    t.accesses <- t.accesses + 1;
    let ctx = o.Heap_model.ctx in
    if ctx <> t.log_ctx then begin
      t.log_memo <- Heap_model.ctx_log t.heap ctx;
      t.log_ctx <- ctx
    end;
    let u =
      {
        oid = o.Heap_model.oid;
        ctx;
        bytes;
        seq = o.Heap_model.seq;
        log = t.log_memo;
      }
    in
    t.gen <- t.gen + 1;
    let rec walk i acc =
      if i < t.count then begin
        let v = nth_newest t i in
        let acc = acc + v.bytes in
        if acc >= t.a then
          (* Entries older than this one can never again fall inside the
             window (future accumulated distances only grow), so trim
             them. *)
          drop_oldest t (t.count - i)
        else begin
          if v.oid <> u.oid && seen_first t v.oid then
            if co_allocatable t u v then t.on_affinity u.ctx v.ctx;
          walk (i + 1) acc
        end
      end
    in
    walk 0 0;
    push t u;
    true
  end
