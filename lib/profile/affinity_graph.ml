(* The hashtables remain the single source of truth; the two caches
   below only hold references INTO them, so every read path is
   oblivious to caching:

   - [acc_fast] maps dense context ids straight to their access
     counter, turning the per-macro-access bump into an array index;
   - [pair_cache] is a small direct-mapped cache of (x, y) -> the three
     counter refs an affinity bump touches (weight + both adjacency
     entries), since profiling hammers the same few context pairs. *)
type pair_slot = {
  mutable p_x : Context.id; (* normalised x <= y; min_int when empty *)
  mutable p_y : Context.id;
  mutable p_w : int ref;
  mutable p_xy : int ref;
  mutable p_yx : int ref; (* == p_xy for self-edges *)
}

let pair_cache_size = 256 (* power of two *)

type t = {
  accesses : (Context.id, int ref) Hashtbl.t;
  weights : (Context.id * Context.id, int ref) Hashtbl.t; (* key normalised x <= y *)
  adj : (Context.id, (Context.id, int ref) Hashtbl.t) Hashtbl.t;
  mutable total : int;
  mutable reported_total : int option;
      (* Set on filtered copies: the pre-filter access total. *)
  mutable acc_fast : int ref array; (* indexed by context id *)
  pair_cache : pair_slot array;
}

let zero = ref 0 (* placeholder for empty cache slots; never bumped *)

let create () =
  {
    accesses = Hashtbl.create 256;
    weights = Hashtbl.create 1024;
    adj = Hashtbl.create 256;
    total = 0;
    reported_total = None;
    acc_fast = [||];
    pair_cache =
      Array.init pair_cache_size (fun _ ->
          { p_x = min_int; p_y = min_int; p_w = zero; p_xy = zero; p_yx = zero });
  }

let counter tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace tbl key r;
      r

let acc_ref t x =
  if x >= 0 && x < Array.length t.acc_fast then begin
    let r = t.acc_fast.(x) in
    if r != zero then r
    else begin
      (* Slot not wired yet: bind it to the authoritative counter
         (creating that in the table if needed — [zero] placeholders
         never create phantom nodes). *)
      let r = counter t.accesses x in
      t.acc_fast.(x) <- r;
      r
    end
  end
  else begin
    let r = counter t.accesses x in
    if x >= 0 then begin
      let cap = max 64 (max (2 * Array.length t.acc_fast) (x + 1)) in
      let fast = Array.make cap zero in
      Array.blit t.acc_fast 0 fast 0 (Array.length t.acc_fast);
      fast.(x) <- r;
      t.acc_fast <- fast
    end;
    r
  end

let add_access t x =
  incr (acc_ref t x);
  t.total <- t.total + 1

let add_access_n t x n =
  if n < 0 then invalid_arg "Affinity_graph.add_access_n: negative count";
  let r = counter t.accesses x in
  r := !r + n;
  t.total <- t.total + n

let adj_tbl t x =
  match Hashtbl.find_opt t.adj x with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 8 in
      Hashtbl.replace t.adj x tbl;
      tbl

let add_affinity_slow t a b n =
  (* Ensure both endpoints exist as nodes (with zero accesses until
     [add_access] says otherwise). *)
  ignore (counter t.accesses a : int ref);
  ignore (counter t.accesses b : int ref);
  let bump tbl key =
    let r = counter tbl key in
    r := !r + n
  in
  bump t.weights (a, b);
  bump (adj_tbl t a) b;
  if a <> b then bump (adj_tbl t b) a

let add_affinity_n t x y n =
  if n < 0 then invalid_arg "Affinity_graph.add_affinity_n: negative weight";
  let a, b = if x <= y then (x, y) else (y, x) in
  let slot = t.pair_cache.((a * 31 + b) land (pair_cache_size - 1)) in
  if slot.p_x = a && slot.p_y = b then begin
    slot.p_w := !(slot.p_w) + n;
    slot.p_xy := !(slot.p_xy) + n;
    if a <> b then slot.p_yx := !(slot.p_yx) + n
  end
  else begin
    add_affinity_slow t a b n;
    slot.p_x <- a;
    slot.p_y <- b;
    slot.p_w <- counter t.weights (a, b);
    slot.p_xy <- counter (adj_tbl t a) b;
    slot.p_yx <- (if a <> b then counter (adj_tbl t b) a else slot.p_xy)
  end

let add_affinity t x y = add_affinity_n t x y 1

let reported_total t = t.reported_total
let set_reported_total t v = t.reported_total <- v

let node_accesses t x =
  match Hashtbl.find_opt t.accesses x with Some r -> !r | None -> 0

let weight t x y =
  let key = if x <= y then (x, y) else (y, x) in
  match Hashtbl.find_opt t.weights key with Some r -> !r | None -> 0

let total_accesses t =
  match t.reported_total with Some n -> n | None -> t.total

let nodes t =
  Hashtbl.fold (fun x _ acc -> x :: acc) t.accesses [] |> List.sort compare

let edges t =
  Hashtbl.fold (fun (x, y) w acc -> if !w > 0 then (x, y, !w) :: acc else acc)
    t.weights []

let edges_of t x =
  match Hashtbl.find_opt t.adj x with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun y w acc -> if !w > 0 then (y, !w) :: acc else acc) tbl []

let copy_structure t ~keep_node ~keep_edge =
  let out = create () in
  Hashtbl.iter
    (fun x r ->
      if keep_node x then begin
        Hashtbl.replace out.accesses x (ref !r);
        out.total <- out.total + !r
      end)
    t.accesses;
  Hashtbl.iter
    (fun (x, y) w ->
      if !w > 0 && keep_node x && keep_node y && keep_edge !w then begin
        Hashtbl.replace out.weights (x, y) (ref !w);
        (counter (adj_tbl out x) y) := !w;
        if x <> y then (counter (adj_tbl out y) x) := !w
      end)
    t.weights;
  out.reported_total <- Some (total_accesses t);
  out

let filter_top t ~coverage =
  if coverage <= 0.0 || coverage > 1.0 then
    invalid_arg "Affinity_graph.filter_top: coverage must be in (0,1]";
  let by_heat =
    nodes t
    |> List.map (fun x -> (node_accesses t x, x))
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  let target =
    int_of_float (ceil (coverage *. float_of_int (total_accesses t)))
  in
  let kept = Hashtbl.create 64 in
  let cum = ref 0 in
  List.iter
    (fun (acc, x) ->
      (* Nodes are added until the running total has reached the target;
         every node after that point is discarded (§4.1). *)
      if !cum < target then begin
        Hashtbl.replace kept x ();
        cum := !cum + acc
      end)
    by_heat;
  copy_structure t ~keep_node:(Hashtbl.mem kept) ~keep_edge:(fun _ -> true)

let prune_edges t ~min_weight =
  copy_structure t ~keep_node:(fun _ -> true) ~keep_edge:(fun w -> w >= min_weight)

let subgraph_weight t group =
  let members = Hashtbl.create 16 in
  List.iter (fun x -> Hashtbl.replace members x ()) group;
  Hashtbl.fold
    (fun (x, y) w acc ->
      if Hashtbl.mem members x && Hashtbl.mem members y then acc + !w else acc)
    t.weights 0
