(** The profiling stage (§4.1) — the reproduction's Intel Pin tool.

    Runs the target program under full instrumentation, tracking live heap
    data at object granularity and building the affinity graph. As in the
    paper, no sampling or other accuracy/speed trade-off is applied; the
    whole point of profiling on small [test] inputs is to keep this
    affordable.

    The profiling run executes on a private simulated address space with
    the default (jemalloc-like) allocator — placement during profiling is
    irrelevant, since the model is keyed by object identity, not
    address. *)

type config = {
  affinity_distance : int;  (** [A], bytes; the paper selects 128. *)
  max_tracked_size : int;
      (** Maximum grouped-object size (4 KiB in §5.1): larger allocations
          are never group-allocated, so they are not modelled. *)
  node_coverage : float;
      (** Post-run noise filter: keep hottest nodes covering this fraction
          of observed accesses (0.9 in §4.1). *)
  seed : int;  (** Program-input seed for the profiling run. *)
  sample_period : int;
      (** 1 = every access (the paper's choice: "we do not apply any
          optimisations to this process, such as sampling"). N > 1 models
          the speed/accuracy trade-off the paper declined: only every Nth
          heap access enters the affinity queue. The sampling ablation
          bench quantifies what that would have cost. *)
}

val default_config : config
(** [A = 128], 4 KiB max object, 0.9 coverage, seed 1. *)

type result = {
  graph : Affinity_graph.t;  (** Noise-filtered affinity graph. *)
  raw_graph : Affinity_graph.t;  (** Pre-filter graph, for inspection. *)
  contexts : Context.table;
      (** Every allocation context observed (also those filtered from the
          graph) — identification needs them all to count conflicts. *)
  total_accesses : int;  (** Macro-level tracked accesses. *)
  tracked_allocs : int;
  instructions : int;  (** Instructions retired by the profiling run. *)
}

val profile :
  ?obs:Obs.t -> ?engine:Engine.kind -> ?config:config -> Ir.program -> result
(** Profile one complete run of the program. [engine] picks the
    execution engine for the profiling run (default [Interp]; [Traced]
    is bit-identical and faster, [Selfcheck] cross-checks). It is a
    per-call knob, not a [config] field, so stored profile configs and
    their codec stay unchanged. [obs] opens the [profile] and
    [affinity-graph] spans, threads telemetry into the interpreter, and
    samples the [profile.affinity_queue.depth] histogram (every 64 macro
    accesses) plus a trace series point every 4096; omitted, the profiling
    hooks are the uninstrumented seed hooks. Every invocation bumps the
    [profile.runs] counter (when [obs] is given) — the plan cache's
    zero-reprofiling guarantee is asserted against it. *)
