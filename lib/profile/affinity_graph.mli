(** The pairwise affinity graph (§4.1).

    Nodes are reduced allocation contexts; the weight of edge (x, y) counts
    contemporaneous accesses to objects allocated from x and y within the
    affinity window. Loop edges (x, x) are legal and meaningful: they
    record affinity between distinct objects of a single context. Nodes
    also carry access counts, used both for the post-run noise filter (keep
    the hottest nodes covering 90% of observed accesses) and for grouping
    decisions. *)

type t

val create : unit -> t

val add_access : t -> Context.id -> unit
(** Count one macro-level access to an object of this context (creates the
    node if needed). *)

val add_affinity : t -> Context.id -> Context.id -> unit
(** Increment the (x, y) edge weight by one (undirected; x = y allowed). *)

(** {2 Bulk construction}

    The persistent store decodes recorded graphs (and merges graphs
    across runs) with whole counts at a time; incrementing one by one
    would make decoding quadratic in profile length. *)

val add_access_n : t -> Context.id -> int -> unit
(** Count [n] accesses at once ([n >= 0]); [add_access] is [n = 1]. *)

val add_affinity_n : t -> Context.id -> Context.id -> int -> unit
(** Add [n] to the (x, y) edge weight at once ([n >= 0]). *)

val reported_total : t -> int option
(** The pre-filter access total carried by a {!filter_top} result, if this
    graph is such a copy — [total_accesses] reports it when present. The
    store persists it so a decoded graph thresholds like the original. *)

val set_reported_total : t -> int option -> unit
(** Restore the pre-filter total on a decoded graph. *)

val node_accesses : t -> Context.id -> int
(** 0 for absent nodes. *)

val weight : t -> Context.id -> Context.id -> int
val total_accesses : t -> int
val nodes : t -> Context.id list
(** Ascending by id. *)

val edges : t -> (Context.id * Context.id * int) list
(** Normalised (x <= y), positive-weight edges, in unspecified order. *)

val edges_of : t -> Context.id -> (Context.id * int) list
(** Neighbours of a node with edge weights (includes itself if a loop edge
    exists). *)

val filter_top : t -> coverage:float -> t
(** The paper's noise filter: iterate nodes from most- to least-accessed,
    accumulating access counts; once [coverage] (e.g. 0.9) of all observed
    accesses is covered, discard the remaining nodes (and their edges).
    [total_accesses] of the result still reports the original total, since
    thresholds in grouping are expressed against all observed accesses. *)

val prune_edges : t -> min_weight:int -> t
(** Drop edges with weight below [min_weight] (grouping's first step). *)

val subgraph_weight : t -> Context.id list -> int
(** Sum of weights of edges with both endpoints in the list (loops
    included) — the "group weight" tested against the gthresh cutoff. *)
