type config = {
  affinity_distance : int;
  max_tracked_size : int;
  node_coverage : float;
  seed : int;
  sample_period : int;
}

let default_config =
  {
    affinity_distance = 128;
    max_tracked_size = 4096;
    node_coverage = 0.9;
    seed = 1;
    sample_period = 1;
  }

type result = {
  graph : Affinity_graph.t;
  raw_graph : Affinity_graph.t;
  contexts : Context.table;
  total_accesses : int;
  tracked_allocs : int;
  instructions : int;
}

(* Affinity-queue pressure: depth histogram every [depth_sample] macro
   accesses, one trace series point every [series_sample]. Powers of two so
   the sampling test is a land. *)
let depth_sample = 64
let series_sample = 4096

let profile ?obs ?(engine = Engine.Interp) ?(config = default_config) program =
  (* One count per full-instrumentation run: the plan cache's "a warmed
     cache re-profiles nothing" guarantee is asserted against it. *)
  Obs.count obs "profile.runs" 1;
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let contexts = Context.create () in
  let heap = Heap_model.create () in
  let graph = Affinity_graph.create () in
  let queue =
    Affinity_queue.create ~affinity_distance:config.affinity_distance ~heap
      ~on_affinity:(fun x y -> Affinity_graph.add_affinity graph x y)
      ()
  in
  if config.sample_period < 1 then
    invalid_arg "Profiler.profile: sample_period must be >= 1";
  let tracked_allocs = ref 0 in
  let tick = ref 0 in
  (* The interpreter serves context arrays from a per-stack-node cache,
     so the common case — an allocation site looping at a fixed stack —
     hands us the same physically-equal array every iteration; memoise
     the interning on that identity and skip hashing the array. *)
  let last_sites = ref [||] in
  let last_cid = ref (-1) in
  let track addr size ctx_sites =
    if size <= config.max_tracked_size then begin
      let cid =
        if ctx_sites == !last_sites then !last_cid
        else begin
          let cid = Context.intern contexts ctx_sites in
          last_sites := ctx_sites;
          last_cid := cid;
          cid
        end
      in
      ignore (Heap_model.on_alloc heap ~addr ~size ~ctx:cid : Heap_model.obj);
      incr tracked_allocs
    end
  in
  let record_sample addr size =
    match Heap_model.find heap addr with
    | None -> ()
    | Some o ->
        if Affinity_queue.add queue o ~bytes:size then
          Affinity_graph.add_access graph o.Heap_model.ctx
  in
  (* The paper's configuration samples nothing (period 1): specialise
     away the tick bookkeeping on that path. Telemetry keeps its own
     access counter below. *)
  let record_access =
    if config.sample_period = 1 then record_sample
    else fun addr size ->
      incr tick;
      if !tick mod config.sample_period = 0 then record_sample addr size
  in
  let on_access =
    (* Specialised at construction: with [obs = None] the hook is exactly
       the seed profiling hook. *)
    match obs with
    | None -> fun addr size _write -> record_access addr size
    | Some o ->
        let h_depth =
          Metrics.histogram (Obs.metrics o) "profile.affinity_queue.depth"
        in
        (* Own access counter: [tick] is sampling bookkeeping and stays
           untouched on the period-1 fast path. *)
        let obs_tick = ref 0 in
        fun addr size _write ->
          record_access addr size;
          incr obs_tick;
          if !obs_tick land (depth_sample - 1) = 0 then begin
            let d = float_of_int (Affinity_queue.length queue) in
            Metrics.observe h_depth d;
            if !obs_tick land (series_sample - 1) = 0 then
              Obs.event obs ~name:"profile.affinity_queue.depth"
                ~attrs:[ ("tick", Json.Int !obs_tick) ]
                d
          end
  in
  let hooks =
    {
      Interp.on_access;
      on_alloc = (fun addr size _site ctx -> track addr size ctx);
      on_realloc =
        (fun old_addr addr size _site ctx ->
          ignore (Heap_model.on_free heap ~addr:old_addr : Heap_model.obj option);
          track addr size ctx);
      on_free =
        (fun addr -> ignore (Heap_model.on_free heap ~addr : Heap_model.obj option));
    }
  in
  let interp =
    Engine.create ~kind:engine ~seed:config.seed ~hooks ?obs ~program ~alloc ()
  in
  Obs.span obs "profile"
    ~attrs:[ ("stage", Json.String "profile") ]
    ~instructions:(fun () -> Engine.instructions interp)
    (fun () ->
      ignore (Engine.run interp : int);
      Obs.add_attrs obs
        [
          ("tracked_allocs", Json.Int !tracked_allocs);
          ("contexts", Json.Int (Context.count contexts));
          ("macro_accesses", Json.Int (Affinity_queue.accesses queue));
        ]);
  let filtered =
    Obs.span obs "affinity-graph"
      ~attrs:[ ("stage", Json.String "affinity-graph") ]
      (fun () ->
        let filtered =
          Affinity_graph.filter_top graph ~coverage:config.node_coverage
        in
        Obs.add_attrs obs
          [
            ("raw_nodes", Json.Int (List.length (Affinity_graph.nodes graph)));
            ("nodes", Json.Int (List.length (Affinity_graph.nodes filtered)));
            ("edges", Json.Int (List.length (Affinity_graph.edges filtered)));
          ];
        filtered)
  in
  {
    graph = filtered;
    raw_graph = graph;
    contexts;
    total_accesses = Affinity_queue.accesses queue;
    tracked_allocs = !tracked_allocs;
    instructions = Engine.instructions interp;
  }
