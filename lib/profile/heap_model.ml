module Addr_map = Map.Make (Int)

type obj = { oid : int; addr : Addr.t; size : int; ctx : Context.id; seq : int }

(* Per-context allocation sequence numbers, appended in increasing order
   (seq is global and monotonic), so membership in an open interval is a
   binary search. Exposed as an abstract [log] so the affinity queue can
   resolve a context's log once and query it per window entry without
   re-paying the hashtable lookup. *)
type seq_log = { mutable data : int array; mutable len : int }

type log = seq_log

(* [find] fast paths, in probe order:

   - a one-entry cache holding the last hit's [Some obj] cell (access
     streams hammer one object at a time, and reusing the cell keeps
     repeats allocation-free);
   - a side table from 16-byte-aligned pages to the live object covering
     them, maintained for objects spanning at most [side_cap_pages]
     pages. 16 bytes matches the minimum size class, so under a real
     allocator distinct live objects never share a page; if callers
     hand-craft overlapping layouts the entry is merely stale-free
     best-effort — every hit is containment-checked and misses fall
     through to the ordered map, which remains the single source of
     truth. *)
let side_page_bits = 4
let side_cap_pages = 64

type t = {
  mutable live : obj Addr_map.t; (* keyed by base address *)
  mutable next_oid : int;
  mutable next_seq : int;
  ctx_seqs : (Context.id, seq_log) Hashtbl.t;
  mutable last : obj option; (* last [find] hit *)
  side : (int, obj) Hashtbl.t; (* 16-byte page -> covering live object *)
}

let create () =
  {
    live = Addr_map.empty;
    next_oid = 0;
    next_seq = 0;
    ctx_seqs = Hashtbl.create 64;
    last = None;
    side = Hashtbl.create 1024;
  }

let side_span o =
  let first = o.addr asr side_page_bits in
  let last = (o.addr + max o.size 1 - 1) asr side_page_bits in
  (first, last)

let log_push t ctx seq =
  let log =
    match Hashtbl.find_opt t.ctx_seqs ctx with
    | Some l -> l
    | None ->
        let l = { data = Array.make 16 0; len = 0 } in
        Hashtbl.replace t.ctx_seqs ctx l;
        l
  in
  if log.len = Array.length log.data then begin
    let bigger = Array.make (2 * log.len) 0 in
    Array.blit log.data 0 bigger 0 log.len;
    log.data <- bigger
  end;
  log.data.(log.len) <- seq;
  log.len <- log.len + 1

let on_alloc t ~addr ~size ~ctx =
  let o = { oid = t.next_oid; addr; size; ctx; seq = t.next_seq } in
  t.next_oid <- t.next_oid + 1;
  t.next_seq <- t.next_seq + 1;
  log_push t ctx o.seq;
  t.live <- Addr_map.add addr o t.live;
  let first, last = side_span o in
  if last - first < side_cap_pages then
    for p = first to last do
      Hashtbl.replace t.side p o
    done;
  o

let on_free t ~addr =
  match Addr_map.find_opt addr t.live with
  | None -> None
  | Some o ->
      t.live <- Addr_map.remove addr t.live;
      (match t.last with
      | Some o' when o'.oid = o.oid -> t.last <- None
      | _ -> ());
      let first, last = side_span o in
      if last - first < side_cap_pages then
        for p = first to last do
          match Hashtbl.find_opt t.side p with
          | Some o' when o'.oid = o.oid -> Hashtbl.remove t.side p
          | _ -> ()
        done;
      Some o

let find_slow t addr =
  match Addr_map.find_last_opt (fun base -> base <= addr) t.live with
  | Some (_, o) when addr < o.addr + max o.size 1 -> Some o
  | _ -> None

let find t addr =
  match t.last with
  | Some o when addr - o.addr >= 0 && addr - o.addr < max o.size 1 -> t.last
  | _ ->
      let r =
        match Hashtbl.find t.side (addr asr side_page_bits) with
        | o when addr - o.addr >= 0 && addr - o.addr < max o.size 1 -> Some o
        | _ -> find_slow t addr
        | exception Not_found -> find_slow t addr
      in
      (match r with Some _ -> t.last <- r | None -> ());
      r

let live_count t = Addr_map.cardinal t.live
let allocs_total t = t.next_seq

let ctx_log t ctx =
  match Hashtbl.find_opt t.ctx_seqs ctx with
  | Some l -> l
  | None ->
      (* Materialise the (empty) log so the handle stays valid when the
         context allocates later — [log_push] appends into it. *)
      let l = { data = Array.make 16 0; len = 0 } in
      Hashtbl.replace t.ctx_seqs ctx l;
      l

let log_next log ~after =
  (* First sequence number in [log] strictly greater than [after];
     [max_int] if none yet. *)
  let a = ref 0 and b = ref log.len in
  while !a < !b do
    let mid = (!a + !b) / 2 in
    if log.data.(mid) <= after then a := mid + 1 else b := mid
  done;
  if !a < log.len then log.data.(!a) else max_int

let log_allocs_in_range log ~lo ~hi =
  if hi - lo <= 1 then false
  else begin
    (* Find the first seq > lo; check whether it is < hi. *)
    let a = ref 0 and b = ref log.len in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      if log.data.(mid) <= lo then a := mid + 1 else b := mid
    done;
    !a < log.len && log.data.(!a) < hi
  end

let ctx_allocs_in_range t ~ctx ~lo ~hi =
  match Hashtbl.find_opt t.ctx_seqs ctx with
  | None -> false
  | Some log -> log_allocs_in_range log ~lo ~hi
