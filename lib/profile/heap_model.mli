(** Object-granularity tracking of live heap data (§4.1).

    The profiling tool instruments all POSIX.1 memory-management calls and
    tracks live data at object granularity: every load/store is resolved to
    the heap object containing its target address, and every object knows
    the context it was allocated from and its position in allocation order
    (its {e sequence number}), which the affinity queue's co-allocatability
    constraint consults. *)

type obj = {
  oid : int;  (** Unique per tracked allocation (never reused). *)
  addr : Addr.t;
  size : int;  (** Requested bytes. *)
  ctx : Context.id;
  seq : int;  (** Position in allocation order, 0-based, across contexts. *)
}

type t

val create : unit -> t

val on_alloc : t -> addr:Addr.t -> size:int -> ctx:Context.id -> obj
(** Track a new allocation. The sequence number advances even for
    allocations a caller later decides not to model, so chronology matches
    the program's real allocation order. *)

val on_free : t -> addr:Addr.t -> obj option
(** Stop tracking the object based at [addr]; [None] if the address is not
    a tracked object's base (e.g. it was never tracked). *)

val find : t -> Addr.t -> obj option
(** The live tracked object whose [addr, addr+size) interval contains the
    given address, if any. *)

val live_count : t -> int
val allocs_total : t -> int

val ctx_allocs_in_range : t -> ctx:Context.id -> lo:int -> hi:int -> bool
(** Whether any allocation from [ctx] has a sequence number strictly
    between [lo] and [hi] — the co-allocatability test's primitive. Counts
    all allocations ever made (freed or not): chronology is immutable. *)

type log
(** A context's allocation-sequence log. A live handle: it reflects
    allocations made after it was obtained. *)

val ctx_log : t -> Context.id -> log
(** The log for [ctx] (created empty if the context has not allocated
    yet). The affinity queue resolves this once per queue entry instead
    of once per co-allocatability test. *)

val log_allocs_in_range : log -> lo:int -> hi:int -> bool
(** [ctx_allocs_in_range] on a pre-resolved log: a pure binary search,
    no table lookup. *)

val log_next : log -> after:int -> int
(** The smallest sequence number in the log strictly greater than
    [after], or [max_int] if the context has not allocated past [after]
    {e yet} — logs are append-only, so a finite answer is final but
    [max_int] can later become finite. *)
