let default_jobs () = Domain.recommended_domain_count ()

(* All pool timing reads the process-wide monotonic clock, so per-worker
   busy/queue-wait numbers and span timestamps share one timeline. *)
let now = Obs_clock.now

(* A queued task: runs on some worker, receives that worker's private
   observability context, and must not raise (futures capture). The
   enqueue timestamp feeds the queue-wait histogram. *)
type job = { run : Obs.t option -> unit; enqueued_s : float }

type worker = {
  w_id : int;
  w_obs : Obs.t option;
  (* w_tasks/w_busy_s are written only by the owning worker domain and
     read after the join in [shutdown]; Domain.join orders the accesses. *)
  mutable w_tasks : int;
  mutable w_busy_s : float;
  mutable w_domain : unit Domain.t option;
}

type pool = {
  p_name : string;
  p_obs : Obs.t option;
  p_sequential : bool; (* jobs = 1: run tasks inline, spawn nothing *)
  p_queue : job Queue.t;
  p_mutex : Mutex.t;
  p_work : Condition.t;
  mutable p_closed : bool;
  mutable p_submitted : int;
  mutable p_joined : bool;
  p_workers : worker array;
}

let jobs p = Array.length p.p_workers

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let run_job p w job =
  let t0 = now () in
  Obs.observe w.w_obs (p.p_name ^ ".queue_wait_s") (t0 -. job.enqueued_s);
  job.run w.w_obs;
  w.w_tasks <- w.w_tasks + 1;
  let dt = now () -. t0 in
  Obs.observe w.w_obs (p.p_name ^ ".task_s") dt;
  w.w_busy_s <- w.w_busy_s +. dt

let rec worker_loop p w =
  Mutex.lock p.p_mutex;
  while Queue.is_empty p.p_queue && not p.p_closed do
    Condition.wait p.p_work p.p_mutex
  done;
  match Queue.take_opt p.p_queue with
  | None ->
      (* Closed and drained. *)
      Mutex.unlock p.p_mutex
  | Some job ->
      Mutex.unlock p.p_mutex;
      run_job p w job;
      worker_loop p w

let create ?obs ?(name = "par") ~jobs () =
  let jobs = max 1 jobs in
  let workers =
    Array.init jobs (fun i ->
        {
          w_id = i;
          (* Workers share the parent's epoch and get their own track, so
             their spans land on per-domain lanes of the same timeline. *)
          w_obs =
            Option.map
              (fun parent -> Obs.create ~epoch:(Obs.epoch parent) ~track:(i + 1) ())
              obs;
          w_tasks = 0;
          w_busy_s = 0.0;
          w_domain = None;
        })
  in
  let p =
    {
      p_name = name;
      p_obs = obs;
      p_sequential = jobs = 1;
      p_queue = Queue.create ();
      p_mutex = Mutex.create ();
      p_work = Condition.create ();
      p_closed = false;
      p_submitted = 0;
      p_joined = false;
      p_workers = workers;
    }
  in
  if not p.p_sequential then
    Array.iter
      (fun w -> w.w_domain <- Some (Domain.spawn (fun () -> worker_loop p w)))
      workers;
  p

let submit p f =
  let fut =
    { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending }
  in
  let run wobs =
    let result =
      try Done (f wobs)
      with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.f_mutex;
    fut.f_state <- result;
    Condition.broadcast fut.f_cond;
    Mutex.unlock fut.f_mutex
  in
  if p.p_joined then invalid_arg "Par.submit: pool is shut down";
  p.p_submitted <- p.p_submitted + 1;
  if p.p_sequential then run_job p p.p_workers.(0) { run; enqueued_s = now () }
  else begin
    Mutex.lock p.p_mutex;
    if p.p_closed then begin
      Mutex.unlock p.p_mutex;
      invalid_arg "Par.submit: pool is shut down"
    end;
    Queue.push { run; enqueued_s = now () } p.p_queue;
    Condition.signal p.p_work;
    Mutex.unlock p.p_mutex
  end;
  fut

let await fut =
  (* No polymorphic equality here: results may hold closures. *)
  let pending () = match fut.f_state with Pending -> true | _ -> false in
  Mutex.lock fut.f_mutex;
  while pending () do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let state = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown p =
  if not p.p_joined then begin
    p.p_joined <- true;
    if not p.p_sequential then begin
      Mutex.lock p.p_mutex;
      p.p_closed <- true;
      Condition.broadcast p.p_work;
      Mutex.unlock p.p_mutex;
      Array.iter (fun w -> Option.iter Domain.join w.w_domain) p.p_workers
    end;
    match p.p_obs with
    | None -> ()
    | Some _ ->
        (* Workers are quiescent: fold their registries into the parent in
           worker order (deterministic), graft their span trees onto the
           parent's (per-domain tracks), then account for the fan-out. *)
        Array.iter
          (fun w ->
            Option.iter
              (fun wobs ->
                Option.iter
                  (fun parent ->
                    Metrics.merge ~into:(Obs.metrics parent) (Obs.metrics wobs);
                    Obs.adopt parent ~from:wobs)
                  p.p_obs;
                Obs.event p.p_obs
                  ~name:(p.p_name ^ ".worker")
                  ~attrs:
                    [
                      ("worker", Json.Int w.w_id);
                      ("tasks", Json.Int w.w_tasks);
                    ]
                  w.w_busy_s)
              w.w_obs)
          p.p_workers;
        Obs.count p.p_obs (p.p_name ^ ".tasks") p.p_submitted;
        Obs.set_gauge p.p_obs
          (p.p_name ^ ".workers")
          (float_of_int (Array.length p.p_workers))
  end

let map_obs ?obs ?(name = "par") ?jobs f xs =
  match xs with
  | [] -> []
  | _ ->
      let n = List.length xs in
      let jobs =
        min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
      in
      Obs.span obs (name ^ ".map") ~attrs:[ ("tasks", Json.Int n) ] (fun () ->
          let p = create ?obs ~name ~jobs () in
          Fun.protect
            ~finally:(fun () -> shutdown p)
            (fun () ->
              let futs =
                List.rev
                  (List.fold_left
                     (fun acc x -> submit p (fun wobs -> f wobs x) :: acc)
                     [] xs)
              in
              (* Await in submission order: results come back in input
                 order and the first failure (in input order) wins. *)
              List.rev
                (List.fold_left (fun acc fut -> await fut :: acc) [] futs)))

let map ?obs ?name ?jobs f xs = map_obs ?obs ?name ?jobs (fun _ x -> f x) xs
