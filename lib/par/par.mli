(** Domain-parallel execution: a small fixed pool of worker domains.

    Every fan-out site in the stack — the experiment suite's
    workload×configuration×seed cells, fuzz-campaign seeds, benchmark
    trials — is embarrassingly parallel: each task builds its own
    {!Vmem}, allocator and interpreter, so tasks share no mutable state.
    This module supplies the one safe bridge between those tasks and the
    shared world:

    - a work queue guarded by [Mutex]/[Condition], drained by a fixed
      number of worker domains;
    - futures with {e deterministic result ordering}: {!map} returns
      results in submission order regardless of completion order, so a
      parallel run is bit-for-bit the sequential run;
    - exception capture in the worker and re-raise (with the original
      backtrace) at {!await};
    - domain-safe observability: the mutable {!Metrics} records are not
      safe for concurrent mutation, so each worker owns a private
      {!Obs.t} sharing the parent's epoch on its own track ([w_id + 1]);
      every task's queue wait and wall time land in the worker's
      [<name>.queue_wait_s] / [<name>.task_s] histograms. After the join
      the per-worker registries are folded into the parent with
      {!Metrics.merge}, worker span trees are grafted on with
      {!Obs.adopt} (so the Chrome-trace export shows one lane per
      domain), and one [par.worker] event per worker (tasks completed,
      busy seconds) is emitted, alongside the [par.tasks] counter and
      [par.workers] gauge.

    [jobs <= 1] never spawns a domain: tasks run inline, in submission
    order, on the calling domain — the sequential code path stays the
    sequential code path. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the cap applied when a caller
    does not pin a worker count. *)

(** {1 Pools and futures} *)

type pool

val create : ?obs:Obs.t -> ?name:string -> jobs:int -> unit -> pool
(** [create ~jobs ()] spawns [max 1 jobs] worker domains immediately.
    [name] (default ["par"]) prefixes the observability events emitted at
    {!shutdown}. [obs] is the {e parent} context: workers never touch it;
    it receives the merged registries after {!shutdown}. *)

val jobs : pool -> int

type 'a future

val submit : pool -> (Obs.t option -> 'a) -> 'a future
(** Enqueue a task. The function receives the executing worker's private
    observability context ([None] when the pool has no parent [obs]) and
    must not retain it past its own run. Tasks are started in submission
    order. Raises [Invalid_argument] if the pool is already shut down. *)

val await : 'a future -> 'a
(** Block until the task completes. Re-raises the task's exception with
    its original backtrace if it failed. *)

val shutdown : pool -> unit
(** Drain the queue, join every worker, then fold each worker's metric
    registry into the parent [obs] (when given) with {!Metrics.merge},
    adopt each worker's spans with {!Obs.adopt}, and emit the per-worker
    accounting events. Idempotent. *)

(** {1 Combinators} *)

val map :
  ?obs:Obs.t -> ?name:string -> ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element on a transient pool of
    [jobs] workers (default {!default_jobs}, capped at the element
    count) and returns the results {e in input order}. If any application
    raised, the first such exception (in input order) is re-raised after
    the pool is joined. *)

val map_obs :
  ?obs:Obs.t ->
  ?name:string ->
  ?jobs:int ->
  (Obs.t option -> 'a -> 'b) ->
  'a list ->
  'b list
(** As {!map}, but [f] also receives the worker-private observability
    context, so per-task spans and counters can be recorded concurrently
    and merged into [obs] after the join. *)
