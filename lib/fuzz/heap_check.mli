(** Heap-invariant checking as a transparent allocator wrapper.

    Wraps any {!Alloc_iface.t} and validates, on every call, the
    invariants every allocator in the reproduction must uphold
    (alloc_iface.mli's contract, §4.4's alignment guarantee):

    - malloc/calloc/realloc return non-null addresses aligned to at least
      8 bytes;
    - no two live blocks overlap (requested extents; 0-byte blocks must
      still have unique addresses);
    - [usable_size] of a fresh block is at least the requested size;
    - every free matches a live block of this allocator (no double or
      foreign frees), and realloc's old pointer is live or null.

    Violations are {e recorded}, not raised — the call is still forwarded
    so the run continues and one case can surface several violations. The
    underlying allocator may itself raise [Failure] (its simulated heap
    corruption); that propagates to the harness as a crash. *)

type t

val wrap : Alloc_iface.t -> t * Alloc_iface.t
(** [wrap alloc] returns the checker and the checked interface to hand to
    the interpreter in [alloc]'s place. *)

val violations : t -> string list
(** Violations recorded so far, in detection order. *)

val live_blocks : t -> int
(** Live (not yet freed) blocks currently tracked — leak accounting. *)
