module IMap = Map.Make (Int)

type t = {
  mutable live : (int * int) IMap.t; (* base address -> (object id, size) *)
  mutable next_id : int;
  mutable allocs : int;
  mutable frees : int;
  mutable accesses : int;
  mutable site_digest : int;
  mutable access_digest : int;
  mutable free_digest : int;
}

type digest = {
  allocs : int;
  frees : int;
  accesses : int;
  site_digest : int;
  access_digest : int;
  free_digest : int;
}

let create () =
  {
    live = IMap.empty;
    next_id = 0;
    allocs = 0;
    frees = 0;
    accesses = 0;
    site_digest = 0x811c9dc5;
    access_digest = 0x811c9dc5;
    free_digest = 0x811c9dc5;
  }

(* FNV-1a-style fold over native ints; wraparound is deterministic. *)
let mix h v = (h lxor v) * 0x100000001b3 land max_int

(* The object id (and intra-object offset) for a raw address: the live
   block with the greatest base <= addr. Accesses outside any live block
   fold a sentinel — a divergence signal of its own. *)
let resolve (t : t) addr =
  match IMap.find_last_opt (fun b -> b <= addr) t.live with
  | Some (base, (id, size)) when addr < base + max size 1 -> (id, addr - base)
  | _ -> (-1, addr land 0xfff)

let register (t : t) addr size =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.live <- IMap.add addr (id, size) t.live

let on_alloc (t : t) addr size site _ctx =
  t.allocs <- t.allocs + 1;
  t.site_digest <- mix (mix t.site_digest site) size;
  register t addr size

let on_realloc (t : t) old_addr new_addr size site _ctx =
  t.allocs <- t.allocs + 1;
  t.site_digest <- mix (mix (mix t.site_digest site) size) 0x7e;
  if old_addr <> Addr.null then t.live <- IMap.remove old_addr t.live;
  register t new_addr size

let on_free (t : t) addr =
  t.frees <- t.frees + 1;
  (match IMap.find_opt addr t.live with
  | Some (id, _) -> t.free_digest <- mix t.free_digest id
  | None -> t.free_digest <- mix t.free_digest (-1));
  t.live <- IMap.remove addr t.live

let on_access (t : t) addr size is_write =
  t.accesses <- t.accesses + 1;
  let id, off = resolve t addr in
  let w = if is_write then 1 else 0 in
  t.access_digest <-
    mix t.access_digest ((id * 1048573) + (off * 131) + (size * 2) + w)

let hooks t =
  {
    Interp.on_access = (fun addr size w -> on_access t addr size w);
    on_alloc = (fun addr size site ctx -> on_alloc t addr size site ctx);
    on_realloc =
      (fun old_a new_a size site ctx -> on_realloc t old_a new_a size site ctx);
    on_free = (fun addr -> on_free t addr);
  }

let digest (t : t) =
  {
    allocs = t.allocs;
    frees = t.frees;
    accesses = t.accesses;
    site_digest = t.site_digest;
    access_digest = t.access_digest;
    free_digest = t.free_digest;
  }

let equal a b = a = b

let describe_mismatch ~expected ~got =
  let fields =
    [
      ("allocs", expected.allocs, got.allocs);
      ("frees", expected.frees, got.frees);
      ("accesses", expected.accesses, got.accesses);
      ("site_digest", expected.site_digest, got.site_digest);
      ("access_digest", expected.access_digest, got.access_digest);
      ("free_digest", expected.free_digest, got.free_digest);
    ]
  in
  fields
  |> List.filter_map (fun (name, e, g) ->
         if e = g then None
         else Some (Printf.sprintf "%s: expected %d, got %d" name e g))
  |> String.concat "; "
