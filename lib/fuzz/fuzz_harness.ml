type config = {
  seeds : int;
  seed_base : int;
  ref_scale : int;
  time_budget : float option;
  corpus_dir : string option;
  shrink_steps : int;
  extra : (string * (Vmem.t -> Alloc_iface.t)) list;
  plan_source : Pipeline.plan_source option;
  engine : Engine.kind;
  traced_config : bool;
  jobs : int;
  obs : Obs.t option;
  log : (string -> unit) option;
}

let default =
  {
    seeds = 200;
    seed_base = 1;
    ref_scale = 3;
    time_budget = None;
    corpus_dir = None;
    shrink_steps = 2000;
    extra = [];
    plan_source = None;
    engine = Engine.Interp;
    (* Campaigns cross-check the trace engine by default; the golden
       digest corpus (digest_sweep) does not, to keep its recorded
       6-config shape. *)
    traced_config = true;
    jobs = 1;
    obs = None;
    log = None;
  }

type case_report = {
  seed : int;
  failures : Fuzz_oracle.failure list;
  original_stmts : int;
  shrunk_stmts : int;
  shrunk_trace : int array;
  shrink_steps_used : int;
  shrunk_program : string;
  saved_to : string option;
}

type summary = {
  cases : int;
  violations : int;
  failing_seeds : int list;
  reports : case_report list;
  allocs : int;
  accesses : int;
  elapsed_s : float;
}

let report_json r =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ( "failures",
        Json.List
          (List.map
             (fun (f : Fuzz_oracle.failure) ->
               Json.Obj
                 [
                   ("config", Json.String f.Fuzz_oracle.config);
                   ("reason", Json.String f.Fuzz_oracle.reason);
                 ])
             r.failures) );
      ("original_stmts", Json.Int r.original_stmts);
      ("shrunk_stmts", Json.Int r.shrunk_stmts);
      ("shrink_steps", Json.Int r.shrink_steps_used);
      ( "shrunk_trace",
        Json.List (Array.to_list (Array.map (fun v -> Json.Int v) r.shrunk_trace))
      );
      ("shrunk_program", Json.String r.shrunk_program);
    ]

let save_corpus ~dir r =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (Printf.sprintf "seed_%d.json" r.seed) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (report_json r));
  path

(* [traced_config] defaults to the campaign's default, keeping replay
   bit-for-bit the campaign's view of the seed. *)
let replay ?(ref_scale = 3) ?(extra = []) ?engine ?(traced_config = true) seed =
  let case = Fuzz_gen.generate ~ref_scale ~seed () in
  (case, Fuzz_oracle.run_case ~extra ?engine ~traced_config case)

(* ------------------------------------------------------------------ *)
(* Semantic digest corpus: a fixed seed set's oracle observables,      *)
(* recorded to JSON so that interpreter/profiler changes can be        *)
(* checked bit-for-bit against previously recorded behaviour.          *)
(* ------------------------------------------------------------------ *)

type digest_record = {
  d_seed : int;
  d_failures : int;
  d_ret : (int, string) Stdlib.result;
  d_dig : Fuzz_observe.digest;
  d_stats : Fuzz_oracle.stats;
}

let digest_sweep ?(ref_scale = 3) ?(seed_base = 1) ?engine ~seeds () =
  List.init seeds (fun k ->
      let seed = seed_base + k in
      let case = Fuzz_gen.generate ~ref_scale ~seed () in
      let r = Fuzz_oracle.run_case ?engine case in
      {
        d_seed = seed;
        d_failures = List.length r.Fuzz_oracle.failures;
        d_ret = r.Fuzz_oracle.ref_ret;
        d_dig = r.Fuzz_oracle.ref_dig;
        d_stats = r.Fuzz_oracle.stats;
      })

let digest_record_json r =
  let open Json in
  let dig = r.d_dig in
  let stats = r.d_stats in
  Obj
    ([ ("seed", Int r.d_seed); ("failures", Int r.d_failures) ]
    @ (match r.d_ret with
      | Ok v -> [ ("ret", Int v) ]
      | Error msg -> [ ("crash", String msg) ])
    @ [
        ("allocs", Int dig.Fuzz_observe.allocs);
        ("frees", Int dig.Fuzz_observe.frees);
        ("accesses", Int dig.Fuzz_observe.accesses);
        ("site_digest", Int dig.Fuzz_observe.site_digest);
        ("access_digest", Int dig.Fuzz_observe.access_digest);
        ("free_digest", Int dig.Fuzz_observe.free_digest);
        ("configs", Int stats.Fuzz_oracle.configs);
        ("oracle_allocs", Int stats.Fuzz_oracle.allocs);
        ("oracle_accesses", Int stats.Fuzz_oracle.accesses);
        ("groups", Int stats.Fuzz_oracle.groups);
        ("monitored", Int stats.Fuzz_oracle.monitored);
        ("contexts", Int stats.Fuzz_oracle.contexts);
      ])

let digests_json ~ref_scale records =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("ref_scale", Json.Int ref_scale);
      ("cases", Json.List (List.map digest_record_json records));
    ]

let digest_record_of_json j =
  let open Json in
  let field name =
    match j with
    | Obj fields -> List.assoc_opt name fields
    | _ -> None
  in
  let int_field name =
    match field name with
    | Some (Int v) -> Ok v
    | _ -> Error (Printf.sprintf "digest corpus: missing int field %S" name)
  in
  let ( let* ) = Result.bind in
  let* seed = int_field "seed" in
  let* failures = int_field "failures" in
  let* ret =
    match (field "ret", field "crash") with
    | Some (Int v), _ -> Ok (Ok v)
    | _, Some (String msg) -> Ok (Error msg)
    | _ -> Error (Printf.sprintf "seed %d: missing ret/crash" seed)
  in
  let* allocs = int_field "allocs" in
  let* frees = int_field "frees" in
  let* accesses = int_field "accesses" in
  let* site_digest = int_field "site_digest" in
  let* access_digest = int_field "access_digest" in
  let* free_digest = int_field "free_digest" in
  let* configs = int_field "configs" in
  let* oracle_allocs = int_field "oracle_allocs" in
  let* oracle_accesses = int_field "oracle_accesses" in
  let* groups = int_field "groups" in
  let* monitored = int_field "monitored" in
  let* contexts = int_field "contexts" in
  Ok
    {
      d_seed = seed;
      d_failures = failures;
      d_ret = ret;
      d_dig =
        {
          Fuzz_observe.allocs;
          frees;
          accesses;
          site_digest;
          access_digest;
          free_digest;
        };
      d_stats =
        {
          Fuzz_oracle.configs;
          allocs = oracle_allocs;
          accesses = oracle_accesses;
          groups;
          monitored;
          contexts;
        };
    }

let digests_of_json j =
  let open Json in
  match j with
  | Obj fields -> (
      match
        (List.assoc_opt "ref_scale" fields, List.assoc_opt "cases" fields)
      with
      | Some (Int ref_scale), Some (List cases) ->
          let rec go acc = function
            | [] -> Ok (ref_scale, List.rev acc)
            | c :: rest -> (
                match digest_record_of_json c with
                | Ok r -> go (r :: acc) rest
                | Error e -> Error e)
          in
          go [] cases
      | _ -> Error "digest corpus: missing ref_scale/cases")
  | _ -> Error "digest corpus: not a JSON object"

let save_digests ~path ~ref_scale records =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string ~pretty:true (digests_json ~ref_scale records));
      output_char oc '\n')

let load_digests ~path =
  match
    Json.of_string (In_channel.with_open_bin path In_channel.input_all)
  with
  | Error e -> Error e
  | Ok j -> digests_of_json j

(* Field-by-field mismatch report, so a semantic regression names the
   exact observable that moved rather than just "digest differs". *)
let describe_record_mismatch ~expected ~got =
  let ints =
    [
      ("failures", expected.d_failures, got.d_failures);
      ("allocs", expected.d_dig.Fuzz_observe.allocs, got.d_dig.Fuzz_observe.allocs);
      ("frees", expected.d_dig.Fuzz_observe.frees, got.d_dig.Fuzz_observe.frees);
      ( "accesses",
        expected.d_dig.Fuzz_observe.accesses,
        got.d_dig.Fuzz_observe.accesses );
      ( "site_digest",
        expected.d_dig.Fuzz_observe.site_digest,
        got.d_dig.Fuzz_observe.site_digest );
      ( "access_digest",
        expected.d_dig.Fuzz_observe.access_digest,
        got.d_dig.Fuzz_observe.access_digest );
      ( "free_digest",
        expected.d_dig.Fuzz_observe.free_digest,
        got.d_dig.Fuzz_observe.free_digest );
      ("configs", expected.d_stats.Fuzz_oracle.configs, got.d_stats.Fuzz_oracle.configs);
      ( "oracle_allocs",
        expected.d_stats.Fuzz_oracle.allocs,
        got.d_stats.Fuzz_oracle.allocs );
      ( "oracle_accesses",
        expected.d_stats.Fuzz_oracle.accesses,
        got.d_stats.Fuzz_oracle.accesses );
      ("groups", expected.d_stats.Fuzz_oracle.groups, got.d_stats.Fuzz_oracle.groups);
      ( "monitored",
        expected.d_stats.Fuzz_oracle.monitored,
        got.d_stats.Fuzz_oracle.monitored );
      ( "contexts",
        expected.d_stats.Fuzz_oracle.contexts,
        got.d_stats.Fuzz_oracle.contexts );
    ]
  in
  let ret_part =
    if expected.d_ret = got.d_ret then []
    else
      let show = function
        | Ok v -> string_of_int v
        | Error msg -> "crash: " ^ msg
      in
      [ Printf.sprintf "ret: expected %s, got %s" (show expected.d_ret) (show got.d_ret) ]
  in
  ret_part
  @ List.filter_map
      (fun (name, e, g) ->
        if e = g then None
        else Some (Printf.sprintf "%s: expected %d, got %d" name e g))
      ints

let check_digests ~expected got =
  let by_seed = List.map (fun r -> (r.d_seed, r)) got in
  List.concat_map
    (fun exp ->
      match List.assoc_opt exp.d_seed by_seed with
      | None -> [ Printf.sprintf "seed %d: missing from re-run" exp.d_seed ]
      | Some g ->
          List.map
            (fun m -> Printf.sprintf "seed %d: %s" exp.d_seed m)
            (describe_record_mismatch ~expected:exp ~got:g))
    expected

let logf cfg fmt =
  Printf.ksprintf (fun s -> match cfg.log with Some f -> f s | None -> ()) fmt

let run cfg =
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match cfg.time_budget with
    | None -> false
    | Some b -> Unix.gettimeofday () -. t0 >= b
  in
  (* One task per campaign seed, fanned out over a Par pool. Every case
     derives all of its decisions from its own seed (Fuzz_gen builds a
     private Dsource/Rng per case), so cases share no state and verdicts
     are identical at any worker count. The budget is checked when a
     worker picks the task up, matching the sequential loop's "stop
     starting new cases" semantics. *)
  let run_case wobs s =
    Obs.span wobs "fuzz.case" (fun () ->
        Obs.count wobs "fuzz.cases" 1;
        let case = Fuzz_gen.generate ~ref_scale:cfg.ref_scale ~seed:s () in
        let result =
          Fuzz_oracle.run_case ~extra:cfg.extra ?plan_source:cfg.plan_source
            ~engine:cfg.engine ~traced_config:cfg.traced_config case
        in
        let report =
          match result.Fuzz_oracle.failures with
          | [] -> None
          | fs ->
              Obs.count wobs "fuzz.oracle.violations" (List.length fs);
              (* Shrink while preserving *some* oracle failure — the exact
                 reason may shift as the program shrinks, which is fine:
                 any failing case is a bug to report. *)
              let failing c =
                (Fuzz_oracle.run_case ~extra:cfg.extra ~engine:cfg.engine
                   ~traced_config:cfg.traced_config c)
                  .Fuzz_oracle.failures
                <> []
              in
              let sh =
                Fuzz_shrink.shrink ~max_steps:cfg.shrink_steps ~failing case
              in
              Obs.count wobs "fuzz.shrink.steps" sh.Fuzz_shrink.steps;
              let small = sh.Fuzz_shrink.case in
              Some
                {
                  seed = s;
                  failures = fs;
                  original_stmts = Fuzz_gen.stmt_count case.Fuzz_gen.ref_;
                  shrunk_stmts = Fuzz_gen.stmt_count small.Fuzz_gen.ref_;
                  shrunk_trace = small.Fuzz_gen.trace;
                  shrink_steps_used = sh.Fuzz_shrink.steps;
                  shrunk_program = Ir_print.program_to_string small.Fuzz_gen.ref_;
                  saved_to = None;
                }
        in
        (result.Fuzz_oracle.stats, report))
  in
  let seed_list = List.init cfg.seeds (fun k -> cfg.seed_base + k) in
  let outcomes =
    Par.map_obs ?obs:cfg.obs ~name:"fuzz" ~jobs:cfg.jobs
      (fun wobs s -> if over_budget () then None else Some (run_case wobs s))
      seed_list
  in
  (* Single-writer epilogue on the calling domain, in seed order: corpus
     files, per-failure log lines, aggregate counts. This keeps campaign
     output byte-identical across worker counts and funnels all failures
     through one corpus writer. *)
  let cases = ref 0 in
  let violations = ref 0 in
  let allocs = ref 0 in
  let accesses = ref 0 in
  let reports = ref [] in
  List.iter2
    (fun s outcome ->
      match outcome with
      | None -> () (* budget ran out before this seed started *)
      | Some ((stats : Fuzz_oracle.stats), report) -> (
          incr cases;
          allocs := !allocs + stats.Fuzz_oracle.allocs;
          accesses := !accesses + stats.Fuzz_oracle.accesses;
          match report with
          | None -> ()
          | Some r ->
              violations := !violations + List.length r.failures;
              List.iter
                (fun (f : Fuzz_oracle.failure) ->
                  logf cfg "seed %d: [%s] %s" s f.Fuzz_oracle.config
                    f.Fuzz_oracle.reason)
                r.failures;
              let r =
                match cfg.corpus_dir with
                | None -> r
                | Some dir ->
                    let path = save_corpus ~dir r in
                    logf cfg "seed %d: saved %s" s path;
                    { r with saved_to = Some path }
              in
              logf cfg "seed %d: shrunk %d -> %d stmts in %d steps" s
                r.original_stmts r.shrunk_stmts r.shrink_steps_used;
              reports := r :: !reports))
    seed_list outcomes;
  let reports = List.rev !reports in
  {
    cases = !cases;
    violations = !violations;
    failing_seeds = List.map (fun r -> r.seed) reports;
    reports;
    allocs = !allocs;
    accesses = !accesses;
    elapsed_s = Unix.gettimeofday () -. t0;
  }
