type config = {
  seeds : int;
  seed_base : int;
  ref_scale : int;
  time_budget : float option;
  corpus_dir : string option;
  shrink_steps : int;
  extra : (string * (Vmem.t -> Alloc_iface.t)) list;
  plan_source : Pipeline.plan_source option;
  jobs : int;
  obs : Obs.t option;
  log : (string -> unit) option;
}

let default =
  {
    seeds = 200;
    seed_base = 1;
    ref_scale = 3;
    time_budget = None;
    corpus_dir = None;
    shrink_steps = 2000;
    extra = [];
    plan_source = None;
    jobs = 1;
    obs = None;
    log = None;
  }

type case_report = {
  seed : int;
  failures : Fuzz_oracle.failure list;
  original_stmts : int;
  shrunk_stmts : int;
  shrunk_trace : int array;
  shrink_steps_used : int;
  shrunk_program : string;
  saved_to : string option;
}

type summary = {
  cases : int;
  violations : int;
  failing_seeds : int list;
  reports : case_report list;
  allocs : int;
  accesses : int;
  elapsed_s : float;
}

let report_json r =
  Json.Obj
    [
      ("seed", Json.Int r.seed);
      ( "failures",
        Json.List
          (List.map
             (fun (f : Fuzz_oracle.failure) ->
               Json.Obj
                 [
                   ("config", Json.String f.Fuzz_oracle.config);
                   ("reason", Json.String f.Fuzz_oracle.reason);
                 ])
             r.failures) );
      ("original_stmts", Json.Int r.original_stmts);
      ("shrunk_stmts", Json.Int r.shrunk_stmts);
      ("shrink_steps", Json.Int r.shrink_steps_used);
      ( "shrunk_trace",
        Json.List (Array.to_list (Array.map (fun v -> Json.Int v) r.shrunk_trace))
      );
      ("shrunk_program", Json.String r.shrunk_program);
    ]

let save_corpus ~dir r =
  (try Unix.mkdir dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (Printf.sprintf "seed_%d.json" r.seed) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel oc (report_json r));
  path

let replay ?(ref_scale = 3) ?(extra = []) seed =
  let case = Fuzz_gen.generate ~ref_scale ~seed () in
  (case, Fuzz_oracle.run_case ~extra case)

let logf cfg fmt =
  Printf.ksprintf (fun s -> match cfg.log with Some f -> f s | None -> ()) fmt

let run cfg =
  let t0 = Unix.gettimeofday () in
  let over_budget () =
    match cfg.time_budget with
    | None -> false
    | Some b -> Unix.gettimeofday () -. t0 >= b
  in
  (* One task per campaign seed, fanned out over a Par pool. Every case
     derives all of its decisions from its own seed (Fuzz_gen builds a
     private Dsource/Rng per case), so cases share no state and verdicts
     are identical at any worker count. The budget is checked when a
     worker picks the task up, matching the sequential loop's "stop
     starting new cases" semantics. *)
  let run_case wobs s =
    Obs.span wobs "fuzz.case" (fun () ->
        Obs.count wobs "fuzz.cases" 1;
        let case = Fuzz_gen.generate ~ref_scale:cfg.ref_scale ~seed:s () in
        let result =
          Fuzz_oracle.run_case ~extra:cfg.extra ?plan_source:cfg.plan_source
            case
        in
        let report =
          match result.Fuzz_oracle.failures with
          | [] -> None
          | fs ->
              Obs.count wobs "fuzz.oracle.violations" (List.length fs);
              (* Shrink while preserving *some* oracle failure — the exact
                 reason may shift as the program shrinks, which is fine:
                 any failing case is a bug to report. *)
              let failing c =
                (Fuzz_oracle.run_case ~extra:cfg.extra c).Fuzz_oracle.failures
                <> []
              in
              let sh =
                Fuzz_shrink.shrink ~max_steps:cfg.shrink_steps ~failing case
              in
              Obs.count wobs "fuzz.shrink.steps" sh.Fuzz_shrink.steps;
              let small = sh.Fuzz_shrink.case in
              Some
                {
                  seed = s;
                  failures = fs;
                  original_stmts = Fuzz_gen.stmt_count case.Fuzz_gen.ref_;
                  shrunk_stmts = Fuzz_gen.stmt_count small.Fuzz_gen.ref_;
                  shrunk_trace = small.Fuzz_gen.trace;
                  shrink_steps_used = sh.Fuzz_shrink.steps;
                  shrunk_program = Ir_print.program_to_string small.Fuzz_gen.ref_;
                  saved_to = None;
                }
        in
        (result.Fuzz_oracle.stats, report))
  in
  let seed_list = List.init cfg.seeds (fun k -> cfg.seed_base + k) in
  let outcomes =
    Par.map_obs ?obs:cfg.obs ~name:"fuzz" ~jobs:cfg.jobs
      (fun wobs s -> if over_budget () then None else Some (run_case wobs s))
      seed_list
  in
  (* Single-writer epilogue on the calling domain, in seed order: corpus
     files, per-failure log lines, aggregate counts. This keeps campaign
     output byte-identical across worker counts and funnels all failures
     through one corpus writer. *)
  let cases = ref 0 in
  let violations = ref 0 in
  let allocs = ref 0 in
  let accesses = ref 0 in
  let reports = ref [] in
  List.iter2
    (fun s outcome ->
      match outcome with
      | None -> () (* budget ran out before this seed started *)
      | Some ((stats : Fuzz_oracle.stats), report) -> (
          incr cases;
          allocs := !allocs + stats.Fuzz_oracle.allocs;
          accesses := !accesses + stats.Fuzz_oracle.accesses;
          match report with
          | None -> ()
          | Some r ->
              violations := !violations + List.length r.failures;
              List.iter
                (fun (f : Fuzz_oracle.failure) ->
                  logf cfg "seed %d: [%s] %s" s f.Fuzz_oracle.config
                    f.Fuzz_oracle.reason)
                r.failures;
              let r =
                match cfg.corpus_dir with
                | None -> r
                | Some dir ->
                    let path = save_corpus ~dir r in
                    logf cfg "seed %d: saved %s" s path;
                    { r with saved_to = Some path }
              in
              logf cfg "seed %d: shrunk %d -> %d stmts in %d steps" s
                r.original_stmts r.shrunk_stmts r.shrink_steps_used;
              reports := r :: !reports))
    seed_list outcomes;
  let reports = List.rev !reports in
  {
    cases = !cases;
    violations = !violations;
    failing_seeds = List.map (fun r -> r.seed) reports;
    reports;
    allocs = !allocs;
    accesses = !accesses;
    elapsed_s = Unix.gettimeofday () -. t0;
  }
