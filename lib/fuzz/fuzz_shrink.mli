(** Greedy delta-debugging of a failing case's decision trace.

    Because the generator draws every decision from a {!Dsource}, a case
    is fully determined by its integer trace — so shrinking is trace
    surgery, not program surgery ("internal shrinking" in the
    Hypothesis sense). Any mutated trace still replays to a
    {e structurally valid} program: replay clamps each value to the bound
    live at its draw and substitutes 0 once the trace is exhausted, and
    choice lists are ordered simplest-first so zeroing simplifies.

    Three pass families run to fixpoint (or step budget), greedily
    keeping any mutation whose rebuilt case still satisfies [failing]:

    - {b tail truncation} — drop the last half / quarter / ... of the
      trace (exhaustion turns the tail into the simplest choices);
    - {b chunk deletion} — delete windows of halving width anywhere in
      the trace (removes whole decisions and their subtrees);
    - {b value simplification} — set single entries to 0, else halve
      them (picks simpler grammar alternatives, smaller sizes/counts).

    After every accepted mutation the case is rebuilt via
    {!Fuzz_gen.of_trace}, so the kept trace is always normalized. *)

type report = {
  case : Fuzz_gen.case;  (** Smallest failing case found. *)
  steps : int;  (** Candidate rebuilds attempted. *)
  accepted : int;  (** Mutations that preserved the failure. *)
}

val shrink :
  ?max_steps:int ->
  failing:(Fuzz_gen.case -> bool) ->
  Fuzz_gen.case ->
  report
(** [shrink ~failing case] assumes [failing case = true] and returns a
    case no larger (in trace length) for which [failing] still holds.
    [max_steps] (default 2000) bounds total predicate evaluations —
    each one replays the full oracle, so this is the cost knob. *)
