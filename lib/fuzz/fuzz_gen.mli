(** Seeded random generation of structurally-paired workload programs.

    One case is a pair of {!Ir} programs built from the {e same} decision
    trace: a [test]-scale program (profiled by the pipeline) and a
    [ref_]-scale program (measured), differing only in loop trip counts —
    so {!Ir.finalize} assigns identical site addresses to both, exactly
    the structural pairing the paper's test-profile/ref-measure split
    assumes and the hand-written workloads guarantee by construction.

    The grammar covers the shapes HALO's analyses key on: allocation
    wrapper functions, deep call chains ending in a shared wrapper,
    self- and mutual recursion with bounded depth, interleaved
    alloc/access/free/realloc over multiple live pointers, loops carrying
    paired allocations (affinity-edge generators), input-dependent
    branches via [Rand], and size classes straddling the grouped-size and
    page-size boundaries (including 0-byte mallocs).

    Every generated program obeys two disciplines that make runs
    {e observably deterministic across allocators}:

    - heap cells are written before they are read (no dependence on stale
      contents, which differ with placement), and
    - pointer values never flow into arithmetic, memory, or the program's
      output — pointers are only ever dereferenced, reallocated or freed —
      so addresses cannot influence control flow or results.

    All randomness flows through a {!Dsource}, so a case is rebuilt
    bit-for-bit from its seed (or its decision trace alone), and the
    shrinker can reduce cases by mutating the trace. *)

type case = {
  seed : int;  (** The campaign seed the case was first built from. *)
  trace : int array;  (** Normalized decision trace — the case's genotype. *)
  test : Ir.program;  (** Profile-scale program. *)
  ref_ : Ir.program;  (** Measurement-scale program (same sites). *)
}

val generate : ?ref_scale:int -> seed:int -> unit -> case
(** Build a fresh case from a seed. [ref_scale] (default 3) multiplies
    loop trip counts in the [ref_] program. Equal seeds yield equal cases,
    bit for bit. *)

val of_trace : ?ref_scale:int -> seed:int -> int array -> case
(** Rebuild a case from an explicit (possibly mutated or truncated)
    decision trace; any int array is valid (see {!Dsource.replaying}).
    The returned [trace] is the normalized form actually consumed. *)

val stmt_count : Ir.program -> int
(** IR statements in the program, nested blocks included — the size
    metric shrinking minimises and reports. *)
