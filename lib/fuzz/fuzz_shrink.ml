type report = { case : Fuzz_gen.case; steps : int; accepted : int }

(* Strict shortlex order on normalized traces: shorter is simpler; at
   equal length, lexicographically smaller is simpler (choice lists are
   ordered simplest-first, so smaller draws mean simpler programs).
   Accepting only strictly-simpler candidates makes shrinking monotone
   and terminating. *)
let simpler a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then la < lb
  else
    let rec go i =
      i < la && (a.(i) < b.(i) || (a.(i) = b.(i) && go (i + 1)))
    in
    go 0

let shrink ?(max_steps = 2000) ~failing (case : Fuzz_gen.case) =
  let steps = ref 0 in
  let accepted = ref 0 in
  let best = ref case in
  let budget_left () = !steps < max_steps in
  (* Rebuild a candidate from a mutated trace; keep it only if it still
     fails AND its normalized trace is strictly simpler than the current
     best (of_trace normalizes, which can shorten or clamp the proposal). *)
  let try_trace trace =
    budget_left ()
    && begin
         incr steps;
         match Fuzz_gen.of_trace ~seed:!best.Fuzz_gen.seed trace with
         | exception _ -> false
         | cand ->
             simpler cand.Fuzz_gen.trace !best.Fuzz_gen.trace
             && failing cand
             && begin
                  incr accepted;
                  best := cand;
                  true
                end
       end
  in
  let trace () = !best.Fuzz_gen.trace in

  (* Tail truncation: repeatedly drop the biggest suffix that keeps the
     failure, halving the cut until one sticks or none can. *)
  let rec truncate () =
    let t = trace () in
    let n = Array.length t in
    let rec cut k =
      k >= 1 && (try_trace (Array.sub t 0 (n - k)) || cut (k / 2))
    in
    if n > 0 && budget_left () && cut (n / 2) then truncate ()
  in

  (* Sliding windows of halving width, applying [mutate] to each window.
     On acceptance the window stays put — the trace changed under it. *)
  let windows mutate =
    let win = ref (max 1 (Array.length (trace ()) / 2)) in
    while !win >= 1 do
      let i = ref 0 in
      while budget_left () && !i < Array.length (trace ()) do
        let t = trace () in
        let w = min !win (Array.length t - !i) in
        match mutate t !i w with
        | Some cand when try_trace cand -> ()
        | _ -> i := !i + w
      done;
      win := !win / 2
    done
  in

  (* Chunk deletion: remove the window outright. *)
  let delete t i w =
    let n = Array.length t in
    Some (Array.append (Array.sub t 0 i) (Array.sub t (i + w) (n - i - w)))
  in

  (* Window zeroing: replace the window with the simplest choices without
     disturbing the positions of later draws — far gentler than deletion
     when the failure lives downstream of the window. *)
  let zero t i w =
    let all_zero = ref true in
    for k = i to i + w - 1 do
      if t.(k) <> 0 then all_zero := false
    done;
    if !all_zero then None
    else begin
      let c = Array.copy t in
      Array.fill c i w 0;
      Some c
    end
  in

  (* Value simplification: halve single entries toward zero. Window
     zeroing already covers the jump straight to 0. *)
  let halve t i _w = if t.(i) > 1 then begin
      let c = Array.copy t in
      c.(i) <- t.(i) / 2;
      Some c
    end
    else None
  in

  let rec rounds () =
    let before = !accepted in
    truncate ();
    windows zero;
    windows delete;
    windows (fun t i w -> if w = 1 then halve t i w else None);
    if !accepted > before && budget_left () then rounds ()
  in
  rounds ();
  { case = !best; steps = !steps; accepted = !accepted }
