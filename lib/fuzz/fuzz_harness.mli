(** Campaign driver: sweep seeds, oracle each case, shrink failures.

    This is the engine behind [halo_cli fuzz]. A campaign walks seeds
    [seed_base .. seed_base + seeds - 1] (optionally stopping early on a
    wall-clock budget), builds each case with {!Fuzz_gen.generate}, runs
    the full {!Fuzz_oracle} battery, and on any failure delta-debugs the
    case with {!Fuzz_shrink} before reporting it. Failing cases can be
    persisted to a corpus directory as JSON (via {!Json}) — a corpus
    entry carries the seed and normalized trace, which is everything
    needed to rebuild the case bit for bit, plus the pretty-printed
    minimal program for human eyes.

    Instrumented through {!Obs} when a context is supplied:
    [fuzz.cases], [fuzz.oracle.violations] and [fuzz.shrink.steps]
    counters, plus a [fuzz.case] span per seed. Under [jobs > 1] the
    per-case instrumentation lands on worker-private contexts that are
    merged into the supplied one after the join ({!Metrics.merge}),
    alongside [fuzz.tasks]/[fuzz.workers] accounting and one
    [fuzz.worker] event per worker. *)

type config = {
  seeds : int;  (** Number of seeds to sweep. *)
  seed_base : int;  (** First seed (campaign seeds are consecutive). *)
  ref_scale : int;  (** Loop-scale multiplier for measurement programs. *)
  time_budget : float option;  (** Stop starting new cases after [s]. *)
  corpus_dir : string option;  (** Save failing cases here as JSON. *)
  shrink_steps : int;  (** Shrink budget per failing case. *)
  extra : (string * (Vmem.t -> Alloc_iface.t)) list;
      (** Extra allocator configurations for the oracle battery —
          the fault-injection hook. *)
  plan_source : Pipeline.plan_source option;
      (** Plan supplier for the oracle's HALO configuration (the
          persistent store's plan cache). Shrinking always re-plans
          in-process: shrunk programs are throwaway variants that would
          only pollute a cache. *)
  engine : Engine.kind;
      (** Engine running every oracle configuration. [Selfcheck] turns
          each case into a trace-vs-interpreter cross-check that raises
          on the first divergent region. *)
  traced_config : bool;
      (** Add the "traced" differential configuration (reference
          allocator under {!Engine.Traced}) to each case's battery.
          On by default for campaigns; {!digest_sweep} leaves it off so
          the golden digest corpus keeps its historical config count. *)
  jobs : int;
      (** Worker domains for the sweep (see {!Par}). Each case is
          self-contained — its own decision stream, RNG, heaps and
          interpreters — so the campaign partitions freely: verdicts,
          reports and log/corpus output are byte-identical at any
          [jobs]; failures funnel through a single corpus writer on the
          calling domain after the join. [1] (the default) never spawns
          a domain. *)
  obs : Obs.t option;
  log : (string -> unit) option;  (** Per-failure progress lines. *)
}

val default : config
(** 200 seeds from base 1, ref-scale 3, 1 job, no
    budget/corpus/extra/obs, shrink budget 2000. *)

type case_report = {
  seed : int;
  failures : Fuzz_oracle.failure list;  (** From the {e original} case. *)
  original_stmts : int;  (** [ref_] statement count before shrinking. *)
  shrunk_stmts : int;  (** ... and after. *)
  shrunk_trace : int array;  (** Genotype of the minimal case. *)
  shrink_steps_used : int;
  shrunk_program : string;  (** Pretty-printed minimal [ref_] program. *)
  saved_to : string option;  (** Corpus path, when persisted. *)
}

type summary = {
  cases : int;  (** Cases actually executed. *)
  violations : int;  (** Individual oracle failures, summed. *)
  failing_seeds : int list;
  reports : case_report list;  (** One per failing seed, in seed order. *)
  allocs : int;  (** Allocation events checked, campaign total. *)
  accesses : int;  (** Accesses digested, campaign total. *)
  elapsed_s : float;
}

val run : config -> summary

val replay :
  ?ref_scale:int ->
  ?extra:(string * (Vmem.t -> Alloc_iface.t)) list ->
  ?engine:Engine.kind ->
  ?traced_config:bool ->
  int ->
  Fuzz_gen.case * Fuzz_oracle.result
(** [replay seed] rebuilds one case and runs the oracle once —
    bit-for-bit identical to the campaign's run of that seed
    ([traced_config] therefore defaults to [true], the campaign
    default). *)

val report_json : case_report -> Json.t
(** The corpus-file shape; stable keys, replayable from [seed]/[trace]. *)

(** {2 Semantic digest corpus}

    A fixed seed set's oracle observables — reference-run digest, return
    value, plan shape (groups/monitored/contexts) and per-config
    allocator stats totals — recorded to JSON. Re-running the sweep
    against a recorded corpus pins the interpreter/profiler semantics:
    any optimisation that changes an observable shows up as a named
    field mismatch on a named seed. *)

type digest_record = {
  d_seed : int;
  d_failures : int;  (** Oracle failure count (0 for a healthy pipeline). *)
  d_ret : (int, string) Stdlib.result;  (** Reference run's return value. *)
  d_dig : Fuzz_observe.digest;  (** Reference run's observable digest. *)
  d_stats : Fuzz_oracle.stats;
}

val digest_sweep :
  ?ref_scale:int ->
  ?seed_base:int ->
  ?engine:Engine.kind ->
  seeds:int ->
  unit ->
  digest_record list
(** Run the full oracle battery over consecutive seeds and collect one
    record per case. Deterministic: equal arguments, equal records.
    [engine] swaps the execution engine under every configuration —
    running a recorded corpus under [Traced] pins the trace engine
    bit-for-bit against the interpreter-recorded digests. *)

val digests_json : ref_scale:int -> digest_record list -> Json.t
val digests_of_json : Json.t -> (int * digest_record list, string) Stdlib.result
(** Returns [(ref_scale, records)]. *)

val save_digests : path:string -> ref_scale:int -> digest_record list -> unit
val load_digests : path:string -> (int * digest_record list, string) Stdlib.result

val check_digests :
  expected:digest_record list -> digest_record list -> string list
(** [check_digests ~expected got] compares record lists seed by seed and
    returns human-readable mismatch lines ([[]] = semantics identical). *)
