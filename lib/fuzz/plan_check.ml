let check ~program (plan : Pipeline.plan) =
  let viol = ref [] in
  let record fmt = Printf.ksprintf (fun s -> viol := s :: !viol) fmt in
  let site_ok =
    let tbl = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace tbl s ()) (Ir.sites program);
    Hashtbl.mem tbl
  in
  let grouping = plan.Pipeline.grouping in
  let ngroups = Array.length grouping.Grouping.groups in
  let nctx = Context.count plan.Pipeline.profile.Profiler.contexts in

  (* Grouping: disjoint groups over interned contexts. *)
  let seen_ctx = Hashtbl.create 64 in
  Array.iteri
    (fun gi members ->
      List.iter
        (fun ctx ->
          if ctx < 0 || ctx >= nctx then
            record "group %d references unknown context id %d" gi ctx;
          (match Hashtbl.find_opt seen_ctx ctx with
          | Some gj ->
              record "context %d appears in groups %d and %d" ctx gj gi
          | None -> Hashtbl.replace seen_ctx ctx gi))
        members)
    grouping.Grouping.groups;

  (* Selectors: live sites, valid group indices. *)
  List.iter
    (fun (sel : Identify.selector) ->
      if sel.Identify.group < 0 || sel.Identify.group >= ngroups then
        record "selector targets group %d of %d" sel.Identify.group ngroups;
      List.iter
        (fun conj ->
          List.iter
            (fun site ->
              if not (site_ok site) then
                record "selector for group %d references dead site 0x%x"
                  sel.Identify.group site)
            conj)
        sel.Identify.disjuncts)
    plan.Pipeline.selectors;

  (* Rewrite: bit-vector width, patch assignment. *)
  let rw = plan.Pipeline.rewrite in
  let nbits = rw.Rewrite.nbits in
  if nbits < 0 || nbits > Rewrite.max_bits then
    record "rewrite uses %d bits (capacity %d)" nbits Rewrite.max_bits;
  let bit_of = Hashtbl.create 32 in
  let seen_bits = Hashtbl.create 32 in
  List.iter
    (fun (site, bit) ->
      if not (site_ok site) then record "patch at dead site 0x%x" site;
      if bit < 0 || bit >= nbits then
        record "patch at 0x%x uses out-of-range bit %d (nbits %d)" site bit
          nbits;
      if Hashtbl.mem bit_of site then record "site 0x%x patched twice" site;
      if Hashtbl.mem seen_bits bit then
        record "bit %d assigned to two sites" bit;
      Hashtbl.replace bit_of site bit;
      Hashtbl.replace seen_bits bit ())
    rw.Rewrite.patches;
  let monitored = Identify.monitored_sites plan.Pipeline.selectors in
  List.iter
    (fun site ->
      if not (Hashtbl.mem bit_of site) then
        record "monitored site 0x%x has no patch" site)
    monitored;
  if List.length rw.Rewrite.patches <> List.length monitored then
    record "%d patches for %d monitored sites"
      (List.length rw.Rewrite.patches)
      (List.length monitored);

  (* Compiled selectors must mirror the site-level ones bit for bit. *)
  if List.length rw.Rewrite.selectors <> List.length plan.Pipeline.selectors
  then
    record "%d compiled selectors for %d selectors"
      (List.length rw.Rewrite.selectors)
      (List.length plan.Pipeline.selectors)
  else
    List.iter2
      (fun (sel : Identify.selector) (comp : Rewrite.compiled) ->
        if comp.Rewrite.group <> sel.Identify.group then
          record "compiled selector group %d mismatches selector group %d"
            comp.Rewrite.group sel.Identify.group;
        if
          List.length comp.Rewrite.conjs
          <> List.length sel.Identify.disjuncts
        then
          record "group %d: %d compiled conjunctions for %d disjuncts"
            sel.Identify.group
            (List.length comp.Rewrite.conjs)
            (List.length sel.Identify.disjuncts)
        else
          List.iter2
            (fun conj bits ->
              let mapped =
                List.filter_map (Hashtbl.find_opt bit_of) conj
                |> List.sort compare
              in
              if mapped <> List.sort compare bits then
                record "group %d: compiled conjunction diverges from sites"
                  sel.Identify.group)
            sel.Identify.disjuncts comp.Rewrite.conjs)
      plan.Pipeline.selectors rw.Rewrite.selectors;
  List.rev !viol
