(** Address-independent observable-behaviour digests of a program run.

    The differential oracle needs to compare two executions of the same
    program under {e different allocators}, whose placement decisions make
    raw addresses incomparable. This recorder canonicalises the run into
    placement-independent observables, folded into rolling FNV-style
    digests:

    - the {b allocation-event sequence}: every malloc/calloc/realloc's
      site and requested size, in program order, with each event numbered
      by a deterministic ordinal (its {e object id});
    - the {b access sequence}: every load/store mapped from its raw
      address to (object id, offset within object, width, direction) via
      an interval map of live objects;
    - the {b free sequence}: the object ids freed, in order.

    Two runs of a well-behaved pipeline configuration must produce equal
    digests (and equal return values); any divergence means the rewritten
    or re-allocated execution changed program behaviour. *)

type t

val create : unit -> t

val hooks : t -> Interp.hooks
(** Interpreter hooks that feed the recorder. To also drive other hooks
    (e.g. a cache hierarchy), compose manually. *)

type digest = {
  allocs : int;  (** malloc + calloc + realloc events. *)
  frees : int;
  accesses : int;
  site_digest : int;  (** Over (site, size) allocation events, in order. *)
  access_digest : int;  (** Over (object id, offset, width, is_write). *)
  free_digest : int;  (** Over freed object ids, in order. *)
}

val digest : t -> digest

val equal : digest -> digest -> bool

val describe_mismatch : expected:digest -> got:digest -> string
(** One line per differing field; [""] when equal. *)
