type mode =
  | Record of Rng.t
  | Replay of int array * int ref (* source trace, cursor *)

type t = {
  mode : mode;
  buf : Buffer.t; (* effective decisions, 8 bytes each, little-endian *)
  mutable n : int;
}

let recording rng = { mode = Record rng; buf = Buffer.create 256; n = 0 }
let replaying arr = { mode = Replay (arr, ref 0); buf = Buffer.create 256; n = 0 }

let push t v =
  Buffer.add_int64_le t.buf (Int64.of_int v);
  t.n <- t.n + 1

let draw t bound =
  if bound <= 0 then invalid_arg "Dsource.draw: bound must be positive";
  let v =
    match t.mode with
    | Record rng -> Rng.int rng bound
    | Replay (arr, cur) ->
        if !cur >= Array.length arr then 0
        else begin
          let raw = arr.(!cur) in
          incr cur;
          (* Clamp into range; negative raws fold to non-negative first. *)
          (raw land max_int) mod bound
        end
  in
  push t v;
  v

let draw_in t lo hi =
  if hi < lo then invalid_arg "Dsource.draw_in: empty range";
  lo + draw t (hi - lo + 1)

let weighted t weights =
  let total = Array.fold_left ( + ) 0 weights in
  if Array.length weights = 0 || total <= 0 then
    invalid_arg "Dsource.weighted: weights must have a positive total";
  let u = draw t total in
  let rec pick i acc =
    let acc = acc + weights.(i) in
    if u < acc then i else pick (i + 1) acc
  in
  pick 0 0

let drawn t = t.n

let trace t =
  let s = Buffer.contents t.buf in
  Array.init t.n (fun i -> Int64.to_int (String.get_int64_le s (i * 8)))
