open Dsl

type case = {
  seed : int;
  trace : int array;
  test : Ir.program;
  ref_ : Ir.program;
}

(* A pointer variable in [main] whose object the generator may still
   access, realloc or free. [prefix] is the statically-known initialised
   byte count: loads only target offsets below it, so results never depend
   on stale heap contents (which vary with placement). *)
type slot = {
  var : string;
  mutable size : int;
  mutable prefix : int;
  mutable live : bool;
}

type bctx = {
  src : Dsource.t;
  scale : int;
  mutable fresh : int;
  mutable funcs : Ir.func list; (* helpers, reverse definition order *)
  mutable wrappers : string list; (* alloc-wrapper names, arity [sz] *)
  mutable chain_heads : string list; (* chain entry points, arity [sz] *)
  mutable rec_funcs : string list; (* recursive entry points, arity [d; sz] *)
  mutable slots : slot list; (* main's pointer variables, newest first *)
}

let fresh b prefix =
  let n = b.fresh in
  b.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

(* Fold an expression into the program's observable output. The modulus
   keeps values small so overflow never makes outputs platform-shaped. *)
let emit_out e = gassign "out" ((((g "out" *: i 31) +: e) %: i 1000003))

(* Sizes are always multiples of 8 and at least 8; the classes straddle
   the boundaries the allocators care about: small grouped objects, the
   4 KiB grouped-size bound, and beyond-page-size fallback requests. *)
let pick_size b =
  match Dsource.weighted b.src [| 6; 3; 2; 1; 1 |] with
  | 0 -> 8 * Dsource.draw_in b.src 1 8 (* 8 .. 64 *)
  | 1 -> 8 * Dsource.draw_in b.src 9 32 (* 72 .. 256 *)
  | 2 -> 8 * Dsource.draw_in b.src 33 128 (* 264 .. 1 KiB *)
  | 3 -> 8 * Dsource.draw_in b.src 129 512 (* 1032 .. 4 KiB *)
  | _ -> 8 * Dsource.draw_in b.src 513 1536 (* 4104 .. 12 KiB *)

let pick_small_size b = 8 * Dsource.draw_in b.src 1 16

let nth_of b l =
  match l with
  | [] -> invalid_arg "Fuzz_gen: empty choice list"
  | _ -> List.nth l (Dsource.draw b.src (List.length l))

(* ------------------------------------------------------------------ *)
(* Helper-function generators (structure phase).                       *)
(* ------------------------------------------------------------------ *)

(* A malloc/calloc wrapper: one shared allocation site reached from many
   calling contexts — the shape context-sensitive identification exists
   for. Initialises its first word so callers inherit prefix = 8. *)
let gen_wrapper b =
  let name = fresh b "alloc_w" in
  let alloc_stmt =
    match Dsource.weighted b.src [| 3; 2 |] with
    | 0 -> malloc "p" (v "sz")
    | _ -> calloc "p" (v "sz" /: i 8) (i 8)
  in
  let body =
    [ alloc_stmt; store (v "p") (i 0) (v "sz"); return_ (v "p") ]
  in
  b.funcs <- func name [ "sz" ] body :: b.funcs;
  b.wrappers <- name :: b.wrappers

(* A call chain of depth 1..3 ending in a wrapper; intermediate frames may
   do their own short-lived allocation, so the chain contributes several
   distinct reduced contexts over the same allocation sites. *)
let gen_chain b =
  let depth = Dsource.draw_in b.src 1 3 in
  let callee = ref (nth_of b b.wrappers) in
  for k = 1 to depth do
    let name = fresh b (Printf.sprintf "chain%d_" k) in
    let extra =
      if Dsource.draw b.src 2 = 0 then []
      else
        [
          call ~dst:"q" (nth_of b b.wrappers) [ i (pick_small_size b) ];
          store (v "q") (i 0) (i 7);
          load "tq" (v "q") (i 0);
          emit_out (v "tq");
          free_ (v "q");
        ]
    in
    let body = extra @ [ call ~dst:"r" !callee [ v "sz" ]; return_ (v "r") ] in
    b.funcs <- func name [ "sz" ] body :: b.funcs;
    callee := name
  done;
  b.chain_heads <- !callee :: b.chain_heads

(* Self-recursion with a strictly decreasing depth parameter: reduced
   contexts stay bounded while the raw stack grows. *)
let gen_rec b =
  let name = fresh b "rec" in
  let w = nth_of b b.wrappers in
  let frees = Dsource.draw b.src 2 = 1 in
  let body =
    [
      if_
        (v "d" <=: i 0)
        [ return_ (i 0) ]
        ([
           call ~dst:"p" w [ v "sz" ];
           store (v "p") (i 0) (v "d");
           load "t" (v "p") (i 0);
           emit_out (v "t");
         ]
        @ (if frees then [ free_ (v "p") ] else [])
        @ [ call ~dst:"r" name [ v "d" -: i 1; v "sz" ]; return_ (v "r" +: i 1) ]
        );
    ]
  in
  b.funcs <- func name [ "d"; "sz" ] body :: b.funcs;
  b.rec_funcs <- name :: b.rec_funcs

(* A mutually-recursive pair, alternating frames; one side allocates. *)
let gen_mutual b =
  let na = fresh b "mua" and nb = fresh b "mub" in
  let w = nth_of b b.wrappers in
  let frees = Dsource.draw b.src 2 = 1 in
  let body_a =
    [
      if_
        (v "d" <=: i 0)
        [ return_ (i 0) ]
        ([
           call ~dst:"p" w [ v "sz" ];
           load "t" (v "p") (i 0);
           emit_out (v "t");
         ]
        @ (if frees then [ free_ (v "p") ] else [])
        @ [ call ~dst:"r" nb [ v "d" -: i 1; v "sz" ]; return_ (v "r") ]);
    ]
  in
  let body_b =
    [
      if_
        (v "d" <=: i 0)
        [ return_ (i 1) ]
        [ call ~dst:"r" na [ v "d" -: i 1; v "sz" ]; return_ (v "r" +: i 2) ];
    ]
  in
  b.funcs <- func na [ "d"; "sz" ] body_a :: b.funcs;
  b.funcs <- func nb [ "d"; "sz" ] body_b :: b.funcs;
  b.rec_funcs <- na :: b.rec_funcs

(* ------------------------------------------------------------------ *)
(* Main-body blocks.                                                   *)
(* ------------------------------------------------------------------ *)

let live_slots b = List.filter (fun s -> s.live) b.slots
let readable_slots b = List.filter (fun s -> s.live && s.prefix >= 8) b.slots

let block_compute b = [ compute (1 + Dsource.draw b.src 32) ]

(* Allocate into a fresh slot with a direct intrinsic, then initialise a
   prefix (unrolled stores or a counted loop, scale-independent). *)
let block_direct_alloc b =
  let var = fresh b "p" in
  let size = pick_size b in
  let alloc_stmt =
    match Dsource.weighted b.src [| 3; 2 |] with
    | 0 -> malloc var (i size)
    | _ -> calloc var (i (size / 8)) (i 8)
  in
  let max_words = min (size / 8) 16 in
  let nwords = min max_words (1 + Dsource.draw b.src 4) in
  let init =
    match Dsource.weighted b.src [| 2; 1 |] with
    | 0 ->
        List.init nwords (fun k ->
            store (v var) (i (8 * k)) (i (Dsource.draw b.src 256)))
    | _ ->
        let iv = fresh b "iv" in
        for_ iv ~from:(i 0) ~below:(i nwords)
          [ store (v var) (v iv *: i 8) (v iv +: i 1) ]
  in
  b.slots <- { var; size; prefix = 8 * nwords; live = true } :: b.slots;
  (alloc_stmt :: init)

(* Allocate through a wrapper or chain head — deep-context allocation. *)
let block_call_alloc b =
  let var = fresh b "p" in
  let size = pick_small_size b in
  let callee = nth_of b (b.wrappers @ b.chain_heads) in
  b.slots <- { var; size; prefix = 8; live = true } :: b.slots;
  [ call ~dst:var callee [ i size ] ]

let block_access b =
  match readable_slots b with
  | [] -> block_compute b
  | slots ->
      let s = nth_of b slots in
      let off = 8 * Dsource.draw b.src (s.prefix / 8) in
      let tmp = fresh b "t" in
      let tail =
        if Dsource.draw b.src 2 = 0 then []
        else
          let off' = 8 * Dsource.draw b.src (s.prefix / 8) in
          [ store (v s.var) (i off') ((g "out") %: i 65536) ]
      in
      load tmp (v s.var) (i off) :: emit_out (v tmp) :: tail

let block_free b =
  match live_slots b with
  | [] -> block_compute b
  | slots ->
      let s = nth_of b slots in
      s.live <- false;
      [ free_ (v s.var) ]

let block_realloc b =
  match live_slots b with
  | [] -> block_compute b
  | slots ->
      let s = nth_of b slots in
      let size = pick_size b in
      s.prefix <- min s.prefix size;
      s.size <- size;
      [ realloc_ s.var (v s.var) (i size) ]

(* A loop carrying one or two allocations per iteration. The dual-alloc
   variant interleaves accesses to both objects, creating the strong
   affinity edges grouping feeds on; the trip count is what [ref_] scale
   multiplies. *)
let block_loop b =
  let trip = (1 + Dsource.draw b.src 8) * b.scale in
  let lv = fresh b "li" in
  let p1 = fresh b "lp" in
  let alloc1 =
    match Dsource.weighted b.src [| 2; 2 |] with
    | 0 -> [ malloc p1 (i (pick_small_size b)); store (v p1) (i 0) (v lv) ]
    | _ ->
        [
          call ~dst:p1 (nth_of b (b.wrappers @ b.chain_heads))
            [ i (pick_small_size b) ];
          store (v p1) (i 0) (v lv);
        ]
  in
  let t1 = fresh b "t" in
  let dual = Dsource.draw b.src 2 = 1 in
  let body =
    if dual then begin
      let p2 = fresh b "lq" in
      let t2 = fresh b "t" in
      alloc1
      @ [
          call ~dst:p2 (nth_of b b.wrappers) [ i (pick_small_size b) ];
          store (v p2) (i 0) (v lv +: i 3);
          load t1 (v p1) (i 0);
          load t2 (v p2) (i 0);
          emit_out (v t1 +: v t2);
        ]
      @ (match Dsource.weighted b.src [| 2; 1; 1 |] with
        | 0 -> [ free_ (v p1); free_ (v p2) ] (* paired lifetimes *)
        | 1 -> [ free_ (v p2) ] (* one side leaks *)
        | _ -> []) (* both leak *)
    end
    else
      alloc1
      @ [ load t1 (v p1) (i 0); emit_out (v t1) ]
      @ (if Dsource.draw b.src 2 = 0 then [ free_ (v p1) ] else [])
  in
  for_ lv ~from:(i 0) ~below:(i trip) body

let block_rec_call b =
  match b.rec_funcs with
  | [] -> block_compute b
  | rl ->
      let f = nth_of b rl in
      let depth = 1 + Dsource.draw b.src 6 in
      let tmp = fresh b "t" in
      [ call ~dst:tmp f [ i depth; i (pick_small_size b) ]; emit_out (v tmp) ]

(* A fully self-contained alloc/use/free sequence, safe inside a branch
   arm: it never changes the liveness of outer slots. *)
let mini_block b =
  match Dsource.weighted b.src [| 1; 3 |] with
  | 0 -> block_compute b
  | _ ->
      let var = fresh b "bp" in
      let tmp = fresh b "t" in
      let size = pick_small_size b in
      [
        malloc var (i size);
        store (v var) (i 0) (i (Dsource.draw b.src 256));
        load tmp (v var) (i 0);
        emit_out (v tmp);
        free_ (v var);
      ]

(* Input-dependent control flow: both interpreter runs share the program
   seed, so baseline and optimised runs take the same arm. *)
let block_branch b =
  let arms = Dsource.draw_in b.src 2 4 in
  let then_ = mini_block b and else_ = mini_block b in
  [ if_ ((rand (i arms)) =: i 0) then_ else_ ]

let block_zero_alloc b =
  let var = fresh b "z" in
  b.slots <- { var; size = 0; prefix = 0; live = true } :: b.slots;
  let stmts = [ malloc var (i 0) ] in
  if Dsource.draw b.src 2 = 1 then begin
    (List.hd b.slots).live <- false;
    stmts @ [ free_ (v var) ]
  end
  else stmts

let gen_block b =
  match
    Dsource.weighted b.src [| 1; 4; 4; 4; 3; 1; 3; 2; 2; 1 |]
  with
  | 0 -> block_compute b
  | 1 -> block_direct_alloc b
  | 2 -> block_call_alloc b
  | 3 -> block_access b
  | 4 -> block_free b
  | 5 -> block_realloc b
  | 6 -> block_loop b
  | 7 -> block_rec_call b
  | 8 -> block_branch b
  | _ -> block_zero_alloc b

(* ------------------------------------------------------------------ *)
(* Whole-program assembly.                                             *)
(* ------------------------------------------------------------------ *)

let build src ~scale =
  let b =
    {
      src;
      scale;
      fresh = 0;
      funcs = [];
      wrappers = [];
      chain_heads = [];
      rec_funcs = [];
      slots = [];
    }
  in
  let n_wrappers = 1 + Dsource.draw b.src 2 in
  for _ = 1 to n_wrappers do
    gen_wrapper b
  done;
  let n_chains = Dsource.draw b.src 3 in
  for _ = 1 to n_chains do
    gen_chain b
  done;
  if Dsource.draw b.src 2 = 1 then gen_rec b;
  if Dsource.draw b.src 2 = 1 then gen_mutual b;
  let n_blocks = Dsource.draw_in b.src 3 10 in
  let body = ref [ gassign "out" (i (1 + Dsource.draw b.src 256)) ] in
  for _ = 1 to n_blocks do
    body := !body @ gen_block b
  done;
  (* Epilogue: free a drawn subset of what is still live; the rest leaks
     (a behaviour allocators must also survive). *)
  List.iter
    (fun s ->
      if s.live && Dsource.draw b.src 2 = 1 then begin
        s.live <- false;
        body := !body @ [ free_ (v s.var) ]
      end)
    b.slots;
  body := !body @ [ return_ ((g "out") %: i 1000003) ];
  let main = func "main" [] !body in
  program ~main:"main" (List.rev b.funcs @ [ main ])

let of_trace ?(ref_scale = 3) ~seed trace =
  let src = Dsource.replaying trace in
  let test = build src ~scale:1 in
  let normalized = Dsource.trace src in
  let ref_ = build (Dsource.replaying normalized) ~scale:ref_scale in
  { seed; trace = normalized; test; ref_ }

let generate ?(ref_scale = 3) ~seed () =
  let src = Dsource.recording (Rng.create ~seed) in
  let test = build src ~scale:1 in
  let trace = Dsource.trace src in
  let ref_ = build (Dsource.replaying trace) ~scale:ref_scale in
  { seed; trace; test; ref_ }

let stmt_count p =
  let rec count acc (st : Ir.stmt) =
    match st with
    | Ir.If (_, a, b) ->
        List.fold_left count (List.fold_left count (acc + 1) a) b
    | Ir.While (_, a) -> List.fold_left count (acc + 1) a
    | _ -> acc + 1
  in
  List.fold_left
    (fun acc f -> List.fold_left count acc f.Ir.body)
    0 (Ir.funcs p)
