module IMap = Map.Make (Int)

type t = {
  mutable live : int IMap.t; (* base address -> requested size *)
  mutable viol : string list; (* reversed *)
  mutable nviol : int;
}

(* Cap the recorded list: one systematic allocator bug can otherwise
   produce a violation per allocation. The count keeps climbing. *)
let max_recorded = 100

let record t msg =
  t.nviol <- t.nviol + 1;
  if t.nviol <= max_recorded then t.viol <- msg :: t.viol

(* Validate a freshly returned block and enter it into the live map.
   [what] names the operation for messages; [usable] is the underlying
   allocator's usable_size answer for the block. *)
let admit t ~what addr n usable =
  if addr = Addr.null then
    record t (Printf.sprintf "%s(%d): returned null" what n);
  if addr land 7 <> 0 then
    record t
      (Printf.sprintf "%s(%d): address 0x%x not 8-byte aligned" what n addr);
  if IMap.mem addr t.live then
    record t
      (Printf.sprintf "%s(%d): address 0x%x already holds a live block" what n
         addr);
  (match IMap.find_last_opt (fun b -> b < addr) t.live with
  | Some (b, sz) when b + max sz 1 > addr ->
      record t
        (Printf.sprintf
           "%s(%d): block at 0x%x overlaps live block [0x%x, 0x%x)" what n
           addr b (b + max sz 1))
  | _ -> ());
  (match IMap.find_first_opt (fun b -> b > addr) t.live with
  | Some (b, _) when addr + max n 1 > b ->
      record t
        (Printf.sprintf
           "%s(%d): block [0x%x, 0x%x) overlaps live block at 0x%x" what n
           addr
           (addr + max n 1)
           b)
  | _ -> ());
  (match usable with
  | Some u when u < n ->
      record t
        (Printf.sprintf "%s(%d): usable_size %d below requested size" what n u)
  | None ->
      record t
        (Printf.sprintf "%s(%d): usable_size unknown for fresh block 0x%x"
           what n addr)
  | Some _ -> ());
  t.live <- IMap.add addr n t.live

let wrap (alloc : Alloc_iface.t) =
  let t = { live = IMap.empty; viol = []; nviol = 0 } in
  let malloc n =
    let addr = alloc.Alloc_iface.malloc n in
    admit t ~what:"malloc" addr n (alloc.Alloc_iface.usable_size addr);
    addr
  in
  let free addr =
    if addr <> Addr.null then begin
      if not (IMap.mem addr t.live) then
        record t
          (Printf.sprintf "free(0x%x): no live block at this address" addr)
      else t.live <- IMap.remove addr t.live
    end;
    alloc.Alloc_iface.free addr
  in
  let realloc old n =
    if old <> Addr.null && not (IMap.mem old t.live) then
      record t
        (Printf.sprintf "realloc(0x%x, %d): old pointer is not live" old n);
    let addr = alloc.Alloc_iface.realloc old n in
    t.live <- IMap.remove old t.live;
    admit t ~what:"realloc" addr n (alloc.Alloc_iface.usable_size addr);
    addr
  in
  let iface =
    {
      alloc with
      Alloc_iface.malloc;
      free;
      realloc;
    }
  in
  (t, iface)

let violations t = List.rev t.viol
let live_blocks t = IMap.cardinal t.live
