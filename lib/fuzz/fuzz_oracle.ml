type failure = { config : string; reason : string }

type stats = {
  configs : int;
  allocs : int;
  accesses : int;
  groups : int;
  monitored : int;
  contexts : int;
}

type result = {
  failures : failure list;
  stats : stats;
  ref_ret : (int, string) Stdlib.result;
  ref_dig : Fuzz_observe.digest;
}

(* Outcome of one configuration's run. *)
type run = {
  name : string;
  ret : (int, string) Stdlib.result; (* Error = crash message *)
  dig : Fuzz_observe.digest;
  heap : string list;
}

(* Everything a configuration contributes to the interpreter: the
   allocator plus (for rewritten-binary configs) the patch list and the
   shared execution environment. *)
type setup = {
  alloc : Alloc_iface.t;
  patches : (Ir.site * int) list;
  env : Exec_env.t option;
}

let plain alloc = { alloc; patches = []; env = None }

(* The measurement input seed; profiling (inside Pipeline.plan) uses the
   profiler config's own seed, mirroring the runner's test/ref split. *)
let interp_seed = 2

let empty_digest = Fuzz_observe.digest (Fuzz_observe.create ())

let run_config ?(engine = Engine.Interp) ~program ~name build =
  let vmem = Vmem.create () in
  match build vmem with
  | exception e ->
      { name; ret = Error (Printexc.to_string e); dig = empty_digest; heap = [] }
  | setup -> (
      let chk, checked = Heap_check.wrap setup.alloc in
      let recorder = Fuzz_observe.create () in
      let finish ret =
        {
          name;
          ret;
          dig = Fuzz_observe.digest recorder;
          heap = Heap_check.violations chk;
        }
      in
      match
        Engine.create ~kind:engine ~seed:interp_seed
          ~hooks:(Fuzz_observe.hooks recorder)
          ~patches:setup.patches ?env:setup.env ~memcheck:vmem ~program
          ~alloc:checked ()
      with
      | exception e -> finish (Error (Printexc.to_string e))
      | interp -> (
          match Engine.run interp with
          | v -> finish (Ok v)
          | exception e -> finish (Error (Printexc.to_string e))))

let heap_failure run =
  match run.heap with
  | [] -> None
  | l ->
      let shown = List.filteri (fun i _ -> i < 3) l in
      let extra = List.length l - List.length shown in
      let suffix =
        if extra > 0 then Printf.sprintf " (+%d more)" extra else ""
      in
      Some
        {
          config = run.name;
          reason = "heap: " ^ String.concat " | " shown ^ suffix;
        }

let crash_failure run =
  match run.ret with
  | Ok _ -> None
  | Error msg -> Some { config = run.name; reason = "crash: " ^ msg }

let divergence_failure ~reference run =
  match (reference.ret, run.ret) with
  | Ok r0, Ok r when r0 <> r || not (Fuzz_observe.equal reference.dig run.dig)
    ->
      let parts =
        if r0 <> r then
          [ Printf.sprintf "return value: expected %d, got %d" r0 r ]
        else []
      in
      let dig =
        Fuzz_observe.describe_mismatch ~expected:reference.dig ~got:run.dig
      in
      let parts = if dig = "" then parts else parts @ [ dig ] in
      Some
        {
          config = run.name;
          reason = "divergence: " ^ String.concat "; " parts;
        }
  | _ -> None (* crashes are reported separately; nothing to compare *)

let run_case ?(extra = []) ?plan_source ?engine ?(traced_config = false)
    (case : Fuzz_gen.case) =
  let program = case.Fuzz_gen.ref_ in
  let runs = ref [] in
  let push r = runs := r :: !runs in

  let reference =
    run_config ?engine ~program ~name:"jemalloc" (fun vmem ->
        plain (Jemalloc_sim.create vmem))
  in
  push reference;
  push
    (run_config ?engine ~program ~name:"bump" (fun vmem ->
         plain (Bump.create vmem)));
  push
    (run_config ?engine ~program ~name:"ptmalloc" (fun vmem ->
         plain (Ptmalloc_sim.create vmem)));
  push
    (run_config ?engine ~program ~name:"random-4" (fun vmem ->
         plain
           (Random_pool.create
              ~rng:(Rng.create ~seed:((case.Fuzz_gen.seed * 31) + 7))
              ~fallback:(Jemalloc_sim.create vmem) vmem)));
  (* The trace-engine differential config: same allocator as the
     reference, executed by the fused-trace engine — any engine bug
     shows up as a divergence against the interpreter-run reference.
     Opt-in so the golden digest corpus keeps its historical 6-config
     shape. *)
  if traced_config then
    push
      (run_config ~engine:Engine.Traced ~program ~name:"traced" (fun vmem ->
           plain (Jemalloc_sim.create vmem)));
  List.iter
    (fun (name, build) ->
      push (run_config ?engine ~program ~name (fun vmem -> plain (build vmem))))
    extra;

  (* HALO: plan on the test-scale program, measure on ref — structural
     pairing guarantees the patch sites exist in both. *)
  let plan_failures = ref [] in
  let groups = ref 0 and monitored = ref 0 and contexts = ref 0 in
  (match Pipeline.plan ?source:plan_source ?engine case.Fuzz_gen.test with
  | exception e ->
      plan_failures :=
        [ { config = "plan"; reason = "crash: " ^ Printexc.to_string e } ]
  | plan ->
      groups := Array.length plan.Pipeline.grouping.Grouping.groups;
      monitored := plan.Pipeline.rewrite.Rewrite.nbits;
      contexts := Context.count plan.Pipeline.profile.Profiler.contexts;
      plan_failures :=
        List.map
          (fun v -> { config = "plan"; reason = v })
          (Plan_check.check ~program:case.Fuzz_gen.test plan);
      let nbits = max plan.Pipeline.rewrite.Rewrite.nbits 1 in
      push
        (run_config ?engine ~program ~name:"halo-noalloc" (fun vmem ->
             {
               alloc = Jemalloc_sim.create vmem;
               patches = plan.Pipeline.rewrite.Rewrite.patches;
               env = Some (Exec_env.create ~group_bits:nbits ());
             }));
      push
        (run_config ?engine ~program ~name:"halo" (fun vmem ->
             let fallback = Jemalloc_sim.create vmem in
             let rt = Pipeline.instantiate plan ~fallback vmem in
             {
               alloc = Group_alloc.iface rt.Pipeline.galloc;
               patches = rt.Pipeline.patches;
               env = Some rt.Pipeline.env;
             })));

  let runs = List.rev !runs in
  let failures =
    !plan_failures
    @ List.concat_map
        (fun r ->
          let cmp =
            if r.name = "jemalloc" then None
            else divergence_failure ~reference r
          in
          List.filter_map Fun.id [ crash_failure r; heap_failure r; cmp ])
        runs
  in
  let stats =
    {
      configs = List.length runs;
      allocs =
        List.fold_left (fun a r -> a + r.dig.Fuzz_observe.allocs) 0 runs;
      accesses =
        List.fold_left (fun a r -> a + r.dig.Fuzz_observe.accesses) 0 runs;
      groups = !groups;
      monitored = !monitored;
      contexts = !contexts;
    }
  in
  { failures; stats; ref_ret = reference.ret; ref_dig = reference.dig }
