(** Replayable decision streams for the program generator.

    The fuzzer's generator never draws from an {!Rng} directly; it draws
    from a {e decision source}, which either forwards to an [Rng] while
    recording every choice (normal generation) or replays a previously
    recorded — possibly mutated — trace (replay and shrinking). The
    recorded trace is the case's genotype: a single [int array] from which
    the whole program is rebuilt bit-for-bit, and which the shrinker
    delta-debugs without knowing anything about the grammar.

    Replay is total: out-of-range values are clamped with a modulo and an
    exhausted trace yields 0, so {e every} int array maps to a valid
    program. Because the generator orders each choice list simplest-first,
    clamping toward 0 — which is what trace mutations do — steers
    generation toward smaller programs, the property greedy shrinking
    relies on (Hypothesis-style internal reduction). *)

type t

val recording : Rng.t -> t
(** Draws come from the generator; every decision is appended to the
    trace. *)

val replaying : int array -> t
(** Draws come from the array, clamped into range ([v mod bound]); once
    the array is exhausted every draw is 0. The {e effective} (clamped)
    decisions are re-recorded, so {!trace} afterwards returns a normalized
    trace no longer than the input. *)

val draw : t -> int -> int
(** [draw t bound] is a decision in \[0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)

val draw_in : t -> int -> int -> int
(** [draw_in t lo hi], inclusive — [lo + draw t (hi - lo + 1)]. *)

val weighted : t -> int array -> int
(** [weighted t [| w0; ...; wn |]] picks index [i] with probability
    proportional to [wi], consuming one decision. Index 0 should be the
    "simplest" alternative: replayed zeros select it. Raises
    [Invalid_argument] on an empty or non-positive-total weight array. *)

val trace : t -> int array
(** The decisions consumed so far, in draw order. *)

val drawn : t -> int
(** [Array.length (trace t)], without the copy. *)
