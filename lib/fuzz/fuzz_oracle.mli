(** The differential oracle: one generated case, every configuration.

    Runs a case's [ref_] program under a battery of allocator
    configurations and checks three families of invariants:

    - {b semantic equivalence}: return value and the
      {!Fuzz_observe.digest} observables (allocation-site sequence,
      object-relative access trace, free order) must match the jemalloc
      reference run bit for bit — rewriting and pool allocation must be
      behaviour-preserving (the paper's central §4 claim);
    - {b heap invariants}: every run is wrapped in {!Heap_check}
      (alignment, no overlapping live blocks, matched frees, usable-size
      bounds) and in the {!Vmem} segfault trap;
    - {b plan well-formedness}: the HALO plan derived from the paired
      [test] program passes {!Plan_check} before being instantiated.

    The standard battery: [jemalloc] (reference), [bump], [ptmalloc],
    [random-4] pools, [halo-noalloc] (patched binary, default allocator)
    and [halo] (patched binary + synthesised group allocator). [extra]
    adds externally supplied configurations — the hook fault-injection
    tests and local allocator experiments use to prove the oracle bites. *)

type failure = {
  config : string;  (** Configuration name, or ["plan"]. *)
  reason : string;
}

type stats = {
  configs : int;  (** Configurations executed. *)
  allocs : int;  (** Allocation events checked, summed over configs. *)
  accesses : int;  (** Accesses digested, summed over configs. *)
  groups : int;  (** Groups in the HALO plan. *)
  monitored : int;  (** Monitored sites (group-state bits) in the plan. *)
  contexts : int;  (** Interned allocation contexts in the plan's profile. *)
}

type result = {
  failures : failure list;
  stats : stats;
  ref_ret : (int, string) Stdlib.result;
      (** The jemalloc reference run's return value ([Error] = crash). *)
  ref_dig : Fuzz_observe.digest;
      (** The jemalloc reference run's observable digest — together with
          [ref_ret] and [stats] this pins a case's semantics, so recorded
          values double as a golden corpus for interpreter changes. *)
}
(** [failures = []] is a pass. *)

val run_case :
  ?extra:(string * (Vmem.t -> Alloc_iface.t)) list ->
  ?plan_source:Pipeline.plan_source ->
  ?engine:Engine.kind ->
  ?traced_config:bool ->
  Fuzz_gen.case ->
  result
(** Deterministic: equal cases yield equal results. Never raises on
    misbehaving allocators or pipelines — crashes (simulated segfaults,
    allocator [Failure]s, pipeline exceptions) become failures.
    [plan_source] (the persistent store's plan cache) answers the HALO
    plan call — generated programs are cache-keyed like any other, so a
    re-run campaign skips re-profiling unchanged cases. [engine]
    (default [Interp]) selects the execution engine for every
    configuration, including the reference — engines are
    behaviour-identical, so the oracle's invariants are engine-blind.
    [traced_config] (default [false], to preserve the golden corpus's
    6-config shape) adds a ["traced"] configuration: the reference
    allocator executed by the fused-trace engine, diffed against the
    interpreter-run reference like any other config — the differential
    harness doubles as the trace engine's oracle. *)
