(** Well-formedness oracle for a pipeline optimisation plan.

    A {!Pipeline.plan} is the contract between the analysis stages and the
    rewritten runtime; this module validates it structurally before the
    measurement run, independently of whether the run then behaves:

    - every selector conjunction references sites that exist in the
      profiled program (selectors over dead sites can never match);
    - selector group indices point into the grouping;
    - grouping groups are disjoint and reference interned contexts only;
    - the rewrite uses at most {!Rewrite.max_bits} group-state bits, its
      patch list assigns each monitored site exactly one in-range bit, and
      the patch sites are exactly the selectors' monitored sites;
    - the compiled (bit-level) selectors mirror the site-level selectors
      through the patch assignment, disjunct for disjunct.

    Returns human-readable violation strings; [[]] means well-formed. *)

val check : program:Ir.program -> Pipeline.plan -> string list
