(** Registry of the 11 evaluation workloads, in the paper's Figure 13/14
    order: the six prior-work benchmarks first, then the five SPECrate
    CPU2017 ones. *)

val all : Workload.t list
val find : string -> Workload.t option
val names : string list

type lookup_error = Unknown_workload of { name : string; known : string list }
(** Carries the full registry so callers (CLI converters, mix-spec
    parsers, serve requests) can point at the valid spellings instead of
    failing late with a bare miss. *)

val lookup : string -> (Workload.t, lookup_error) result
(** Like {!find}, but a miss is a typed error listing the known names. *)

val lookup_error_to_string : lookup_error -> string
(** ["unknown workload \"nope\" (known: health, ft, ...)"]. *)
