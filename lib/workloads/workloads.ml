let all =
  [
    Wl_health.workload;
    Wl_ft.workload;
    Wl_analyzer.workload;
    Wl_ammp.workload;
    Wl_art.workload;
    Wl_equake.workload;
    Wl_povray.workload;
    Wl_omnetpp.workload;
    Wl_xalanc.workload;
    Wl_leela.workload;
    Wl_roms.workload;
  ]

let find name = List.find_opt (fun w -> w.Workload.name = name) all
let names = List.map (fun w -> w.Workload.name) all

type lookup_error = Unknown_workload of { name : string; known : string list }

let lookup name =
  match find name with
  | Some w -> Ok w
  | None -> Error (Unknown_workload { name; known = names })

let lookup_error_to_string (Unknown_workload { name; known }) =
  Printf.sprintf "unknown workload %S (known: %s)" name
    (String.concat ", " known)
