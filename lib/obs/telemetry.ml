type rspan = {
  r_id : int;
  r_parent : int option;
  r_name : string;
  r_depth : int;
  r_track : int;
  r_start_s : float;
  r_dur_s : float;
  r_stage : string option;
}

type t = { spans : rspan list; metrics : (string * Metrics.value) list }

let ( let* ) = Result.bind

let parse_span j =
  let* id = Json.get_int "id" j in
  let* name = Json.get_string "name" j in
  let* depth = Json.get_int "depth" j in
  let* start_s = Json.get_float "start_s" j in
  let* dur_s = Json.get_float "dur_s" j in
  let parent =
    match Json.mem "parent" j with Some (Json.Int p) -> Some p | _ -> None
  in
  let track =
    match Json.mem "track" j with Some (Json.Int t) -> t | _ -> 0
  in
  let stage =
    match Json.mem "attrs" j with
    | Some attrs -> (
        match Json.mem "stage" attrs with
        | Some (Json.String s) -> Some s
        | _ -> None)
    | None -> None
  in
  Ok
    {
      r_id = id;
      r_parent = parent;
      r_name = name;
      r_depth = depth;
      r_track = track;
      r_start_s = start_s;
      r_dur_s = dur_s;
      r_stage = stage;
    }

let parse_summary j =
  let* name = Json.get_string "name" j in
  let* v = Metrics.value_of_json j in
  Ok (name, v)

let of_lines lines =
  let rec go lineno spans metrics = function
    | [] -> Ok { spans = List.rev spans; metrics = List.rev metrics }
    | line :: rest when String.trim line = "" -> go (lineno + 1) spans metrics rest
    | line :: rest -> (
        let ctx e = Error (Printf.sprintf "line %d: %s" lineno e) in
        match Json.of_string line with
        | Error e -> ctx e
        | Ok j -> (
            match Json.get_string "type" j with
            | Error e -> ctx e
            | Ok "span" -> (
                match parse_span j with
                | Error e -> ctx e
                | Ok sp -> go (lineno + 1) (sp :: spans) metrics rest)
            | Ok "summary" -> (
                match parse_summary j with
                | Error e -> ctx e
                | Ok m -> go (lineno + 1) spans (m :: metrics) rest)
            | Ok _ -> go (lineno + 1) spans metrics rest))
  in
  go 1 [] [] lines

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          of_lines (List.rev !lines))

(* ------------------------------------------------------------------ *)
(* Report tables                                                       *)
(* ------------------------------------------------------------------ *)

let fmt_s s =
  if Float.abs s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if Float.abs s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

(* Self time = a span's duration minus its direct children's durations:
   the table's [self] column sums to total wall time with no double
   counting, which is what makes "where did the time actually go"
   answerable per stage. *)
let self_times spans =
  let child_sum = Hashtbl.create 64 in
  List.iter
    (fun sp ->
      match sp.r_parent with
      | None -> ()
      | Some p ->
          let cur = Option.value ~default:0.0 (Hashtbl.find_opt child_sum p) in
          Hashtbl.replace child_sum p (cur +. sp.r_dur_s))
    spans;
  List.map
    (fun sp ->
      let children = Option.value ~default:0.0 (Hashtbl.find_opt child_sum sp.r_id) in
      (sp, Float.max 0.0 (sp.r_dur_s -. children)))
    spans

let group_label sp = match sp.r_stage with Some s -> s | None -> sp.r_name

let stage_table t =
  let tbl = Hashtbl.create 16 and order = ref [] in
  List.iter
    (fun (sp, self) ->
      let key = group_label sp in
      match Hashtbl.find_opt tbl key with
      | Some (n, total, self_acc) ->
          Hashtbl.replace tbl key (n + 1, total +. sp.r_dur_s, self_acc +. self)
      | None ->
          order := key :: !order;
          Hashtbl.replace tbl key (1, sp.r_dur_s, self))
    (self_times t.spans);
  let table =
    Table.create ~title:"Per-stage time (self vs total)"
      ~headers:[ "stage"; "spans"; "total"; "self"; "self %" ]
      ()
  in
  let grand_self =
    List.fold_left
      (fun acc key ->
        let _, _, s = Hashtbl.find tbl key in
        acc +. s)
      0.0 (List.rev !order)
  in
  List.iter
    (fun key ->
      let n, total, self = Hashtbl.find tbl key in
      let share = if grand_self > 0.0 then self /. grand_self else 0.0 in
      Table.add_row table
        [
          key;
          string_of_int n;
          fmt_s total;
          fmt_s self;
          Printf.sprintf "%.1f%%" (100.0 *. share);
        ])
    (List.rev !order);
  table

let top_spans_table ?(n = 10) t =
  let ranked =
    List.stable_sort (fun a b -> compare b.r_dur_s a.r_dur_s) t.spans
  in
  let table =
    Table.create ~title:(Printf.sprintf "Top %d spans by duration" n)
      ~headers:[ "span"; "track"; "start"; "dur" ]
      ()
  in
  List.iteri
    (fun i sp ->
      if i < n then
        Table.add_row table
          [
            String.make (min sp.r_depth 8) ' ' ^ sp.r_name;
            string_of_int sp.r_track;
            fmt_s sp.r_start_s;
            fmt_s sp.r_dur_s;
          ])
    ranked;
  table

let fmt_g v = Printf.sprintf "%.4g" v

let metrics_table t =
  let table =
    Table.create ~title:"Metric summaries"
      ~headers:[ "metric"; "kind"; "count"; "mean"; "p50"; "p99"; "p999"; "max" ]
      ()
  in
  let q v p = match Metrics.value_quantile v p with None -> "-" | Some x -> fmt_g x in
  List.iter
    (fun (name, v) ->
      match v with
      | Metrics.Counter c ->
          Table.add_row table
            [ name; "counter"; string_of_int c; "-"; "-"; "-"; "-"; "-" ]
      | Metrics.Gauge { last; max; samples } ->
          Table.add_row table
            [
              name;
              "gauge";
              string_of_int samples;
              fmt_g last;
              "-";
              "-";
              "-";
              (if samples = 0 then "-" else fmt_g max);
            ]
      | Metrics.Histogram { count; sum; max; _ } ->
          let mean = if count = 0 then 0.0 else sum /. float_of_int count in
          Table.add_row table
            [
              name;
              "histogram";
              string_of_int count;
              fmt_g mean;
              q v 0.5;
              q v 0.99;
              q v 0.999;
              (if count = 0 then "-" else fmt_g max);
            ])
    t.metrics;
  table

let report_string ?(top = 10) t =
  String.concat "\n"
    [
      Table.render (stage_table t);
      Table.render (top_spans_table ~n:top t);
      Table.render (metrics_table t);
    ]

(* ------------------------------------------------------------------ *)
(* Diff                                                                *)
(* ------------------------------------------------------------------ *)

type diff_row = {
  d_name : string;
  d_kind : string;
  d_before : float option;
  d_after : float option;
  d_delta : float option; (* fractional change after vs before *)
  d_regressed : bool;
}

(* One representative statistic per metric: the number [diff] compares.
   Histograms compare p99 — the serve-mode north star is specified in
   tail percentiles, not means. *)
let stat_of = function
  | Metrics.Counter c -> ("counter", Some (float_of_int c))
  | Metrics.Gauge { samples = 0; _ } -> ("gauge", None)
  | Metrics.Gauge { last; _ } -> ("gauge", Some last)
  | Metrics.Histogram { count = 0; _ } -> ("histogram p99", None)
  | Metrics.Histogram _ as v -> ("histogram p99", Metrics.value_quantile v 0.99)

let diff ?(threshold = 0.10) a b =
  let names =
    List.sort_uniq String.compare
      (List.map fst a.metrics @ List.map fst b.metrics)
  in
  List.map
    (fun name ->
      let look t = Option.map stat_of (List.assoc_opt name t.metrics) in
      let kind, before =
        match look a with Some (k, v) -> (k, v) | None -> ("", None)
      in
      let kind, after =
        match look b with Some (k, v) -> (k, v) | None -> (kind, None)
      in
      let delta =
        match (before, after) with
        | Some x, Some y when x <> 0.0 -> Some ((y -. x) /. Float.abs x)
        | _ -> None
      in
      let regressed =
        match delta with Some d -> Float.abs d > threshold | None -> false
      in
      { d_name = name; d_kind = kind; d_before = before; d_after = after;
        d_delta = delta; d_regressed = regressed })
    names

let diff_table ?threshold a b =
  let rows = diff ?threshold a b in
  let table =
    Table.create ~title:"Telemetry diff (B vs A)"
      ~headers:[ "metric"; "stat"; "A"; "B"; "delta"; "" ]
      ()
  in
  let opt = function None -> "-" | Some v -> fmt_g v in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.d_name;
          r.d_kind;
          opt r.d_before;
          opt r.d_after;
          (match r.d_delta with None -> "-" | Some d -> Table.fmt_pct d);
          (if r.d_regressed then "!" else "");
        ])
    rows;
  (table, List.exists (fun r -> r.d_regressed) rows)
