(** Offline analysis of JSONL traces: [halo_cli telemetry report|diff].

    Loads the line-oriented trace an {!Obs} sink wrote ([{"type":"span"}]
    events and [{"type":"summary"}] metric lines), reconstructs the span
    set and the final metric snapshot, and renders {!Table}s: per-stage
    self-vs-total time, top-k spans, histogram quantile summaries, and a
    thresholded per-metric diff between two runs. *)

type rspan = {
  r_id : int;
  r_parent : int option;
  r_name : string;
  r_depth : int;
  r_track : int;
  r_start_s : float;
  r_dur_s : float;
  r_stage : string option;
      (** The span's ["stage"] attribute when present — pipeline stages
          tag themselves so reports group by stage name. *)
}

type t = { spans : rspan list; metrics : (string * Metrics.value) list }

val of_lines : string list -> (t, string) result
(** Parse JSONL lines. Unknown event types are skipped; malformed lines
    are an [Error] naming the line number. *)

val load : string -> (t, string) result

val stage_table : t -> Table.t
(** Spans grouped by stage attribute (falling back to span name): span
    count, total time, self time (duration minus direct children — sums
    to wall time without double counting), and self-time share. *)

val top_spans_table : ?n:int -> t -> Table.t

val metrics_table : t -> Table.t
(** Counter values, gauge last/max, histogram count/mean/p50/p99/p999/max
    (quantiles re-derived from the decoded sketch buckets). *)

val report_string : ?top:int -> t -> string
(** The three report tables concatenated. *)

type diff_row = {
  d_name : string;
  d_kind : string;
  d_before : float option;
  d_after : float option;
  d_delta : float option;
      (** Fractional change, [(after - before) / |before|]. *)
  d_regressed : bool;  (** [|delta| > threshold]. *)
}

val diff : ?threshold:float -> t -> t -> diff_row list
(** [diff a b] compares one representative statistic per metric name
    (counter value, gauge last, histogram p99 — the north-star latency
    objective is a tail percentile) across both snapshots. [threshold]
    defaults to [0.10]. *)

val diff_table : ?threshold:float -> t -> t -> Table.t * bool
(** Rendered diff plus whether any metric moved beyond the threshold. *)
