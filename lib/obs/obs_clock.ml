(* A process-wide monotonicized clock. The toolchain here has no binding
   to CLOCK_MONOTONIC, so we monotonicize Unix.gettimeofday instead: all
   readers share one epoch and one high-water mark, and [now] never goes
   backwards even if the wall clock is stepped mid-run. Atomic CAS keeps
   the high-water mark coherent across domains without a lock. *)

let epoch_wall = Unix.gettimeofday ()
let high_water = Atomic.make 0.0

let rec advance elapsed =
  let seen = Atomic.get high_water in
  if elapsed <= seen then seen
  else if Atomic.compare_and_set high_water seen elapsed then elapsed
  else advance elapsed

let now () = advance (Unix.gettimeofday () -. epoch_wall)
let epoch () = epoch_wall
