type target = Channel of out_channel | Buffer of Buffer.t

type t = { target : target; mutable emitted : int }

let to_channel oc = { target = Channel oc; emitted = 0 }
let to_buffer b = { target = Buffer b; emitted = 0 }

let emit t json =
  let line = Json.to_string ~pretty:false json in
  (match t.target with
  | Channel oc ->
      output_string oc line;
      output_char oc '\n'
  | Buffer b ->
      Buffer.add_string b line;
      Buffer.add_char b '\n');
  t.emitted <- t.emitted + 1

let emitted t = t.emitted

let flush t = match t.target with Channel oc -> flush oc | Buffer _ -> ()
