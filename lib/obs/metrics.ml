type counter = { c_name : string; mutable c_value : int }

type gauge = {
  g_name : string;
  mutable g_last : float;
  mutable g_max : float;
  mutable g_samples : int;
}

(* Log-bucketed quantile sketch (DDSketch-style). A positive observation
   [v] lands in bucket [ceil (log_gamma v)], i.e. the bucket covering
   (gamma^(i-1), gamma^i]; the bucket's representative value
   [2 gamma^i / (gamma + 1)] is within relative error [alpha] of every
   value the bucket covers, where [gamma = (1+alpha)/(1-alpha)]. Buckets
   are sparse (only touched indices are stored), so the footprint is
   O(log range / alpha) and [merge] is exact per-bucket integer
   addition — associative and commutative. Non-positive observations are
   counted in a dedicated zero bucket whose representative is 0. *)
type histogram = {
  h_name : string;
  h_alpha : float;
  h_gamma : float;
  h_log_gamma : float;
  h_buckets : (int, int ref) Hashtbl.t;
  mutable h_zero : int; (* observations <= 0 *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_min : float;
  mutable h_max : float;
}

type metric = C of counter | G of gauge | H of histogram

type registry = { tbl : (string, metric) Hashtbl.t; mutable order : string list }

let create () = { tbl = Hashtbl.create 32; order = [] }

let register r name m =
  if Hashtbl.mem r.tbl name then
    invalid_arg (Printf.sprintf "Metrics: %S registered twice with different kinds" name);
  Hashtbl.replace r.tbl name m;
  r.order <- name :: r.order

let counter r name =
  match Hashtbl.find_opt r.tbl name with
  | Some (C c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      register r name (C c);
      c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let counter_name c = c.c_name

let gauge r name =
  match Hashtbl.find_opt r.tbl name with
  | Some (G g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)
  | None ->
      let g = { g_name = name; g_last = 0.0; g_max = neg_infinity; g_samples = 0 } in
      register r name (G g);
      g

let set g v =
  g.g_last <- v;
  if v > g.g_max then g.g_max <- v;
  g.g_samples <- g.g_samples + 1

let gauge_value g = g.g_last
let gauge_name g = g.g_name

let default_alpha = 0.01

let gamma_of_alpha alpha = (1.0 +. alpha) /. (1.0 -. alpha)

let make_histogram ~alpha name =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Metrics.histogram: alpha must be in (0, 1)";
  let gamma = gamma_of_alpha alpha in
  {
    h_name = name;
    h_alpha = alpha;
    h_gamma = gamma;
    h_log_gamma = log gamma;
    h_buckets = Hashtbl.create 32;
    h_zero = 0;
    h_sum = 0.0;
    h_count = 0;
    h_min = infinity;
    h_max = neg_infinity;
  }

let histogram ?(alpha = default_alpha) r name =
  match Hashtbl.find_opt r.tbl name with
  | Some (H h) -> h
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
  | None ->
      let h = make_histogram ~alpha name in
      register r name (H h);
      h

let bucket_index h v = int_of_float (Float.ceil (log v /. h.h_log_gamma))

(* The representative sits at the harmonic midpoint of the bucket's
   (gamma^(i-1), gamma^i] range: within [alpha] relative error of both
   ends. *)
let bucket_value h i = 2.0 *. (h.h_gamma ** float_of_int i) /. (h.h_gamma +. 1.0)

let observe h v =
  (if v > 0.0 then begin
     let i = bucket_index h v in
     match Hashtbl.find_opt h.h_buckets i with
     | Some n -> Stdlib.incr n
     | None -> Hashtbl.replace h.h_buckets i (ref 1)
   end
   else h.h_zero <- h.h_zero + 1);
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  if v > h.h_max then h.h_max <- v;
  if v < h.h_min then h.h_min <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_name h = h.h_name
let histogram_alpha h = h.h_alpha
let histogram_min h = h.h_min
let histogram_max h = h.h_max

let sorted_buckets h =
  Hashtbl.fold (fun i n acc -> (i, !n) :: acc) h.h_buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_buckets h =
  let pos =
    List.map (fun (i, n) -> (h.h_gamma ** float_of_int i, n)) (sorted_buckets h)
  in
  if h.h_zero > 0 then (0.0, h.h_zero) :: pos else pos

(* Quantile over (zero count, ascending (index, count) buckets): walk the
   cumulative counts to the bucket holding rank [q * (n-1)], then report
   its representative, clamped into the recorded [min, max] envelope
   (clamping only ever moves the estimate towards the true value). *)
let quantile_impl ~zero ~buckets ~count ~min_v ~max_v ~value_of q =
  if count = 0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = int_of_float (q *. float_of_int (count - 1)) in
    let clamp v = Float.max min_v (Float.min max_v v) in
    if zero > rank then Some (clamp 0.0)
    else begin
      let cum = ref zero and result = ref None in
      List.iter
        (fun (i, n) ->
          if !result = None then begin
            cum := !cum + n;
            if !cum > rank then result := Some (clamp (value_of i))
          end)
        buckets;
      match !result with
      | Some _ as r -> r
      | None -> Some max_v (* rounding slack: rank beyond the last bucket *)
    end
  end

let quantile h q =
  quantile_impl ~zero:h.h_zero ~buckets:(sorted_buckets h) ~count:h.h_count
    ~min_v:h.h_min ~max_v:h.h_max ~value_of:(bucket_value h) q

type value =
  | Counter of int
  | Gauge of { last : float; max : float; samples : int }
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      alpha : float;
      zero : int;
      buckets : (float * int) list;
    }

let value_of = function
  | C c -> Counter c.c_value
  | G g -> Gauge { last = g.g_last; max = g.g_max; samples = g.g_samples }
  | H h ->
      Histogram
        {
          count = h.h_count;
          sum = h.h_sum;
          min = h.h_min;
          max = h.h_max;
          alpha = h.h_alpha;
          zero = h.h_zero;
          buckets =
            List.map
              (fun (i, n) -> (h.h_gamma ** float_of_int i, n))
              (sorted_buckets h);
        }

let value_quantile v q =
  match v with
  | Counter _ | Gauge _ -> None
  | Histogram { count; min; max; alpha; zero; buckets; _ } ->
      let gamma = gamma_of_alpha alpha in
      let log_gamma = log gamma in
      let buckets =
        List.map
          (fun (le, n) ->
            (int_of_float (Float.round (log le /. log_gamma)), n))
          buckets
      in
      quantile_impl ~zero ~buckets ~count ~min_v:min ~max_v:max
        ~value_of:(fun i -> 2.0 *. (gamma ** float_of_int i) /. (gamma +. 1.0))
        q

let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.tbl name with
      | C c -> incr ~by:c.c_value (counter into name)
      | G g ->
          let d = gauge into name in
          if g.g_samples > 0 then begin
            if g.g_max > d.g_max then d.g_max <- g.g_max;
            d.g_last <- g.g_last;
            d.g_samples <- d.g_samples + g.g_samples
          end
      | H h ->
          let d = histogram ~alpha:h.h_alpha into name in
          if d.h_alpha <> h.h_alpha then
            invalid_arg
              (Printf.sprintf "Metrics.merge: %S sketch accuracy differs" name);
          Hashtbl.iter
            (fun i n ->
              match Hashtbl.find_opt d.h_buckets i with
              | Some m -> m := !m + !n
              | None -> Hashtbl.replace d.h_buckets i (ref !n))
            h.h_buckets;
          d.h_zero <- d.h_zero + h.h_zero;
          d.h_sum <- d.h_sum +. h.h_sum;
          d.h_count <- d.h_count + h.h_count;
          if h.h_max > d.h_max then d.h_max <- h.h_max;
          if h.h_min < d.h_min then d.h_min <- h.h_min)
    (List.rev src.order)

let snapshot r =
  List.rev_map (fun name -> (name, value_of (Hashtbl.find r.tbl name))) r.order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let float_json f = if Float.is_finite f then Json.Float f else Json.Null

(* The overflow bound is spelled the OpenMetrics way — the string "+Inf" —
   in every exporter (JSONL summaries, the Chrome trace args, BENCH
   records), never as a JSON null. *)
let le_json bound =
  if Float.is_finite bound then Json.Float bound else Json.String "+Inf"

let buckets_json ~zero buckets =
  let entries =
    (if zero > 0 then [ (0.0, zero) ] else [])
    @ buckets
    @ [ (infinity, 0) ]
  in
  Json.List
    (List.map
       (fun (bound, n) ->
         Json.Obj [ ("le", le_json bound); ("count", Json.Int n) ])
       entries)

(* Registered-but-never-updated gauges and histograms carry sentinel
   infinite extrema, which [float_json] would serialise as JSON [null];
   emit [samples = 0] / [count = 0] and omit the value fields entirely so
   trace consumers never see a null statistic. *)
let value_to_json v =
  match v with
  | Counter n -> Json.Obj [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge { samples = 0; _ } ->
      Json.Obj [ ("kind", Json.String "gauge"); ("samples", Json.Int 0) ]
  | Gauge { last; max; samples } ->
      Json.Obj
        [
          ("kind", Json.String "gauge");
          ("value", float_json last);
          ("max", float_json max);
          ("samples", Json.Int samples);
        ]
  | Histogram { count; sum; min; max; alpha; zero; buckets } ->
      let quantiles =
        if count = 0 then []
        else
          List.filter_map
            (fun (key, q) ->
              Option.map (fun x -> (key, float_json x)) (value_quantile v q))
            [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ]
      in
      Json.Obj
        ([
           ("kind", Json.String "histogram");
           ("count", Json.Int count);
           ("sum", float_json sum);
           ("alpha", Json.Float alpha);
         ]
        @ (if count = 0 then []
           else [ ("min", float_json min); ("max", float_json max) ])
        @ quantiles
        @ [ ("buckets", buckets_json ~zero buckets) ])

let value_of_json j =
  let ( let* ) = Result.bind in
  let* kind = Json.get_string "kind" j in
  match kind with
  | "counter" ->
      let* v = Json.get_int "value" j in
      Ok (Counter v)
  | "gauge" -> (
      let* samples = Json.get_int "samples" j in
      if samples = 0 then Ok (Gauge { last = 0.0; max = neg_infinity; samples = 0 })
      else
        let* last = Json.get_float "value" j in
        let* max = Json.get_float "max" j in
        Ok (Gauge { last; max; samples }))
  | "histogram" ->
      let* count = Json.get_int "count" j in
      let* sum = Json.get_float "sum" j in
      let* alpha = Json.get_float "alpha" j in
      let* min, max =
        if count = 0 then Ok (infinity, neg_infinity)
        else
          let* mn = Json.get_float "min" j in
          let* mx = Json.get_float "max" j in
          Ok (mn, mx)
      in
      let* entries = Json.get_list "buckets" j in
      let* parsed =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* n = Json.get_int "count" e in
            match Json.mem "le" e with
            | Some (Json.String "+Inf") -> Ok ((infinity, n) :: acc)
            | Some (Json.Float f) -> Ok ((f, n) :: acc)
            | Some (Json.Int i) -> Ok ((float_of_int i, n) :: acc)
            | _ -> Error "buckets: le must be a number or \"+Inf\"")
          (Ok []) entries
      in
      let parsed = List.rev parsed in
      let zero =
        List.fold_left
          (fun z (le, n) -> if le = 0.0 then z + n else z)
          0 parsed
      in
      let buckets =
        List.filter (fun (le, n) -> le > 0.0 && Float.is_finite le && n > 0) parsed
      in
      Ok (Histogram { count; sum; min; max; alpha; zero; buckets })
  | k -> Error (Printf.sprintf "unknown metric kind %S" k)

let to_json r =
  Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) (snapshot r))
