type counter = { c_name : string; mutable c_value : int }

type gauge = {
  g_name : string;
  mutable g_last : float;
  mutable g_max : float;
  mutable g_samples : int;
}

type histogram = {
  h_name : string;
  h_bounds : float array; (* upper bounds, strictly increasing *)
  h_counts : int array; (* length = Array.length h_bounds + 1; last = +inf *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_max : float;
}

type metric = C of counter | G of gauge | H of histogram

type registry = { tbl : (string, metric) Hashtbl.t; mutable order : string list }

let create () = { tbl = Hashtbl.create 32; order = [] }

let register r name m =
  if Hashtbl.mem r.tbl name then
    invalid_arg (Printf.sprintf "Metrics: %S registered twice with different kinds" name);
  Hashtbl.replace r.tbl name m;
  r.order <- name :: r.order

let counter r name =
  match Hashtbl.find_opt r.tbl name with
  | Some (C c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %S is not a counter" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      register r name (C c);
      c

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let counter_name c = c.c_name

let gauge r name =
  match Hashtbl.find_opt r.tbl name with
  | Some (G g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %S is not a gauge" name)
  | None ->
      let g = { g_name = name; g_last = 0.0; g_max = neg_infinity; g_samples = 0 } in
      register r name (G g);
      g

let set g v =
  g.g_last <- v;
  if v > g.g_max then g.g_max <- v;
  g.g_samples <- g.g_samples + 1

let gauge_value g = g.g_last
let gauge_name g = g.g_name

(* 1, 2, 4, ... 2^15: a size/depth-friendly exponential ladder. *)
let default_buckets = Array.init 16 (fun k -> float_of_int (1 lsl k))

let histogram ?(buckets = default_buckets) r name =
  match Hashtbl.find_opt r.tbl name with
  | Some (H h) -> h
  | Some _ ->
      invalid_arg (Printf.sprintf "Metrics.histogram: %S is not a histogram" name)
  | None ->
      let n = Array.length buckets in
      if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
      for k = 1 to n - 1 do
        if buckets.(k) <= buckets.(k - 1) then
          invalid_arg "Metrics.histogram: bounds must be strictly increasing"
      done;
      let h =
        {
          h_name = name;
          h_bounds = Array.copy buckets;
          h_counts = Array.make (n + 1) 0;
          h_sum = 0.0;
          h_count = 0;
          h_max = neg_infinity;
        }
      in
      register r name (H h);
      h

let bucket_index h v =
  (* First bound >= v; the overflow bucket catches the rest. *)
  let n = Array.length h.h_bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v <= h.h_bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  let k = bucket_index h v in
  h.h_counts.(k) <- h.h_counts.(k) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum
let histogram_name h = h.h_name

let histogram_buckets h =
  List.init
    (Array.length h.h_counts)
    (fun k ->
      let bound =
        if k < Array.length h.h_bounds then h.h_bounds.(k) else infinity
      in
      (bound, h.h_counts.(k)))

type value =
  | Counter of int
  | Gauge of { last : float; max : float; samples : int }
  | Histogram of {
      count : int;
      sum : float;
      max : float;
      buckets : (float * int) list;
    }

let value_of = function
  | C c -> Counter c.c_value
  | G g -> Gauge { last = g.g_last; max = g.g_max; samples = g.g_samples }
  | H h ->
      Histogram
        {
          count = h.h_count;
          sum = h.h_sum;
          max = h.h_max;
          buckets = histogram_buckets h;
        }

let merge ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.tbl name with
      | C c -> incr ~by:c.c_value (counter into name)
      | G g ->
          let d = gauge into name in
          if g.g_samples > 0 then begin
            if g.g_max > d.g_max then d.g_max <- g.g_max;
            d.g_last <- g.g_last;
            d.g_samples <- d.g_samples + g.g_samples
          end
      | H h ->
          let d = histogram ~buckets:h.h_bounds into name in
          if d.h_bounds <> h.h_bounds then
            invalid_arg
              (Printf.sprintf "Metrics.merge: %S bucket bounds differ" name);
          Array.iteri (fun k n -> d.h_counts.(k) <- d.h_counts.(k) + n) h.h_counts;
          d.h_sum <- d.h_sum +. h.h_sum;
          d.h_count <- d.h_count + h.h_count;
          if h.h_max > d.h_max then d.h_max <- h.h_max)
    (List.rev src.order)

let snapshot r =
  List.rev_map (fun name -> (name, value_of (Hashtbl.find r.tbl name))) r.order
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let float_json f = if Float.is_finite f then Json.Float f else Json.Null

(* Registered-but-never-updated gauges and histograms carry sentinel
   [neg_infinity] maxima, which [float_json] would serialise as JSON
   [null]; emit [samples = 0] / [count = 0] and omit the value fields
   entirely so trace consumers never see a null statistic. *)
let value_to_json = function
  | Counter n -> Json.Obj [ ("kind", Json.String "counter"); ("value", Json.Int n) ]
  | Gauge { samples = 0; _ } ->
      Json.Obj [ ("kind", Json.String "gauge"); ("samples", Json.Int 0) ]
  | Gauge { last; max; samples } ->
      Json.Obj
        [
          ("kind", Json.String "gauge");
          ("value", float_json last);
          ("max", float_json max);
          ("samples", Json.Int samples);
        ]
  | Histogram { count; sum; max; buckets } ->
      Json.Obj
        ([
           ("kind", Json.String "histogram");
           ("count", Json.Int count);
           ("sum", float_json sum);
         ]
        @ (if count = 0 then [] else [ ("max", float_json max) ])
        @ [
            ( "buckets",
              Json.List
                (List.map
                   (fun (bound, n) ->
                     (* The overflow bucket's bound is +inf; spell it the
                        Prometheus way rather than leak a JSON null. *)
                     let le =
                       if Float.is_finite bound then Json.Float bound
                       else Json.String "+Inf"
                     in
                     Json.Obj [ ("le", le); ("count", Json.Int n) ])
                   buckets) );
          ])

let to_json r =
  Json.Obj (List.map (fun (name, v) -> (name, value_to_json v)) (snapshot r))
