(** Process-wide monotonic(ized) clock.

    Every {!Obs.t} in the process reads the same clock from the same
    epoch, so span timestamps from different contexts — the main context
    and each {!Par} worker's private context — live on one comparable
    timeline, and the Chrome-trace export lines tracks up without
    per-context skew.

    No [CLOCK_MONOTONIC] binding is available in this toolchain, so the
    clock is a monotonicized [Unix.gettimeofday]: readings are clamped to
    a process-wide atomic high-water mark and never decrease, making
    span durations robust to the wall clock being stepped mid-run. *)

val now : unit -> float
(** Seconds since the process-wide epoch; never decreases. *)

val epoch : unit -> float
(** The wall-clock time ([Unix.gettimeofday]) at which this process's
    telemetry epoch was taken. *)
