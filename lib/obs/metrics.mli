(** The metric registry: counters, gauges and histograms.

    Instrumented modules resolve handles once at construction time
    ({!counter}/{!gauge}/{!histogram} are idempotent per name) and update
    them through the handle on the hot path — no per-event name lookup.
    Registration is keyed by name; re-registering a name with a different
    kind raises [Invalid_argument].

    Metric names are dot-separated, lowest-level component first, e.g.
    [alloc.chunks.carved] or [profile.affinity_queue.depth] — the span
    taxonomy table in DESIGN.md lists every name the stack emits. *)

type counter
type gauge
type histogram
type registry

val create : unit -> registry

val counter : registry -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : registry -> string -> gauge

val set : gauge -> float -> unit
(** Record the gauge's current level; the running max and sample count are
    kept alongside the last value. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

val default_buckets : float array
(** Exponential ladder 1, 2, 4, ... 32768 — suits depths and sizes. *)

val histogram : ?buckets:float array -> registry -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit overflow
    bucket covers everything above the last bound. Default
    {!default_buckets}. *)

val observe : histogram -> float -> unit
(** An observation lands in the first bucket whose bound is [>=] it. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_name : histogram -> string

val histogram_buckets : histogram -> (float * int) list
(** [(upper_bound, count)] per bucket, in bound order; the final bucket's
    bound is [infinity]. Counts are per-bucket, not cumulative. *)

type value =
  | Counter of int
  | Gauge of { last : float; max : float; samples : int }
  | Histogram of {
      count : int;
      sum : float;
      max : float;
      buckets : (float * int) list;
    }

val merge : into:registry -> registry -> unit
(** [merge ~into src] folds every metric of [src] into [into], creating
    missing metrics as it goes: counters add, gauges take the max of
    maxes and sum sample counts (the merged [last] is the source's last
    when the source recorded any sample — merge sources in a fixed order
    for a deterministic result), histograms add per-bucket counts, sums
    and counts. The registries' mutable records are not safe for
    concurrent mutation, so this is the join-side half of domain-parallel
    observability: give each worker a private registry and merge after
    the join (see {!Par}). Raises [Invalid_argument] when a name is
    registered with different kinds in the two registries, or when
    histogram bucket bounds differ. *)

val snapshot : registry -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val value_to_json : value -> Json.t

val to_json : registry -> Json.t
(** One object field per metric, sorted by name. *)
