(** The metric registry: counters, gauges and histograms.

    Instrumented modules resolve handles once at construction time
    ({!counter}/{!gauge}/{!histogram} are idempotent per name) and update
    them through the handle on the hot path — no per-event name lookup.
    Registration is keyed by name; re-registering a name with a different
    kind raises [Invalid_argument].

    Metric names are dot-separated, lowest-level component first, e.g.
    [alloc.chunks.carved] or [profile.affinity_queue.depth] — the span
    taxonomy table in DESIGN.md lists every name the stack emits. *)

type counter
type gauge
type histogram
type registry

val create : unit -> registry

val counter : registry -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : registry -> string -> gauge

val set : gauge -> float -> unit
(** Record the gauge's current level; the running max and sample count are
    kept alongside the last value. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

val default_buckets : float array
(** Exponential ladder 1, 2, 4, ... 32768 — suits depths and sizes. *)

val histogram : ?buckets:float array -> registry -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit overflow
    bucket covers everything above the last bound. Default
    {!default_buckets}. *)

val observe : histogram -> float -> unit
(** An observation lands in the first bucket whose bound is [>=] it. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_name : histogram -> string

val histogram_buckets : histogram -> (float * int) list
(** [(upper_bound, count)] per bucket, in bound order; the final bucket's
    bound is [infinity]. Counts are per-bucket, not cumulative. *)

type value =
  | Counter of int
  | Gauge of { last : float; max : float; samples : int }
  | Histogram of {
      count : int;
      sum : float;
      max : float;
      buckets : (float * int) list;
    }

val snapshot : registry -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val value_to_json : value -> Json.t

val to_json : registry -> Json.t
(** One object field per metric, sorted by name. *)
