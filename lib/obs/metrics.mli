(** The metric registry: counters, gauges and log-bucketed histograms.

    Instrumented modules resolve handles once at construction time
    ({!counter}/{!gauge}/{!histogram} are idempotent per name) and update
    them through the handle on the hot path — no per-event name lookup.
    Registration is keyed by name; re-registering a name with a different
    kind raises [Invalid_argument].

    Metric names are dot-separated, lowest-level component first, e.g.
    [alloc.chunks.carved] or [profile.affinity_queue.depth] — the span
    taxonomy table in DESIGN.md lists every name the stack emits. *)

type counter
type gauge
type histogram
type registry

val create : unit -> registry

val counter : registry -> string -> counter
val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val gauge : registry -> string -> gauge

val set : gauge -> float -> unit
(** Record the gauge's current level; the running max and sample count are
    kept alongside the last value. *)

val gauge_value : gauge -> float
val gauge_name : gauge -> string

(** {1 Quantile sketch histograms}

    DDSketch-style log-bucketed histograms: a positive observation [v]
    lands in the sparse bucket [ceil (log_gamma v)] where
    [gamma = (1+alpha)/(1-alpha)], so any quantile extracted from the
    sketch is within relative error [alpha] of an exactly-ranked value
    from the recorded stream. Buckets are integer counts, so {!merge} is
    per-bucket addition — exactly associative and commutative, which is
    what lets per-domain worker registries (and future fleet shards)
    aggregate without precision loss. Non-positive observations are
    tallied in a dedicated zero bucket (queue depths and occupancies
    observe [0.0] routinely). *)

val default_alpha : float
(** [0.01] — quantiles accurate to ±1%, ~900 buckets per decade-spanning
    distribution worst case, far fewer in practice. *)

val histogram : ?alpha:float -> registry -> string -> histogram
(** [alpha] is the relative-error bound, in [(0, 1)]; default
    {!default_alpha}. Re-resolving an existing name ignores [alpha] and
    returns the original handle. *)

val observe : histogram -> float -> unit

val quantile : histogram -> float -> float option
(** [quantile h q] for [q] in [[0, 1]]: the representative value of the
    bucket holding rank [q * (count - 1)], clamped into the recorded
    [min..max] envelope. [None] when the histogram is empty. The result is
    within [alpha] relative error of the true [q]-quantile of the
    observed stream. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float
val histogram_name : histogram -> string
val histogram_alpha : histogram -> float

val histogram_min : histogram -> float
(** [infinity] while empty. *)

val histogram_max : histogram -> float
(** [neg_infinity] while empty. *)

val histogram_buckets : histogram -> (float * int) list
(** [(upper_bound, count)] per occupied bucket in bound order, the zero
    bucket (bound [0.0]) first when occupied. Counts are per-bucket, not
    cumulative. *)

type value =
  | Counter of int
  | Gauge of { last : float; max : float; samples : int }
  | Histogram of {
      count : int;
      sum : float;
      min : float;
      max : float;
      alpha : float;
      zero : int;
      buckets : (float * int) list;
          (** Occupied positive buckets [(upper_bound, count)], ascending;
              the zero bucket is carried separately in [zero]. *)
    }

val value_quantile : value -> float -> float option
(** Quantile extraction from a snapshot/decoded {!value} — same contract
    as {!quantile}; [None] for counters, gauges and empty histograms. *)

val merge : into:registry -> registry -> unit
(** [merge ~into src] folds every metric of [src] into [into], creating
    missing metrics as it goes: counters add; gauges take the max of
    maxes and sum sample counts (the merged [last] is the source's last
    when the source recorded any sample — merge sources in a fixed order
    for a deterministic result); histograms add per-bucket counts, zero
    counts, sums and counts, and combine min/max. Histogram merging is
    associative and commutative up to float-sum rounding in [sum] (exact
    when observations are integer-valued below 2{^53}). The registries'
    mutable records are not safe for concurrent mutation, so this is the
    join-side half of domain-parallel observability: give each worker a
    private registry and merge after the join (see {!Par}). Raises
    [Invalid_argument] when a name is registered with different kinds in
    the two registries, or when histogram [alpha]s differ. *)

val snapshot : registry -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val value_to_json : value -> Json.t
(** Histograms serialise OpenMetrics-style: occupied buckets as
    [{"le": bound, "count": n}] with a trailing [{"le": "+Inf",
    "count": 0}] overflow marker, plus [count]/[sum]/[alpha] and, when
    non-empty, [min]/[max]/[p50]/[p90]/[p99]/[p999]. *)

val value_of_json : Json.t -> (value, string) result
(** Decode a {!value_to_json} object back; round-trips bucket counts
    exactly (quantiles re-derive identically from the decoded value). *)

val to_json : registry -> Json.t
(** One object field per metric, sorted by name. *)
