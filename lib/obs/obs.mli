(** Telemetry context: hierarchical spans + metric registry + JSONL trace.

    The paper's artefact emits per-run JSON data points (A.6); this module
    generalises that into a first-class observability layer for the whole
    pipeline. One {!t} covers one logical run (plan + instantiate +
    measure); every instrumented module takes an [Obs.t option] and treats
    [None] as "observability disabled".

    {b Zero-cost discipline}: every instrumentation hook in the stack
    pattern-matches the option once — on the hot paths (interpreter
    access/call hooks, allocator malloc) the match happens at
    construction/compile time, so the disabled path executes the exact
    seed code with no per-event branch, lookup or allocation. The
    [bench obs] comparison verifies throughput parity.

    Thread the {e same} context through the stages you want correlated:
    span ids are unique per context and events carry a monotonic [seq], so
    a JSONL trace reconstructs the full interleaving. Parallel sections
    give each domain a private context on its own {e track} (sharing the
    parent's epoch) and fold it back with {!adopt} + {!Metrics.merge} at
    the join — see {!Par}. *)

type t

val create :
  ?clock:(unit -> float) -> ?epoch:float -> ?track:int -> ?sink:Trace.t -> unit -> t
(** [clock] defaults to {!Obs_clock.now} — the process-wide monotonicized
    clock, so every context in the process reads one comparable timeline;
    inject a fake for deterministic tests. [epoch] (default: the clock's
    value at creation) is subtracted from every reading; pass the parent's
    {!epoch} when creating a worker context so its span timestamps line up
    with the parent's. [track] (default 0) tags every span recorded here —
    one track per domain in the Chrome-trace export. Without a [sink],
    spans and metrics are still recorded in memory (for
    {!span_tree_string} etc.) but nothing is written. *)

val enabled : t option -> bool
val metrics : t -> Metrics.registry
val sink : t -> Trace.t option

val epoch : t -> float
(** The clock value all span timestamps are relative to. *)

val track : t -> int

(** {1 Spans} *)

val span :
  ?attrs:(string * Json.t) list ->
  ?instructions:(unit -> int) ->
  t option ->
  string ->
  (unit -> 'a) ->
  'a
(** [span obs name f] runs [f] inside a span nested under the innermost
    open span. Wall-clock duration is always recorded; [instructions]
    (typically [fun () -> Interp.instructions i]) is sampled at entry and
    exit and the delta recorded — the retired-instruction dimension.
    [Gc.quick_stat] is sampled at entry and exit too, so every closed span
    carries its runtime cost (words allocated, promotions, collections,
    compactions). The span is closed (and emitted to the sink) even if
    [f] raises. With [obs = None] this is exactly [f ()]. *)

val add_attrs : t option -> (string * Json.t) list -> unit
(** Append attributes to the innermost open span (no-op when none). *)

(** {1 Name-based metric helpers (cold paths)}

    Convenience wrappers that look the metric up by name per call. Hot
    paths should resolve a {!Metrics} handle once instead. *)

val count : t option -> string -> int -> unit
val set_gauge : t option -> string -> float -> unit
val observe : t option -> string -> float -> unit

(** {1 Series events} *)

val event : t option -> name:string -> ?attrs:(string * Json.t) list -> float -> unit
(** Emit one [{"type":"metric"}] sample to the sink (no-op without one).
    This is the time-series channel — allocator pool occupancy, cache miss
    streams — sampled by the instrumentation site, not aggregated. *)

(** {1 Completion and reporting} *)

val finish : t -> unit
(** Force-close any spans still open, emit one [{"type":"summary"}] line
    per registered metric, and flush the sink. Call once, at the end. *)

type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_compactions : int;
}
(** [Gc.quick_stat] deltas across a span: words are cumulative-allocation
    deltas (so [minor + major - promoted] is words newly allocated inside
    the span), the rest are collection-count deltas. *)

type span = private {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  track : int;  (** The owning context's track (domain lane). *)
  start_s : float;  (** Seconds since the context's epoch. *)
  mutable dur_s : float;
  mutable sp_instructions : int option;
  mutable sp_gc : gc_delta option;  (** Present once the span is closed. *)
  mutable attrs : (string * Json.t) list;
  mutable closed : bool;
}

val spans : t -> span list
(** All spans in start order (parents precede children); after {!adopt},
    adopted spans follow the context's own, each group in start order. *)

val adopt : t -> from:t -> unit
(** [adopt t ~from] grafts every span recorded in [from] into [t]: ids
    (and parent ids) are offset so they stay unique within [t], track ids
    are kept, and timestamps are rebased from [from]'s epoch onto [t]'s —
    the adopted spans then appear in {!spans}, the span tree, and the
    trace-event export, and are re-emitted to [t]'s sink. Metrics are
    {e not} merged (that is {!Metrics.merge}'s job — keep the two
    concerns separable for fleet-style aggregation). Raises
    [Invalid_argument] if [from] still has open spans. *)

val span_tree_string : t -> string
(** Indented tree: name, duration, retired instructions, attributes.
    Spans from non-zero tracks are prefixed with [[tN]]. *)

val top_metrics_string : ?n:int -> t -> string
(** The [n] (default 10) highest-volume metrics, one line each. *)
