(** Telemetry context: hierarchical spans + metric registry + JSONL trace.

    The paper's artefact emits per-run JSON data points (A.6); this module
    generalises that into a first-class observability layer for the whole
    pipeline. One {!t} covers one logical run (plan + instantiate +
    measure); every instrumented module takes an [Obs.t option] and treats
    [None] as "observability disabled".

    {b Zero-cost discipline}: every instrumentation hook in the stack
    pattern-matches the option once — on the hot paths (interpreter
    access/call hooks, allocator malloc) the match happens at
    construction/compile time, so the disabled path executes the exact
    seed code with no per-event branch, lookup or allocation. The
    [bench obs] comparison verifies throughput parity.

    Thread the {e same} context through the stages you want correlated:
    span ids are unique per context and events carry a monotonic [seq], so
    a JSONL trace reconstructs the full interleaving. *)

type t

val create : ?clock:(unit -> float) -> ?sink:Trace.t -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]; inject a fake for
    deterministic tests. Without a [sink], spans and metrics are still
    recorded in memory (for {!span_tree_string} etc.) but nothing is
    written. *)

val enabled : t option -> bool
val metrics : t -> Metrics.registry
val sink : t -> Trace.t option

(** {1 Spans} *)

val span :
  ?attrs:(string * Json.t) list ->
  ?instructions:(unit -> int) ->
  t option ->
  string ->
  (unit -> 'a) ->
  'a
(** [span obs name f] runs [f] inside a span nested under the innermost
    open span. Wall-clock duration is always recorded; [instructions]
    (typically [fun () -> Interp.instructions i]) is sampled at entry and
    exit and the delta recorded — the retired-instruction dimension. The
    span is closed (and emitted to the sink) even if [f] raises. With
    [obs = None] this is exactly [f ()]. *)

val add_attrs : t option -> (string * Json.t) list -> unit
(** Append attributes to the innermost open span (no-op when none). *)

(** {1 Name-based metric helpers (cold paths)}

    Convenience wrappers that look the metric up by name per call. Hot
    paths should resolve a {!Metrics} handle once instead. *)

val count : t option -> string -> int -> unit
val set_gauge : t option -> string -> float -> unit
val observe : t option -> string -> float -> unit

(** {1 Series events} *)

val event : t option -> name:string -> ?attrs:(string * Json.t) list -> float -> unit
(** Emit one [{"type":"metric"}] sample to the sink (no-op without one).
    This is the time-series channel — allocator pool occupancy, cache miss
    streams — sampled by the instrumentation site, not aggregated. *)

(** {1 Completion and reporting} *)

val finish : t -> unit
(** Force-close any spans still open, emit one [{"type":"summary"}] line
    per registered metric, and flush the sink. Call once, at the end. *)

type span = private {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  start_s : float;  (** Seconds since the context was created. *)
  mutable dur_s : float;
  mutable sp_instructions : int option;
  mutable attrs : (string * Json.t) list;
  mutable closed : bool;
}

val spans : t -> span list
(** All spans in start order (parents precede children). *)

val span_tree_string : t -> string
(** Indented tree: name, duration, retired instructions, attributes. *)

val top_metrics_string : ?n:int -> t -> string
(** The [n] (default 10) highest-volume metrics, one line each. *)
