type gc_delta = {
  gd_minor_words : float;
  gd_major_words : float;
  gd_promoted_words : float;
  gd_minor_collections : int;
  gd_major_collections : int;
  gd_compactions : int;
}

type span = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  track : int;
  start_s : float; (* on the context's timeline: clock () - epoch *)
  mutable dur_s : float;
  mutable sp_instructions : int option;
  mutable sp_gc : gc_delta option;
  mutable attrs : (string * Json.t) list;
  mutable closed : bool;
}

type t = {
  metrics : Metrics.registry;
  sink : Trace.t option;
  clock : unit -> float;
  epoch : float;
  track : int;
  mutable stack : (span * Gc.stat) list; (* innermost open span first *)
  mutable recorded : span list; (* every span, most recently started first *)
  mutable next_id : int;
  mutable seq : int;
}

let default_clock = Obs_clock.now

let create ?(clock = default_clock) ?epoch ?(track = 0) ?sink () =
  let epoch = match epoch with Some e -> e | None -> clock () in
  {
    metrics = Metrics.create ();
    sink;
    clock;
    epoch;
    track;
    stack = [];
    recorded = [];
    next_id = 0;
    seq = 0;
  }

let enabled = Option.is_some
let metrics t = t.metrics
let sink t = t.sink
let epoch t = t.epoch
let track t = t.track

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let emit_event t fields =
  match t.sink with
  | None -> ()
  | Some sink -> Trace.emit sink (Json.Obj (fields @ [ ("seq", Json.Int (next_seq t)) ]))

let float_json f = if Float.is_finite f then Json.Float f else Json.Null

let gc_delta_json d =
  Json.Obj
    [
      ("minor_words", float_json d.gd_minor_words);
      ("major_words", float_json d.gd_major_words);
      ("promoted_words", float_json d.gd_promoted_words);
      ("minor_collections", Json.Int d.gd_minor_collections);
      ("major_collections", Json.Int d.gd_major_collections);
      ("compactions", Json.Int d.gd_compactions);
    ]

let span_event sp =
  [
    ("type", Json.String "span");
    ("id", Json.Int sp.id);
    ("parent", match sp.parent with None -> Json.Null | Some p -> Json.Int p);
    ("name", Json.String sp.name);
    ("depth", Json.Int sp.depth);
    ("track", Json.Int sp.track);
    ("start_s", float_json sp.start_s);
    ("dur_s", float_json sp.dur_s);
    ( "instructions",
      match sp.sp_instructions with None -> Json.Null | Some n -> Json.Int n );
    ("gc", match sp.sp_gc with None -> Json.Null | Some d -> gc_delta_json d);
    ("attrs", Json.Obj sp.attrs);
  ]

let span_begin t name =
  let parent, depth =
    match t.stack with
    | [] -> (None, 0)
    | (p, _) :: _ -> (Some p.id, p.depth + 1)
  in
  let sp =
    {
      id = t.next_id;
      parent;
      name;
      depth;
      track = t.track;
      start_s = t.clock () -. t.epoch;
      dur_s = 0.0;
      sp_instructions = None;
      sp_gc = None;
      attrs = [];
      closed = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- (sp, Gc.quick_stat ()) :: t.stack;
  t.recorded <- sp :: t.recorded;
  sp

let allocated_words (d : gc_delta) =
  d.gd_minor_words +. d.gd_major_words -. d.gd_promoted_words

let span_end t sp ~instructions =
  let gc0 =
    match t.stack with
    | (top, gc0) :: rest when top == sp ->
        t.stack <- rest;
        gc0
    | _ -> invalid_arg (Printf.sprintf "Obs: span %S closed out of order" sp.name)
  in
  sp.dur_s <- t.clock () -. t.epoch -. sp.start_s;
  sp.sp_instructions <- instructions;
  let gc1 = Gc.quick_stat () in
  let delta =
    {
      gd_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words;
      gd_major_words = gc1.Gc.major_words -. gc0.Gc.major_words;
      gd_promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words;
      gd_minor_collections = gc1.Gc.minor_collections - gc0.Gc.minor_collections;
      gd_major_collections = gc1.Gc.major_collections - gc0.Gc.major_collections;
      gd_compactions = gc1.Gc.compactions - gc0.Gc.compactions;
    }
  in
  sp.sp_gc <- Some delta;
  (* Mutator-side cost of the whole run: refresh the allocation-rate
     gauge whenever a top-level span closes. *)
  if sp.depth = 0 && sp.dur_s > 0.0 then
    Metrics.set
      (Metrics.gauge t.metrics "runtime.alloc_rate")
      (allocated_words delta /. sp.dur_s);
  sp.closed <- true;
  emit_event t (span_event sp)

let span ?(attrs = []) ?instructions obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let sp = span_begin t name in
      sp.attrs <- attrs;
      let instr0 = match instructions with None -> 0 | Some g -> g () in
      let finish () =
        let delta =
          match instructions with None -> None | Some g -> Some (g () - instr0)
        in
        span_end t sp ~instructions:delta
      in
      Fun.protect ~finally:finish f

let add_attrs obs attrs =
  match obs with
  | None -> ()
  | Some t -> (
      match t.stack with
      | [] -> ()
      | (sp, _) :: _ -> sp.attrs <- sp.attrs @ attrs)

let count obs name by =
  match obs with
  | None -> ()
  | Some t -> Metrics.incr ~by (Metrics.counter t.metrics name)

let set_gauge obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.set (Metrics.gauge t.metrics name) v

let observe obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.observe (Metrics.histogram t.metrics name) v

let event obs ~name ?(attrs = []) v =
  match obs with
  | None -> ()
  | Some t ->
      emit_event t
        [
          ("type", Json.String "metric");
          ("name", Json.String name);
          ("value", float_json v);
          ("attrs", Json.Obj attrs);
        ]

let spans t = List.rev t.recorded

let adopt t ~from =
  (match from.stack with
  | [] -> ()
  | _ -> invalid_arg "Obs.adopt: source context still has open spans");
  let offset = t.next_id in
  let shift = from.epoch -. t.epoch in
  let adopted =
    List.rev_map
      (fun (sp : span) ->
        {
          sp with
          id = sp.id + offset;
          parent = Option.map (fun p -> p + offset) sp.parent;
          start_s = sp.start_s +. shift;
        })
      from.recorded
    (* rev_map over most-recent-first gives start order ... *)
  in
  t.next_id <- t.next_id + from.next_id;
  List.iter
    (fun sp ->
      t.recorded <- sp :: t.recorded;
      emit_event t (span_event sp))
    adopted

let finish t =
  (match t.stack with
  | [] -> ()
  | open_spans ->
      (* Close any spans left open (a failed run): innermost first. *)
      List.iter (fun (sp, _) -> span_end t sp ~instructions:None) open_spans);
  List.iter
    (fun (name, v) ->
      emit_event t
        (("type", Json.String "summary")
        :: ("name", Json.String name)
        :: (match Metrics.value_to_json v with
           | Json.Obj fields -> fields
           | other -> [ ("value", other) ])))
    (Metrics.snapshot t.metrics);
  Option.iter Trace.flush t.sink

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_duration s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let span_tree_string t =
  let buf = Buffer.create 512 in
  List.iter
    (fun (sp : span) ->
      let tr = if sp.track = 0 then "" else Printf.sprintf "[t%d] " sp.track in
      let instr =
        match sp.sp_instructions with
        | None -> ""
        | Some n -> Printf.sprintf "  %d instrs" n
      in
      let attrs =
        match sp.attrs with
        | [] -> ""
        | l ->
            "  ["
            ^ String.concat ", "
                (List.map
                   (fun (k, v) -> k ^ "=" ^ Json.to_string ~pretty:false v)
                   l)
            ^ "]"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s%s  %s%s%s\n"
           (String.make (2 * sp.depth) ' ')
           tr sp.name (fmt_duration sp.dur_s) instr attrs))
    (spans t);
  Buffer.contents buf

let metric_weight = function
  | Metrics.Counter n -> float_of_int n
  | Metrics.Gauge { samples; _ } -> float_of_int samples
  | Metrics.Histogram { count; _ } -> float_of_int count

let top_metrics_string ?(n = 10) t =
  let all = Metrics.snapshot t.metrics in
  let ranked =
    List.stable_sort
      (fun (_, a) (_, b) -> compare (metric_weight b) (metric_weight a))
      all
  in
  let take =
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: go (k - 1) rest
    in
    go n ranked
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      let line =
        match v with
        | Metrics.Counter c -> Printf.sprintf "%-36s counter    %d" name c
        | Metrics.Gauge { last; max; samples } ->
            Printf.sprintf "%-36s gauge      last=%g max=%g (%d samples)" name
              last max samples
        | Metrics.Histogram { count; sum; max; _ } as v ->
            let mean = if count = 0 then 0.0 else sum /. float_of_int count in
            let p99 =
              match Metrics.value_quantile v 0.99 with
              | None -> ""
              | Some p -> Printf.sprintf " p99=%.3g" p
            in
            Printf.sprintf "%-36s histogram  n=%d mean=%.2f%s max=%g" name count
              mean p99 max
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    take;
  Buffer.contents buf
