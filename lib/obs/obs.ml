type span = {
  id : int;
  parent : int option;
  name : string;
  depth : int;
  start_s : float; (* relative to ctx creation *)
  mutable dur_s : float;
  mutable sp_instructions : int option;
  mutable attrs : (string * Json.t) list;
  mutable closed : bool;
}

type t = {
  metrics : Metrics.registry;
  sink : Trace.t option;
  clock : unit -> float;
  epoch : float;
  mutable stack : span list; (* innermost open span first *)
  mutable recorded : span list; (* every span, most recently started first *)
  mutable next_id : int;
  mutable seq : int;
}

let default_clock = Unix.gettimeofday

let create ?(clock = default_clock) ?sink () =
  {
    metrics = Metrics.create ();
    sink;
    clock;
    epoch = clock ();
    stack = [];
    recorded = [];
    next_id = 0;
    seq = 0;
  }

let enabled = Option.is_some
let metrics t = t.metrics
let sink t = t.sink

let next_seq t =
  let s = t.seq in
  t.seq <- s + 1;
  s

let emit_event t fields =
  match t.sink with
  | None -> ()
  | Some sink -> Trace.emit sink (Json.Obj (fields @ [ ("seq", Json.Int (next_seq t)) ]))

let float_json f = if Float.is_finite f then Json.Float f else Json.Null

let span_event sp =
  [
    ("type", Json.String "span");
    ("id", Json.Int sp.id);
    ("parent", match sp.parent with None -> Json.Null | Some p -> Json.Int p);
    ("name", Json.String sp.name);
    ("depth", Json.Int sp.depth);
    ("start_s", float_json sp.start_s);
    ("dur_s", float_json sp.dur_s);
    ( "instructions",
      match sp.sp_instructions with None -> Json.Null | Some n -> Json.Int n );
    ("attrs", Json.Obj sp.attrs);
  ]

let span_begin t name =
  let parent, depth =
    match t.stack with
    | [] -> (None, 0)
    | p :: _ -> (Some p.id, p.depth + 1)
  in
  let sp =
    {
      id = t.next_id;
      parent;
      name;
      depth;
      start_s = t.clock () -. t.epoch;
      dur_s = 0.0;
      sp_instructions = None;
      attrs = [];
      closed = false;
    }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- sp :: t.stack;
  t.recorded <- sp :: t.recorded;
  sp

let span_end t sp ~instructions =
  (match t.stack with
  | top :: rest when top == sp -> t.stack <- rest
  | _ -> invalid_arg (Printf.sprintf "Obs: span %S closed out of order" sp.name));
  sp.dur_s <- t.clock () -. t.epoch -. sp.start_s;
  sp.sp_instructions <- instructions;
  sp.closed <- true;
  emit_event t (span_event sp)

let span ?(attrs = []) ?instructions obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let sp = span_begin t name in
      sp.attrs <- attrs;
      let instr0 = match instructions with None -> 0 | Some g -> g () in
      let finish () =
        let delta =
          match instructions with None -> None | Some g -> Some (g () - instr0)
        in
        span_end t sp ~instructions:delta
      in
      Fun.protect ~finally:finish f

let add_attrs obs attrs =
  match obs with
  | None -> ()
  | Some t -> (
      match t.stack with
      | [] -> ()
      | sp :: _ -> sp.attrs <- sp.attrs @ attrs)

let count obs name by =
  match obs with
  | None -> ()
  | Some t -> Metrics.incr ~by (Metrics.counter t.metrics name)

let set_gauge obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.set (Metrics.gauge t.metrics name) v

let observe obs name v =
  match obs with
  | None -> ()
  | Some t -> Metrics.observe (Metrics.histogram t.metrics name) v

let event obs ~name ?(attrs = []) v =
  match obs with
  | None -> ()
  | Some t ->
      emit_event t
        [
          ("type", Json.String "metric");
          ("name", Json.String name);
          ("value", float_json v);
          ("attrs", Json.Obj attrs);
        ]

let spans t = List.rev t.recorded

let finish t =
  (match t.stack with
  | [] -> ()
  | open_spans ->
      (* Close any spans left open (a failed run): innermost first. *)
      List.iter (fun sp -> span_end t sp ~instructions:None) open_spans);
  List.iter
    (fun (name, v) ->
      emit_event t
        (("type", Json.String "summary")
        :: ("name", Json.String name)
        :: (match Metrics.value_to_json v with
           | Json.Obj fields -> fields
           | other -> [ ("value", other) ])))
    (Metrics.snapshot t.metrics);
  Option.iter Trace.flush t.sink

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let fmt_duration s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1.0 then Printf.sprintf "%.2fms" (s *. 1e3)
  else Printf.sprintf "%.3fs" s

let span_tree_string t =
  let buf = Buffer.create 512 in
  List.iter
    (fun sp ->
      let instr =
        match sp.sp_instructions with
        | None -> ""
        | Some n -> Printf.sprintf "  %d instrs" n
      in
      let attrs =
        match sp.attrs with
        | [] -> ""
        | l ->
            "  ["
            ^ String.concat ", "
                (List.map
                   (fun (k, v) -> k ^ "=" ^ Json.to_string ~pretty:false v)
                   l)
            ^ "]"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s%s  %s%s%s\n"
           (String.make (2 * sp.depth) ' ')
           sp.name (fmt_duration sp.dur_s) instr attrs))
    (spans t);
  Buffer.contents buf

let metric_weight = function
  | Metrics.Counter n -> float_of_int n
  | Metrics.Gauge { samples; _ } -> float_of_int samples
  | Metrics.Histogram { count; _ } -> float_of_int count

let top_metrics_string ?(n = 10) t =
  let all = Metrics.snapshot t.metrics in
  let ranked =
    List.stable_sort
      (fun (_, a) (_, b) -> compare (metric_weight b) (metric_weight a))
      all
  in
  let take =
    let rec go k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: go (k - 1) rest
    in
    go n ranked
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      let line =
        match v with
        | Metrics.Counter c -> Printf.sprintf "%-36s counter    %d" name c
        | Metrics.Gauge { last; max; samples } ->
            Printf.sprintf "%-36s gauge      last=%g max=%g (%d samples)" name
              last max samples
        | Metrics.Histogram { count; sum; max; _ } ->
            let mean = if count = 0 then 0.0 else sum /. float_of_int count in
            Printf.sprintf "%-36s histogram  n=%d mean=%.2f max=%g" name count
              mean max
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    take;
  Buffer.contents buf
