(** Chrome trace-event export (Perfetto / [chrome://tracing] loadable).

    Maps an {!Obs.t}'s recorded span set onto the trace-event JSON object
    format: each closed span becomes one ["ph": "X"] (complete) event with
    [ts]/[dur] in microseconds on the context's monotonic timeline,
    [pid = 0], and [tid] set to the span's track — so a parallel run
    ({!Par.map_obs} after {!Obs.adopt}) renders as one lane per domain.
    Span ids, parent ids, retired instructions, GC deltas and attributes
    ride along in [args]; metadata events name the process and each
    track ([main] for track 0, [domain-N] otherwise). *)

val to_json : ?process_name:string -> Obs.t -> Json.t
(** The complete [{"traceEvents": [...], "displayTimeUnit": "ms"}]
    document. Call after {!Obs.finish} (only closed spans have
    durations). *)

val write : ?process_name:string -> path:string -> Obs.t -> unit
(** {!to_json} serialised compactly to [path]. *)
