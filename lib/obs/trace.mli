(** JSONL trace sink.

    One compact JSON object per line ({!Json.to_string} with
    [pretty:false]), so traces are greppable and parse line-by-line. Event
    shapes are produced by {!Obs}: [{"type":"span",...}] when a span ends,
    [{"type":"metric",...}] for sampled metric series points, and
    [{"type":"summary",...}] per registered metric at {!Obs.finish}. *)

type t

val to_channel : out_channel -> t
(** The caller retains ownership of the channel (close it after
    {!Obs.finish}). *)

val to_buffer : Buffer.t -> t

val emit : t -> Json.t -> unit
(** Serialise compactly and append one line. *)

val emitted : t -> int
(** Lines written so far. *)

val flush : t -> unit
(** Flush the underlying channel (no-op for buffers). *)
