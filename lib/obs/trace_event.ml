let us s = s *. 1e6

let float_json f = if Float.is_finite f then Json.Float f else Json.Null

let span_args (sp : Obs.span) =
  [ ("span_id", Json.Int sp.id);
    ( "parent_id",
      match sp.parent with None -> Json.Null | Some p -> Json.Int p ) ]
  @ (match sp.sp_instructions with
    | None -> []
    | Some n -> [ ("instructions", Json.Int n) ])
  @ (match sp.sp_gc with
    | None -> []
    | Some d ->
        [
          ("gc.minor_words", float_json d.Obs.gd_minor_words);
          ("gc.major_words", float_json d.Obs.gd_major_words);
          ("gc.promoted_words", float_json d.Obs.gd_promoted_words);
          ("gc.minor_collections", Json.Int d.Obs.gd_minor_collections);
          ("gc.major_collections", Json.Int d.Obs.gd_major_collections);
          ("gc.compactions", Json.Int d.Obs.gd_compactions);
        ])
  @ sp.attrs

let span_event (sp : Obs.span) =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String "halo");
      ("ph", Json.String "X");
      ("pid", Json.Int 0);
      ("tid", Json.Int sp.track);
      ("ts", Json.Float (us sp.start_s));
      ("dur", Json.Float (us sp.dur_s));
      ("args", Json.Obj (span_args sp));
    ]

let thread_name_event ~tid ~name =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String name) ]);
    ]

let to_json ?(process_name = "halo") t =
  let spans = Obs.spans t in
  let tracks =
    List.sort_uniq compare (List.map (fun (sp : Obs.span) -> sp.track) spans)
  in
  let metadata =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String process_name) ]);
      ]
    :: List.map
         (fun tid ->
           let name = if tid = 0 then "main" else Printf.sprintf "domain-%d" tid in
           thread_name_event ~tid ~name)
         tracks
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ List.map span_event spans));
      ("displayTimeUnit", Json.String "ms");
    ]

let write ?process_name ~path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Json.to_channel ~pretty:false oc (to_json ?process_name t))
