type config = {
  clients : int;
  rounds : int;
  record_prob : float;
  drift : float;
  seed : int;
  serve : Serve.config;
}

let default_config =
  {
    clients = 1000;
    rounds = 20;
    record_prob = 0.02;
    drift = 0.25;
    seed = 1;
    serve = Serve.default_config;
  }

type report = {
  clients : int;
  rounds : int;
  jobs_total : int;
  records : int;
  requests : int;
  errors : int;
  wall_s : float;
  jobs_per_sec : float;
  merge_profiles_per_sec : float;
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_hit_rate : float;
  profile_runs : int;
  cache : Plan_cache.stats option;
  p50_s : float;
  p90_s : float;
  p99_s : float;
  p999_s : float;
}

let weights = [| 0.5; 1.0; 2.0; 4.0 |]

(* The fleet's traffic shape is the shared {!Schedule.drifting} model —
   one schedule phase per round, [clients] jobs per tick — so the
   simulator and the lib/traffic drift study exercise one traffic
   definition. The schedule fixes each round's workload mix and per-job
   seeds; this layer only decides which jobs are profile uploads. *)
let job_stream (cfg : config) =
  let sched =
    Schedule.drifting ~ticks_per_phase:1
      ~rate:(float_of_int cfg.clients)
      ~phases:cfg.rounds ~drift:cfg.drift ()
  in
  let events = Array.of_list (Schedule.events ~seed:cfg.seed sched) in
  let rng = Rng.create ~seed:cfg.seed in
  let next_id = ref 0 in
  let rounds = Array.make cfg.rounds [] in
  Array.iter
    (fun e ->
      incr next_id;
      let payload =
        if Rng.float rng 1.0 < cfg.record_prob then
          Serve_proto.Profile_record
            {
              workload = e.Schedule.ev_workload;
              seed = e.Schedule.ev_seed;
              weight = Rng.choose rng weights;
              scale = Workload.Test;
            }
        else Serve_proto.Plan_request { workload = e.Schedule.ev_workload }
      in
      let job = { Serve_proto.id = !next_id; payload } in
      rounds.(e.Schedule.ev_phase) <- job :: rounds.(e.Schedule.ev_phase))
    events;
  Array.to_list (Array.map List.rev rounds)

let counter_value reg name = Metrics.counter_value (Metrics.counter reg name)

let gauge_value reg name = Metrics.gauge_value (Metrics.gauge reg name)

let quantile reg name q =
  match Metrics.quantile (Metrics.histogram reg name) q with
  | Some v -> v
  | None -> 0.0

let run ?obs cfg =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let engine = Serve.create ~obs cfg.serve in
  let rounds = job_stream cfg in
  let records, requests =
    List.fold_left
      (List.fold_left (fun (rec_n, req_n) (j : Serve_proto.job) ->
           match j.Serve_proto.payload with
           | Serve_proto.Profile_record _ | Serve_proto.Profile_load _ ->
               (rec_n + 1, req_n)
           | Serve_proto.Plan_request _ -> (rec_n, req_n + 1)
           | _ -> (rec_n, req_n)))
      (0, 0) rounds
  in
  let t0 = Unix.gettimeofday () in
  let errors =
    List.fold_left
      (fun errs round ->
        let responses = Serve.handle_batch engine round in
        List.fold_left
          (fun errs resp ->
            match Json.get_bool "ok" resp with
            | Ok true -> errs
            | Ok false | Error _ -> errs + 1)
          errs responses)
      0 rounds
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let jobs_total = cfg.clients * cfg.rounds in
  let reg = Obs.metrics obs in
  {
    clients = cfg.clients;
    rounds = cfg.rounds;
    jobs_total;
    records;
    requests;
    errors;
    wall_s;
    jobs_per_sec =
      (if wall_s > 0.0 then float_of_int jobs_total /. wall_s else 0.0);
    merge_profiles_per_sec = gauge_value reg "serve.merge.profiles_per_sec";
    plan_hits = counter_value reg "serve.plan.hits";
    plan_misses = counter_value reg "serve.plan.misses";
    plan_invalidations = counter_value reg "serve.plan.invalidations";
    plan_hit_rate =
      (if requests > 0 then
         float_of_int (counter_value reg "serve.plan.hits")
         /. float_of_int requests
       else 0.0);
    profile_runs = counter_value reg "profile.runs";
    cache = Option.map Plan_cache.stats cfg.serve.Serve.cache;
    p50_s = quantile reg "serve.job.latency_s" 0.50;
    p90_s = quantile reg "serve.job.latency_s" 0.90;
    p99_s = quantile reg "serve.job.latency_s" 0.99;
    p999_s = quantile reg "serve.job.latency_s" 0.999;
  }

let report_to_json r =
  let cache =
    match r.cache with
    | None -> Json.Null
    | Some s ->
        Json.Obj
          [
            ("hits", Json.Int s.Plan_cache.hits);
            ("misses", Json.Int s.Plan_cache.misses);
            ("stores", Json.Int s.Plan_cache.stores);
            ("evictions", Json.Int s.Plan_cache.evictions);
            ("hit_rate", Json.Float (Plan_cache.hit_rate s));
          ]
  in
  Json.Obj
    [
      ("clients", Json.Int r.clients);
      ("rounds", Json.Int r.rounds);
      ("jobs_total", Json.Int r.jobs_total);
      ("records", Json.Int r.records);
      ("requests", Json.Int r.requests);
      ("errors", Json.Int r.errors);
      ("wall_s", Json.Float r.wall_s);
      ("jobs_per_sec", Json.Float r.jobs_per_sec);
      ("merge_profiles_per_sec", Json.Float r.merge_profiles_per_sec);
      ( "plan",
        Json.Obj
          [
            ("hits", Json.Int r.plan_hits);
            ("misses", Json.Int r.plan_misses);
            ("invalidations", Json.Int r.plan_invalidations);
            ("hit_rate", Json.Float r.plan_hit_rate);
          ] );
      ("profile_runs", Json.Int r.profile_runs);
      ("cache", cache);
      ( "latency_s",
        Json.Obj
          [
            ("p50", Json.Float r.p50_s);
            ("p90", Json.Float r.p90_s);
            ("p99", Json.Float r.p99_s);
            ("p999", Json.Float r.p999_s);
          ] );
    ]

let report_table r =
  let t =
    Table.create ~title:"Fleet simulation" ~headers:[ "metric"; "value" ] ()
  in
  Table.set_aligns t [ Table.Left; Table.Right ];
  let row k v = Table.add_row t [ k; v ] in
  row "clients x rounds" (Printf.sprintf "%d x %d" r.clients r.rounds);
  row "jobs" (string_of_int r.jobs_total);
  row "  profile-record" (string_of_int r.records);
  row "  plan-request" (string_of_int r.requests);
  row "  errors" (string_of_int r.errors);
  row "wall" (Printf.sprintf "%.3f s" r.wall_s);
  row "jobs/s" (Table.fmt_float ~decimals:1 r.jobs_per_sec);
  row "merge profiles/s" (Table.fmt_float ~decimals:1 r.merge_profiles_per_sec);
  Table.add_rule t;
  row "plan hits" (string_of_int r.plan_hits);
  row "plan misses" (string_of_int r.plan_misses);
  row "plan invalidations" (string_of_int r.plan_invalidations);
  row "plan hit rate" (Table.fmt_pct r.plan_hit_rate);
  row "profiler runs" (string_of_int r.profile_runs);
  (match r.cache with
  | None -> ()
  | Some s ->
      Table.add_rule t;
      row "cache hits" (string_of_int s.Plan_cache.hits);
      row "cache misses" (string_of_int s.Plan_cache.misses);
      row "cache stores" (string_of_int s.Plan_cache.stores);
      row "cache evictions" (string_of_int s.Plan_cache.evictions);
      row "cache hit rate" (Table.fmt_pct (Plan_cache.hit_rate s)));
  Table.add_rule t;
  row "job p50" (Printf.sprintf "%.2f ms" (r.p50_s *. 1e3));
  row "job p90" (Printf.sprintf "%.2f ms" (r.p90_s *. 1e3));
  row "job p99" (Printf.sprintf "%.2f ms" (r.p99_s *. 1e3));
  row "job p99.9" (Printf.sprintf "%.2f ms" (r.p999_s *. 1e3));
  t
