(** The continuous-profiling daemon: BOLT's data-center loop over HALO's
    batch pipeline.

    Profiles stream in from a fleet as {!Serve_proto.payload}
    [profile-record] jobs and fold into one incremental
    {!Store.merge_state} per program (keyed by {!Ir_digest.program});
    [plan-request] jobs are answered from, in order of preference, the
    in-memory plan memo, the on-disk {!Plan_cache}, a derivation from the
    program's merged aggregate (no profiler run), or — only when the
    daemon has never seen the program at all — a full {!Pipeline.plan}.

    {b Staleness policy}: every aggregate remembers the profile mass
    (total merge weight) its current plan was derived at. When a record
    job pushes the new mass beyond [staleness_weight], the plan is
    invalidated {e eagerly} (counted as [serve.plan.invalidations], the
    in-memory memo dropped) and re-derived {e lazily} on the next
    request, overwriting the cache entry. Plans adopted from the disk
    cache are treated as fresh at adoption mass.

    {b Determinism}: job preworks (profiling, artifact decoding) fan out
    over a {!Par} pool in submission order; all state mutation happens in
    a sequential in-order fold, and responses carry no timings — so one
    job stream produces one byte-identical response stream at any
    [--jobs] count (given equal starting cache/aggregate state).

    {b Persistence}: when a plan cache is configured, per-program
    aggregates are saved on exit as v2 profile artifacts under
    [<cache_dir>/aggregates/<digest>.profile.bin], carrying the
    aggregate's workload, profile mass and profile count in the header
    meta. {!create} reloads them (via {!Store.merge_adopt}), so a
    restarted daemon resumes fleet mass — and its staleness ledger —
    without re-profiling. Counted as [serve.aggregates.saved] /
    [serve.aggregates.loaded].

    {b Telemetry} (all under the given [obs]): per-job-type latency
    sketches [serve.job.<kind>.latency_s] (plus the combined
    [serve.job.latency_s]), the [serve.queue_depth] gauge,
    [serve.plan.{hits,misses,invalidations}] counters, per-kind
    [serve.jobs.<kind>] counters, and the [serve.merge.profiles_per_sec]
    gauge — exported through the normal {!Obs} JSONL sink and readable
    with [halo_cli telemetry report]. *)

(** EINTR-safe buffered line reader over a raw file descriptor. Unlike
    [input_line] on [Unix.in_channel_of_descr], a read interrupted by a
    signal is retried, a line split across short reads is reassembled in
    the partial-line buffer, CRLF endings are stripped, and a final line
    with no trailing newline is still delivered. The socket loop reads
    through this. *)
module Line_reader : sig
  type t

  val create : ?buf_size:int -> Unix.file_descr -> t
  (** [buf_size] (default 4096, min 1) is the [Unix.read] chunk size —
      tests use [1] to force every line through the reassembly path. *)

  val read_line : t -> string option
  (** Next line without its terminator, [None] at end of stream. *)
end

type config = {
  jobs : int;  (** Worker domains for job prework (1 = inline). *)
  staleness_weight : float;
      (** New profile mass (merge weight) that invalidates a derived
          plan. *)
  pipeline : Pipeline.config;
      (** Base pipeline configuration; per-workload overrides
          ([halo_grouping]/[halo_allocator]) are applied on top. *)
  cache : Plan_cache.t option;  (** On-disk plan cache, if any. *)
}

val default_staleness_weight : float
(** [4.0] — with unit default weights, four fresh fleet profiles
    invalidate a plan. *)

val default_config : config
(** [jobs = 1], default staleness, {!Pipeline.default_config}, no
    cache. *)

type t

val create : ?obs:Obs.t -> config -> t
(** Build a daemon over [config]; if a cache is configured, previously
    saved aggregates under its [aggregates/] subdirectory are adopted
    (malformed or zero-mass files are skipped, not errors). *)

val save_aggregates : t -> int
(** Persist every non-empty per-program aggregate as a v2 profile
    artifact under [<cache_dir>/aggregates/] (temp file + atomic rename;
    [created] pinned to 0 so equal state saves equal bytes). Returns the
    number saved; 0 when no cache is configured. Best-effort: an
    unwritable directory is skipped. Called automatically when
    {!run_channels} and {!run_socket} finish. *)

val shutdown_requested : t -> bool
(** True once a [shutdown] job has been processed. *)

val stats_json : t -> Json.t
(** The [stats] job's response body: per-kind job counts, plan
    hit/miss/invalidation counters, plan-derivation provenance counts,
    cache counters, aggregate totals and the per-program staleness
    ledger. Deterministic for a given job history. *)

val handle_batch : t -> Serve_proto.job list -> Json.t list
(** Process one batch: prework in parallel over [config.jobs] domains,
    state fold and response emission sequential in submission order.
    Jobs after a [shutdown] in the batch are answered with an error.
    Once {!shutdown_requested} is set, every job is answered with an
    error. *)

val handle_line : t -> string -> Json.t
(** Parse and process a single job line (the socket path's unit of
    work); parse failures become error responses, never exceptions. *)

val run_channels : t -> in_channel -> out_channel -> int
(** The [--stdin-batch] mode: read every job line from the input channel
    up front, process in waves of a fixed chunk size, and write one
    response line per job, in order. Returns the number of responses
    written. Saves cache stats (see {!Plan_cache.save_stats}) before
    returning. *)

val run_socket : t -> path:string -> int
(** Bind a Unix-domain socket at [path] (unlinking any stale one),
    accept one connection at a time, and answer jobs line by line until
    a [shutdown] job arrives. Returns the number of responses written;
    unlinks the socket and saves cache stats on exit. *)
