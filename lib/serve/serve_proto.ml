type payload =
  | Profile_record of {
      workload : string;
      seed : int;
      weight : float;
      scale : Workload.scale;
    }
  | Profile_load of { path : string; weight : float }
  | Plan_request of { workload : string }
  | Stats
  | Shutdown

type job = { id : int; payload : payload }

let job_name = function
  | Profile_record _ | Profile_load _ -> "profile-record"
  | Plan_request _ -> "plan-request"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let scale_name = function
  | Workload.Test -> "test"
  | Workload.Train -> "train"
  | Workload.Ref -> "ref"

let scale_of_name = function
  | "test" -> Ok Workload.Test
  | "train" -> Ok Workload.Train
  | "ref" -> Ok Workload.Ref
  | s -> Error (Printf.sprintf "unknown scale %S (test, train or ref)" s)

(* Optional fields with defaults; required fields surface the accessor's
   own error message. *)
let opt_float ~default k j =
  match Json.mem k j with
  | None -> Ok default
  | Some _ -> Json.get_float k j

let opt_int ~default k j =
  match Json.mem k j with None -> Ok default | Some _ -> Json.get_int k j

let ( let* ) = Result.bind

let job_of_json j =
  let* id = Json.get_int "id" j in
  let* kind = Json.get_string "job" j in
  let* payload =
    match kind with
    | "profile-record" -> (
        let* weight = opt_float ~default:1.0 "weight" j in
        if (not (Float.is_finite weight)) || weight <= 0.0 then
          Error "field \"weight\" must be positive and finite"
        else
          match Json.mem "artifact" j with
          | Some _ ->
              let* path = Json.get_string "artifact" j in
              Ok (Profile_load { path; weight })
          | None ->
              let* workload = Json.get_string "workload" j in
              let* seed = opt_int ~default:1 "seed" j in
              let* scale =
                match Json.mem "scale" j with
                | None -> Ok Workload.Test
                | Some _ ->
                    let* s = Json.get_string "scale" j in
                    scale_of_name s
              in
              Ok (Profile_record { workload; seed; weight; scale }))
    | "plan-request" ->
        let* workload = Json.get_string "workload" j in
        Ok (Plan_request { workload })
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | k -> Error (Printf.sprintf "unknown job kind %S" k)
  in
  Ok { id; payload }

let job_of_line line =
  match Json.of_string line with
  | Error e -> Error ("bad json: " ^ e)
  | Ok j -> job_of_json j

let job_to_json { id; payload } =
  let base = [ ("job", Json.String (job_name payload)); ("id", Json.Int id) ] in
  Json.Obj
    (base
    @
    match payload with
    | Profile_record { workload; seed; weight; scale } ->
        [
          ("workload", Json.String workload);
          ("seed", Json.Int seed);
          ("weight", Json.Float weight);
          ("scale", Json.String (scale_name scale));
        ]
    | Profile_load { path; weight } ->
        [ ("artifact", Json.String path); ("weight", Json.Float weight) ]
    | Plan_request { workload } -> [ ("workload", Json.String workload) ]
    | Stats | Shutdown -> [])

let ok_response ~id ~kind fields =
  Json.Obj
    ([ ("id", Json.Int id); ("ok", Json.Bool true); ("job", Json.String kind) ]
    @ fields)

let error_response ~id msg =
  Json.Obj
    [
      ("id", match id with Some i -> Json.Int i | None -> Json.Null);
      ("ok", Json.Bool false);
      ("error", Json.String msg);
    ]

let response_line j = Json.to_string ~pretty:false j
