(* Reading job lines straight off a file descriptor: [Unix.read] can
   return short (a peer trickling bytes, a small pipe buffer) or fail
   with [EINTR] (a signal landing mid-read), and neither is an error —
   a line is done when its '\n' arrives, whatever the framing. The
   buffered channel layer retries neither, so the socket loop uses this
   reader instead of [input_line]. *)
module Line_reader = struct
  type t = {
    fd : Unix.file_descr;
    chunk : Bytes.t;
    mutable pending : string;  (** Received, not yet consumed. *)
    mutable pos : int;  (** Consumption point inside [pending]. *)
    mutable eof : bool;
  }

  let create ?(buf_size = 4096) fd =
    { fd; chunk = Bytes.create (max 1 buf_size); pending = ""; pos = 0; eof = false }

  let rec refill t =
    match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
    | 0 -> t.eof <- true
    | n ->
        let tail =
          String.sub t.pending t.pos (String.length t.pending - t.pos)
        in
        t.pending <- tail ^ Bytes.sub_string t.chunk 0 n;
        t.pos <- 0
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill t

  let read_line t =
    let rec next () =
      match String.index_from_opt t.pending t.pos '\n' with
      | Some nl ->
          (* CRLF tolerance, matching the store's line discipline. *)
          let stop =
            if nl > t.pos && t.pending.[nl - 1] = '\r' then nl - 1 else nl
          in
          let line = String.sub t.pending t.pos (stop - t.pos) in
          t.pos <- nl + 1;
          Some line
      | None ->
          if t.eof then
            if t.pos >= String.length t.pending then None
            else begin
              (* Final line with no trailing newline: still a line. *)
              let line =
                String.sub t.pending t.pos (String.length t.pending - t.pos)
              in
              t.pos <- String.length t.pending;
              Some line
            end
          else begin
            refill t;
            next ()
          end
    in
    next ()
end

type config = {
  jobs : int;
  staleness_weight : float;
  pipeline : Pipeline.config;
  cache : Plan_cache.t option;
}

let default_staleness_weight = 4.0

let default_config =
  {
    jobs = 1;
    staleness_weight = default_staleness_weight;
    pipeline = Pipeline.default_config;
    cache = None;
  }

(* Per-workload resolution, memoised: the test-scale program names the
   cache key (Ir_digest masks scale, so train/ref profiles of the same
   workload share it), and the per-workload grouping/allocator overrides
   are folded into the base pipeline config once. *)
type resolution = {
  r_workload : Workload.t;
  r_program : Ir.program;  (** Test scale. *)
  r_digest : string;
  r_config : Pipeline.config;
}

type aggregate = {
  agg_workload : string;
  agg_merge : Store.merge_state;
}

type t = {
  cfg : config;
  obs : Obs.t option;
  source : Pipeline.plan_source option;
  resolutions : (string, (resolution, string) result) Hashtbl.t;
  aggregates : (string, aggregate) Hashtbl.t;
  plans : (string, Pipeline.plan * float) Hashtbl.t;
      (** In-memory plan memo by program digest, with the aggregate mass
          the plan was derived (or adopted) at. *)
  mutable stop : bool;
  mutable n_record : int;
  mutable n_request : int;
  mutable n_stats : int;
  mutable n_shutdown : int;
  mutable n_errors : int;
  mutable plan_hits : int;
  mutable plan_misses : int;
  mutable plan_invalidations : int;
  mutable derived_aggregate : int;
  mutable derived_profiled : int;
  mutable adopted_cache : int;
  mutable records_merged : int;
  mutable merge_wall_s : float;
  mutable batch_wall_s : float;
}

(* {2 Aggregate persistence}

   Per-program aggregates survive restarts as v2 profile artifacts under
   [<cache_dir>/aggregates/<digest>.profile.bin]. Saving snapshots the
   merged counts with the aggregate's mass and profile count in the
   header meta; loading adopts them unscaled ({!Store.merge_adopt}), so
   a stop/start cycle neither loses nor double-counts fleet mass.
   [created = 0.] keeps saved bytes deterministic for a given state. *)

let aggregates_subdir = "aggregates"
let aggregate_suffix = ".profile.bin"

let aggregate_dir_of cfg =
  Option.map
    (fun c -> Filename.concat (Plan_cache.dir c) aggregates_subdir)
    cfg.cache

let save_aggregates t =
  match aggregate_dir_of t.cfg with
  | None -> 0
  | Some dir ->
      let ok_dir =
        Sys.file_exists dir
        ||
        (try
           Unix.mkdir dir 0o755;
           true
         with Unix.Unix_error _ -> Sys.file_exists dir)
      in
      if not ok_dir then 0
      else
        Hashtbl.fold (fun digest agg acc -> (digest, agg) :: acc) t.aggregates []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.fold_left
             (fun saved (digest, agg) ->
               if Store.merge_count agg.agg_merge = 0 then saved
               else
                 match Store.merge_result agg.agg_merge with
                 | Error _ -> saved
                 | Ok (config, result) -> (
                     let extra_meta =
                       [
                         ("workload", Json.String agg.agg_workload);
                         ( "mass",
                           Json.Float (Store.merge_total_weight agg.agg_merge)
                         );
                         ("profiles", Json.Int (Store.merge_count agg.agg_merge));
                       ]
                     in
                     let path = Filename.concat dir (digest ^ aggregate_suffix) in
                     match Filename.temp_file ~temp_dir:dir "agg-" ".tmp" with
                     | exception Sys_error _ -> saved
                     | tmp -> (
                         let drop () =
                           try Sys.remove tmp with Sys_error _ -> ()
                         in
                         match
                           Store.write_profile ?obs:t.obs ~format:Store.V2
                             ~created:0.0 ~producer:"halo-serve" ~extra_meta
                             ~path:tmp ~program_digest:digest ~config result
                         with
                         | Error _ ->
                             drop ();
                             saved
                         | Ok () -> (
                             match Sys.rename tmp path with
                             | () ->
                                 Obs.count t.obs "serve.aggregates.saved" 1;
                                 saved + 1
                             | exception Sys_error _ ->
                                 drop ();
                                 saved))))
             0

let load_aggregates t =
  match aggregate_dir_of t.cfg with
  | None -> 0
  | Some dir -> (
      match Sys.readdir dir with
      | exception Sys_error _ -> 0
      | names ->
          Array.to_list names
          |> List.filter (fun n -> Filename.check_suffix n aggregate_suffix)
          |> List.sort compare
          |> List.fold_left
               (fun loaded name ->
                 let path = Filename.concat dir name in
                 match Store.read_profile ?obs:t.obs path with
                 | Error _ -> loaded
                 | Ok a -> (
                     let meta = a.Store.header.Store.meta in
                     let workload =
                       match List.assoc_opt "workload" meta with
                       | Some (Json.String w) -> w
                       | _ -> "unknown"
                     in
                     let mass =
                       match List.assoc_opt "mass" meta with
                       | Some (Json.Float m) -> m
                       | Some (Json.Int m) -> float_of_int m
                       | _ -> 1.0
                     in
                     let count =
                       match List.assoc_opt "profiles" meta with
                       | Some (Json.Int n) when n >= 0 -> n
                       | _ -> 1
                     in
                     if (not (Float.is_finite mass)) || mass <= 0.0 then loaded
                     else
                       let digest = a.Store.header.Store.program_digest in
                       let agg =
                         match Hashtbl.find_opt t.aggregates digest with
                         | Some agg -> agg
                         | None ->
                             let agg =
                               {
                                 agg_workload = workload;
                                 agg_merge = Store.merge_create ();
                               }
                             in
                             Hashtbl.replace t.aggregates digest agg;
                             agg
                       in
                       match Store.merge_adopt agg.agg_merge ~mass ~count a with
                       | Ok () ->
                           Obs.count t.obs "serve.aggregates.loaded" 1;
                           loaded + 1
                       | Error _ -> loaded))
               0)

let create ?obs cfg =
  let t =
    {
      cfg;
      obs;
      source = Option.map Plan_cache.source cfg.cache;
      resolutions = Hashtbl.create 16;
      aggregates = Hashtbl.create 16;
      plans = Hashtbl.create 16;
      stop = false;
      n_record = 0;
      n_request = 0;
      n_stats = 0;
      n_shutdown = 0;
      n_errors = 0;
      plan_hits = 0;
      plan_misses = 0;
      plan_invalidations = 0;
      derived_aggregate = 0;
      derived_profiled = 0;
      adopted_cache = 0;
      records_merged = 0;
      merge_wall_s = 0.0;
      batch_wall_s = 0.0;
    }
  in
  ignore (load_aggregates t : int);
  t

let shutdown_requested t = t.stop

let resolve t name =
  match Hashtbl.find_opt t.resolutions name with
  | Some r -> r
  | None ->
      let r =
        match Workloads.lookup name with
        | Error e -> Error (Workloads.lookup_error_to_string e)
        | Ok w ->
            let program = w.Workload.make Workload.Test in
            let base = t.cfg.pipeline in
            let config =
              {
                base with
                Pipeline.grouping = w.Workload.halo_grouping base.Pipeline.grouping;
                allocator = w.Workload.halo_allocator base.Pipeline.allocator;
              }
            in
            Ok
              {
                r_workload = w;
                r_program = program;
                r_digest = Ir_digest.program program;
                r_config = config;
              }
      in
      Hashtbl.replace t.resolutions name r;
      r

(* ------------------------------------------------------------------ *)
(* Prework: the pure, parallelisable half of a job.                    *)
(* ------------------------------------------------------------------ *)

(* A profile produced in-process gets a synthetic artifact wrapper so it
   flows through the same digest-checked merge path as one decoded from
   disk. [created = 0.] keeps the value deterministic; it is never
   persisted. *)
let artifact_of_result ~program_digest ~config result =
  {
    Store.header =
      {
        Store.version = Store.version;
        kind = "profile";
        program_digest;
        config_digest = Store.profile_config_digest config;
        created = 0.0;
        producer = "halo-serve";
        meta = [];
      };
    config;
    result;
  }

type prework =
  | P_nothing
  | P_artifact of {
      artifact : (Store.profile_artifact, string) result;
      workload : string;
      weight : float;
      seconds : float;  (** Prework wall time, charged to job latency. *)
    }

let prework t wobs (job : Serve_proto.job) =
  match job.Serve_proto.payload with
  | Serve_proto.Profile_record { workload; seed; weight; scale } -> (
      match resolve t workload with
      | Error _ -> P_nothing (* the fold reports the resolution error *)
      | Ok r ->
          let t0 = Unix.gettimeofday () in
          let program =
            match scale with
            | Workload.Test -> r.r_program
            | s -> r.r_workload.Workload.make s
          in
          let config =
            { r.r_config.Pipeline.profiler with Profiler.seed }
          in
          let result = Profiler.profile ?obs:wobs ~config program in
          let artifact =
            Ok (artifact_of_result ~program_digest:r.r_digest ~config result)
          in
          P_artifact
            {
              artifact;
              workload;
              weight;
              seconds = Unix.gettimeofday () -. t0;
            })
  | Serve_proto.Profile_load { path; weight } ->
      let t0 = Unix.gettimeofday () in
      let artifact =
        match Store.read_profile ?obs:wobs path with
        | Ok a -> Ok a
        | Error e -> Error (Store.error_to_string e)
      in
      let workload =
        match artifact with
        | Ok a -> (
            match List.assoc_opt "workload" a.Store.header.Store.meta with
            | Some (Json.String w) -> w
            | _ -> "unknown")
        | Error _ -> "unknown"
      in
      P_artifact
        { artifact; workload; weight; seconds = Unix.gettimeofday () -. t0 }
  | Serve_proto.Plan_request _ | Serve_proto.Stats | Serve_proto.Shutdown ->
      P_nothing

(* ------------------------------------------------------------------ *)
(* The sequential fold: all state mutation, in submission order.       *)
(* ------------------------------------------------------------------ *)

let mass_of t digest =
  match Hashtbl.find_opt t.aggregates digest with
  | Some a -> Store.merge_total_weight a.agg_merge
  | None -> 0.0

let apply_record t ~id ~workload ~weight artifact =
  match artifact with
  | Error msg ->
      t.n_errors <- t.n_errors + 1;
      Serve_proto.error_response ~id:(Some id) msg
  | Ok (a : Store.profile_artifact) -> (
      let digest = a.Store.header.Store.program_digest in
      let agg =
        match Hashtbl.find_opt t.aggregates digest with
        | Some agg -> agg
        | None ->
            let agg =
              { agg_workload = workload; agg_merge = Store.merge_create () }
            in
            Hashtbl.replace t.aggregates digest agg;
            agg
      in
      let t0 = Unix.gettimeofday () in
      match Store.merge_add agg.agg_merge (a, weight) with
      | Error e ->
          t.n_errors <- t.n_errors + 1;
          Serve_proto.error_response ~id:(Some id) (Store.error_to_string e)
      | Ok () ->
          t.merge_wall_s <- t.merge_wall_s +. (Unix.gettimeofday () -. t0);
          t.records_merged <- t.records_merged + 1;
          t.n_record <- t.n_record + 1;
          let mass = Store.merge_total_weight agg.agg_merge in
          (* Eager invalidation: enough new mass since the current plan
             was derived retires it now; the re-derivation is lazy. *)
          (match Hashtbl.find_opt t.plans digest with
          | Some (_, at_mass)
            when mass -. at_mass >= t.cfg.staleness_weight ->
              Hashtbl.remove t.plans digest;
              t.plan_invalidations <- t.plan_invalidations + 1;
              Obs.count t.obs "serve.plan.invalidations" 1
          | _ -> ());
          Serve_proto.ok_response ~id ~kind:"profile-record"
            [
              ("workload", Json.String workload);
              ("program", Json.String digest);
              ("profiles", Json.Int (Store.merge_count agg.agg_merge));
              ("mass", Json.Float mass);
              ("accesses", Json.Int a.Store.result.Profiler.total_accesses);
            ])

let apply_plan_request t ~id workload =
  match resolve t workload with
  | Error msg ->
      t.n_errors <- t.n_errors + 1;
      Serve_proto.error_response ~id:(Some id) msg
  | Ok r ->
      t.n_request <- t.n_request + 1;
      let digest = r.r_digest in
      let respond ~source (plan : Pipeline.plan) =
        Serve_proto.ok_response ~id ~kind:"plan-request"
          [
            ("workload", Json.String workload);
            ("program", Json.String digest);
            ("config", Json.String (Store.plan_config_digest r.r_config));
            ("source", Json.String source);
            ("groups", Json.Int (Array.length plan.Pipeline.grouping.Grouping.groups));
            ( "monitored_sites",
              Json.Int
                (List.length (Identify.monitored_sites plan.Pipeline.selectors))
            );
            ( "graph_nodes",
              Json.Int
                (List.length
                   (Affinity_graph.nodes plan.Pipeline.profile.Profiler.graph))
            );
            ( "profiles",
              Json.Int
                (match Hashtbl.find_opt t.aggregates digest with
                | Some a -> Store.merge_count a.agg_merge
                | None -> 0) );
            ("mass", Json.Float (mass_of t digest));
          ]
      in
      let hit () =
        t.plan_hits <- t.plan_hits + 1;
        Obs.count t.obs "serve.plan.hits" 1
      in
      let miss () =
        t.plan_misses <- t.plan_misses + 1;
        Obs.count t.obs "serve.plan.misses" 1
      in
      let adopt ~source ~at_mass plan =
        Hashtbl.replace t.plans digest (plan, at_mass);
        respond ~source plan
      in
      (match Hashtbl.find_opt t.plans digest with
      | Some (plan, _) ->
          hit ();
          respond ~source:"memory" plan
      | None -> (
          match Hashtbl.find_opt t.aggregates digest with
          | Some agg when Store.merge_count agg.agg_merge > 0 -> (
              (* The aggregate outranks any disk entry: a memo miss with
                 live mass means no current plan exists for that mass. *)
              match Store.merge_result agg.agg_merge with
              | Error e ->
                  t.n_errors <- t.n_errors + 1;
                  Serve_proto.error_response ~id:(Some id)
                    (Store.error_to_string e)
              | Ok (_, merged) ->
                  miss ();
                  t.derived_aggregate <- t.derived_aggregate + 1;
                  let plan =
                    Pipeline.derive ?obs:t.obs ~config:r.r_config merged
                  in
                  (match t.source with
                  | Some s -> s.Pipeline.store t.obs r.r_program r.r_config plan
                  | None -> ());
                  adopt ~source:"aggregate"
                    ~at_mass:(Store.merge_total_weight agg.agg_merge)
                    plan)
          | _ -> (
              let cached =
                match t.source with
                | Some s -> s.Pipeline.lookup t.obs r.r_program r.r_config
                | None -> None
              in
              match cached with
              | Some plan ->
                  hit ();
                  t.adopted_cache <- t.adopted_cache + 1;
                  adopt ~source:"cache" ~at_mass:(mass_of t digest) plan
              | None ->
                  miss ();
                  t.derived_profiled <- t.derived_profiled + 1;
                  let plan =
                    Pipeline.plan ?obs:t.obs ~config:r.r_config r.r_program
                  in
                  (match t.source with
                  | Some s -> s.Pipeline.store t.obs r.r_program r.r_config plan
                  | None -> ());
                  adopt ~source:"profiled" ~at_mass:(mass_of t digest) plan)))

let stats_json t =
  let cache_stats, cache_entries =
    match t.cfg.cache with
    | Some c -> (Plan_cache.stats c, List.length (Plan_cache.entry_names c))
    | None -> ({ Plan_cache.hits = 0; misses = 0; stores = 0; evictions = 0 }, 0)
  in
  let programs =
    Hashtbl.fold
      (fun digest agg acc ->
        let mass = Store.merge_total_weight agg.agg_merge in
        let plan =
          match Hashtbl.find_opt t.plans digest with
          | Some (_, at_mass) -> Json.Float at_mass
          | None -> Json.Null
        in
        ( digest,
          Json.Obj
            [
              ("program", Json.String digest);
              ("workload", Json.String agg.agg_workload);
              ("profiles", Json.Int (Store.merge_count agg.agg_merge));
              ("mass", Json.Float mass);
              ("plan_mass", plan);
            ] )
        :: acc)
      t.aggregates []
    |> List.sort compare |> List.map snd
  in
  Json.Obj
    [
      ( "jobs",
        Json.Obj
          [
            ("profile-record", Json.Int t.n_record);
            ("plan-request", Json.Int t.n_request);
            ("stats", Json.Int t.n_stats);
            ("shutdown", Json.Int t.n_shutdown);
            ("errors", Json.Int t.n_errors);
          ] );
      ( "plan",
        Json.Obj
          [
            ("hits", Json.Int t.plan_hits);
            ("misses", Json.Int t.plan_misses);
            ("invalidations", Json.Int t.plan_invalidations);
            ("derived_from_aggregate", Json.Int t.derived_aggregate);
            ("derived_by_profiling", Json.Int t.derived_profiled);
            ("adopted_from_cache", Json.Int t.adopted_cache);
          ] );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int cache_stats.Plan_cache.hits);
            ("misses", Json.Int cache_stats.Plan_cache.misses);
            ("stores", Json.Int cache_stats.Plan_cache.stores);
            ("evictions", Json.Int cache_stats.Plan_cache.evictions);
            ("entries", Json.Int cache_entries);
          ] );
      ( "merge",
        Json.Obj
          [
            ("profiles", Json.Int t.records_merged);
            ("programs", Json.Int (Hashtbl.length t.aggregates));
          ] );
      ("staleness_weight", Json.Float t.cfg.staleness_weight);
      ("programs", Json.List programs);
    ]

let apply t (job : Serve_proto.job) pre =
  let id = job.Serve_proto.id in
  match (job.Serve_proto.payload, pre) with
  | _ when t.stop ->
      t.n_errors <- t.n_errors + 1;
      Serve_proto.error_response ~id:(Some id) "server is shutting down"
  | Serve_proto.Profile_record { workload; _ }, P_nothing ->
      (* Resolution failed before prework; report it. *)
      let msg =
        match resolve t workload with Error m -> m | Ok _ -> "internal error"
      in
      t.n_errors <- t.n_errors + 1;
      Serve_proto.error_response ~id:(Some id) msg
  | ( (Serve_proto.Profile_record _ | Serve_proto.Profile_load _),
      P_artifact { artifact; workload; weight; seconds = _ } ) ->
      apply_record t ~id ~workload ~weight artifact
  | Serve_proto.Profile_load _, P_nothing ->
      t.n_errors <- t.n_errors + 1;
      Serve_proto.error_response ~id:(Some id) "internal error: missing prework"
  | Serve_proto.Plan_request { workload }, _ -> apply_plan_request t ~id workload
  | Serve_proto.Stats, _ -> (
      t.n_stats <- t.n_stats + 1;
      match stats_json t with
      | Json.Obj fields -> Serve_proto.ok_response ~id ~kind:"stats" fields
      | j -> Serve_proto.ok_response ~id ~kind:"stats" [ ("stats", j) ])
  | Serve_proto.Shutdown, _ ->
      t.n_shutdown <- t.n_shutdown + 1;
      t.stop <- true;
      Serve_proto.ok_response ~id ~kind:"shutdown" []

let prework_seconds = function
  | P_nothing -> 0.0
  | P_artifact { seconds; _ } -> seconds

(* ------------------------------------------------------------------ *)
(* Batch driver.                                                       *)
(* ------------------------------------------------------------------ *)

let handle_batch t jobs =
  match jobs with
  | [] -> []
  | _ ->
      Obs.span t.obs "serve.batch"
        ~attrs:
          [
            ("stage", Json.String "serve");
            ("jobs", Json.Int (List.length jobs));
          ]
        (fun () ->
          let t0 = Unix.gettimeofday () in
          (* Prework stops at the first shutdown job: anything after it
             is answered with an error and must not burn profiler time. *)
          let rec split_active acc = function
            | [] -> (List.rev acc, [])
            | ({ Serve_proto.payload = Serve_proto.Shutdown; _ } as j) :: rest
              ->
                (List.rev (j :: acc), rest)
            | j :: rest -> split_active (j :: acc) rest
          in
          let active, rest = split_active [] jobs in
          let active = if t.stop then [] else active in
          let rest = if t.stop then jobs else rest in
          (* Sequential resolution first: the memo table is shared, so
             workers must only read programs, never build the memo. *)
          List.iter
            (fun (j : Serve_proto.job) ->
              match j.Serve_proto.payload with
              | Serve_proto.Profile_record { workload; _ }
              | Serve_proto.Plan_request { workload } ->
                  ignore (resolve t workload)
              | _ -> ())
            active;
          let preworks =
            Par.map_obs ?obs:t.obs ~name:"serve" ~jobs:t.cfg.jobs
              (fun wobs job -> prework t wobs job)
              active
          in
          let depth = ref (List.length jobs) in
          Obs.set_gauge t.obs "serve.queue_depth" (float_of_int !depth);
          let respond job pre =
            let f0 = Unix.gettimeofday () in
            let resp = apply t job pre in
            let latency =
              Unix.gettimeofday () -. f0 +. prework_seconds pre
            in
            let kind = Serve_proto.job_name job.Serve_proto.payload in
            Obs.observe t.obs
              (Printf.sprintf "serve.job.%s.latency_s" kind)
              latency;
            Obs.observe t.obs "serve.job.latency_s" latency;
            decr depth;
            Obs.set_gauge t.obs "serve.queue_depth" (float_of_int !depth);
            resp
          in
          let responses = List.map2 respond active preworks in
          let late = List.map (fun job -> respond job P_nothing) rest in
          t.batch_wall_s <- t.batch_wall_s +. (Unix.gettimeofday () -. t0);
          if t.records_merged > 0 && t.batch_wall_s > 0.0 then
            Obs.set_gauge t.obs "serve.merge.profiles_per_sec"
              (float_of_int t.records_merged /. t.batch_wall_s);
          responses @ late)

let id_of_line line =
  match Json.of_string line with
  | Ok j -> ( match Json.get_int "id" j with Ok i -> Some i | Error _ -> None)
  | Error _ -> None

let handle_line t line =
  match Serve_proto.job_of_line line with
  | Ok job -> ( match handle_batch t [ job ] with [ r ] -> r | _ -> assert false)
  | Error msg ->
      t.n_errors <- t.n_errors + 1;
      Obs.count t.obs "serve.jobs.errors" 1;
      Serve_proto.error_response ~id:(id_of_line line) msg

let count_job_metric t job =
  Obs.count t.obs
    (Printf.sprintf "serve.jobs.%s"
       (Serve_proto.job_name job.Serve_proto.payload))
    1

(* Wave size for stdin-batch mode: big enough to keep every worker busy,
   small enough that the queue-depth gauge means something. Semantics are
   wave-size independent (the fold is sequential either way). *)
let wave_size = 256

let run_channels t ic oc =
  let lines = In_channel.input_lines ic in
  let items =
    List.map
      (fun line ->
        match Serve_proto.job_of_line line with
        | Ok job -> Ok job
        | Error msg -> Error (Serve_proto.error_response ~id:(id_of_line line) msg))
      lines
  in
  let written = ref 0 in
  let emit resp =
    output_string oc (Serve_proto.response_line resp);
    output_char oc '\n';
    incr written
  in
  let rec waves items =
    match items with
    | [] -> ()
    | _ ->
        let rec take n acc = function
          | rest when n = 0 -> (List.rev acc, rest)
          | [] -> (List.rev acc, [])
          | x :: rest -> take (n - 1) (x :: acc) rest
        in
        let wave, rest = take wave_size [] items in
        let jobs = List.filter_map Result.to_option wave in
        List.iter (count_job_metric t) jobs;
        let responses = ref (handle_batch t jobs) in
        List.iter
          (fun item ->
            match item with
            | Error resp ->
                t.n_errors <- t.n_errors + 1;
                Obs.count t.obs "serve.jobs.errors" 1;
                emit resp
            | Ok _ -> (
                match !responses with
                | r :: tl ->
                    responses := tl;
                    emit r
                | [] -> assert false))
          wave;
        waves rest
  in
  waves items;
  flush oc;
  Option.iter Plan_cache.save_stats t.cfg.cache;
  ignore (save_aggregates t : int);
  !written

let run_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let written = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ());
      Option.iter Plan_cache.save_stats t.cfg.cache;
      ignore (save_aggregates t : int))
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let rec accept () =
        match Unix.accept sock with
        | conn_addr -> conn_addr
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept ()
      in
      let rec accept_loop () =
        if t.stop then ()
        else begin
          let conn, _ = accept () in
          (* Reads go through [Line_reader] — a [Unix.read] loop with
             retry-on-EINTR and a partial-line buffer — so a signal or a
             peer that dribbles bytes across short reads cannot split or
             drop a request at a line boundary. *)
          let lr = Line_reader.create conn in
          let oc = Unix.out_channel_of_descr conn in
          let rec serve_conn () =
            match Line_reader.read_line lr with
            | None -> ()
            | Some line ->
                (match Serve_proto.job_of_line line with
                | Ok job -> count_job_metric t job
                | Error _ -> ());
                let resp = handle_line t line in
                output_string oc (Serve_proto.response_line resp);
                output_char oc '\n';
                flush oc;
                incr written;
                if t.stop then () else serve_conn ()
          in
          (try serve_conn () with Sys_error _ | Unix.Unix_error _ -> ());
          (try flush oc with Sys_error _ -> ());
          (try Unix.close conn with Unix.Unix_error _ -> ());
          accept_loop ()
        end
      in
      accept_loop ();
      !written)
