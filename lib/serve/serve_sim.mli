(** Fleet simulator: thousands of synthetic clients against one {!Serve}
    engine.

    The fleet's traffic is a {!Schedule.drifting} schedule — the same
    shared traffic model the [lib/traffic] drift study sweeps — with one
    phase per round and [clients] jobs per tick: workload popularity
    follows a quadratically skewed ranking (a cheap Zipf stand-in) that
    rotates [drift] times per round on average (error-diffusion carries,
    so e.g. [drift = 0.25] rotates exactly every fourth round), shifting
    which programs are hot — the staleness policy's natural antagonist.
    Each scheduled job becomes a [profile-record] (with probability
    [record_prob], mixed weights, the schedule's per-job seed) or a
    [plan-request]. The stream is a pure function of the config, so it
    is byte-for-byte reproducible; it is replayed through
    {!Serve.handle_batch} one round per batch. *)

type config = {
  clients : int;
  rounds : int;
  record_prob : float;  (** Per-client-per-round profile upload rate. *)
  drift : float;  (** Per-round popularity-rotation probability. *)
  seed : int;
  serve : Serve.config;
}

val default_config : config
(** 1000 clients, 20 rounds, [record_prob = 0.02], [drift = 0.25],
    [seed = 1], {!Serve.default_config}. *)

type report = {
  clients : int;
  rounds : int;
  jobs_total : int;
  records : int;  (** [profile-record] jobs submitted. *)
  requests : int;  (** [plan-request] jobs submitted. *)
  errors : int;
  wall_s : float;
  jobs_per_sec : float;
  merge_profiles_per_sec : float;
  plan_hits : int;
  plan_misses : int;
  plan_invalidations : int;
  plan_hit_rate : float;  (** [plan_hits / requests]; 0 when no requests. *)
  profile_runs : int;  (** Profiler invocations (record prework + cold plans). *)
  cache : Plan_cache.stats option;  (** Disk-cache counters, when caching. *)
  p50_s : float;
  p90_s : float;
  p99_s : float;
  p999_s : float;  (** Job latency quantiles, seconds; 0 when unrecorded. *)
}

val job_stream : config -> Serve_proto.job list list
(** The deterministic schedule, one inner list per round. Job ids number
    the flattened stream from 1. *)

val run : ?obs:Obs.t -> config -> report
(** Build the stream, replay it round by round through a fresh engine,
    and collect the report from the engine's telemetry (a private [obs]
    is created when none is given). *)

val report_to_json : report -> Json.t
val report_table : report -> Table.t
