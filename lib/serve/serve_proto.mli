(** The serve-mode wire protocol: line-delimited JSON jobs.

    A client (or the fleet simulator, or a CI job file) sends one JSON
    object per line; the daemon answers with one JSON object per line, in
    submission order. Responses never carry timings or other
    machine-dependent values, so a job stream's response stream is
    byte-identical at any worker count — latency lives in telemetry, not
    in the protocol.

    Job forms (the ["job"] discriminator):

    - [{"job":"profile-record","id":1,"workload":"ft","seed":3,
       "weight":1.0,"scale":"test"}] — profile the named workload at the
      given input seed and fold the result into the program's aggregate
      profile. [weight] (default 1) scales the run in the merge;
      [scale] (default ["test"]) is the profiling input scale. In a real
      fleet the profile bytes arrive over the wire; here the daemon
      regenerates them deterministically from (workload, seed, scale) —
      the simulator's stand-in for a client upload.
    - [{"job":"profile-record","id":2,"artifact":"ft.prof.jsonl",
       "weight":2.0}] — ingest a recorded profile artifact from disk
      (the operator path: artifacts made by [halo_cli profile record]).
    - [{"job":"plan-request","id":3,"workload":"ft"}] — return the
      current plan for the workload's program (cache, aggregate or
      freshly profiled — see {!Serve}).
    - [{"job":"stats","id":4}] — a snapshot of the daemon's counters.
    - [{"job":"shutdown","id":5}] — acknowledge and stop; later jobs in
      the same stream are answered with an error.

    Responses: [{"id":N,"ok":true,"job":"<kind>",...}] on success,
    [{"id":N,"ok":false,"error":"..."}] otherwise ([id] is [null] when
    the line did not parse far enough to recover one). *)

type payload =
  | Profile_record of {
      workload : string;
      seed : int;
      weight : float;
      scale : Workload.scale;
    }
  | Profile_load of { path : string; weight : float }
  | Plan_request of { workload : string }
  | Stats
  | Shutdown

type job = { id : int; payload : payload }

val job_name : payload -> string
(** ["profile-record"], ["plan-request"], ["stats"] or ["shutdown"]. *)

val job_of_json : Json.t -> (job, string) result
val job_of_line : string -> (job, string) result

val job_to_json : job -> Json.t
(** Canonical encoding; [job_of_json (job_to_json j) = Ok j]. *)

val ok_response : id:int -> kind:string -> (string * Json.t) list -> Json.t
(** [{"id":id,"ok":true,"job":kind, ...fields}]. *)

val error_response : id:int option -> string -> Json.t
(** [{"id":id-or-null,"ok":false,"error":msg}]. *)

val response_line : Json.t -> string
(** Compact one-line encoding (no trailing newline). *)
