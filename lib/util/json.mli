(** Minimal JSON emission and parsing (no external dependencies).

    The paper's artefact generates "JSON files ... containing the specific
    data points for each run" (A.6); {!Runner.to_json}-style serialisation
    and the CLI's [--json] flag use this module. The persistent
    profile/plan store reads its JSONL artifacts back through
    {!of_string}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default true) indents with two spaces. Strings
    are escaped per RFC 8259; non-finite floats become [null]. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit

val of_string : string -> (t, string) result
(** Parse one JSON value (RFC 8259). Numbers without a fraction or
    exponent that fit an OCaml [int] become [Int]; all others become
    [Float] — so [to_string]/[of_string] round-trips every finite value
    this module emits ([%.17g] floats included, bit for bit). Errors
    carry a character offset and a reason; trailing garbage after the
    value is an error. Escapes, including [\uXXXX] (with surrogate
    pairs), decode to UTF-8. *)

(** {1 Field accessors}

    Strict decode helpers for store artifacts: each returns [Error] with
    the offending field name rather than raising, so malformed artifact
    lines surface as typed decode errors, not exceptions. *)

val mem : string -> t -> t option
(** [mem name (Obj fields)] — [None] for absent fields or non-objects. *)

val get_int : string -> t -> (int, string) result
val get_float : string -> t -> (float, string) result
(** Accepts [Int] too (JSON has one number type). *)

val get_string : string -> t -> (string, string) result
val get_bool : string -> t -> (bool, string) result
val get_list : string -> t -> (t list, string) result
val get_obj : string -> t -> ((string * t) list, string) result
