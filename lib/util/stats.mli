(** Small descriptive-statistics helpers used by the measurement harness.

    The paper reports medians of 10 recorded trials with 25th/75th-percentile
    error bars (§5.1 Measurement); these helpers implement exactly those
    summaries. *)

val mean : float array -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty array. *)

val median : float array -> float
(** Median (average of the two middle elements for even lengths). The input
    is not modified. Raises [Invalid_argument] on an empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in \[0,100\], using linear interpolation
    between closest ranks. The input is not modified. Raises
    [Invalid_argument] on an empty array, on [p] outside the range, and
    on any NaN element — a NaN-contaminated quantile is garbage, so it is
    rejected rather than returned. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for singleton input. *)

val geomean : float array -> float
(** Geometric mean of strictly positive values. *)

type summary = {
  median : float;
  p25 : float;
  p75 : float;
  mean : float;
  min : float;
  max : float;
}
(** The summary shape reported for every measured characteristic. *)

val summarize : float array -> summary
(** Five-number-ish summary used when printing experiment rows. Raises
    [Invalid_argument] on empty or NaN-containing input. *)

val pp_summary : Format.formatter -> summary -> unit
