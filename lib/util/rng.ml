type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create ~seed = { state = mix64 (Int64.of_int seed) }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* FNV-1a over the label bytes, 64-bit. Collisions between short ASCII
   labels are practically impossible, and the result feeds [mix64] anyway
   so even a weak hash would only risk stream overlap, not bias. *)
let hash_label label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  !h

let split ?label t =
  match label with
  | None ->
      let seed = next t in
      { state = mix64 seed }
  | Some label ->
      (* Read-only derivation: the child depends only on [t]'s current
         state and the label, never on how many other labelled splits
         happened first — so per-tenant streams survive tenant
         reordering. The same label twice yields the same stream. *)
      { state = mix64 (Int64.logxor t.state (hash_label label)) }

let save t = t.state
let restore t state = t.state <- state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny relative to 2^62 so
     bias is negligible for simulation purposes. Mask to 62 bits so the
     value is guaranteed non-negative after Int64.to_int truncation. *)
  let v = Int64.to_int (Int64.logand (next t) 0x3FFF_FFFF_FFFF_FFFFL) in
  v mod bound

let int_in t lo hi =
  if hi < lo then
    invalid_arg (Printf.sprintf "Rng.int_in: empty range [%d, %d]" lo hi);
  let span = hi - lo in
  (* [span] wraps negative when the range is wider than [max_int], and
     [span + 1] wraps when it is exactly [max_int] wide (e.g. [0, max_int]).
     Either way [int] cannot be used; rejection-sample raw 63-bit draws
     instead — the range covers at least half the int domain, so the
     expected number of draws is at most 2. *)
  if span < 0 || span + 1 < 1 then
    let rec draw () =
      let v = Int64.to_int (next t) in
      if lo <= v && v <= hi then v else draw ()
    in
    draw ()
  else lo + int t (span + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))
