let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

(* Quantiles of data containing NaN are garbage whatever the sort does
   with it; reject loudly rather than return a number. *)
let check_no_nan name xs =
  Array.iter (fun x -> if Float.is_nan x then invalid_arg (name ^ ": NaN input")) xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let sorted_copy xs =
  let c = Array.copy xs in
  (* Float.compare, not polymorphic compare: no NaN-ordering surprises,
     and no boxed generic comparison per element. *)
  Array.sort Float.compare c;
  c

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  check_no_nan "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let s = sorted_copy xs in
  let n = Array.length s in
  if n = 1 then s.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then s.(lo)
    else
      let frac = rank -. float_of_int lo in
      (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)

let median xs = percentile xs 50.0

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value") xs;
  let s = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
  exp (s /. float_of_int (Array.length xs))

type summary = {
  median : float;
  p25 : float;
  p75 : float;
  mean : float;
  min : float;
  max : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  check_no_nan "Stats.summarize" xs;
  {
    median = median xs;
    p25 = percentile xs 25.0;
    p75 = percentile xs 75.0;
    mean = mean xs;
    min = Array.fold_left min xs.(0) xs;
    max = Array.fold_left max xs.(0) xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "median=%.4g [p25=%.4g p75=%.4g] mean=%.4g range=[%.4g, %.4g]"
    s.median s.p25 s.p75 s.mean s.min s.max
