type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = true) t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if pretty then Buffer.add_char buf '\n' in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun k item ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 1);
            go (indent + 1) item)
          items;
        nl ();
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun k (name, value) ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape name);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (indent + 1) value)
          fields;
        nl ();
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let to_channel ?pretty oc t =
  output_string oc (to_string ?pretty t);
  output_char oc '\n'

(* ---------------- parsing ---------------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let err reason = raise (Parse_error (!pos, reason)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> err (Printf.sprintf "expected %C, found %C" c d)
    | None -> err (Printf.sprintf "expected %C, found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else err (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let add_utf8 buf cp =
    (* Encode one Unicode scalar value as UTF-8. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then err "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> err "invalid \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then err "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   (* High surrogate: require the paired low surrogate. *)
                   if
                     !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then
                       err "unpaired surrogate"
                     else 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else err "unpaired surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   err "unpaired surrogate"
                 else cp
               in
               add_utf8 buf cp
           | c -> err (Printf.sprintf "invalid escape \\%C" c));
          go ()
      | c when Char.code c < 0x20 -> err "unescaped control character"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then err "invalid number"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (name, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | _ -> expect '}'
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | _ -> expect ']'
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> err (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then err "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, reason) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at reason)

(* ---------------- field accessors ---------------- *)

let mem name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let missing name = Error (Printf.sprintf "missing field %S" name)

let wrong name kind =
  Error (Printf.sprintf "field %S is not %s" name kind)

let get_int name t =
  match mem name t with
  | Some (Int v) -> Ok v
  | Some _ -> wrong name "an integer"
  | None -> missing name

let get_float name t =
  match mem name t with
  | Some (Float v) -> Ok v
  | Some (Int v) -> Ok (float_of_int v)
  | Some _ -> wrong name "a number"
  | None -> missing name

let get_string name t =
  match mem name t with
  | Some (String v) -> Ok v
  | Some _ -> wrong name "a string"
  | None -> missing name

let get_bool name t =
  match mem name t with
  | Some (Bool v) -> Ok v
  | Some _ -> wrong name "a boolean"
  | None -> missing name

let get_list name t =
  match mem name t with
  | Some (List v) -> Ok v
  | Some _ -> wrong name "a list"
  | None -> missing name

let get_obj name t =
  match mem name t with
  | Some (Obj v) -> Ok v
  | Some _ -> wrong name "an object"
  | None -> missing name
