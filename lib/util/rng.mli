(** Deterministic pseudo-random number generation.

    All randomness in the reproduction flows through this module so that
    every experiment is bit-for-bit repeatable. The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a tiny, fast, statistically solid
    64-bit generator that is trivially seedable and splittable. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : ?label:string -> t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each workload phase its own stream so that adding draws in
    one phase does not perturb another.

    [split ~label t] derives a {e named} substream instead: the child
    depends only on [t]'s current state and [label] — [t] is read but not
    advanced — so derivation order does not matter. Splitting the same
    label twice off the same state yields the same stream; callers wanting
    distinct streams must use distinct labels. Used to give each traffic
    tenant its own stream independent of tenant interleaving order. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val save : t -> int64
(** Opaque snapshot of the generator state. *)

val restore : t -> int64 -> unit
(** [restore t (save t)] rewinds [t] so it replays exactly the draws made
    since the snapshot. Used by the trace engine's selfcheck mode to run a
    region twice (shadow, then interpreter) over one random stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound). Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. Raises
    [Invalid_argument] if [lo > hi]. Ranges wider than [max_int]
    (e.g. [int_in t min_int max_int]) are handled without overflow by
    rejection sampling. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] draws the number of failures before the first success
    of a Bernoulli(p) process; mean (1-p)/p. Used for bursty allocation
    patterns in workloads. *)
