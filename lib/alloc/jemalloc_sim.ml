type class_state = {
  mutable run_cursor : Addr.t; (* next free byte in the class's current run *)
  mutable run_limit : Addr.t;
  mutable free_list : Addr.t list; (* LIFO reuse, like a tcache bin *)
}

type state = {
  vmem : Vmem.t;
  chunk_size : int;
  classes : class_state array;
  mutable chunk_cursor : Addr.t; (* next free byte in the current arena chunk *)
  mutable chunk_limit : Addr.t;
  table : Alloc_iface.Live_table.table;
  large : (Addr.t, int) Hashtbl.t; (* large allocation -> mapped size *)
}

let run_objects = 64
(* Objects per fresh run: enough that same-class allocations made together
   land contiguously, small enough that runs stay page-scale. *)

let fresh_chunk st =
  let base = Vmem.mmap st.vmem ~size:st.chunk_size ~align:Vmem.page_size in
  st.chunk_cursor <- base;
  st.chunk_limit <- base + st.chunk_size

let carve_run st bytes =
  let bytes = Addr.align_up bytes Vmem.page_size in
  if st.chunk_cursor + bytes > st.chunk_limit then fresh_chunk st;
  let base = st.chunk_cursor in
  st.chunk_cursor <- base + bytes;
  base

let malloc_small st cls n =
  let cs = st.classes.(cls) in
  let size = Size_class.size_of_class cls in
  let addr =
    match cs.free_list with
    | a :: rest ->
        cs.free_list <- rest;
        a
    | [] ->
        if cs.run_cursor + size > cs.run_limit then begin
          let run_bytes = max Vmem.page_size (size * run_objects) in
          let base = carve_run st run_bytes in
          cs.run_cursor <- base;
          cs.run_limit <- base + Addr.align_up run_bytes Vmem.page_size
        end;
        let a = cs.run_cursor in
        cs.run_cursor <- a + size;
        a
  in
  Alloc_iface.Live_table.on_malloc st.table addr ~requested:n ~reserved:size;
  addr

let malloc_large st n =
  let mapped = Addr.align_up (max n 1) Vmem.page_size in
  let addr = Vmem.mmap st.vmem ~size:mapped ~align:Vmem.page_size in
  Hashtbl.replace st.large addr mapped;
  Alloc_iface.Live_table.on_malloc st.table addr ~requested:n ~reserved:mapped;
  addr

let malloc st n =
  if n < 0 then invalid_arg "Jemalloc_sim.malloc: negative size";
  match Size_class.class_of_size n with
  | Some cls -> malloc_small st cls n
  | None -> malloc_large st n

let free st addr =
  if addr <> Addr.null then begin
    let _requested, reserved = Alloc_iface.Live_table.on_free st.table addr in
    match Hashtbl.find_opt st.large addr with
    | Some _mapped ->
        Hashtbl.remove st.large addr;
        Vmem.munmap st.vmem addr
    | None -> (
        match Size_class.class_of_size reserved with
        | Some cls ->
            let cs = st.classes.(cls) in
            cs.free_list <- addr :: cs.free_list
        | None ->
            Alloc_iface.alloc_error ~allocator:"jemalloc-sim" ~op:"free"
              ~addr "corrupt size metadata")
  end

let create ?(chunk_size = 2 lsl 20) vmem =
  if chunk_size < Vmem.page_size then
    invalid_arg "Jemalloc_sim.create: chunk_size below page size";
  let st =
    {
      vmem;
      chunk_size;
      classes =
        Array.init Size_class.nclasses (fun _ ->
            { run_cursor = Addr.null; run_limit = Addr.null; free_list = [] });
      chunk_cursor = Addr.null;
      chunk_limit = Addr.null;
      table = Alloc_iface.Live_table.create ~name:"jemalloc-sim" ();
      large = Hashtbl.create 64;
    }
  in
  let reserved_size addr =
    Option.map snd (Alloc_iface.Live_table.find st.table addr)
  in
  let rec self =
    lazy
      {
        Alloc_iface.name = "jemalloc-sim";
        malloc = (fun n -> malloc st n);
        free = (fun a -> free st a);
        realloc = (fun old n -> Alloc_iface.default_realloc self reserved_size old n);
        usable_size = reserved_size;
        stats = (fun () -> Alloc_iface.Live_table.stats st.table);
      }
  in
  Lazy.force self
