(** The POSIX.1 memory-management surface that simulated programs call.

    Every allocator in the reproduction — the jemalloc/ptmalloc baselines,
    HALO's specialised group allocator, the hot-data-streams comparator's
    allocator, and the Figure 15 random-pool allocator — implements this
    record-of-closures interface. The workload VM dispatches its
    [malloc]/[calloc]/[realloc]/[free] intrinsics through whichever
    implementation the experiment wires in, exactly as the real HALO
    interposes on the target binary's allocation routines. *)

type stats = {
  mallocs : int;  (** Successful allocation requests served. *)
  frees : int;  (** Successful frees. *)
  live_bytes : int;  (** Requested bytes currently allocated. *)
  peak_live_bytes : int;  (** High-water mark of [live_bytes]. *)
  forwarded : int;
      (** Requests forwarded to a fallback allocator (specialised allocators
          only; 0 for self-contained ones). *)
}

type t = {
  name : string;
  malloc : int -> Addr.t;
      (** Returns the address of a block of at least the requested size,
          aligned to at least 8 bytes (§4.4). A request of 0 bytes returns a
          unique non-null address. *)
  free : Addr.t -> unit;
      (** Frees a block previously returned by [malloc]/[realloc] of this
          allocator. Freeing [Addr.null] is a no-op. Raises {!Alloc_error}
          on double free or foreign pointers (the simulated heap
          corruption). *)
  realloc : Addr.t -> int -> Addr.t;
      (** Standard realloc semantics; [realloc null n] behaves as
          [malloc n]. Content migration is handled by the VM's object store,
          so allocators only manage placement. *)
  usable_size : Addr.t -> int option;
      (** [malloc_usable_size]: bytes actually reserved for a live block, or
          [None] for an unknown pointer. *)
  stats : unit -> stats;
}

val empty_stats : stats

exception
  Alloc_error of {
    allocator : string;  (** The reporting allocator's [name]. *)
    op : string;  (** ["malloc"], ["free"] or ["realloc"]. *)
    addr : Addr.t option;  (** The offending address, when there is one. *)
    detail : string;
  }
(** Simulated heap corruption or allocator-invariant violation: double or
    foreign free, corrupt chunk metadata, heap exhaustion, an allocator
    returning overlapping blocks. Carries enough structure for the fuzz
    oracle and tests to assert on the failing allocator and operation
    rather than pattern-matching message strings. A printer is registered,
    so [Printexc.to_string] renders
    ["Alloc_error(jemalloc-sim.free at 0xdead0008: ...)"]. *)

val alloc_error : allocator:string -> op:string -> ?addr:Addr.t -> string -> 'a
(** Raise {!Alloc_error} — the shared raise helper for allocator
    implementations. *)

module Live_table : sig
  (** Bookkeeping shared by allocator implementations: tracks live blocks
      (requested and reserved sizes), validates frees, and maintains the
      statistics counters. *)

  type table

  val create : name:string -> unit -> table
  (** [name] is the owning allocator's name, reported in every
      {!Alloc_error} this table raises. *)

  val on_malloc : table -> Addr.t -> requested:int -> reserved:int -> unit
  (** Record a new live block. Raises {!Alloc_error} if the address is
      already live (an allocator returned overlapping blocks) or null. *)

  val on_free : table -> Addr.t -> int * int
  (** Remove a live block, returning [(requested, reserved)].
      Raises {!Alloc_error} for unknown addresses (double/foreign free). *)

  val find : table -> Addr.t -> (int * int) option
  (** [(requested, reserved)] for a live block. *)

  val count_forwarded : table -> unit

  val stats : table -> stats
  val live_count : table -> int
  val iter_live : table -> (Addr.t -> int * int -> unit) -> unit
end

val default_realloc : t Lazy.t -> (Addr.t -> int option) -> Addr.t -> int -> Addr.t
(** [default_realloc self requested_size old n] implements realloc as
    malloc-new/free-old on top of an allocator's own [malloc]/[free],
    keeping the block in place when the new request still fits the reserved
    size. [requested_size] must return the {e reserved} size of a live
    block. *)
