type pool = { mutable cursor : Addr.t; mutable limit : Addr.t }

type state = {
  vmem : Vmem.t;
  rng : Rng.t;
  fallback : Alloc_iface.t;
  chunk_size : int;
  max_object : int;
  pools : pool array;
  table : Alloc_iface.Live_table.table;
}

let pool_malloc st pool n =
  let reserved = Addr.align_up (max n 1) 8 in
  let p = st.pools.(pool) in
  let base = Addr.align_up p.cursor 8 in
  if base + reserved > p.limit then begin
    let chunk = Vmem.mmap st.vmem ~size:st.chunk_size ~align:Vmem.page_size in
    p.cursor <- chunk;
    p.limit <- chunk + st.chunk_size
  end;
  let base = Addr.align_up p.cursor 8 in
  p.cursor <- base + reserved;
  Alloc_iface.Live_table.on_malloc st.table base ~requested:n ~reserved;
  base

let malloc st n =
  if n < 0 then invalid_arg "Random_pool.malloc: negative size";
  if n >= st.max_object then begin
    Alloc_iface.Live_table.count_forwarded st.table;
    st.fallback.Alloc_iface.malloc n
  end
  else pool_malloc st (Rng.int st.rng (Array.length st.pools)) n

let free st addr =
  if addr <> Addr.null then
    if Option.is_some (Alloc_iface.Live_table.find st.table addr) then
      ignore (Alloc_iface.Live_table.on_free st.table addr)
    else st.fallback.Alloc_iface.free addr

let create ?(pools = 4) ?(chunk_size = 1 lsl 20) ?max_object ~rng ~fallback vmem =
  if pools <= 0 then invalid_arg "Random_pool.create: need at least one pool";
  let max_object = Option.value max_object ~default:Vmem.page_size in
  let st =
    {
      vmem;
      rng;
      fallback;
      chunk_size;
      max_object;
      pools = Array.init pools (fun _ -> { cursor = Addr.null; limit = Addr.null });
      table = Alloc_iface.Live_table.create
          ~name:(Printf.sprintf "random-pool-%d" pools) ();
    }
  in
  let usable_size addr =
    match Alloc_iface.Live_table.find st.table addr with
    | Some (_, reserved) -> Some reserved
    | None -> st.fallback.Alloc_iface.usable_size addr
  in
  let rec self =
    lazy
      {
        Alloc_iface.name = Printf.sprintf "random-pool-%d" pools;
        malloc = (fun n -> malloc st n);
        free = (fun a -> free st a);
        realloc =
          (fun old n ->
            let self = Lazy.force self in
            if old = Addr.null then self.Alloc_iface.malloc n
            else
              match usable_size old with
              | Some reserved when n <= reserved && n > 0 -> old
              | Some _ ->
                  let fresh = self.Alloc_iface.malloc n in
                  self.Alloc_iface.free old;
                  fresh
              | None ->
                  Alloc_iface.alloc_error ~allocator:self.Alloc_iface.name
                    ~op:"realloc" ~addr:old "realloc of unknown address");
        usable_size;
        stats =
          (fun () ->
            (* Fold the fallback's traffic into our own so callers see the
               whole program's allocation activity. *)
            let own = Alloc_iface.Live_table.stats st.table in
            let fb = st.fallback.Alloc_iface.stats () in
            {
              own with
              Alloc_iface.mallocs = own.Alloc_iface.mallocs + fb.Alloc_iface.mallocs;
              frees = own.Alloc_iface.frees + fb.Alloc_iface.frees;
              live_bytes = own.Alloc_iface.live_bytes + fb.Alloc_iface.live_bytes;
              peak_live_bytes =
                own.Alloc_iface.peak_live_bytes + fb.Alloc_iface.peak_live_bytes;
            });
      }
  in
  Lazy.force self
