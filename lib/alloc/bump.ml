type state = {
  vmem : Vmem.t;
  slab_size : int;
  min_align : int;
  mutable cursor : Addr.t; (* next free byte in the current slab *)
  mutable limit : Addr.t; (* one past the end of the current slab *)
  table : Alloc_iface.Live_table.table;
}

let rec malloc st n =
  if n < 0 then invalid_arg "Bump.malloc: negative size";
  let reserved = max (Addr.align_up (max n 1) st.min_align) st.min_align in
  if reserved > st.slab_size then
    (* Oversized requests get their own mapping. *)
    let addr = Vmem.mmap st.vmem ~size:reserved ~align:Vmem.page_size in
    let () = Alloc_iface.Live_table.on_malloc st.table addr ~requested:n ~reserved in
    addr
  else begin
    let base = Addr.align_up st.cursor st.min_align in
    if base + reserved > st.limit then begin
      let slab = Vmem.mmap st.vmem ~size:st.slab_size ~align:Vmem.page_size in
      st.cursor <- slab;
      st.limit <- slab + st.slab_size;
      malloc st n
    end
    else begin
      st.cursor <- base + reserved;
      Alloc_iface.Live_table.on_malloc st.table base ~requested:n ~reserved;
      base
    end
  end

let create ?(slab_size = 1 lsl 20) ?(min_align = 8) vmem =
  if not (Addr.is_power_of_two min_align) then
    invalid_arg "Bump.create: min_align must be a power of two";
  let st =
    {
      vmem;
      slab_size;
      min_align;
      cursor = Addr.null;
      limit = Addr.null;
      table = Alloc_iface.Live_table.create ~name:"bump" ();
    }
  in
  let reserved_size addr =
    Option.map snd (Alloc_iface.Live_table.find st.table addr)
  in
  let rec self =
    lazy
      {
        Alloc_iface.name = "bump";
        malloc = (fun n -> malloc st n);
        free =
          (fun addr ->
            if addr <> Addr.null then
              ignore (Alloc_iface.Live_table.on_free st.table addr));
        realloc = (fun old n -> Alloc_iface.default_realloc self reserved_size old n);
        usable_size = reserved_size;
        stats = (fun () -> Alloc_iface.Live_table.stats st.table);
      }
  in
  Lazy.force self
