type stats = {
  mallocs : int;
  frees : int;
  live_bytes : int;
  peak_live_bytes : int;
  forwarded : int;
}

type t = {
  name : string;
  malloc : int -> Addr.t;
  free : Addr.t -> unit;
  realloc : Addr.t -> int -> Addr.t;
  usable_size : Addr.t -> int option;
  stats : unit -> stats;
}

let empty_stats =
  { mallocs = 0; frees = 0; live_bytes = 0; peak_live_bytes = 0; forwarded = 0 }

exception
  Alloc_error of {
    allocator : string;
    op : string;
    addr : Addr.t option;
    detail : string;
  }

let () =
  Printexc.register_printer (function
    | Alloc_error { allocator; op; addr; detail } ->
        Some
          (Printf.sprintf "Alloc_error(%s.%s%s: %s)" allocator op
             (match addr with
             | None -> ""
             | Some a -> " at " ^ Addr.to_hex a)
             detail)
    | _ -> None)

let alloc_error ~allocator ~op ?addr detail =
  raise (Alloc_error { allocator; op; addr; detail })

module Live_table = struct
  type table = {
    name : string;
    live : (Addr.t, int * int) Hashtbl.t; (* addr -> requested, reserved *)
    mutable mallocs : int;
    mutable frees : int;
    mutable live_bytes : int;
    mutable peak_live_bytes : int;
    mutable forwarded : int;
  }

  let create ~name () =
    {
      name;
      live = Hashtbl.create 1024;
      mallocs = 0;
      frees = 0;
      live_bytes = 0;
      peak_live_bytes = 0;
      forwarded = 0;
    }

  let on_malloc t addr ~requested ~reserved =
    if addr = Addr.null then
      alloc_error ~allocator:t.name ~op:"malloc"
        "allocator returned the null address";
    if Hashtbl.mem t.live addr then
      alloc_error ~allocator:t.name ~op:"malloc" ~addr
        "allocator returned an already-live address";
    Hashtbl.replace t.live addr (requested, reserved);
    t.mallocs <- t.mallocs + 1;
    t.live_bytes <- t.live_bytes + requested;
    if t.live_bytes > t.peak_live_bytes then t.peak_live_bytes <- t.live_bytes

  let on_free t addr =
    match Hashtbl.find_opt t.live addr with
    | None ->
        alloc_error ~allocator:t.name ~op:"free" ~addr
          "free of unknown or already-freed address"
    | Some (requested, reserved) ->
        Hashtbl.remove t.live addr;
        t.frees <- t.frees + 1;
        t.live_bytes <- t.live_bytes - requested;
        (requested, reserved)

  let find t addr = Hashtbl.find_opt t.live addr
  let count_forwarded t = t.forwarded <- t.forwarded + 1

  let stats t =
    {
      mallocs = t.mallocs;
      frees = t.frees;
      live_bytes = t.live_bytes;
      peak_live_bytes = t.peak_live_bytes;
      forwarded = t.forwarded;
    }

  let live_count t = Hashtbl.length t.live
  let iter_live t f = Hashtbl.iter f t.live
end

let default_realloc self reserved_size old n =
  let self = Lazy.force self in
  if old = Addr.null then self.malloc n
  else
    match reserved_size old with
    | None ->
        alloc_error ~allocator:self.name ~op:"realloc" ~addr:old
          "realloc of unknown address"
    | Some reserved when n <= reserved && n > 0 ->
        (* Shrinking (or growing within the reserved block) keeps the block
           in place, as real allocators do for same-size-class reallocs. *)
        old
    | Some _ ->
        let fresh = self.malloc n in
        self.free old;
        fresh
