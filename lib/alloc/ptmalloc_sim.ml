let header = 16
let min_chunk = 32

module Chunk_map = Map.Make (Int)

module Free_set = Set.Make (struct
  type t = int * Addr.t (* chunk size, chunk base *)

  let compare = compare
end)

type chunk = { size : int; free : bool }

type state = {
  heap_base : Addr.t;
  heap_limit : Addr.t;
  mutable top : Addr.t; (* first byte never yet carved into a chunk *)
  mutable chunks : chunk Chunk_map.t; (* base address -> chunk *)
  mutable free_set : Free_set.t;
  table : Alloc_iface.Live_table.table;
}

let align16 n = Addr.align_up n 16

let remove_free st base size =
  st.free_set <- Free_set.remove (size, base) st.free_set;
  st.chunks <- Chunk_map.remove base st.chunks

let add_free st base size =
  st.chunks <- Chunk_map.add base { size; free = true } st.chunks;
  st.free_set <- Free_set.add (size, base) st.free_set

let add_used st base size =
  st.chunks <- Chunk_map.add base { size; free = false } st.chunks

let malloc st n =
  if n < 0 then invalid_arg "Ptmalloc_sim.malloc: negative size";
  let need = max min_chunk (align16 (max n 1 + header)) in
  let base =
    (* Best fit: smallest free chunk that can hold the request. *)
    match Free_set.find_first_opt (fun (sz, _) -> sz >= need) st.free_set with
    | Some (sz, base) ->
        remove_free st base sz;
        if sz - need >= min_chunk then begin
          add_used st base need;
          add_free st (base + need) (sz - need)
        end
        else add_used st base sz;
        base
    | None ->
        if st.top + need > st.heap_limit then
          Alloc_iface.alloc_error ~allocator:"ptmalloc-sim" ~op:"malloc"
            "simulated heap exhausted";
        let base = st.top in
        st.top <- base + need;
        add_used st base need;
        base
  in
  let size = (Chunk_map.find base st.chunks).size in
  let payload = base + header in
  Alloc_iface.Live_table.on_malloc st.table payload ~requested:n
    ~reserved:(size - header);
  payload

let free st payload =
  if payload <> Addr.null then begin
    ignore (Alloc_iface.Live_table.on_free st.table payload);
    let base = payload - header in
    let { size; free = was_free } =
      match Chunk_map.find_opt base st.chunks with
      | Some c -> c
      | None ->
          Alloc_iface.alloc_error ~allocator:"ptmalloc-sim" ~op:"free"
            ~addr:payload "corrupt chunk header"
    in
    if was_free then
      Alloc_iface.alloc_error ~allocator:"ptmalloc-sim" ~op:"free"
        ~addr:payload "double free";
    st.chunks <- Chunk_map.remove base st.chunks;
    (* Coalesce with the following chunk. *)
    let base, size =
      match Chunk_map.find_opt (base + size) st.chunks with
      | Some { size = nsize; free = true } ->
          remove_free st (base + size) nsize;
          (base, size + nsize)
      | _ -> (base, size)
    in
    (* Coalesce with the preceding chunk. *)
    let base, size =
      match Chunk_map.find_last_opt (fun a -> a < base) st.chunks with
      | Some (pbase, { size = psize; free = true }) when pbase + psize = base ->
          remove_free st pbase psize;
          (pbase, size + psize)
      | _ -> (base, size)
    in
    if base + size = st.top then
      (* The freed chunk borders the top of the heap: give it back. *)
      st.top <- base
    else add_free st base size
  end

let create ?(heap_size = 256 lsl 20) vmem =
  let heap_base = Vmem.mmap vmem ~size:heap_size ~align:Vmem.page_size in
  let st =
    {
      heap_base;
      heap_limit = heap_base + heap_size;
      top = heap_base;
      chunks = Chunk_map.empty;
      free_set = Free_set.empty;
      table = Alloc_iface.Live_table.create ~name:"ptmalloc-sim" ();
    }
  in
  ignore st.heap_base;
  let reserved_size addr =
    Option.map snd (Alloc_iface.Live_table.find st.table addr)
  in
  let rec self =
    lazy
      {
        Alloc_iface.name = "ptmalloc-sim";
        malloc = (fun n -> malloc st n);
        free = (fun a -> free st a);
        realloc = (fun old n -> Alloc_iface.default_realloc self reserved_size old n);
        usable_size = reserved_size;
        stats = (fun () -> Alloc_iface.Live_table.stats st.table);
      }
  in
  Lazy.force self
