(** Little-endian binary primitives for the v2 store codec.

    Encoders append to a caller-owned [Buffer.t]. Decoders read from a
    bounded window over a shared backing string — the whole artifact is
    loaded (or mapped) once and every record decodes in place, without
    copying the payload bytes out first.

    Integers travel as zigzag-encoded LEB128 varints, total over the
    native [int] range; fixed-width [u32]/[i64]/[f64] are little-endian.
    Every malformed read raises {!Error} with a human-readable reason;
    the store layer converts it into its typed [Malformed] error carrying
    the record ordinal. *)

exception Error of string

(** {1 Encoding} *)

val u8 : Buffer.t -> int -> unit
(** Low 8 bits of the argument. *)

val u32 : Buffer.t -> int -> unit
(** 4-byte little-endian; raises {!Error} outside [0, 2^32). *)

val i64 : Buffer.t -> int64 -> unit
(** 8-byte little-endian. *)

val varint : Buffer.t -> int -> unit
(** Zigzag LEB128: defined for every native [int], 1 byte for small
    magnitudes. *)

val f64 : Buffer.t -> float -> unit
(** IEEE-754 binary64, little-endian — exact round-trip. *)

val bytes : Buffer.t -> string -> unit
(** Varint byte length followed by the raw bytes. *)

(** {1 Decoding} *)

type dec
(** A cursor over a window of a backing string. *)

val dec : ?pos:int -> ?len:int -> string -> dec
(** [dec ~pos ~len s] reads [s.[pos .. pos+len)]; [len] defaults to the
    rest of the string. Raises {!Error} on an out-of-bounds window. *)

val pos : dec -> int
(** Absolute position in the backing string. *)

val remaining : dec -> int
val eof : dec -> bool

val read_u8 : dec -> int
val read_u32 : dec -> int
val read_i64 : dec -> int64
val read_varint : dec -> int
val read_f64 : dec -> float
val read_bytes : dec -> string

val expect_end : dec -> unit
(** Raises {!Error} unless the window is fully consumed — a decoded
    record must account for every one of its bytes. *)
