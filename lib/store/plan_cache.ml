type t = {
  dir : string;
  format : Store.format;
  max_entries : int option;
  mu : Mutex.t;
  saved : int * int * int * int;
      (** (hits, misses, stores, evictions) persisted by earlier
          processes, read once at open. *)
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; stores : int; evictions : int }

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let stats_file dir = Filename.concat dir "stats.json"

let load_stats dir =
  let path = stats_file dir in
  if not (Sys.file_exists path) then None
  else
    match
      Json.of_string (In_channel.with_open_bin path In_channel.input_all)
    with
    | exception Sys_error _ -> None
    | Error _ -> None
    | Ok j -> (
        match
          ( Json.get_int "hits" j,
            Json.get_int "misses" j,
            Json.get_int "stores" j,
            Json.get_int "evictions" j )
        with
        | Ok hits, Ok misses, Ok stores, Ok evictions ->
            Some { hits; misses; stores; evictions }
        | _ -> None)

let create ?max_entries ?(format = Store.V2) dir =
  mkdir_p dir;
  {
    dir;
    format;
    max_entries;
    mu = Mutex.create ();
    saved =
      (match load_stats dir with
      | Some s -> (s.hits, s.misses, s.stores, s.evictions)
      | None -> (0, 0, 0, 0));
    hits = 0;
    misses = 0;
    stores = 0;
    evictions = 0;
  }

let dir t = t.dir

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let stats t =
  locked t (fun () ->
      { hits = t.hits; misses = t.misses; stores = t.stores; evictions = t.evictions })

let hit_rate s =
  let lookups = s.hits + s.misses in
  if lookups = 0 then 0.0 else float_of_int s.hits /. float_of_int lookups

let lifetime_stats t =
  let s = stats t and bh, bm, bs, be = t.saved in
  {
    hits = s.hits + bh;
    misses = s.misses + bm;
    stores = s.stores + bs;
    evictions = s.evictions + be;
  }

let save_stats t =
  let s = lifetime_stats t in
  let j =
    Json.Obj
      [
        ("hits", Json.Int s.hits);
        ("misses", Json.Int s.misses);
        ("stores", Json.Int s.stores);
        ("evictions", Json.Int s.evictions);
      ]
  in
  match Filename.temp_file ~temp_dir:t.dir "stats-" ".tmp" with
  | exception Sys_error _ -> ()
  | tmp -> (
      try
        Out_channel.with_open_bin tmp (fun oc ->
            output_string oc (Json.to_string ~pretty:false j);
            output_char oc '\n');
        Sys.rename tmp (stats_file t.dir)
      with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))

(* One suffix per codec: the cache's configured format names new
   entries, but lookups accept either, so a directory written by an
   older (or differently configured) process keeps serving hits. *)
let suffix_of = function
  | Store.V1 -> ".plan.jsonl"
  | Store.V2 -> ".plan.bin"

let suffixes = [ suffix_of Store.V1; suffix_of Store.V2 ]

let entry_path_as t fmt ~program ~config =
  Filename.concat t.dir (program ^ "-" ^ config ^ suffix_of fmt)

let entry_path t ~program ~config = entry_path_as t t.format ~program ~config

let other_format = function Store.V1 -> Store.V2 | Store.V2 -> Store.V1

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n ->
             List.exists (fun s -> Filename.check_suffix n s) suffixes)
      |> List.map (fun n -> Filename.concat t.dir n)

let entry_names t = List.sort compare (List.map Filename.basename (entries t))

(* Drop oldest entries beyond the bound. Best-effort: a concurrently
   removed file is not an error. Entries sharing an mtime second are
   ordered by name — the tuple sort ties on the second component — so
   which entries survive is deterministic, not filesystem-order luck. *)
let evict t obs =
  match t.max_entries with
  | None -> ()
  | Some cap ->
      let aged =
        entries t
        |> List.filter_map (fun path ->
               match Unix.stat path with
               | s -> Some (s.Unix.st_mtime, Filename.basename path)
               | exception Unix.Unix_error _ -> None)
        |> List.sort compare
      in
      let excess = List.length aged - cap in
      if excess > 0 then begin
        List.filteri (fun i _ -> i < excess) aged
        |> List.iter (fun (_, name) ->
               try
                 Sys.remove (Filename.concat t.dir name);
                 Obs.count obs "store.cache.evictions" 1;
                 locked t (fun () -> t.evictions <- t.evictions + 1)
               with Sys_error _ -> ())
      end

let source t =
  let key program config =
    (Ir_digest.program program, Store.plan_config_digest config)
  in
  let lookup obs program config =
    let pd, cd = key program config in
    let read path =
      if Sys.file_exists path then
        match
          Store.read_plan ?obs ~expect_program:pd ~expect_config:cd path
        with
        | Ok (_, plan) -> Some plan
        | Error _ -> None (* corrupt/stale entry: treat as a miss *)
      else None
    in
    let found =
      match read (entry_path_as t t.format ~program:pd ~config:cd) with
      | Some _ as hit -> hit
      | None ->
          read (entry_path_as t (other_format t.format) ~program:pd ~config:cd)
    in
    (match found with
    | Some _ ->
        Obs.count obs "store.cache.hits" 1;
        locked t (fun () -> t.hits <- t.hits + 1)
    | None ->
        Obs.count obs "store.cache.misses" 1;
        locked t (fun () -> t.misses <- t.misses + 1));
    (* The serve-mode north star is specified in terms of hit rate over
       time: keep the registry's gauge current on every lookup. *)
    Obs.set_gauge obs "store.cache.hit_rate" (hit_rate (stats t));
    found
  in
  let store obs program config plan =
    let pd, cd = key program config in
    let tmp = Filename.temp_file ~temp_dir:t.dir "plan-" ".tmp" in
    match
      Store.write_plan ?obs ~format:t.format ~path:tmp ~program_digest:pd plan
    with
    | Ok () ->
        Sys.rename tmp (entry_path t ~program:pd ~config:cd);
        (* A twin in the other codec is now stale: drop it so the entry
           count (and the eviction order) sees one entry per key. Not an
           eviction — the logical entry survives. *)
        let twin =
          entry_path_as t (other_format t.format) ~program:pd ~config:cd
        in
        (try Sys.remove twin with Sys_error _ -> ());
        Obs.count obs "store.cache.stores" 1;
        locked t (fun () -> t.stores <- t.stores + 1);
        evict t obs
    | Error _ -> ( try Sys.remove tmp with Sys_error _ -> ())
  in
  { Pipeline.lookup; store }
