(** Persistent, versioned artifact store for profiles and plans.

    The pipeline's record and apply phases communicate through on-disk
    artifacts in one of two containers, auto-detected on read from the
    first bytes of the file:

    {b v1 (JSONL)}, version {!version}:

    - line 1 is a self-describing {e header} — format name, format
      version, artifact kind, structural program digest ({!Ir_digest}),
      configuration digest, creation metadata;
    - every following line but the last is a {e payload} line, a JSON
      object tagged with a ["p"] discriminator, emitted in a canonical
      order (sorted nodes and edges, contexts in id order) so equal values
      encode to equal bytes;
    - the last line is a {e trailer} carrying the payload line count and an
      FNV-1a 64 checksum of the payload bytes, written after the fact so
      the writer streams.

    The v1 reader accepts CRLF line endings and a final line with no
    trailing newline: lines are canonicalised (trailing ['\r'] stripped)
    before parsing and checksumming, so a byte-shifted but intact file
    still verifies. [Truncated] means the trailer is genuinely missing.

    {b v2 (binary)}, version [2]: an 8-byte magic ["HALOSTOR"], a version
    byte, the same header JSON length-prefixed, then length-prefixed
    binary records (zigzag-LEB128 varints via {!Wire}) mirroring the v1
    payload record for record and in the same canonical order, a zero
    sentinel, the record count and the same FNV-1a 64 checksum over the
    record frames. The reader loads the image once and decodes records
    in place — several times faster than v1 and roughly a third of the
    bytes. Writers default to v1; pass [~format:V2] to opt in.

    Decoding is strict for both containers: any unknown tag, missing
    field, type mismatch, count mismatch, version skew or checksum
    failure is a typed {!error}, never a silent partial artifact.

    Observability: encode/decode spans carry a [format] attribute, and
    the [store.codec.v1.encodes] / [store.codec.v2.encodes] /
    [store.codec.v1.decodes] / [store.codec.v2.decodes] counters and
    [store.codec.encode_bytes] histogram account codec traffic;
    sharded merging reports under [store.shard.*] (see
    {!merge_profiles_sharded}). *)

val format_name : string
(** ["halo/store"], the header's [format] field. *)

val version : int
(** The JSONL container's artifact format version: 1. *)

val version_v2 : int
(** The binary container's artifact format version: 2. *)

type format = V1 | V2

val format_version : format -> int
(** [V1 -> 1], [V2 -> 2]. *)

val format_of_version : int -> format option

val format_to_string : format -> string
(** ["v1"] / ["v2"] — the CLI's [--format] vocabulary. *)

val format_of_string : string -> format option
(** Accepts ["v1"]/["1"]/["jsonl"] and ["v2"]/["2"]/["binary"]. *)

type header = {
  version : int;
  kind : string;  (** ["profile"] or ["plan"]. *)
  program_digest : string;  (** {!Ir_digest.program} of the profiled program. *)
  config_digest : string;
      (** {!profile_config_digest} or {!plan_config_digest} of the
          producing configuration. *)
  created : float;  (** Unix time of encoding. *)
  producer : string;  (** Tool identifier, e.g. ["halo_cli"]. *)
  meta : (string * Json.t) list;  (** Kind-specific extras. *)
}

type error =
  | Io of string
  | Malformed of { line : int; reason : string }
      (** [line] is 1-based; 0 means the artifact as a whole. *)
  | Version_skew of { found : int; supported : int }
  | Wrong_kind of { found : string; expected : string }
  | Digest_mismatch of { field : string; found : string; expected : string }
  | Bad_checksum of { stated : string; computed : string }
  | Truncated  (** EOF before the trailer line. *)

val error_to_string : error -> string

(** {1 Digests} *)

val profile_config_digest : Profiler.config -> string
(** Hex MD5 of the canonical profiler-config JSON {e with the seed
    masked}: recordings of the same program under different input seeds
    are the same experiment observed twice, and must stay mergeable. *)

val plan_config_digest : Pipeline.config -> string
(** Hex MD5 of the full canonical pipeline-config JSON (profiler seed
    included — it determines the profile a plan was derived from). One half
    of the plan cache key. *)

(** {1 Config codecs}

    Canonical JSON for the configuration records — the bytes the digests
    are computed over, also embedded in artifacts so a reader needs no
    out-of-band configuration. *)

val json_of_profiler_config : Profiler.config -> Json.t
val json_of_pipeline_config : Pipeline.config -> Json.t

(** {1 Profiles} *)

type profile_artifact = {
  header : header;
  config : Profiler.config;  (** Decoded from the header meta. *)
  result : Profiler.result;
}

val write_profile :
  ?obs:Obs.t ->
  ?format:format ->
  ?created:float ->
  ?producer:string ->
  ?extra_meta:(string * Json.t) list ->
  path:string ->
  program_digest:string ->
  config:Profiler.config ->
  Profiler.result ->
  (unit, error) result
(** Encode one profiling run. [format] picks the container (default
    {!V1}); [created] and [producer] default to [Unix.gettimeofday ()]
    and ["halo"]; golden tests pin them. [obs] records the
    [store.encode] span. *)

val read_profile :
  ?obs:Obs.t ->
  ?expect_program:string ->
  string ->
  (profile_artifact, error) result
(** Decode a profile artifact in either container (auto-detected).
    [expect_program] rejects artifacts recorded from a structurally
    different program with [Digest_mismatch]. The decoded result
    round-trips: graphs, contexts (same ids), totals are structurally
    equal to what was written. [obs] records the [store.decode] span. *)

val merge_profiles :
  (profile_artifact * float) list ->
  (Profiler.config * Profiler.result, error) result
(** Weighted cross-run merge: raw graphs are combined with per-run access
    and edge counts scaled by the run's weight (rounded to nearest), then
    the noise filter re-runs over the {e merged} raw graph at the shared
    config's [node_coverage] — a context hot in one input but cold overall
    filters the way a single combined run would. All inputs must agree on
    program and config digests ([Digest_mismatch] otherwise); raises
    [Invalid_argument] on an empty list or a non-positive weight. Returns
    the shared config (the first artifact's) and the merged result, ready
    for {!write_profile}. Equivalent to folding the list through
    {!merge_add} and taking {!merge_result}. *)

(** {2 Incremental merging}

    The batch API above needs every input up front; long-running
    aggregation (the serve loop folding fleet profiles as they arrive)
    instead keeps one {!merge_state} per program and feeds it one
    artifact at a time. Folding artifacts one by one through
    {!merge_add} and finishing with {!merge_result} produces exactly
    {!merge_profiles} of the same list in the same order; the fold is
    associative in the accumulated counts, so arrival batching does not
    change the outcome. *)

type merge_state

val merge_create : unit -> merge_state
(** An empty accumulator. The first {!merge_add} pins the program and
    config digests every later artifact must match. *)

val merge_add : merge_state -> profile_artifact * float -> (unit, error) result
(** Fold one weighted artifact into the accumulator: contexts are
    re-interned into the shared table, scaled node/edge counts added to
    the running raw graph, totals accumulated. [Digest_mismatch] when the
    artifact disagrees with the first one on program or config digest
    (the state is unchanged on error); raises [Invalid_argument] on a
    non-positive or non-finite weight, as {!merge_profiles} does. *)

val merge_count : merge_state -> int
(** Artifacts folded in so far. *)

val merge_total_weight : merge_state -> float
(** Sum of the folded weights — the serve loop's "profile mass", which
    its plan-staleness policy thresholds against. *)

val merge_result :
  merge_state -> (Profiler.config * Profiler.result, error) result
(** The merged profile as of now: the noise filter runs over the
    accumulated raw graph at the shared config's [node_coverage]. The
    returned result is a {e snapshot} — graphs and contexts are copied,
    so later {!merge_add} calls do not mutate it. Raises
    [Invalid_argument] on an empty state, mirroring {!merge_profiles} on
    an empty list. *)

val merge_absorb : merge_state -> merge_state -> (unit, error) result
(** Fold one accumulator into another, {e unscaled}: the source's counts
    are already weight-scaled, so they add as plain integers and the
    source's weight and artifact count accumulate as-is. Folding a list
    chunk-by-chunk — each chunk through {!merge_add} into its own state,
    then the states absorbed in chunk order — produces exactly the
    sequential fold, which is what makes {!merge_profiles_sharded}
    byte-identical at any worker count. [Digest_mismatch] when the two
    states pin different program or config digests; absorbing an empty
    source is a no-op, and an empty destination adopts the source's
    pins. The source must not be used afterwards (its contexts and
    counts are shared, not copied). *)

val merge_adopt :
  merge_state ->
  mass:float ->
  count:int ->
  profile_artifact ->
  (unit, error) result
(** Re-adopt a previously merged-and-persisted aggregate: fold the
    artifact's counts in {e unscaled} (they already carry their weights)
    while crediting [mass] total weight and [count] constituent
    profiles. This is how a restarted serve daemon resumes an aggregate
    saved by {!write_profile} without double-scaling it. Raises
    [Invalid_argument] on a non-positive [mass] or negative [count]. *)

(** {2 Sharded merging}

    Fleet-scale aggregation: thousands of stored profiles partitioned by
    program digest and folded on the {!Par} domain pool. Contiguous
    chunking plus in-order {!merge_absorb} keeps every merged graph
    byte-identical to the sequential fold at any [jobs] count.
    Telemetry: a [store.shard.merge] span with [jobs]/[profiles]/[chunks]
    attributes, [store.shard.profiles] and [store.shard.chunks] counters
    and the [store.shard.profiles_per_sec] gauge. *)

val merge_profiles_sharded :
  ?obs:Obs.t ->
  ?jobs:int ->
  (profile_artifact * float) list ->
  (Profiler.config * Profiler.result, error) result
(** As {!merge_profiles} — same digest discipline, same
    [Invalid_argument] contract, and a byte-identical result — but the
    fold fans out over [jobs] worker domains (default
    {!Par.default_jobs}; [jobs <= 1] stays inline on the calling
    domain). On inconsistent inputs an {!error} of the same constructor
    as the sequential fold's is returned, though which artifact it cites
    may depend on the chunk boundaries. *)

val merge_by_program :
  ?obs:Obs.t ->
  ?jobs:int ->
  (profile_artifact * float) list ->
  (string * (Profiler.config * Profiler.result, error) result) list
(** Partition the inputs by program digest (result order is each
    program's first appearance), merge every partition on the shared
    pool, and return one merged profile per program. A bad artifact
    poisons only its own program's entry. An empty input list returns
    []. *)

(** {1 Plans} *)

val write_plan :
  ?obs:Obs.t ->
  ?format:format ->
  ?created:float ->
  ?producer:string ->
  ?extra_meta:(string * Json.t) list ->
  path:string ->
  program_digest:string ->
  Pipeline.plan ->
  (unit, error) result
(** Encode a complete plan: pipeline config, embedded profile, grouping,
    selectors and rewrite. [format] picks the container (default
    {!V1}). The header's config digest is
    [plan_config_digest plan.config]. *)

val read_plan :
  ?obs:Obs.t ->
  ?expect_program:string ->
  ?expect_config:string ->
  string ->
  (header * Pipeline.plan, error) result
(** Decode a plan artifact in either container (auto-detected);
    [expect_config] compares against the header's config digest (the
    cache's key check). The decoded plan's config is re-digested and
    verified against the header — a tampered config body is a
    [Digest_mismatch], not a silently different plan. *)

(** {1 Inspection and migration} *)

val read_header : string -> (header, error) result
(** Read and validate the header only (either container) — kind sniffing
    for [profile inspect] without decoding the payload. *)

val migrate :
  ?obs:Obs.t -> format:format -> src:string -> string -> (header, error) result
(** [migrate ~format ~src dst] re-encodes the artifact at [src] (either
    kind, either container) into [format] at [dst], preserving the
    header's creation time, producer and metadata — so
    v1 → v2 → v1 reproduces the original file byte for byte, and both
    encodings of one artifact decode and merge identically. Returns the
    migrated header. *)
