(** Stable structural digest of an {!Ir.program}.

    The store keys artifacts by program identity, but the pipeline's whole
    methodology profiles a {e test}-scale program and measures a
    {e ref}-scale one that differs only in input-scale constants (§5.1). A
    byte-level hash would tear those apart, so the digest hashes program
    {e structure} — function names, parameters, statement shapes, call and
    allocation sites, load/store widths — while masking the two places
    scale constants live: integer literals and [Compute] instruction
    counts. [digest (make Test) = digest (make Ref)] for every workload
    generator, and any structural edit (a new site, a reordered statement,
    a changed width) produces a different digest. *)

val program : Ir.program -> string
(** Hex MD5 of the canonical structural serialisation. *)
