(* Canonical serialisation: every constructor gets a distinct tag, every
   compound is parenthesised, so distinct trees cannot collide textually.
   Integer literals and Compute counts are masked to "#" — they are where
   test/ref scale constants live. Sites, names and access widths are
   structural and are kept. *)

let binop_tag = function
  | Ir.Add -> "add"
  | Ir.Sub -> "sub"
  | Ir.Mul -> "mul"
  | Ir.Div -> "div"
  | Ir.Rem -> "rem"
  | Ir.Lt -> "lt"
  | Ir.Le -> "le"
  | Ir.Gt -> "gt"
  | Ir.Ge -> "ge"
  | Ir.Eq -> "eq"
  | Ir.Ne -> "ne"
  | Ir.And -> "and"
  | Ir.Or -> "or"

let rec add_expr buf = function
  | Ir.Int _ -> Buffer.add_string buf "#"
  | Ir.Var v ->
      Buffer.add_string buf "v:";
      Buffer.add_string buf v;
      Buffer.add_char buf ';'
  | Ir.Gvar g ->
      Buffer.add_string buf "g:";
      Buffer.add_string buf g;
      Buffer.add_char buf ';'
  | Ir.Binop (op, a, b) ->
      Buffer.add_char buf '(';
      Buffer.add_string buf (binop_tag op);
      Buffer.add_char buf ' ';
      add_expr buf a;
      add_expr buf b;
      Buffer.add_char buf ')'
  | Ir.Not e ->
      Buffer.add_string buf "(not ";
      add_expr buf e;
      Buffer.add_char buf ')'
  | Ir.Rand e ->
      Buffer.add_string buf "(rand ";
      add_expr buf e;
      Buffer.add_char buf ')'

let add_site buf s = Buffer.add_string buf (Printf.sprintf "@%x" s)

let rec add_stmt buf = function
  | Ir.Let (v, e) ->
      Buffer.add_string buf "(let ";
      Buffer.add_string buf v;
      Buffer.add_char buf ' ';
      add_expr buf e;
      Buffer.add_char buf ')'
  | Ir.Gassign (g, e) ->
      Buffer.add_string buf "(gassign ";
      Buffer.add_string buf g;
      Buffer.add_char buf ' ';
      add_expr buf e;
      Buffer.add_char buf ')'
  | Ir.Malloc (v, size, site) ->
      Buffer.add_string buf "(malloc ";
      Buffer.add_string buf v;
      Buffer.add_char buf ' ';
      add_expr buf size;
      add_site buf site;
      Buffer.add_char buf ')'
  | Ir.Calloc (v, n, size, site) ->
      Buffer.add_string buf "(calloc ";
      Buffer.add_string buf v;
      Buffer.add_char buf ' ';
      add_expr buf n;
      add_expr buf size;
      add_site buf site;
      Buffer.add_char buf ')'
  | Ir.Realloc (v, ptr, size, site) ->
      Buffer.add_string buf "(realloc ";
      Buffer.add_string buf v;
      Buffer.add_char buf ' ';
      add_expr buf ptr;
      add_expr buf size;
      add_site buf site;
      Buffer.add_char buf ')'
  | Ir.Free e ->
      Buffer.add_string buf "(free ";
      add_expr buf e;
      Buffer.add_char buf ')'
  | Ir.Load (v, ptr, off, bytes) ->
      Buffer.add_string buf (Printf.sprintf "(load%d " bytes);
      Buffer.add_string buf v;
      Buffer.add_char buf ' ';
      add_expr buf ptr;
      add_expr buf off;
      Buffer.add_char buf ')'
  | Ir.Store (ptr, off, value, bytes) ->
      Buffer.add_string buf (Printf.sprintf "(store%d " bytes);
      add_expr buf ptr;
      add_expr buf off;
      add_expr buf value;
      Buffer.add_char buf ')'
  | Ir.Call (dst, f, args, site) ->
      Buffer.add_string buf "(call ";
      Buffer.add_string buf (match dst with None -> "_" | Some d -> d);
      Buffer.add_char buf ' ';
      Buffer.add_string buf f;
      Buffer.add_char buf ' ';
      List.iter (add_expr buf) args;
      add_site buf site;
      Buffer.add_char buf ')'
  | Ir.If (c, t, e) ->
      Buffer.add_string buf "(if ";
      add_expr buf c;
      add_block buf t;
      add_block buf e;
      Buffer.add_char buf ')'
  | Ir.While (c, body) ->
      Buffer.add_string buf "(while ";
      add_expr buf c;
      add_block buf body;
      Buffer.add_char buf ')'
  | Ir.Return e ->
      Buffer.add_string buf "(return ";
      add_expr buf e;
      Buffer.add_char buf ')'
  | Ir.Compute _ -> Buffer.add_string buf "(compute #)"

and add_block buf stmts =
  Buffer.add_char buf '[';
  List.iter (add_stmt buf) stmts;
  Buffer.add_char buf ']'

let program p =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "halo-ir-digest/1\n";
  Buffer.add_string buf "main:";
  Buffer.add_string buf (Ir.main p);
  Buffer.add_char buf '\n';
  List.iter
    (fun (f : Ir.func) ->
      Buffer.add_string buf "func ";
      Buffer.add_string buf f.Ir.fname;
      Buffer.add_char buf '(';
      Buffer.add_string buf (String.concat "," f.Ir.params);
      Buffer.add_char buf ')';
      add_block buf f.Ir.body;
      Buffer.add_char buf '\n')
    (Ir.funcs p);
  Digest.to_hex (Digest.string (Buffer.contents buf))
