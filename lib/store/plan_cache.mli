(** Content-addressed, on-disk plan cache.

    Plans are pure functions of (program structure, pipeline config): the
    cache keys each entry by
    [{!Ir_digest.program} ^ "-" ^ {!Store.plan_config_digest}] and stores
    it as a {!Store} plan artifact under that name, so a warmed cache
    answers every repeat [Pipeline.plan] call without running the
    profiler. Writes go through a temp file plus atomic rename, so
    concurrent domains (the figure suite's worker pool) never observe a
    torn entry; a corrupt or version-skewed entry reads as a miss and is
    overwritten by the recomputed plan.

    Hits, misses, stores and evictions are counted per cache (thread-safe)
    and on the per-worker [Obs] stream as [store.cache.hits] /
    [store.cache.misses] / [store.cache.stores] / [store.cache.evictions];
    the warmed-cache guarantee is the pair "[store.cache.misses] = 0 and
    [profile.runs] = 0". *)

type t

type stats = { hits : int; misses : int; stores : int; evictions : int }

val create : ?max_entries:int -> ?format:Store.format -> string -> t
(** Open (creating directories as needed) a cache rooted at the given
    directory. [max_entries] bounds the entry count: after each store,
    oldest entries (by modification time, ties broken by entry name so
    eviction is deterministic within an mtime second) beyond the bound
    are evicted. [format] (default {!Store.V2}) is the codec new entries
    are written in — [.plan.bin] for v2, [.plan.jsonl] for v1; lookups
    accept entries in either codec, and a store replaces the other
    codec's twin, so a directory migrates in place as it is rewritten. *)

val dir : t -> string

val stats : t -> stats
(** Counters accumulated by {e this process} since {!create}. *)

val hit_rate : stats -> float
(** Hits over lookups, 0 when no lookups happened. *)

(** {1 Persistence and inspection}

    A long-running daemon accumulates cache traffic that outlives any one
    process; {!save_stats} persists the running totals into the cache
    directory so [halo_cli profile inspect --stats DIR] can render a warm
    cache's history without starting the daemon. *)

val entry_names : t -> string list
(** Base names of the plan artifacts currently in the cache directory,
    sorted — each is [<program>-<config>.plan.bin] (v2) or
    [<program>-<config>.plan.jsonl] (v1). *)

val lifetime_stats : t -> stats
(** {!stats} plus the totals saved in the directory by earlier processes
    (read once at {!create}). *)

val save_stats : t -> unit
(** Atomically write {!lifetime_stats} to [stats.json] inside the cache
    directory (temp file + rename, like plan entries). Best-effort: an
    unwritable directory is ignored. *)

val load_stats : string -> stats option
(** Read a directory's saved [stats.json], if present and well-formed —
    the inspection path; does not require opening the cache. *)

val source : t -> Pipeline.plan_source
(** The cache as a pipeline plan source — pass to [Pipeline.plan],
    [Runner.run], [Figures.run_suite] or the fuzz harness. Lookups verify
    both digests and the payload checksum before trusting an entry. *)
