(* Little-endian binary primitives for the v2 store codec. Encoders
   append to a caller-owned [Buffer.t]; decoders read from a shared
   backing string through a bounded cursor, so slicing a record out of a
   file image costs one small record object and no byte copies. *)

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* {1 Encoding} *)

let u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let u32 b v =
  if v < 0 || v > 0xffff_ffff then err "u32 out of range: %d" v;
  Buffer.add_char b (Char.chr (v land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff))

let i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

(* Zigzag + LEB128: total over every OCaml int, small magnitudes stay
   one byte. *)
let varint b v =
  let z = (v lsl 1) lxor (v asr 62) in
  let z = ref z in
  let continue_ = ref true in
  while !continue_ do
    let byte = !z land 0x7f in
    (* logical shift: the zigzagged value is an unsigned bit pattern *)
    z := !z lsr 7;
    if !z = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue_ := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let f64 b v = i64 b (Int64.bits_of_float v)

let bytes b s =
  varint b (String.length s);
  Buffer.add_string b s

(* {1 Decoding} *)

type dec = { data : string; limit : int; mutable pos : int }

let dec ?(pos = 0) ?len data =
  let limit =
    match len with None -> String.length data | Some l -> pos + l
  in
  if pos < 0 || limit > String.length data || pos > limit then
    err "decoder window out of bounds";
  { data; limit; pos }

let pos d = d.pos
let remaining d = d.limit - d.pos
let eof d = d.pos >= d.limit

let need d n =
  if d.limit - d.pos < n then
    err "short input: need %d bytes, have %d" n (d.limit - d.pos)

let read_u8 d =
  need d 1;
  let v = Char.code (String.unsafe_get d.data d.pos) in
  d.pos <- d.pos + 1;
  v

let read_u32 d =
  need d 4;
  let g i = Char.code (String.unsafe_get d.data (d.pos + i)) in
  let v = g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24) in
  d.pos <- d.pos + 4;
  v

let read_i64 d =
  need d 8;
  let v = ref 0L in
  for i = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (String.unsafe_get d.data (d.pos + i))))
  done;
  d.pos <- d.pos + 8;
  !v

let read_varint d =
  let z = ref 0 and shift = ref 0 and fin = ref false in
  while not !fin do
    let byte = read_u8 d in
    if !shift > 62 then err "varint overflows the native int range";
    z := !z lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then fin := true
  done;
  let z = !z in
  (z lsr 1) lxor (- (z land 1))

let read_f64 d = Int64.float_of_bits (read_i64 d)

let read_bytes d =
  let n = read_varint d in
  if n < 0 then err "negative byte-string length %d" n;
  need d n;
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

let expect_end d =
  if not (eof d) then err "%d trailing bytes after record payload" (remaining d)
