let format_name = "halo/store"
let version = 1
let version_v2 = 2

(* v2 binary container: first 8 bytes of the file. A v1 artifact starts
   with '{', so the two containers are sniffable from the first byte. *)
let magic = "HALOSTOR"

type format = V1 | V2

let format_version = function V1 -> version | V2 -> version_v2
let format_of_version = function 1 -> Some V1 | 2 -> Some V2 | _ -> None
let format_to_string = function V1 -> "v1" | V2 -> "v2"

let format_of_string = function
  | "v1" | "1" | "jsonl" -> Some V1
  | "v2" | "2" | "binary" -> Some V2
  | _ -> None

type header = {
  version : int;
  kind : string;
  program_digest : string;
  config_digest : string;
  created : float;
  producer : string;
  meta : (string * Json.t) list;
}

type error =
  | Io of string
  | Malformed of { line : int; reason : string }
  | Version_skew of { found : int; supported : int }
  | Wrong_kind of { found : string; expected : string }
  | Digest_mismatch of { field : string; found : string; expected : string }
  | Bad_checksum of { stated : string; computed : string }
  | Truncated

let error_to_string = function
  | Io m -> "io error: " ^ m
  | Malformed { line; reason } ->
      Printf.sprintf "malformed artifact (line %d): %s" line reason
  | Version_skew { found; supported } ->
      Printf.sprintf "artifact format version %d; this build supports version %d"
        found supported
  | Wrong_kind { found; expected } ->
      Printf.sprintf "artifact kind %S where %S was expected" found expected
  | Digest_mismatch { field; found; expected } ->
      Printf.sprintf "%s digest mismatch: artifact has %s, expected %s" field
        found expected
  | Bad_checksum { stated; computed } ->
      Printf.sprintf "payload checksum mismatch: trailer states %s, payload hashes to %s"
        stated computed
  | Truncated -> "truncated artifact: trailer line missing"

exception Decode of error

let fail line reason = raise (Decode (Malformed { line; reason }))

(* Strict per-line field access: a [Json] accessor error becomes a
   [Malformed] carrying the 1-based artifact line. *)
let jint ~line k j =
  match Json.get_int k j with Ok v -> v | Error e -> fail line e

let jfloat ~line k j =
  match Json.get_float k j with Ok v -> v | Error e -> fail line e

let jstring ~line k j =
  match Json.get_string k j with Ok v -> v | Error e -> fail line e

let jbool ~line k j =
  match Json.get_bool k j with Ok v -> v | Error e -> fail line e

let jlist ~line k j =
  match Json.get_list k j with Ok v -> v | Error e -> fail line e

let jobj ~line k j =
  match Json.get_obj k j with Ok v -> v | Error e -> fail line e

let jints ~line k j =
  List.map
    (function
      | Json.Int i -> i
      | _ -> fail line (Printf.sprintf "field %S must hold integers" k))
    (jlist ~line k j)

(* {1 Config codecs} *)

let json_of_profiler_config (c : Profiler.config) =
  Json.Obj
    [
      ("affinity_distance", Json.Int c.Profiler.affinity_distance);
      ("max_tracked_size", Json.Int c.Profiler.max_tracked_size);
      ("node_coverage", Json.Float c.Profiler.node_coverage);
      ("seed", Json.Int c.Profiler.seed);
      ("sample_period", Json.Int c.Profiler.sample_period);
    ]

let profiler_config_of_json ~line j =
  {
    Profiler.affinity_distance = jint ~line "affinity_distance" j;
    max_tracked_size = jint ~line "max_tracked_size" j;
    node_coverage = jfloat ~line "node_coverage" j;
    seed = jint ~line "seed" j;
    sample_period = jint ~line "sample_period" j;
  }

let json_of_grouping_params (p : Grouping.params) =
  Json.Obj
    [
      ("min_edge_weight", Json.Int p.Grouping.min_edge_weight);
      ("max_group_members", Json.Int p.Grouping.max_group_members);
      ("merge_tol", Json.Float p.Grouping.merge_tol);
      ("gthresh", Json.Float p.Grouping.gthresh);
      ( "max_groups",
        match p.Grouping.max_groups with
        | None -> Json.Null
        | Some n -> Json.Int n );
    ]

let grouping_params_of_json ~line j =
  {
    Grouping.min_edge_weight = jint ~line "min_edge_weight" j;
    max_group_members = jint ~line "max_group_members" j;
    merge_tol = jfloat ~line "merge_tol" j;
    gthresh = jfloat ~line "gthresh" j;
    max_groups =
      (match Json.mem "max_groups" j with
      | Some Json.Null -> None
      | Some (Json.Int n) -> Some n
      | Some _ -> fail line "field \"max_groups\" must be an integer or null"
      | None -> fail line "missing field \"max_groups\"");
  }

let json_of_alloc_config (c : Group_alloc.config) =
  Json.Obj
    [
      ("slab_size", Json.Int c.Group_alloc.slab_size);
      ("chunk_size", Json.Int c.Group_alloc.chunk_size);
      ("max_grouped_size", Json.Int c.Group_alloc.max_grouped_size);
      ( "spare_policy",
        match c.Group_alloc.spare_policy with
        | Group_alloc.Keep_spare n -> Json.Obj [ ("keep_spare", Json.Int n) ]
        | Group_alloc.Always_reuse -> Json.String "always_reuse" );
      ( "backend",
        Json.String
          (match c.Group_alloc.backend with
          | Group_alloc.Bump_only -> "bump_only"
          | Group_alloc.Sharded_free_lists -> "sharded_free_lists") );
      ("color_groups", Json.Bool c.Group_alloc.color_groups);
    ]

let alloc_config_of_json ~line j =
  {
    Group_alloc.slab_size = jint ~line "slab_size" j;
    chunk_size = jint ~line "chunk_size" j;
    max_grouped_size = jint ~line "max_grouped_size" j;
    spare_policy =
      (match Json.mem "spare_policy" j with
      | Some (Json.String "always_reuse") -> Group_alloc.Always_reuse
      | Some (Json.Obj _ as o) ->
          Group_alloc.Keep_spare (jint ~line "keep_spare" o)
      | Some _ | None ->
          fail line
            "field \"spare_policy\" must be \"always_reuse\" or {\"keep_spare\": n}");
    backend =
      (match jstring ~line "backend" j with
      | "bump_only" -> Group_alloc.Bump_only
      | "sharded_free_lists" -> Group_alloc.Sharded_free_lists
      | s -> fail line (Printf.sprintf "unknown allocator backend %S" s));
    color_groups = jbool ~line "color_groups" j;
  }

let json_of_pipeline_config (c : Pipeline.config) =
  Json.Obj
    [
      ("profiler", json_of_profiler_config c.Pipeline.profiler);
      ("grouping", json_of_grouping_params c.Pipeline.grouping);
      ("min_edge_frac", Json.Float c.Pipeline.min_edge_frac);
      ("allocator", json_of_alloc_config c.Pipeline.allocator);
    ]

let pipeline_config_of_json ~line j =
  let field k =
    match Json.mem k j with
    | Some v -> v
    | None -> fail line (Printf.sprintf "missing field %S" k)
  in
  {
    Pipeline.profiler = profiler_config_of_json ~line (field "profiler");
    grouping = grouping_params_of_json ~line (field "grouping");
    min_edge_frac = jfloat ~line "min_edge_frac" j;
    allocator = alloc_config_of_json ~line (field "allocator");
  }

(* {1 Digests} *)

let md5_json j = Digest.to_hex (Digest.string (Json.to_string ~pretty:false j))

let profile_config_digest c =
  (* The input seed names the run, not the experiment: recordings that
     differ only by seed must share a digest so they remain mergeable. *)
  md5_json (json_of_profiler_config { c with Profiler.seed = 0 })

let plan_config_digest c = md5_json (json_of_pipeline_config c)

(* {1 Payload checksum: FNV-1a 64 over payload bytes}

    Chosen over [Digest] because it feeds incrementally, so both ends
    stream line by line; this is an integrity check against torn or edited
    files, not an authenticity measure. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  let h = ref h in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) fnv_prime)
    s;
  !h

let fnv_sub h s pos len =
  let h = ref h in
  for i = pos to pos + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (String.unsafe_get s i))))
        fnv_prime
  done;
  !h

let fnv_hex h = Printf.sprintf "%016Lx" h

(* {1 Writer} *)

type writer = { oc : out_channel; mutable hash : int64; mutable lines : int }

let header_json h =
  Json.Obj
    [
      ("format", Json.String format_name);
      ("version", Json.Int h.version);
      ("kind", Json.String h.kind);
      ("program", Json.String h.program_digest);
      ("config", Json.String h.config_digest);
      ("created", Json.Float h.created);
      ("producer", Json.String h.producer);
      ("meta", Json.Obj h.meta);
    ]

let start_writer oc h =
  output_string oc (Json.to_string ~pretty:false (header_json h));
  output_char oc '\n';
  { oc; hash = fnv_offset; lines = 0 }

let wline w j =
  let s = Json.to_string ~pretty:false j in
  output_string w.oc s;
  output_char w.oc '\n';
  w.hash <- fnv_add (fnv_add w.hash s) "\n";
  w.lines <- w.lines + 1

let finish_writer w =
  output_string w.oc
    (Json.to_string ~pretty:false
       (Json.Obj
          [
            ("end", Json.Bool true);
            ("lines", Json.Int w.lines);
            ("checksum", Json.String (fnv_hex w.hash));
          ]));
  output_char w.oc '\n'

(* {1 v2 binary container}

   Layout, all integers little-endian:

   {v
   magic    8 bytes   "HALOSTOR"
   version  u8        2
   hlen     u32       byte length of the header JSON
   header   hlen      the same JSON object a v1 header line carries
   record*            u32 frame length (>= 1), then that many bytes:
                      a tag byte and a tag-specific binary body
   sentinel u32       0 (no record is empty, so 0 terminates the stream)
   count    varint    number of records
   checksum i64       FNV-1a 64 over every record frame (length prefix
                      included), the v1 trailer's integrity check
   v}

   The reader loads the image once and decodes records in place through
   {!Wire.dec} windows — no per-record copies, which is what makes the
   layout mmap-friendly. Record ordinals map onto the v1 error
   vocabulary: the header is "line" 1, the first record line 2. *)

(* Record tags. Profile and plan records share a namespace so the plan
   decoder can reuse the profile handler, exactly like the v1 "p" tags. *)
let tag_meta = 0x01
let tag_ctx = 0x02
let tag_total = 0x03
let tag_node = 0x04
let tag_edge = 0x05
let tag_config = 0x10
let tag_grouping = 0x11
let tag_selector = 0x12
let tag_rewrite = 0x13

(* Graph discriminator inside total/node/edge records. *)
let gr_raw = 0
let gr_filtered = 1

type bwriter = {
  b_oc : out_channel;
  b_buf : Buffer.t;
  mutable b_hash : int64;
  mutable b_records : int;
}

(* Build one framed record in the scratch buffer (4 zero bytes reserved
   for the length prefix, patched after the body is known), hash the
   whole frame, stream it out. *)
let brecord w fill =
  let b = w.b_buf in
  Buffer.clear b;
  Buffer.add_string b "\000\000\000\000";
  fill b;
  let frame = Buffer.to_bytes b in
  let body_len = Bytes.length frame - 4 in
  Bytes.set frame 0 (Char.chr (body_len land 0xff));
  Bytes.set frame 1 (Char.chr ((body_len lsr 8) land 0xff));
  Bytes.set frame 2 (Char.chr ((body_len lsr 16) land 0xff));
  Bytes.set frame 3 (Char.chr ((body_len lsr 24) land 0xff));
  let frame = Bytes.unsafe_to_string frame in
  w.b_hash <- fnv_sub w.b_hash frame 0 (String.length frame);
  output_string w.b_oc frame;
  w.b_records <- w.b_records + 1

let start_bwriter oc h =
  output_string oc magic;
  output_char oc (Char.chr version_v2);
  let hs = Json.to_string ~pretty:false (header_json h) in
  let b = Buffer.create 16 in
  Wire.u32 b (String.length hs);
  output_string oc (Buffer.contents b);
  output_string oc hs;
  { b_oc = oc; b_buf = Buffer.create 256; b_hash = fnv_offset; b_records = 0 }

let finish_bwriter w =
  let b = Buffer.create 24 in
  Wire.u32 b 0;
  Wire.varint b w.b_records;
  Wire.i64 b w.b_hash;
  output_string w.b_oc (Buffer.contents b)

let with_artifact ?obs ~format ~path ~header ~emit_v1 ~emit_v2 () =
  Obs.span obs "store.encode"
    ~attrs:
      [
        ("kind", Json.String header.kind);
        ("path", Json.String path);
        ("format", Json.Int (format_version format));
      ]
    (fun () ->
      try
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            (match format with
            | V1 ->
                let w = start_writer oc header in
                emit_v1 w;
                finish_writer w;
                Obs.add_attrs obs [ ("payload_lines", Json.Int w.lines) ]
            | V2 ->
                let w = start_bwriter oc header in
                emit_v2 w;
                finish_bwriter w;
                Obs.add_attrs obs
                  [ ("payload_records", Json.Int w.b_records) ]);
            Obs.count obs
              (Printf.sprintf "store.codec.%s.encodes" (format_to_string format))
              1;
            Obs.observe obs "store.codec.encode_bytes"
              (float_of_int (pos_out oc)));
        Ok ()
      with Sys_error m -> Error (Io m))

(* Canonical payload order: equal values encode to equal bytes. Contexts
   go in id order (so re-interning reproduces the ids), nodes ascending,
   edges sorted by endpoint pair. *)

let emit_graph w tag g =
  (match Affinity_graph.reported_total g with
  | None -> ()
  | Some v ->
      wline w
        (Json.Obj
           [ ("p", Json.String "total"); ("g", Json.String tag); ("v", Json.Int v) ]));
  List.iter
    (fun id ->
      wline w
        (Json.Obj
           [
             ("p", Json.String "node");
             ("g", Json.String tag);
             ("id", Json.Int id);
             ("n", Json.Int (Affinity_graph.node_accesses g id));
           ]))
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, wt) ->
      wline w
        (Json.Obj
           [
             ("p", Json.String "edge");
             ("g", Json.String tag);
             ("x", Json.Int x);
             ("y", Json.Int y);
             ("w", Json.Int wt);
           ]))
    (List.sort compare (Affinity_graph.edges g))

let emit_profile w (r : Profiler.result) =
  wline w
    (Json.Obj
       [
         ("p", Json.String "meta");
         ("total_accesses", Json.Int r.Profiler.total_accesses);
         ("tracked_allocs", Json.Int r.Profiler.tracked_allocs);
         ("instructions", Json.Int r.Profiler.instructions);
       ]);
  let tbl = r.Profiler.contexts in
  for id = 0 to Context.count tbl - 1 do
    wline w
      (Json.Obj
         [
           ("p", Json.String "ctx");
           ("id", Json.Int id);
           ( "sites",
             Json.List
               (Array.to_list
                  (Array.map (fun s -> Json.Int s) (Context.sites tbl id))) );
         ])
  done;
  emit_graph w "raw" r.Profiler.raw_graph;
  emit_graph w "graph" r.Profiler.graph

(* v2 emitters mirror the v1 payload record for record and in the same
   canonical order, so both codecs share one equal-values-equal-bytes
   contract. *)

let bemit_graph w gtag g =
  (match Affinity_graph.reported_total g with
  | None -> ()
  | Some v ->
      brecord w (fun b ->
          Wire.u8 b tag_total;
          Wire.u8 b gtag;
          Wire.varint b v));
  List.iter
    (fun id ->
      brecord w (fun b ->
          Wire.u8 b tag_node;
          Wire.u8 b gtag;
          Wire.varint b id;
          Wire.varint b (Affinity_graph.node_accesses g id)))
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, wt) ->
      brecord w (fun b ->
          Wire.u8 b tag_edge;
          Wire.u8 b gtag;
          Wire.varint b x;
          Wire.varint b y;
          Wire.varint b wt))
    (List.sort compare (Affinity_graph.edges g))

let bemit_profile w (r : Profiler.result) =
  brecord w (fun b ->
      Wire.u8 b tag_meta;
      Wire.varint b r.Profiler.total_accesses;
      Wire.varint b r.Profiler.tracked_allocs;
      Wire.varint b r.Profiler.instructions);
  let tbl = r.Profiler.contexts in
  for id = 0 to Context.count tbl - 1 do
    brecord w (fun b ->
        Wire.u8 b tag_ctx;
        Wire.varint b id;
        let sites = Context.sites tbl id in
        Wire.varint b (Array.length sites);
        Array.iter (Wire.varint b) sites)
  done;
  bemit_graph w gr_raw r.Profiler.raw_graph;
  bemit_graph w gr_filtered r.Profiler.graph

(* {1 Reader core} *)

(* [expect] is the container's version: a JSONL file must carry a
   version-1 header, a binary file a version-2 one — a mismatch is skew
   even when the stated version is one this build could read in its
   proper container. *)
let parse_header ~line ~expect j =
  let fmt = jstring ~line "format" j in
  if fmt <> format_name then
    fail line (Printf.sprintf "not a %s artifact (format %S)" format_name fmt);
  let v = jint ~line "version" j in
  if v <> expect then raise (Decode (Version_skew { found = v; supported = expect }));
  {
    version = v;
    kind = jstring ~line "kind" j;
    program_digest = jstring ~line "program" j;
    config_digest = jstring ~line "config" j;
    created = jfloat ~line "created" j;
    producer = jstring ~line "producer" j;
    meta = jobj ~line "meta" j;
  }

(* Logical lines of a v1 artifact. Tolerant of the two ways a file
   survives transport intact but byte-shifted: CRLF line endings (each
   line's trailing '\r' is stripped before parsing and checksumming, so
   the checksum is over the canonical LF form the writer hashed) and a
   final line with no trailing newline (still a line — [Truncated] is
   reserved for a genuinely missing trailer). *)
let v1_lines data =
  let n = String.length data in
  let rec go pos acc =
    if pos >= n then List.rev acc
    else
      let nl =
        match String.index_from_opt data pos '\n' with
        | Some i -> i
        | None -> n
      in
      let stop = if nl > pos && data.[nl - 1] = '\r' then nl - 1 else nl in
      go (nl + 1) (String.sub data pos (stop - pos) :: acc)
  in
  go 0 []

(* Verify a whole v1 image: header, payload lines (parsed, counted,
   checksummed), trailer. Returns the payload as (1-based line, value). *)
let read_lines_v1 data =
  match v1_lines data with
  | [] -> raise (Decode Truncated)
  | header_line :: rest ->
      let hj =
        match Json.of_string header_line with Ok j -> j | Error e -> fail 1 e
      in
      let header = parse_header ~line:1 ~expect:version hj in
      let payload = ref [] in
      let hash = ref fnv_offset in
      let count = ref 0 in
      let rec loop = function
        | [] -> raise (Decode Truncated)
        | raw :: rest -> (
            let line = !count + 2 in
            let j =
              match Json.of_string raw with Ok j -> j | Error e -> fail line e
            in
            match Json.mem "end" j with
            | Some _ ->
                let stated_lines = jint ~line "lines" j in
                if stated_lines <> !count then
                  fail line
                    (Printf.sprintf "trailer declares %d payload lines, found %d"
                       stated_lines !count);
                let stated = jstring ~line "checksum" j in
                let computed = fnv_hex !hash in
                if not (String.equal stated computed) then
                  raise (Decode (Bad_checksum { stated; computed }));
                if rest <> [] then fail (line + 1) "data after trailer line"
            | None ->
                hash := fnv_add (fnv_add !hash raw) "\n";
                incr count;
                payload := (line, j) :: !payload;
                loop rest)
      in
      loop rest;
      (header, List.rev !payload)


(* Scan a v2 image: header, then every record frame (counted,
   checksummed, bounds-checked), then the trailer. Records come back as
   (1-based ordinal, in-place cursor) — no payload bytes are copied. *)
let read_records_v2 data =
  let total = String.length data in
  if total < 9 then raise (Decode Truncated);
  let v = Char.code data.[8] in
  if v <> version_v2 then
    raise (Decode (Version_skew { found = v; supported = version_v2 }));
  let u32_at pos =
    if pos + 4 > total then raise (Decode Truncated);
    let g i = Char.code (String.unsafe_get data (pos + i)) in
    g 0 lor (g 1 lsl 8) lor (g 2 lsl 16) lor (g 3 lsl 24)
  in
  let hlen = u32_at 9 in
  if 13 + hlen > total then raise (Decode Truncated);
  let hj =
    match Json.of_string (String.sub data 13 hlen) with
    | Ok j -> j
    | Error e -> fail 1 e
  in
  let header = parse_header ~line:1 ~expect:version_v2 hj in
  let rec loop pos count hash acc =
    let rlen = u32_at pos in
    if rlen = 0 then begin
      let line = count + 2 in
      let stated_records, stated_sum =
        try
          let d = Wire.dec ~pos:(pos + 4) data in
          let n = Wire.read_varint d in
          let s = Wire.read_i64 d in
          if not (Wire.eof d) then fail line "data after trailer";
          (n, s)
        with Wire.Error _ -> raise (Decode Truncated)
      in
      if stated_records <> count then
        fail line
          (Printf.sprintf "trailer declares %d records, found %d"
             stated_records count);
      if not (Int64.equal stated_sum hash) then
        raise
          (Decode
             (Bad_checksum
                { stated = fnv_hex stated_sum; computed = fnv_hex hash }));
      (header, List.rev acc)
    end
    else if pos + 4 + rlen > total then raise (Decode Truncated)
    else
      let hash = fnv_sub hash data pos (4 + rlen) in
      let line = count + 2 in
      let d = Wire.dec ~pos:(pos + 4) ~len:rlen data in
      loop (pos + 4 + rlen) (count + 1) hash ((line, d) :: acc)
  in
  loop (13 + hlen) 0 fnv_offset []

(* A decoded artifact body, container-agnostic: v1 carries parsed JSON
   lines, v2 carries in-place binary cursors. *)
type payload = Lines of (int * Json.t) list | Records of (int * Wire.dec) list

let is_v2_image data =
  String.length data >= 8 && String.equal (String.sub data 0 8) magic

let read_artifact path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  if is_v2_image data then
    let header, records = read_records_v2 data in
    (V2, header, Records records)
  else
    let header, lines = read_lines_v1 data in
    (V1, header, Lines lines)

let check_expect ~field ~found = function
  | Some expected when expected <> found ->
      raise (Decode (Digest_mismatch { field; found; expected }))
  | _ -> ()

let wrap f =
  match f () with
  | v -> Ok v
  | exception Decode e -> Error e
  | exception Sys_error m -> Error (Io m)

(* {1 Profile payload} *)

type profile_state = {
  ctxs : Context.table;
  raw : Affinity_graph.t;
  filtered : Affinity_graph.t;
  mutable pmeta : (int * int * int) option;
}

let new_profile_state () =
  {
    ctxs = Context.create ();
    raw = Affinity_graph.create ();
    filtered = Affinity_graph.create ();
    pmeta = None;
  }

let graph_of st ~line = function
  | "raw" -> st.raw
  | "graph" -> st.filtered
  | g -> fail line (Printf.sprintf "unknown graph tag %S" g)

(* Shared between profile and plan decoding; returns [false] on tags it
   does not own so the plan decoder can layer its own. *)
let handle_profile_line st ~line tag j =
  match tag with
  | "meta" ->
      if st.pmeta <> None then fail line "duplicate meta line";
      st.pmeta <-
        Some
          ( jint ~line "total_accesses" j,
            jint ~line "tracked_allocs" j,
            jint ~line "instructions" j );
      true
  | "ctx" ->
      let id = jint ~line "id" j in
      let sites = Array.of_list (jints ~line "sites" j) in
      let got = Context.intern st.ctxs sites in
      if got <> id then
        fail line
          (Printf.sprintf
             "context %d interned as %d: ids must be dense, in order, distinct"
             id got);
      true
  | "total" ->
      let g = graph_of st ~line (jstring ~line "g" j) in
      if Affinity_graph.reported_total g <> None then
        fail line "duplicate graph total line";
      Affinity_graph.set_reported_total g (Some (jint ~line "v" j));
      true
  | "node" ->
      let g = graph_of st ~line (jstring ~line "g" j) in
      Affinity_graph.add_access_n g (jint ~line "id" j) (jint ~line "n" j);
      true
  | "edge" ->
      let g = graph_of st ~line (jstring ~line "g" j) in
      Affinity_graph.add_affinity_n g (jint ~line "x" j) (jint ~line "y" j)
        (jint ~line "w" j);
      true
  | _ -> false

(* v2 twins of the line handlers, reading the same logical records from
   binary cursors. [Wire.Error] is mapped to [Malformed] by the payload
   walkers below. *)

let rlen_nonneg ~line n = if n < 0 then fail line "negative length" else n

let rint_list ~line d =
  let n = rlen_nonneg ~line (Wire.read_varint d) in
  let rec go i acc =
    if i = n then List.rev acc else go (i + 1) (Wire.read_varint d :: acc)
  in
  go 0 []

let bgraph_of st ~line g =
  if g = gr_raw then st.raw
  else if g = gr_filtered then st.filtered
  else fail line (Printf.sprintf "unknown graph tag %d" g)

let handle_profile_record st ~line tag d =
  if tag = tag_meta then begin
    if st.pmeta <> None then fail line "duplicate meta record";
    let ta = Wire.read_varint d in
    let tr = Wire.read_varint d in
    let ins = Wire.read_varint d in
    st.pmeta <- Some (ta, tr, ins);
    true
  end
  else if tag = tag_ctx then begin
    let id = Wire.read_varint d in
    let n = rlen_nonneg ~line (Wire.read_varint d) in
    let sites = Array.make n 0 in
    for i = 0 to n - 1 do
      sites.(i) <- Wire.read_varint d
    done;
    let got = Context.intern st.ctxs sites in
    if got <> id then
      fail line
        (Printf.sprintf
           "context %d interned as %d: ids must be dense, in order, distinct"
           id got);
    true
  end
  else if tag = tag_total then begin
    let g = bgraph_of st ~line (Wire.read_u8 d) in
    if Affinity_graph.reported_total g <> None then
      fail line "duplicate graph total record";
    Affinity_graph.set_reported_total g (Some (Wire.read_varint d));
    true
  end
  else if tag = tag_node then begin
    let g = bgraph_of st ~line (Wire.read_u8 d) in
    let id = Wire.read_varint d in
    Affinity_graph.add_access_n g id (Wire.read_varint d);
    true
  end
  else if tag = tag_edge then begin
    let g = bgraph_of st ~line (Wire.read_u8 d) in
    let x = Wire.read_varint d in
    let y = Wire.read_varint d in
    Affinity_graph.add_affinity_n g x y (Wire.read_varint d);
    true
  end
  else false

let finish_profile st =
  match st.pmeta with
  | None -> fail 0 "artifact has no meta line"
  | Some (total_accesses, tracked_allocs, instructions) ->
      {
        Profiler.graph = st.filtered;
        raw_graph = st.raw;
        contexts = st.ctxs;
        total_accesses;
        tracked_allocs;
        instructions;
      }

(* {1 Profiles} *)

type profile_artifact = {
  header : header;
  config : Profiler.config;
  result : Profiler.result;
}

let write_profile ?obs ?(format = V1) ?created ?(producer = "halo")
    ?(extra_meta = []) ~path ~program_digest ~config result =
  let created =
    match created with Some t -> t | None -> Unix.gettimeofday ()
  in
  let header =
    {
      version = format_version format;
      kind = "profile";
      program_digest;
      config_digest = profile_config_digest config;
      created;
      producer;
      meta = ("profiler_config", json_of_profiler_config config) :: extra_meta;
    }
  in
  with_artifact ?obs ~format ~path ~header
    ~emit_v1:(fun w -> emit_profile w result)
    ~emit_v2:(fun w -> bemit_profile w result)
    ()

let decode_profile_payload payload =
  let st = new_profile_state () in
  (match payload with
  | Lines lines ->
      List.iter
        (fun (line, j) ->
          let tag = jstring ~line "p" j in
          if not (handle_profile_line st ~line tag j) then
            fail line (Printf.sprintf "unknown payload tag %S" tag))
        lines
  | Records records ->
      List.iter
        (fun (line, d) ->
          try
            let tag = Wire.read_u8 d in
            if not (handle_profile_record st ~line tag d) then
              fail line (Printf.sprintf "unknown record tag 0x%02x" tag);
            Wire.expect_end d
          with Wire.Error r -> fail line r)
        records);
  st

let note_decode obs fmt =
  Obs.add_attrs obs [ ("format", Json.Int (format_version fmt)) ];
  Obs.count obs
    (Printf.sprintf "store.codec.%s.decodes" (format_to_string fmt))
    1

let read_profile ?obs ?expect_program path =
  Obs.span obs "store.decode"
    ~attrs:[ ("kind", Json.String "profile"); ("path", Json.String path) ]
    (fun () ->
      wrap (fun () ->
          let fmt, header, payload = read_artifact path in
          note_decode obs fmt;
          if header.kind <> "profile" then
            raise
              (Decode (Wrong_kind { found = header.kind; expected = "profile" }));
          check_expect ~field:"program" ~found:header.program_digest
            expect_program;
          let config =
            match List.assoc_opt "profiler_config" header.meta with
            | None -> fail 1 "header meta is missing profiler_config"
            | Some j -> profiler_config_of_json ~line:1 j
          in
          let self = profile_config_digest config in
          if self <> header.config_digest then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "config";
                      found = header.config_digest;
                      expected = self;
                    }));
          let st = decode_profile_payload payload in
          { header; config; result = finish_profile st }))

(* Incremental weighted merging: one mutable accumulator per program,
   fed one artifact at a time. The batch [merge_profiles] is a fold over
   this state, so the two APIs cannot drift. *)

type merge_state = {
  m_contexts : Context.table;
  m_raw : Affinity_graph.t;
  (* Digests (and shared config) pinned by the first artifact folded. *)
  mutable m_first : (string * string * Profiler.config) option;
  mutable m_count : int;
  mutable m_weight : float;
  mutable m_ta : int;
  mutable m_tr : int;
  mutable m_ins : int;
}

let merge_create () =
  {
    m_contexts = Context.create ();
    m_raw = Affinity_graph.create ();
    m_first = None;
    m_count = 0;
    m_weight = 0.0;
    m_ta = 0;
    m_tr = 0;
    m_ins = 0;
  }

let merge_count st = st.m_count
let merge_total_weight st = st.m_weight

let merge_scale w n = int_of_float (Float.round (w *. float_of_int n))

let merge_add st ((a : profile_artifact), w) =
  if (not (Float.is_finite w)) || w <= 0.0 then
    invalid_arg "Store.merge_add: weights must be positive and finite";
  wrap (fun () ->
      (match st.m_first with
      | None ->
          st.m_first <-
            Some (a.header.program_digest, a.header.config_digest, a.config)
      | Some (program, config, _) ->
          if a.header.program_digest <> program then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "program";
                      found = a.header.program_digest;
                      expected = program;
                    }));
          if a.header.config_digest <> config then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "config";
                      found = a.header.config_digest;
                      expected = config;
                    })));
      let old = a.result.Profiler.contexts in
      let n = Context.count old in
      let remap = Array.make n 0 in
      for id = 0 to n - 1 do
        remap.(id) <- Context.intern st.m_contexts (Context.sites old id)
      done;
      let g = a.result.Profiler.raw_graph in
      List.iter
        (fun id ->
          Affinity_graph.add_access_n st.m_raw remap.(id)
            (merge_scale w (Affinity_graph.node_accesses g id)))
        (Affinity_graph.nodes g);
      List.iter
        (fun (x, y, wt) ->
          Affinity_graph.add_affinity_n st.m_raw remap.(x) remap.(y)
            (merge_scale w wt))
        (Affinity_graph.edges g);
      st.m_ta <- st.m_ta + merge_scale w a.result.Profiler.total_accesses;
      st.m_tr <- st.m_tr + merge_scale w a.result.Profiler.tracked_allocs;
      st.m_ins <- st.m_ins + merge_scale w a.result.Profiler.instructions;
      st.m_count <- st.m_count + 1;
      st.m_weight <- st.m_weight +. w)

let copy_graph g =
  let c = Affinity_graph.create () in
  List.iter
    (fun id -> Affinity_graph.add_access_n c id (Affinity_graph.node_accesses g id))
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, w) -> Affinity_graph.add_affinity_n c x y w)
    (Affinity_graph.edges g);
  Affinity_graph.set_reported_total c (Affinity_graph.reported_total g);
  c

let copy_contexts tbl =
  let c = Context.create () in
  for id = 0 to Context.count tbl - 1 do
    ignore (Context.intern c (Context.sites tbl id) : Context.id)
  done;
  c

let merge_result_internal ~snapshot st =
  match st.m_first with
  | None -> invalid_arg "Store.merge_result: empty merge state"
  | Some (_, _, config) ->
      wrap (fun () ->
          let raw = if snapshot then copy_graph st.m_raw else st.m_raw in
          let contexts =
            if snapshot then copy_contexts st.m_contexts else st.m_contexts
          in
          let filtered =
            Affinity_graph.filter_top raw
              ~coverage:config.Profiler.node_coverage
          in
          ( config,
            {
              Profiler.graph = filtered;
              raw_graph = raw;
              contexts;
              total_accesses = st.m_ta;
              tracked_allocs = st.m_tr;
              instructions = st.m_ins;
            } ))

let merge_result st = merge_result_internal ~snapshot:true st

let merge_profiles inputs =
  if inputs = [] then invalid_arg "Store.merge_profiles: empty input list";
  List.iter
    (fun (_, w) ->
      if (not (Float.is_finite w)) || w <= 0.0 then
        invalid_arg "Store.merge_profiles: weights must be positive and finite")
    inputs;
  let st = merge_create () in
  let rec fold = function
    | [] -> merge_result_internal ~snapshot:false st
    | input :: rest -> (
        match merge_add st input with
        | Ok () -> fold rest
        | Error e -> Error e)
  in
  fold inputs

(* {1 Sharded merging}

   Contiguous chunks of the input fold on worker domains, then the
   partial accumulators combine in chunk order. Scaled counts are plain
   integers, so chunked addition is exactly the sequential sum; contexts
   absorb in each chunk's local first-appearance order, which is the
   order the sequential fold would first meet them — the merged graph is
   byte-identical at any worker count. *)

let merge_absorb dst src =
  match src.m_first with
  | None -> Ok ()
  | Some (program, config_digest, config) ->
      wrap (fun () ->
          (match dst.m_first with
          | None -> dst.m_first <- Some (program, config_digest, config)
          | Some (p, c, _) ->
              if program <> p then
                raise
                  (Decode
                     (Digest_mismatch
                        { field = "program"; found = program; expected = p }));
              if config_digest <> c then
                raise
                  (Decode
                     (Digest_mismatch
                        { field = "config"; found = config_digest; expected = c })));
          let old = src.m_contexts in
          let n = Context.count old in
          let remap = Array.make n 0 in
          for id = 0 to n - 1 do
            remap.(id) <- Context.intern dst.m_contexts (Context.sites old id)
          done;
          let g = src.m_raw in
          List.iter
            (fun id ->
              Affinity_graph.add_access_n dst.m_raw remap.(id)
                (Affinity_graph.node_accesses g id))
            (Affinity_graph.nodes g);
          List.iter
            (fun (x, y, wt) ->
              Affinity_graph.add_affinity_n dst.m_raw remap.(x) remap.(y) wt)
            (Affinity_graph.edges g);
          dst.m_ta <- dst.m_ta + src.m_ta;
          dst.m_tr <- dst.m_tr + src.m_tr;
          dst.m_ins <- dst.m_ins + src.m_ins;
          dst.m_count <- dst.m_count + src.m_count;
          dst.m_weight <- dst.m_weight +. src.m_weight)

let merge_adopt st ~mass ~count artifact =
  if (not (Float.is_finite mass)) || mass <= 0.0 then
    invalid_arg "Store.merge_adopt: mass must be positive and finite";
  if count < 0 then invalid_arg "Store.merge_adopt: negative count";
  let tmp = merge_create () in
  match merge_add tmp (artifact, 1.0) with
  | Error e -> Error e
  | Ok () ->
      tmp.m_weight <- mass;
      tmp.m_count <- count;
      merge_absorb st tmp

(* Contiguous chunks in input order, sizes differing by at most one. *)
let chunk_evenly inputs nchunks =
  let n = List.length inputs in
  let base = n / nchunks and extra = n mod nchunks in
  let rec take k acc xs =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go i xs acc =
    if i = nchunks then List.rev acc
    else
      let sz = base + if i < extra then 1 else 0 in
      let chunk, rest = take sz [] xs in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 inputs [] |> List.filter (fun c -> c <> [])

let fold_chunk inputs =
  let st = merge_create () in
  let rec go = function
    | [] -> (st, None)
    | input :: rest -> (
        match merge_add st input with
        | Ok () -> go rest
        | Error e -> (st, Some e))
  in
  go inputs

let check_weights ~who inputs =
  List.iter
    (fun (_, w) ->
      if (not (Float.is_finite w)) || w <= 0.0 then
        invalid_arg (who ^ ": weights must be positive and finite"))
    inputs

let merge_profiles_sharded ?obs ?jobs inputs =
  if inputs = [] then
    invalid_arg "Store.merge_profiles_sharded: empty input list";
  check_weights ~who:"Store.merge_profiles_sharded" inputs;
  let jobs =
    match jobs with Some j -> max 1 j | None -> Par.default_jobs ()
  in
  let n = List.length inputs in
  let nchunks = max 1 (min jobs n) in
  Obs.span obs "store.shard.merge"
    ~attrs:
      [
        ("jobs", Json.Int jobs);
        ("profiles", Json.Int n);
        ("chunks", Json.Int nchunks);
      ]
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Obs.count obs "store.shard.profiles" n;
      Obs.count obs "store.shard.chunks" nchunks;
      let result =
        if nchunks = 1 then
          match fold_chunk inputs with
          | _, Some e -> Error e
          | st, None -> merge_result_internal ~snapshot:false st
        else
          let chunks = chunk_evenly inputs nchunks in
          let partials =
            Par.map ?obs ~name:"store.shard" ~jobs fold_chunk chunks
          in
          let acc = merge_create () in
          let rec combine = function
            | [] -> merge_result_internal ~snapshot:false acc
            | (_, Some e) :: _ -> Error e
            | (st, None) :: rest -> (
                match merge_absorb acc st with
                | Ok () -> combine rest
                | Error e -> Error e)
          in
          combine partials
      in
      let dt = Unix.gettimeofday () -. t0 in
      if dt > 0.0 then
        Obs.set_gauge obs "store.shard.profiles_per_sec"
          (float_of_int n /. dt);
      result)

let merge_by_program ?obs ?jobs inputs =
  check_weights ~who:"Store.merge_by_program" inputs;
  if inputs = [] then []
  else begin
    let jobs =
      match jobs with Some j -> max 1 j | None -> Par.default_jobs ()
    in
    (* Group by program digest, preserving first-appearance order. *)
    let order = ref [] in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun ((a, _) as input) ->
        let digest = a.header.program_digest in
        match Hashtbl.find_opt tbl digest with
        | Some l -> l := input :: !l
        | None ->
            Hashtbl.add tbl digest (ref [ input ]);
            order := digest :: !order)
      inputs;
    let digests = List.rev !order in
    let groups =
      List.map (fun d -> (d, List.rev !(Hashtbl.find tbl d))) digests
    in
    let total = List.length inputs in
    (* Each group gets a chunk count proportional to its share of the
       inputs, so one giant program still spreads over the pool while
       many small programs cost one task each. *)
    let tasks =
      List.concat_map
        (fun (digest, ginputs) ->
          let glen = List.length ginputs in
          let share = max 1 (min glen (glen * jobs / total)) in
          List.map (fun chunk -> (digest, chunk)) (chunk_evenly ginputs share))
        groups
    in
    Obs.span obs "store.shard.merge"
      ~attrs:
        [
          ("jobs", Json.Int jobs);
          ("profiles", Json.Int total);
          ("programs", Json.Int (List.length groups));
          ("chunks", Json.Int (List.length tasks));
        ]
      (fun () ->
        let t0 = Unix.gettimeofday () in
        Obs.count obs "store.shard.profiles" total;
        Obs.count obs "store.shard.chunks" (List.length tasks);
        let partials =
          Par.map ?obs ~name:"store.shard" ~jobs
            (fun (digest, chunk) -> (digest, fold_chunk chunk))
            tasks
        in
        let states : (string, merge_state * error option) Hashtbl.t =
          Hashtbl.create 16
        in
        List.iter
          (fun (digest, (st, err)) ->
            match Hashtbl.find_opt states digest with
            | None -> Hashtbl.replace states digest (st, err)
            | Some (_, Some _) -> ()
            | Some (acc, None) -> (
                match err with
                | Some e -> Hashtbl.replace states digest (acc, Some e)
                | None -> (
                    match merge_absorb acc st with
                    | Ok () -> ()
                    | Error e -> Hashtbl.replace states digest (acc, Some e))))
          partials;
        let results =
          List.map
            (fun digest ->
              match Hashtbl.find states digest with
              | _, Some e -> (digest, Error e)
              | st, None ->
                  (digest, merge_result_internal ~snapshot:false st))
            digests
        in
        let dt = Unix.gettimeofday () -. t0 in
        if dt > 0.0 then
          Obs.set_gauge obs "store.shard.profiles_per_sec"
            (float_of_int total /. dt);
        results)
  end

(* {1 Plans} *)

let emit_plan w (plan : Pipeline.plan) =
  let cfg = json_of_pipeline_config plan.Pipeline.config in
  (match cfg with
  | Json.Obj fields -> wline w (Json.Obj (("p", Json.String "config") :: fields))
  | _ -> assert false);
  emit_profile w plan.Pipeline.profile;
  let g = plan.Pipeline.grouping in
  wline w
    (Json.Obj
       [
         ("p", Json.String "grouping");
         ( "groups",
           Json.List
             (Array.to_list
                (Array.map
                   (fun members ->
                     Json.List (List.map (fun c -> Json.Int c) members))
                   g.Grouping.groups)) );
         ( "accesses",
           Json.List
             (Array.to_list
                (Array.map (fun n -> Json.Int n) g.Grouping.group_accesses)) );
         ( "weights",
           Json.List
             (Array.to_list
                (Array.map (fun n -> Json.Int n) g.Grouping.group_weights)) );
         ( "ungrouped",
           Json.List (List.map (fun c -> Json.Int c) g.Grouping.ungrouped) );
       ]);
  List.iter
    (fun (sel : Identify.selector) ->
      wline w
        (Json.Obj
           [
             ("p", Json.String "selector");
             ("group", Json.Int sel.Identify.group);
             ( "disjuncts",
               Json.List
                 (List.map
                    (fun conj ->
                      Json.List (List.map (fun s -> Json.Int s) conj))
                    sel.Identify.disjuncts) );
           ]))
    plan.Pipeline.selectors;
  let r = plan.Pipeline.rewrite in
  wline w
    (Json.Obj
       [
         ("p", Json.String "rewrite");
         ("nbits", Json.Int r.Rewrite.nbits);
         ( "patches",
           Json.List
             (List.map
                (fun (site, bit) -> Json.List [ Json.Int site; Json.Int bit ])
                r.Rewrite.patches) );
         ( "selectors",
           Json.List
             (List.map
                (fun (c : Rewrite.compiled) ->
                  Json.Obj
                    [
                      ("group", Json.Int c.Rewrite.group);
                      ( "conjs",
                        Json.List
                          (List.map
                             (fun conj ->
                               Json.List
                                 (List.map (fun b -> Json.Int b) conj))
                             c.Rewrite.conjs) );
                    ])
                r.Rewrite.selectors) );
       ])

let bemit_plan w (plan : Pipeline.plan) =
  brecord w (fun b ->
      Wire.u8 b tag_config;
      Wire.bytes b
        (Json.to_string ~pretty:false
           (json_of_pipeline_config plan.Pipeline.config)));
  bemit_profile w plan.Pipeline.profile;
  let g = plan.Pipeline.grouping in
  brecord w (fun b ->
      Wire.u8 b tag_grouping;
      Wire.varint b (Array.length g.Grouping.groups);
      Array.iter
        (fun members ->
          Wire.varint b (List.length members);
          List.iter (Wire.varint b) members)
        g.Grouping.groups;
      Array.iter (Wire.varint b) g.Grouping.group_accesses;
      Array.iter (Wire.varint b) g.Grouping.group_weights;
      Wire.varint b (List.length g.Grouping.ungrouped);
      List.iter (Wire.varint b) g.Grouping.ungrouped);
  List.iter
    (fun (sel : Identify.selector) ->
      brecord w (fun b ->
          Wire.u8 b tag_selector;
          Wire.varint b sel.Identify.group;
          Wire.varint b (List.length sel.Identify.disjuncts);
          List.iter
            (fun conj ->
              Wire.varint b (List.length conj);
              List.iter (Wire.varint b) conj)
            sel.Identify.disjuncts))
    plan.Pipeline.selectors;
  let r = plan.Pipeline.rewrite in
  brecord w (fun b ->
      Wire.u8 b tag_rewrite;
      Wire.varint b r.Rewrite.nbits;
      Wire.varint b (List.length r.Rewrite.patches);
      List.iter
        (fun (site, bit) ->
          Wire.varint b site;
          Wire.varint b bit)
        r.Rewrite.patches;
      Wire.varint b (List.length r.Rewrite.selectors);
      List.iter
        (fun (c : Rewrite.compiled) ->
          Wire.varint b c.Rewrite.group;
          Wire.varint b (List.length c.Rewrite.conjs);
          List.iter
            (fun conj ->
              Wire.varint b (List.length conj);
              List.iter (Wire.varint b) conj)
            c.Rewrite.conjs)
        r.Rewrite.selectors)

let write_plan ?obs ?(format = V1) ?created ?(producer = "halo")
    ?(extra_meta = []) ~path ~program_digest (plan : Pipeline.plan) =
  let created =
    match created with Some t -> t | None -> Unix.gettimeofday ()
  in
  let header =
    {
      version = format_version format;
      kind = "plan";
      program_digest;
      config_digest = plan_config_digest plan.Pipeline.config;
      created;
      producer;
      meta = extra_meta;
    }
  in
  with_artifact ?obs ~format ~path ~header
    ~emit_v1:(fun w -> emit_plan w plan)
    ~emit_v2:(fun w -> bemit_plan w plan)
    ()

let int_lists ~line k j =
  List.map
    (function
      | Json.List l ->
          List.map
            (function
              | Json.Int i -> i
              | _ -> fail line (Printf.sprintf "field %S must hold integer lists" k))
            l
      | _ -> fail line (Printf.sprintf "field %S must hold lists" k))
    (jlist ~line k j)

let read_plan ?obs ?expect_program ?expect_config path =
  Obs.span obs "store.decode"
    ~attrs:[ ("kind", Json.String "plan"); ("path", Json.String path) ]
    (fun () ->
      wrap (fun () ->
          let fmt, header, payload = read_artifact path in
          note_decode obs fmt;
          if header.kind <> "plan" then
            raise
              (Decode (Wrong_kind { found = header.kind; expected = "plan" }));
          check_expect ~field:"program" ~found:header.program_digest
            expect_program;
          check_expect ~field:"config" ~found:header.config_digest
            expect_config;
          let st = new_profile_state () in
          let config = ref None in
          let grouping = ref None in
          let selectors = ref [] in
          let rewrite = ref None in
          (match payload with
          | Lines lines ->
              List.iter
                (fun (line, j) ->
                  let tag = jstring ~line "p" j in
                  if not (handle_profile_line st ~line tag j) then
                    match tag with
                    | "config" ->
                        if !config <> None then fail line "duplicate config line";
                        config := Some (pipeline_config_of_json ~line j)
                    | "grouping" ->
                        if !grouping <> None then
                          fail line "duplicate grouping line";
                        let groups =
                          Array.of_list (int_lists ~line "groups" j)
                        in
                        let accesses =
                          Array.of_list (jints ~line "accesses" j)
                        in
                        let weights = Array.of_list (jints ~line "weights" j) in
                        if
                          Array.length accesses <> Array.length groups
                          || Array.length weights <> Array.length groups
                        then
                          fail line
                            "grouping arrays (groups, accesses, weights) differ in length";
                        grouping :=
                          Some
                            {
                              Grouping.groups;
                              group_accesses = accesses;
                              group_weights = weights;
                              ungrouped = jints ~line "ungrouped" j;
                            }
                    | "selector" ->
                        selectors :=
                          {
                            Identify.group = jint ~line "group" j;
                            disjuncts = int_lists ~line "disjuncts" j;
                          }
                          :: !selectors
                    | "rewrite" ->
                        if !rewrite <> None then
                          fail line "duplicate rewrite line";
                        let patches =
                          List.map
                            (function
                              | [ site; bit ] -> (site, bit)
                              | _ -> fail line "patches must be [site, bit] pairs")
                            (int_lists ~line "patches" j)
                        in
                        let compiled =
                          List.map
                            (fun sj ->
                              {
                                Rewrite.group = jint ~line "group" sj;
                                conjs = int_lists ~line "conjs" sj;
                              })
                            (jlist ~line "selectors" j)
                        in
                        rewrite :=
                          Some
                            {
                              Rewrite.patches;
                              selectors = compiled;
                              nbits = jint ~line "nbits" j;
                            }
                    | tag ->
                        fail line (Printf.sprintf "unknown payload tag %S" tag))
                lines
          | Records records ->
              List.iter
                (fun (line, d) ->
                  try
                    let tag = Wire.read_u8 d in
                    if not (handle_profile_record st ~line tag d) then
                      if tag = tag_config then begin
                        if !config <> None then
                          fail line "duplicate config record";
                        let j =
                          match Json.of_string (Wire.read_bytes d) with
                          | Ok j -> j
                          | Error e -> fail line e
                        in
                        config := Some (pipeline_config_of_json ~line j)
                      end
                      else if tag = tag_grouping then begin
                        if !grouping <> None then
                          fail line "duplicate grouping record";
                        let ngroups =
                          rlen_nonneg ~line (Wire.read_varint d)
                        in
                        let groups = Array.make ngroups [] in
                        for i = 0 to ngroups - 1 do
                          groups.(i) <- rint_list ~line d
                        done;
                        let accesses = Array.make ngroups 0 in
                        for i = 0 to ngroups - 1 do
                          accesses.(i) <- Wire.read_varint d
                        done;
                        let weights = Array.make ngroups 0 in
                        for i = 0 to ngroups - 1 do
                          weights.(i) <- Wire.read_varint d
                        done;
                        grouping :=
                          Some
                            {
                              Grouping.groups;
                              group_accesses = accesses;
                              group_weights = weights;
                              ungrouped = rint_list ~line d;
                            }
                      end
                      else if tag = tag_selector then begin
                        let group = Wire.read_varint d in
                        let n = rlen_nonneg ~line (Wire.read_varint d) in
                        let rec disjuncts i acc =
                          if i = n then List.rev acc
                          else disjuncts (i + 1) (rint_list ~line d :: acc)
                        in
                        selectors :=
                          { Identify.group; disjuncts = disjuncts 0 [] }
                          :: !selectors
                      end
                      else if tag = tag_rewrite then begin
                        if !rewrite <> None then
                          fail line "duplicate rewrite record";
                        let nbits = Wire.read_varint d in
                        let np = rlen_nonneg ~line (Wire.read_varint d) in
                        let rec patches i acc =
                          if i = np then List.rev acc
                          else
                            let site = Wire.read_varint d in
                            let bit = Wire.read_varint d in
                            patches (i + 1) ((site, bit) :: acc)
                        in
                        let patches = patches 0 [] in
                        let ns = rlen_nonneg ~line (Wire.read_varint d) in
                        let rec compiled i acc =
                          if i = ns then List.rev acc
                          else begin
                            let group = Wire.read_varint d in
                            let nc = rlen_nonneg ~line (Wire.read_varint d) in
                            let rec conjs k acc =
                              if k = nc then List.rev acc
                              else conjs (k + 1) (rint_list ~line d :: acc)
                            in
                            compiled (i + 1)
                              ({ Rewrite.group; conjs = conjs 0 [] } :: acc)
                          end
                        in
                        rewrite :=
                          Some
                            {
                              Rewrite.patches;
                              selectors = compiled 0 [];
                              nbits;
                            }
                      end
                      else
                        fail line
                          (Printf.sprintf "unknown record tag 0x%02x" tag);
                    Wire.expect_end d
                  with Wire.Error r -> fail line r)
                records);
          let require what = function
            | Some v -> v
            | None -> fail 0 (Printf.sprintf "artifact has no %s line" what)
          in
          let config = require "config" !config in
          let self = plan_config_digest config in
          if self <> header.config_digest then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "config";
                      found = header.config_digest;
                      expected = self;
                    }));
          ( header,
            {
              Pipeline.config;
              profile = finish_profile st;
              grouping = require "grouping" !grouping;
              selectors = List.rev !selectors;
              rewrite = require "rewrite" !rewrite;
            } )))

(* {1 Inspection} *)

let read_header path =
  wrap (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          (* Sniff the container from the first bytes; neither path needs
             the payload, so only the header region is read. *)
          let start =
            let b = Bytes.create 8 in
            let n = input ic b 0 8 in
            Bytes.sub_string b 0 n
          in
          if String.equal start magic then begin
            let v =
              match input_char ic with
              | c -> Char.code c
              | exception End_of_file -> raise (Decode Truncated)
            in
            if v <> version_v2 then
              raise (Decode (Version_skew { found = v; supported = version_v2 }));
            let hlen =
              match really_input_string ic 4 with
              | s -> (
                  match Wire.read_u32 (Wire.dec s) with
                  | v -> v
                  | exception Wire.Error _ -> raise (Decode Truncated))
              | exception End_of_file -> raise (Decode Truncated)
            in
            let hs =
              try really_input_string ic hlen
              with End_of_file -> raise (Decode Truncated)
            in
            match Json.of_string hs with
            | Ok j -> parse_header ~line:1 ~expect:version_v2 j
            | Error e -> fail 1 e
          end
          else begin
            seek_in ic 0;
            let line =
              try input_line ic with End_of_file -> raise (Decode Truncated)
            in
            let line =
              (* CRLF tolerance, matching the full reader. *)
              let n = String.length line in
              if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
              else line
            in
            match Json.of_string line with
            | Ok j -> parse_header ~line:1 ~expect:version j
            | Error e -> fail 1 e
          end))

(* {1 Migration} *)

let migrate ?obs ~format ~src dst =
  match read_header src with
  | Error e -> Error e
  | Ok h when h.kind = "profile" -> (
      match read_profile ?obs src with
      | Error e -> Error e
      | Ok a -> (
          let extra_meta =
            List.filter (fun (k, _) -> k <> "profiler_config") a.header.meta
          in
          match
            write_profile ?obs ~format ~created:a.header.created
              ~producer:a.header.producer ~extra_meta ~path:dst
              ~program_digest:a.header.program_digest ~config:a.config a.result
          with
          | Error e -> Error e
          | Ok () -> Ok { a.header with version = format_version format }))
  | Ok h when h.kind = "plan" -> (
      match read_plan ?obs src with
      | Error e -> Error e
      | Ok (h, plan) -> (
          match
            write_plan ?obs ~format ~created:h.created ~producer:h.producer
              ~extra_meta:h.meta ~path:dst ~program_digest:h.program_digest plan
          with
          | Error e -> Error e
          | Ok () -> Ok { h with version = format_version format }))
  | Ok h -> Error (Wrong_kind { found = h.kind; expected = "profile or plan" })
