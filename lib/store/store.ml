let format_name = "halo/store"
let version = 1

type header = {
  version : int;
  kind : string;
  program_digest : string;
  config_digest : string;
  created : float;
  producer : string;
  meta : (string * Json.t) list;
}

type error =
  | Io of string
  | Malformed of { line : int; reason : string }
  | Version_skew of { found : int; supported : int }
  | Wrong_kind of { found : string; expected : string }
  | Digest_mismatch of { field : string; found : string; expected : string }
  | Bad_checksum of { stated : string; computed : string }
  | Truncated

let error_to_string = function
  | Io m -> "io error: " ^ m
  | Malformed { line; reason } ->
      Printf.sprintf "malformed artifact (line %d): %s" line reason
  | Version_skew { found; supported } ->
      Printf.sprintf "artifact format version %d; this build supports version %d"
        found supported
  | Wrong_kind { found; expected } ->
      Printf.sprintf "artifact kind %S where %S was expected" found expected
  | Digest_mismatch { field; found; expected } ->
      Printf.sprintf "%s digest mismatch: artifact has %s, expected %s" field
        found expected
  | Bad_checksum { stated; computed } ->
      Printf.sprintf "payload checksum mismatch: trailer states %s, payload hashes to %s"
        stated computed
  | Truncated -> "truncated artifact: trailer line missing"

exception Decode of error

let fail line reason = raise (Decode (Malformed { line; reason }))

(* Strict per-line field access: a [Json] accessor error becomes a
   [Malformed] carrying the 1-based artifact line. *)
let jint ~line k j =
  match Json.get_int k j with Ok v -> v | Error e -> fail line e

let jfloat ~line k j =
  match Json.get_float k j with Ok v -> v | Error e -> fail line e

let jstring ~line k j =
  match Json.get_string k j with Ok v -> v | Error e -> fail line e

let jbool ~line k j =
  match Json.get_bool k j with Ok v -> v | Error e -> fail line e

let jlist ~line k j =
  match Json.get_list k j with Ok v -> v | Error e -> fail line e

let jobj ~line k j =
  match Json.get_obj k j with Ok v -> v | Error e -> fail line e

let jints ~line k j =
  List.map
    (function
      | Json.Int i -> i
      | _ -> fail line (Printf.sprintf "field %S must hold integers" k))
    (jlist ~line k j)

(* {1 Config codecs} *)

let json_of_profiler_config (c : Profiler.config) =
  Json.Obj
    [
      ("affinity_distance", Json.Int c.Profiler.affinity_distance);
      ("max_tracked_size", Json.Int c.Profiler.max_tracked_size);
      ("node_coverage", Json.Float c.Profiler.node_coverage);
      ("seed", Json.Int c.Profiler.seed);
      ("sample_period", Json.Int c.Profiler.sample_period);
    ]

let profiler_config_of_json ~line j =
  {
    Profiler.affinity_distance = jint ~line "affinity_distance" j;
    max_tracked_size = jint ~line "max_tracked_size" j;
    node_coverage = jfloat ~line "node_coverage" j;
    seed = jint ~line "seed" j;
    sample_period = jint ~line "sample_period" j;
  }

let json_of_grouping_params (p : Grouping.params) =
  Json.Obj
    [
      ("min_edge_weight", Json.Int p.Grouping.min_edge_weight);
      ("max_group_members", Json.Int p.Grouping.max_group_members);
      ("merge_tol", Json.Float p.Grouping.merge_tol);
      ("gthresh", Json.Float p.Grouping.gthresh);
      ( "max_groups",
        match p.Grouping.max_groups with
        | None -> Json.Null
        | Some n -> Json.Int n );
    ]

let grouping_params_of_json ~line j =
  {
    Grouping.min_edge_weight = jint ~line "min_edge_weight" j;
    max_group_members = jint ~line "max_group_members" j;
    merge_tol = jfloat ~line "merge_tol" j;
    gthresh = jfloat ~line "gthresh" j;
    max_groups =
      (match Json.mem "max_groups" j with
      | Some Json.Null -> None
      | Some (Json.Int n) -> Some n
      | Some _ -> fail line "field \"max_groups\" must be an integer or null"
      | None -> fail line "missing field \"max_groups\"");
  }

let json_of_alloc_config (c : Group_alloc.config) =
  Json.Obj
    [
      ("slab_size", Json.Int c.Group_alloc.slab_size);
      ("chunk_size", Json.Int c.Group_alloc.chunk_size);
      ("max_grouped_size", Json.Int c.Group_alloc.max_grouped_size);
      ( "spare_policy",
        match c.Group_alloc.spare_policy with
        | Group_alloc.Keep_spare n -> Json.Obj [ ("keep_spare", Json.Int n) ]
        | Group_alloc.Always_reuse -> Json.String "always_reuse" );
      ( "backend",
        Json.String
          (match c.Group_alloc.backend with
          | Group_alloc.Bump_only -> "bump_only"
          | Group_alloc.Sharded_free_lists -> "sharded_free_lists") );
      ("color_groups", Json.Bool c.Group_alloc.color_groups);
    ]

let alloc_config_of_json ~line j =
  {
    Group_alloc.slab_size = jint ~line "slab_size" j;
    chunk_size = jint ~line "chunk_size" j;
    max_grouped_size = jint ~line "max_grouped_size" j;
    spare_policy =
      (match Json.mem "spare_policy" j with
      | Some (Json.String "always_reuse") -> Group_alloc.Always_reuse
      | Some (Json.Obj _ as o) ->
          Group_alloc.Keep_spare (jint ~line "keep_spare" o)
      | Some _ | None ->
          fail line
            "field \"spare_policy\" must be \"always_reuse\" or {\"keep_spare\": n}");
    backend =
      (match jstring ~line "backend" j with
      | "bump_only" -> Group_alloc.Bump_only
      | "sharded_free_lists" -> Group_alloc.Sharded_free_lists
      | s -> fail line (Printf.sprintf "unknown allocator backend %S" s));
    color_groups = jbool ~line "color_groups" j;
  }

let json_of_pipeline_config (c : Pipeline.config) =
  Json.Obj
    [
      ("profiler", json_of_profiler_config c.Pipeline.profiler);
      ("grouping", json_of_grouping_params c.Pipeline.grouping);
      ("min_edge_frac", Json.Float c.Pipeline.min_edge_frac);
      ("allocator", json_of_alloc_config c.Pipeline.allocator);
    ]

let pipeline_config_of_json ~line j =
  let field k =
    match Json.mem k j with
    | Some v -> v
    | None -> fail line (Printf.sprintf "missing field %S" k)
  in
  {
    Pipeline.profiler = profiler_config_of_json ~line (field "profiler");
    grouping = grouping_params_of_json ~line (field "grouping");
    min_edge_frac = jfloat ~line "min_edge_frac" j;
    allocator = alloc_config_of_json ~line (field "allocator");
  }

(* {1 Digests} *)

let md5_json j = Digest.to_hex (Digest.string (Json.to_string ~pretty:false j))

let profile_config_digest c =
  (* The input seed names the run, not the experiment: recordings that
     differ only by seed must share a digest so they remain mergeable. *)
  md5_json (json_of_profiler_config { c with Profiler.seed = 0 })

let plan_config_digest c = md5_json (json_of_pipeline_config c)

(* {1 Payload checksum: FNV-1a 64 over payload bytes}

    Chosen over [Digest] because it feeds incrementally, so both ends
    stream line by line; this is an integrity check against torn or edited
    files, not an authenticity measure. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_add h s =
  let h = ref h in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) fnv_prime)
    s;
  !h

let fnv_hex h = Printf.sprintf "%016Lx" h

(* {1 Writer} *)

type writer = { oc : out_channel; mutable hash : int64; mutable lines : int }

let header_json h =
  Json.Obj
    [
      ("format", Json.String format_name);
      ("version", Json.Int h.version);
      ("kind", Json.String h.kind);
      ("program", Json.String h.program_digest);
      ("config", Json.String h.config_digest);
      ("created", Json.Float h.created);
      ("producer", Json.String h.producer);
      ("meta", Json.Obj h.meta);
    ]

let start_writer oc h =
  output_string oc (Json.to_string ~pretty:false (header_json h));
  output_char oc '\n';
  { oc; hash = fnv_offset; lines = 0 }

let wline w j =
  let s = Json.to_string ~pretty:false j in
  output_string w.oc s;
  output_char w.oc '\n';
  w.hash <- fnv_add (fnv_add w.hash s) "\n";
  w.lines <- w.lines + 1

let finish_writer w =
  output_string w.oc
    (Json.to_string ~pretty:false
       (Json.Obj
          [
            ("end", Json.Bool true);
            ("lines", Json.Int w.lines);
            ("checksum", Json.String (fnv_hex w.hash));
          ]));
  output_char w.oc '\n'

let with_artifact ?obs ~path ~header f =
  Obs.span obs "store.encode"
    ~attrs:
      [ ("kind", Json.String header.kind); ("path", Json.String path) ]
    (fun () ->
      try
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            let w = start_writer oc header in
            f w;
            finish_writer w;
            Obs.add_attrs obs [ ("payload_lines", Json.Int w.lines) ]);
        Ok ()
      with Sys_error m -> Error (Io m))

(* Canonical payload order: equal values encode to equal bytes. Contexts
   go in id order (so re-interning reproduces the ids), nodes ascending,
   edges sorted by endpoint pair. *)

let emit_graph w tag g =
  (match Affinity_graph.reported_total g with
  | None -> ()
  | Some v ->
      wline w
        (Json.Obj
           [ ("p", Json.String "total"); ("g", Json.String tag); ("v", Json.Int v) ]));
  List.iter
    (fun id ->
      wline w
        (Json.Obj
           [
             ("p", Json.String "node");
             ("g", Json.String tag);
             ("id", Json.Int id);
             ("n", Json.Int (Affinity_graph.node_accesses g id));
           ]))
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, wt) ->
      wline w
        (Json.Obj
           [
             ("p", Json.String "edge");
             ("g", Json.String tag);
             ("x", Json.Int x);
             ("y", Json.Int y);
             ("w", Json.Int wt);
           ]))
    (List.sort compare (Affinity_graph.edges g))

let emit_profile w (r : Profiler.result) =
  wline w
    (Json.Obj
       [
         ("p", Json.String "meta");
         ("total_accesses", Json.Int r.Profiler.total_accesses);
         ("tracked_allocs", Json.Int r.Profiler.tracked_allocs);
         ("instructions", Json.Int r.Profiler.instructions);
       ]);
  let tbl = r.Profiler.contexts in
  for id = 0 to Context.count tbl - 1 do
    wline w
      (Json.Obj
         [
           ("p", Json.String "ctx");
           ("id", Json.Int id);
           ( "sites",
             Json.List
               (Array.to_list
                  (Array.map (fun s -> Json.Int s) (Context.sites tbl id))) );
         ])
  done;
  emit_graph w "raw" r.Profiler.raw_graph;
  emit_graph w "graph" r.Profiler.graph

(* {1 Reader core} *)

let parse_header ~line j =
  let fmt = jstring ~line "format" j in
  if fmt <> format_name then
    fail line (Printf.sprintf "not a %s artifact (format %S)" format_name fmt);
  let v = jint ~line "version" j in
  if v <> version then raise (Decode (Version_skew { found = v; supported = version }));
  {
    version = v;
    kind = jstring ~line "kind" j;
    program_digest = jstring ~line "program" j;
    config_digest = jstring ~line "config" j;
    created = jfloat ~line "created" j;
    producer = jstring ~line "producer" j;
    meta = jobj ~line "meta" j;
  }

(* Read and verify the whole file: header, payload lines (parsed, counted,
   checksummed), trailer. Returns the payload as (1-based line, value). *)
let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header_line =
        try input_line ic with End_of_file -> raise (Decode Truncated)
      in
      let hj =
        match Json.of_string header_line with Ok j -> j | Error e -> fail 1 e
      in
      let header = parse_header ~line:1 hj in
      let payload = ref [] in
      let hash = ref fnv_offset in
      let count = ref 0 in
      let rec loop () =
        match input_line ic with
        | exception End_of_file -> raise (Decode Truncated)
        | raw -> (
            let line = !count + 2 in
            let j =
              match Json.of_string raw with Ok j -> j | Error e -> fail line e
            in
            match Json.mem "end" j with
            | Some _ ->
                let stated_lines = jint ~line "lines" j in
                if stated_lines <> !count then
                  fail line
                    (Printf.sprintf "trailer declares %d payload lines, found %d"
                       stated_lines !count);
                let stated = jstring ~line "checksum" j in
                let computed = fnv_hex !hash in
                if not (String.equal stated computed) then
                  raise (Decode (Bad_checksum { stated; computed }));
                (match input_line ic with
                | exception End_of_file -> ()
                | _ -> fail (line + 1) "data after trailer line")
            | None ->
                hash := fnv_add (fnv_add !hash raw) "\n";
                incr count;
                payload := (line, j) :: !payload;
                loop ())
      in
      loop ();
      (header, List.rev !payload))

let check_expect ~field ~found = function
  | Some expected when expected <> found ->
      raise (Decode (Digest_mismatch { field; found; expected }))
  | _ -> ()

let wrap f =
  match f () with
  | v -> Ok v
  | exception Decode e -> Error e
  | exception Sys_error m -> Error (Io m)

(* {1 Profile payload} *)

type profile_state = {
  ctxs : Context.table;
  raw : Affinity_graph.t;
  filtered : Affinity_graph.t;
  mutable pmeta : (int * int * int) option;
}

let new_profile_state () =
  {
    ctxs = Context.create ();
    raw = Affinity_graph.create ();
    filtered = Affinity_graph.create ();
    pmeta = None;
  }

let graph_of st ~line = function
  | "raw" -> st.raw
  | "graph" -> st.filtered
  | g -> fail line (Printf.sprintf "unknown graph tag %S" g)

(* Shared between profile and plan decoding; returns [false] on tags it
   does not own so the plan decoder can layer its own. *)
let handle_profile_line st ~line tag j =
  match tag with
  | "meta" ->
      if st.pmeta <> None then fail line "duplicate meta line";
      st.pmeta <-
        Some
          ( jint ~line "total_accesses" j,
            jint ~line "tracked_allocs" j,
            jint ~line "instructions" j );
      true
  | "ctx" ->
      let id = jint ~line "id" j in
      let sites = Array.of_list (jints ~line "sites" j) in
      let got = Context.intern st.ctxs sites in
      if got <> id then
        fail line
          (Printf.sprintf
             "context %d interned as %d: ids must be dense, in order, distinct"
             id got);
      true
  | "total" ->
      let g = graph_of st ~line (jstring ~line "g" j) in
      if Affinity_graph.reported_total g <> None then
        fail line "duplicate graph total line";
      Affinity_graph.set_reported_total g (Some (jint ~line "v" j));
      true
  | "node" ->
      let g = graph_of st ~line (jstring ~line "g" j) in
      Affinity_graph.add_access_n g (jint ~line "id" j) (jint ~line "n" j);
      true
  | "edge" ->
      let g = graph_of st ~line (jstring ~line "g" j) in
      Affinity_graph.add_affinity_n g (jint ~line "x" j) (jint ~line "y" j)
        (jint ~line "w" j);
      true
  | _ -> false

let finish_profile st =
  match st.pmeta with
  | None -> fail 0 "artifact has no meta line"
  | Some (total_accesses, tracked_allocs, instructions) ->
      {
        Profiler.graph = st.filtered;
        raw_graph = st.raw;
        contexts = st.ctxs;
        total_accesses;
        tracked_allocs;
        instructions;
      }

(* {1 Profiles} *)

type profile_artifact = {
  header : header;
  config : Profiler.config;
  result : Profiler.result;
}

let write_profile ?obs ?created ?(producer = "halo") ?(extra_meta = []) ~path
    ~program_digest ~config result =
  let created =
    match created with Some t -> t | None -> Unix.gettimeofday ()
  in
  let header =
    {
      version;
      kind = "profile";
      program_digest;
      config_digest = profile_config_digest config;
      created;
      producer;
      meta = ("profiler_config", json_of_profiler_config config) :: extra_meta;
    }
  in
  with_artifact ?obs ~path ~header (fun w -> emit_profile w result)

let read_profile ?obs ?expect_program path =
  Obs.span obs "store.decode"
    ~attrs:[ ("kind", Json.String "profile"); ("path", Json.String path) ]
    (fun () ->
      wrap (fun () ->
          let header, payload = read_lines path in
          if header.kind <> "profile" then
            raise
              (Decode (Wrong_kind { found = header.kind; expected = "profile" }));
          check_expect ~field:"program" ~found:header.program_digest
            expect_program;
          let config =
            match List.assoc_opt "profiler_config" header.meta with
            | None -> fail 1 "header meta is missing profiler_config"
            | Some j -> profiler_config_of_json ~line:1 j
          in
          let self = profile_config_digest config in
          if self <> header.config_digest then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "config";
                      found = header.config_digest;
                      expected = self;
                    }));
          let st = new_profile_state () in
          List.iter
            (fun (line, j) ->
              let tag = jstring ~line "p" j in
              if not (handle_profile_line st ~line tag j) then
                fail line (Printf.sprintf "unknown payload tag %S" tag))
            payload;
          { header; config; result = finish_profile st }))

(* Incremental weighted merging: one mutable accumulator per program,
   fed one artifact at a time. The batch [merge_profiles] is a fold over
   this state, so the two APIs cannot drift. *)

type merge_state = {
  m_contexts : Context.table;
  m_raw : Affinity_graph.t;
  (* Digests (and shared config) pinned by the first artifact folded. *)
  mutable m_first : (string * string * Profiler.config) option;
  mutable m_count : int;
  mutable m_weight : float;
  mutable m_ta : int;
  mutable m_tr : int;
  mutable m_ins : int;
}

let merge_create () =
  {
    m_contexts = Context.create ();
    m_raw = Affinity_graph.create ();
    m_first = None;
    m_count = 0;
    m_weight = 0.0;
    m_ta = 0;
    m_tr = 0;
    m_ins = 0;
  }

let merge_count st = st.m_count
let merge_total_weight st = st.m_weight

let merge_scale w n = int_of_float (Float.round (w *. float_of_int n))

let merge_add st ((a : profile_artifact), w) =
  if (not (Float.is_finite w)) || w <= 0.0 then
    invalid_arg "Store.merge_add: weights must be positive and finite";
  wrap (fun () ->
      (match st.m_first with
      | None ->
          st.m_first <-
            Some (a.header.program_digest, a.header.config_digest, a.config)
      | Some (program, config, _) ->
          if a.header.program_digest <> program then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "program";
                      found = a.header.program_digest;
                      expected = program;
                    }));
          if a.header.config_digest <> config then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "config";
                      found = a.header.config_digest;
                      expected = config;
                    })));
      let old = a.result.Profiler.contexts in
      let n = Context.count old in
      let remap = Array.make n 0 in
      for id = 0 to n - 1 do
        remap.(id) <- Context.intern st.m_contexts (Context.sites old id)
      done;
      let g = a.result.Profiler.raw_graph in
      List.iter
        (fun id ->
          Affinity_graph.add_access_n st.m_raw remap.(id)
            (merge_scale w (Affinity_graph.node_accesses g id)))
        (Affinity_graph.nodes g);
      List.iter
        (fun (x, y, wt) ->
          Affinity_graph.add_affinity_n st.m_raw remap.(x) remap.(y)
            (merge_scale w wt))
        (Affinity_graph.edges g);
      st.m_ta <- st.m_ta + merge_scale w a.result.Profiler.total_accesses;
      st.m_tr <- st.m_tr + merge_scale w a.result.Profiler.tracked_allocs;
      st.m_ins <- st.m_ins + merge_scale w a.result.Profiler.instructions;
      st.m_count <- st.m_count + 1;
      st.m_weight <- st.m_weight +. w)

let copy_graph g =
  let c = Affinity_graph.create () in
  List.iter
    (fun id -> Affinity_graph.add_access_n c id (Affinity_graph.node_accesses g id))
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, w) -> Affinity_graph.add_affinity_n c x y w)
    (Affinity_graph.edges g);
  Affinity_graph.set_reported_total c (Affinity_graph.reported_total g);
  c

let copy_contexts tbl =
  let c = Context.create () in
  for id = 0 to Context.count tbl - 1 do
    ignore (Context.intern c (Context.sites tbl id) : Context.id)
  done;
  c

let merge_result_internal ~snapshot st =
  match st.m_first with
  | None -> invalid_arg "Store.merge_result: empty merge state"
  | Some (_, _, config) ->
      wrap (fun () ->
          let raw = if snapshot then copy_graph st.m_raw else st.m_raw in
          let contexts =
            if snapshot then copy_contexts st.m_contexts else st.m_contexts
          in
          let filtered =
            Affinity_graph.filter_top raw
              ~coverage:config.Profiler.node_coverage
          in
          ( config,
            {
              Profiler.graph = filtered;
              raw_graph = raw;
              contexts;
              total_accesses = st.m_ta;
              tracked_allocs = st.m_tr;
              instructions = st.m_ins;
            } ))

let merge_result st = merge_result_internal ~snapshot:true st

let merge_profiles inputs =
  if inputs = [] then invalid_arg "Store.merge_profiles: empty input list";
  List.iter
    (fun (_, w) ->
      if (not (Float.is_finite w)) || w <= 0.0 then
        invalid_arg "Store.merge_profiles: weights must be positive and finite")
    inputs;
  let st = merge_create () in
  let rec fold = function
    | [] -> merge_result_internal ~snapshot:false st
    | input :: rest -> (
        match merge_add st input with
        | Ok () -> fold rest
        | Error e -> Error e)
  in
  fold inputs

(* {1 Plans} *)

let emit_plan w (plan : Pipeline.plan) =
  let cfg = json_of_pipeline_config plan.Pipeline.config in
  (match cfg with
  | Json.Obj fields -> wline w (Json.Obj (("p", Json.String "config") :: fields))
  | _ -> assert false);
  emit_profile w plan.Pipeline.profile;
  let g = plan.Pipeline.grouping in
  wline w
    (Json.Obj
       [
         ("p", Json.String "grouping");
         ( "groups",
           Json.List
             (Array.to_list
                (Array.map
                   (fun members ->
                     Json.List (List.map (fun c -> Json.Int c) members))
                   g.Grouping.groups)) );
         ( "accesses",
           Json.List
             (Array.to_list
                (Array.map (fun n -> Json.Int n) g.Grouping.group_accesses)) );
         ( "weights",
           Json.List
             (Array.to_list
                (Array.map (fun n -> Json.Int n) g.Grouping.group_weights)) );
         ( "ungrouped",
           Json.List (List.map (fun c -> Json.Int c) g.Grouping.ungrouped) );
       ]);
  List.iter
    (fun (sel : Identify.selector) ->
      wline w
        (Json.Obj
           [
             ("p", Json.String "selector");
             ("group", Json.Int sel.Identify.group);
             ( "disjuncts",
               Json.List
                 (List.map
                    (fun conj ->
                      Json.List (List.map (fun s -> Json.Int s) conj))
                    sel.Identify.disjuncts) );
           ]))
    plan.Pipeline.selectors;
  let r = plan.Pipeline.rewrite in
  wline w
    (Json.Obj
       [
         ("p", Json.String "rewrite");
         ("nbits", Json.Int r.Rewrite.nbits);
         ( "patches",
           Json.List
             (List.map
                (fun (site, bit) -> Json.List [ Json.Int site; Json.Int bit ])
                r.Rewrite.patches) );
         ( "selectors",
           Json.List
             (List.map
                (fun (c : Rewrite.compiled) ->
                  Json.Obj
                    [
                      ("group", Json.Int c.Rewrite.group);
                      ( "conjs",
                        Json.List
                          (List.map
                             (fun conj ->
                               Json.List
                                 (List.map (fun b -> Json.Int b) conj))
                             c.Rewrite.conjs) );
                    ])
                r.Rewrite.selectors) );
       ])

let write_plan ?obs ?created ?(producer = "halo") ?(extra_meta = []) ~path
    ~program_digest (plan : Pipeline.plan) =
  let created =
    match created with Some t -> t | None -> Unix.gettimeofday ()
  in
  let header =
    {
      version;
      kind = "plan";
      program_digest;
      config_digest = plan_config_digest plan.Pipeline.config;
      created;
      producer;
      meta = extra_meta;
    }
  in
  with_artifact ?obs ~path ~header (fun w -> emit_plan w plan)

let int_lists ~line k j =
  List.map
    (function
      | Json.List l ->
          List.map
            (function
              | Json.Int i -> i
              | _ -> fail line (Printf.sprintf "field %S must hold integer lists" k))
            l
      | _ -> fail line (Printf.sprintf "field %S must hold lists" k))
    (jlist ~line k j)

let read_plan ?obs ?expect_program ?expect_config path =
  Obs.span obs "store.decode"
    ~attrs:[ ("kind", Json.String "plan"); ("path", Json.String path) ]
    (fun () ->
      wrap (fun () ->
          let header, payload = read_lines path in
          if header.kind <> "plan" then
            raise
              (Decode (Wrong_kind { found = header.kind; expected = "plan" }));
          check_expect ~field:"program" ~found:header.program_digest
            expect_program;
          check_expect ~field:"config" ~found:header.config_digest
            expect_config;
          let st = new_profile_state () in
          let config = ref None in
          let grouping = ref None in
          let selectors = ref [] in
          let rewrite = ref None in
          List.iter
            (fun (line, j) ->
              let tag = jstring ~line "p" j in
              if not (handle_profile_line st ~line tag j) then
                match tag with
                | "config" ->
                    if !config <> None then fail line "duplicate config line";
                    config := Some (pipeline_config_of_json ~line j)
                | "grouping" ->
                    if !grouping <> None then fail line "duplicate grouping line";
                    let groups =
                      Array.of_list (int_lists ~line "groups" j)
                    in
                    let accesses =
                      Array.of_list (jints ~line "accesses" j)
                    in
                    let weights = Array.of_list (jints ~line "weights" j) in
                    if
                      Array.length accesses <> Array.length groups
                      || Array.length weights <> Array.length groups
                    then
                      fail line
                        "grouping arrays (groups, accesses, weights) differ in length";
                    grouping :=
                      Some
                        {
                          Grouping.groups;
                          group_accesses = accesses;
                          group_weights = weights;
                          ungrouped = jints ~line "ungrouped" j;
                        }
                | "selector" ->
                    selectors :=
                      {
                        Identify.group = jint ~line "group" j;
                        disjuncts = int_lists ~line "disjuncts" j;
                      }
                      :: !selectors
                | "rewrite" ->
                    if !rewrite <> None then fail line "duplicate rewrite line";
                    let patches =
                      List.map
                        (function
                          | [ site; bit ] -> (site, bit)
                          | _ -> fail line "patches must be [site, bit] pairs")
                        (int_lists ~line "patches" j)
                    in
                    let compiled =
                      List.map
                        (fun sj ->
                          {
                            Rewrite.group = jint ~line "group" sj;
                            conjs = int_lists ~line "conjs" sj;
                          })
                        (jlist ~line "selectors" j)
                    in
                    rewrite :=
                      Some
                        {
                          Rewrite.patches;
                          selectors = compiled;
                          nbits = jint ~line "nbits" j;
                        }
                | tag -> fail line (Printf.sprintf "unknown payload tag %S" tag))
            payload;
          let require what = function
            | Some v -> v
            | None -> fail 0 (Printf.sprintf "artifact has no %s line" what)
          in
          let config = require "config" !config in
          let self = plan_config_digest config in
          if self <> header.config_digest then
            raise
              (Decode
                 (Digest_mismatch
                    {
                      field = "config";
                      found = header.config_digest;
                      expected = self;
                    }));
          ( header,
            {
              Pipeline.config;
              profile = finish_profile st;
              grouping = require "grouping" !grouping;
              selectors = List.rev !selectors;
              rewrite = require "rewrite" !rewrite;
            } )))

(* {1 Inspection} *)

let read_header path =
  wrap (fun () ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let line =
            try input_line ic with End_of_file -> raise (Decode Truncated)
          in
          match Json.of_string line with
          | Ok j -> parse_header ~line:1 j
          | Error e -> fail 1 e))
