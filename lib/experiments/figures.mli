(** Regeneration of every table and figure in the paper's evaluation.

    Each function prints (and returns) a text table holding the
    reproduction's measured values next to the paper's reported values
    (exact for Table 1, approximate visual reads for the bar charts; see
    {!Paper_data}). The measurement harness is deterministic, so one run
    per configuration suffices — {!run_suite} optionally takes several
    seeds to exercise input variation, reporting medians as §5.1 does. *)

type suite = {
  workloads : Workload.t list;
  seeds : int list;
  data : (string * (Runner.kind * Runner.measurement list) list) list;
      (** workload name → kind → one measurement per seed (same order as
          [seeds]). Exposed so suites can be composed or filtered
          dynamically; the table renderers degrade gracefully (printing
          ["-"]) when a bench/kind cell is missing or short. *)
}
(** All per-benchmark measurements needed by Figures 13–15 and Table 1. *)

val suite_kinds : Runner.kind list
(** The four configurations a suite measures: jemalloc, HALO, HDS and the
    random 4-pool strawman. *)

val run_suite :
  ?seeds:int list ->
  ?workloads:Workload.t list ->
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?obs:Obs.t ->
  ?engine:Engine.kind ->
  ?plan_source:Pipeline.plan_source ->
  unit ->
  suite
(** Run jemalloc / HALO / HDS / random-4 over the workloads (default: all
    11) for each seed (default [[2]]). [engine] selects the execution
    engine for every measurement and profiling run (default the
    interpreter). [progress] is called with a line
    per configuration as it completes (from worker domains when parallel,
    serialised). [jobs] fans the workload×kind×seed cells out over a
    {!Par} domain pool (default {!Par.default_jobs}); every cell is an
    independent simulation, so the suite's measurements are bit-for-bit
    identical at any [jobs] value. [obs] receives per-worker metric
    registries merged after the join plus [suite.tasks]/[suite.workers]
    accounting. [plan_source] (typically the persistent store's plan
    cache) answers the HALO cells' [Pipeline.plan] calls: since a plan
    depends only on the test program and pipeline config, a warmed cache
    runs the whole suite — any seeds, any [jobs] — with zero profiler
    invocations. *)

val runs_of : suite -> string -> Runner.kind -> Runner.measurement list
(** [runs_of suite bench kind] is the per-seed measurement list, or [[]]
    when the suite holds no such cell. *)

val metric_values :
  suite ->
  string ->
  Runner.kind ->
  (baseline:Runner.measurement -> Runner.measurement -> float) ->
  float array
(** Per-seed metric derived from (jemalloc baseline, run) pairs, zipping
    only the common prefix when the lists differ in length. *)

val metric_cell :
  suite ->
  string ->
  Runner.kind ->
  (baseline:Runner.measurement -> Runner.measurement -> float) ->
  string
(** §5.1 presentation of {!metric_values}: ["-"] when empty, the value
    for one seed, median with \[p25, p75\] error bars for several. *)

val fig13 : suite -> Table.t
(** Fig. 13: L1 D-cache miss reduction, HDS and HALO vs jemalloc. *)

val fig14 : suite -> Table.t
(** Fig. 14: speedup, HDS and HALO vs jemalloc. *)

val fig15 : suite -> Table.t
(** Fig. 15: speedup of the random 4-pool allocator vs jemalloc. *)

val tab1 : suite -> Table.t
(** Table 1: fragmentation of grouped objects at peak usage under HALO. *)

val fig12 : ?distances:int list -> unit -> Table.t
(** Fig. 12: omnetpp execution time across affinity distances
    (default 2^3 .. 2^17), with the jemalloc baseline. *)

val selection_criterion : ?workloads:Workload.t list -> unit -> Table.t
(** §5.1's benchmark-selection rule: heap allocations per million
    instructions on the train inputs (the SPECrate subset was chosen at
    more than one per million). *)

val sec51_baseline : ?workloads:Workload.t list -> unit -> Table.t
(** §5.1's baseline-choice claim: jemalloc vs ptmalloc2 L1D misses
    (jemalloc reduced misses by as much as 32%). *)

val overhead_control : ?workloads:Workload.t list -> unit -> Table.t
(** §5.2's control: BOLT-instrumented binaries running {e without} the
    specialised allocator — instrumentation overhead should be noise. *)

val hds_diagnostics : suite -> Table.t
(** The §5.2 roms analysis: candidate stream counts vs affinity graph
    sizes per benchmark (paper: >150,000 streams vs 31 nodes). *)

val ablation_grouping : ?workloads:Workload.t list -> unit -> Table.t
(** Ablation backing the §4.2 claim: Figure 6's grouping vs modularity,
    HCS and threshold-component clustering, each swapped into the full
    pipeline and measured end to end. *)

val ablation_packing : ?workloads:Workload.t list -> unit -> Table.t
(** Ablation: hot-data-streams with identical co-allocation sets merged
    before set packing (repairing the weight scattering §5.2 identifies)
    vs the stream-faithful default. *)

val ablation_identification : ?workloads:Workload.t list -> unit -> Table.t
(** The identification-granularity ablation (§2.2.3 / §3): HALO's grouping
    with runtime identification by immediate call site, by Calder's XOR of
    the last four sites, and by full-context selectors. Isolates the
    paper's full-context contribution. *)

val ablation_backend : ?workloads:Workload.t list -> unit -> Table.t
(** Extension (§6 future work): grouped pools backed by sharded free
    lists instead of pure bump allocation — fragmentation at peak and the
    locality cost/benefit, side by side. *)

val ablation_sampling : ?workloads:Workload.t list -> ?periods:int list -> unit -> Table.t
(** Extension: the profiling speed/accuracy trade-off the paper declined
    (§4.1 applies no sampling). Plans derived from sampled profiles are
    measured end to end at several sampling periods. *)

val drift_study : ?jobs:int -> unit -> Table.t
(** Extension (multi-tenant traffic): the plan-staleness drift study —
    {!Traffic_study} at reduced scale (3 drifts x 3 cadences over 4
    epochs), reporting when re-profiling cadence beats a stale plan.
    [halo traffic study] exposes the full-size sweep. *)

val print_all :
  ?jobs:int ->
  ?obs:Obs.t ->
  ?engine:Engine.kind ->
  ?plan_source:Pipeline.plan_source ->
  unit ->
  unit
(** Run everything in order and print each table — the body of
    [bench/main.exe]'s experiment mode. [jobs] parallelises the
    suite-backed tables; the sweeps and ablations stay sequential. [obs]
    is threaded into the suite run (worker spans and registries fold into
    it), feeding [figures --trace-out]'s Chrome-trace export. *)
