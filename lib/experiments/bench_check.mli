(** The bench regression gate: [bench --check BENCH_<date>.json].

    Loads a committed [BENCH_<date>.json] artifact and compares the
    current run's hot-path throughput (events/s per workload×config) and
    per-suite wall times against it. Same-day artifacts accumulate
    several runs (cold, plan-cache-warmed, baseline, optimised), so the
    bar per key is the {e best} recorded number — the fastest the tree
    has ever been on the recording machine. Deltas are sign-normalised:
    negative always means slower, and a delta below [-threshold] is a
    regression. *)

type entry = {
  e_label : string;  (** ["baseline"] when the file predates labels. *)
  e_workload : string;
  e_config : string;
  e_events : int option;
  e_events_per_s : float option;
}

type suite = {
  s_name : string;
  s_wall_s : float;
  s_label : string option;  (** Absent in pre-v2 files. *)
  s_jobs : int option;  (** From the v2 per-entry [config] object. *)
}

type baseline = {
  b_date : string option;
  b_entries : entry list;  (** The [hotpath] section. *)
  b_suites : suite list;  (** The [suites] section. *)
}

val of_json : Json.t -> (baseline, string) result
(** Reads both the v2 schema (labelled entries with [events_per_sec]
    fields on suites) and the original 2026-08-07 form. *)

val load : string -> (baseline, string) result

type status =
  | Passed
  | Regressed
  | No_baseline
      (** The committed baseline has no matching key — a freshly landed
          suite gating before its baseline rows exist. Warn, never
          fail. *)

type verdict = {
  v_key : string;  (** [workload/config], or the suite name. *)
  v_metric : string;  (** ["events/s"] or ["wall_s"]. *)
  v_baseline : float;  (** [0.0] when [v_status = No_baseline]. *)
  v_current : float;
  v_delta : float;  (** Fractional, sign-normalised: negative = slower. *)
  v_status : status;
  v_regressed : bool;  (** [v_status = Regressed]. *)
}

val default_threshold : float
(** [0.10]. *)

val check_throughput :
  ?threshold:float ->
  baseline ->
  (string * string * float) list ->
  verdict list
(** [(workload, config, events_per_s)] rows from the current run; rows
    with no matching baseline key become [No_baseline] warnings. *)

val check_wall :
  ?threshold:float ->
  baseline ->
  label:string ->
  jobs:int ->
  (string * float) list ->
  verdict list
(** [(suite_name, wall_s)] rows from the current run. Wall time is only
    comparable like-for-like, so a baseline row sets the bar only when
    its name, label and worker count all match the current run's —
    pre-v2 files (no label/config) contribute no wall bar and their
    suites surface as [No_baseline] warnings; the machine-normalised
    events/s rows carry the cross-file gate. *)

val any_regressed : verdict list -> bool
(** [No_baseline] rows never count as regressions. *)

val warnings : verdict list -> string list
(** Keys of the [No_baseline] rows, for the gate's warning summary. *)

val table : ?title:string -> verdict list -> Table.t
