(** Single-configuration measurement runs (§5.1 Measurement).

    A run executes a workload's [Ref]-scale program on the simulated
    machine under one allocator configuration and reports instruction
    count, cache counters, and modelled execution time. Profile-guided
    configurations (HALO, hot data streams) first run their analysis on
    the [Test]-scale program — with a different input seed than
    measurement, mirroring the paper's test-profile/ref-measure split. *)

type kind =
  | Jemalloc  (** The baseline every comparison is against. *)
  | Ptmalloc  (** glibc-style allocator, for the §5.1 baseline claim. *)
  | Halo
  | Halo_no_alloc
      (** BOLT-instrumented binary without the specialised allocator — the
          instrumentation-overhead control run of §5.2. *)
  | Hds  (** Chilimbi & Shaham hot-data-streams co-allocation. *)
  | Hds_merged_packing
      (** Hds with identical co-allocation sets merged before packing (an
          ablation: repairs the weight-scattering §5.2 criticises). *)
  | Random_pools of int  (** Figure 15's strawman. *)
  | Ident_window of int
      (** Identification-granularity ablation (§2.2.3): HALO's own
          profiling and grouping, but runtime identification by the XOR of
          the last [n] context sites — [Ident_window 1] is immediate-call-
          site identification (MO / hot-data-streams style),
          [Ident_window 4] is Calder et al.'s four-return-address name. *)

val kind_name : kind -> string

type halo_details = {
  groups : int;
  monitored_sites : int;
  graph_nodes : int;
  frag : Group_alloc.frag_stats;
  grouped_mallocs : int;
  chunks_carved : int;
  chunk_reuses : int;
}

type hds_details = {
  pools : int;
  stream_count : int;
  selected_streams : int;
  trace_length : int;
  hds_coverage : float;
}

type measurement = {
  workload : string;
  kind : kind;
  instructions : int;
  counters : Hierarchy.counters;
  cycles : float;
  seconds : float;
  alloc_stats : Alloc_iface.stats;
  halo : halo_details option;
  hds : hds_details option;
}

val run :
  ?obs:Obs.t ->
  ?engine:Engine.kind ->
  ?seed:int ->
  ?pipeline_config:Pipeline.config ->
  ?group_fn:(Affinity_graph.t -> Grouping.params -> Grouping.t) ->
  ?plan_source:Pipeline.plan_source ->
  Workload.t ->
  kind ->
  measurement
(** [run w kind] measures one configuration. [engine] picks the
    execution engine for the measurement run and any embedded profiling
    run (default the interpreter; all engines are observably identical).
    [seed] (default 2) seeds the measurement input; profiling always uses the pipeline config's seed
    (default 1). [pipeline_config] overrides HALO's pipeline parameters
    (the Figure 12 sweep varies the affinity distance through it);
    workload-specific overrides from the registry are applied on top.
    [group_fn] swaps the clustering algorithm (grouping ablation; HALO
    kinds only). [plan_source] supplies ready-made plans to the HALO kinds
    (the persistent store's plan cache, or a decoded artifact via
    [Pipeline.constant_source]); other kinds ignore it.

    [obs] records the full telemetry of the run under a root [run] span:
    for HALO kinds the span tree covers all seven pipeline stages
    ([profile], [affinity-graph], [grouping], [identification], [rewrite],
    [allocator-synthesis], [measurement]); baseline kinds record the
    stages they execute (at least [measurement]). Call {!Obs.finish}
    after the run to flush summaries to the trace sink. *)

val to_json : ?baseline:measurement -> measurement -> Json.t
(** The per-run data points the artefact's halo scripts emit (A.6), with
    derived reductions when a baseline is supplied. *)

val speedup_vs : baseline:measurement -> measurement -> float
(** Figure 14's metric. *)

val miss_reduction_vs : baseline:measurement -> measurement -> float
(** Figure 13's metric (L1D misses). *)
