type entry = {
  e_label : string;
  e_workload : string;
  e_config : string;
  e_events : int option;
  e_events_per_s : float option;
}

type suite = {
  s_name : string;
  s_wall_s : float;
  s_label : string option;
  s_jobs : int option;
}

type baseline = {
  b_date : string option;
  b_entries : entry list;
  b_suites : suite list;
}

let ( let* ) = Result.bind

let parse_entry j =
  let* workload = Json.get_string "workload" j in
  let* config = Json.get_string "config" j in
  (* [label]/[events]/[events_per_s] arrived with the v2 schema; files
     written before it (and suite rows promoted into entries) miss some
     of them, so each is optional. *)
  let label =
    match Json.mem "label" j with Some (Json.String l) -> l | _ -> "baseline"
  in
  let events = Result.to_option (Json.get_int "events" j) in
  let eps =
    match Json.get_float "events_per_s" j with
    | Ok e -> Some e
    | Error _ -> Result.to_option (Json.get_float "events_per_sec" j)
  in
  Ok
    {
      e_label = label;
      e_workload = workload;
      e_config = config;
      e_events = events;
      e_events_per_s = eps;
    }

let parse_suite j =
  let* name = Json.get_string "name" j in
  let* wall = Json.get_float "wall_s" j in
  let label =
    match Json.mem "label" j with Some (Json.String l) -> Some l | _ -> None
  in
  let jobs =
    match Json.mem "config" j with
    | Some cfg -> Result.to_option (Json.get_int "jobs" cfg)
    | None -> None
  in
  Ok { s_name = name; s_wall_s = wall; s_label = label; s_jobs = jobs }

let of_json j =
  let date =
    match Json.mem "date" j with Some (Json.String d) -> Some d | _ -> None
  in
  let list key =
    match Json.mem key j with Some (Json.List l) -> l | _ -> []
  in
  let* entries =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* entry = parse_entry e in
        Ok (entry :: acc))
      (Ok [])
      (list "hotpath")
  in
  let* suites =
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* suite = parse_suite s in
        Ok (suite :: acc))
      (Ok [])
      (list "suites")
  in
  Ok { b_date = date; b_entries = List.rev entries; b_suites = List.rev suites }

let load path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "baseline file %s does not exist" path)
  else
    let* j =
      Json.of_string (In_channel.with_open_bin path In_channel.input_all)
    in
    of_json j

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)
(* ------------------------------------------------------------------ *)

type status = Passed | Regressed | No_baseline

type verdict = {
  v_key : string;
  v_metric : string; (* "events/s" (higher is better) or "wall_s" (lower) *)
  v_baseline : float;
  v_current : float;
  v_delta : float; (* fractional change, sign-normalised: < 0 is slower *)
  v_status : status;
  v_regressed : bool;
}

let default_threshold = 0.10

(* Same-day BENCH files accumulate several runs of the same suite (cold,
   warmed, baseline, optimised); gate against the {e best} recorded
   number per key, so the bar is the fastest the tree has ever been on
   the recording machine. *)
let best_eps baseline ~workload ~config =
  List.fold_left
    (fun best e ->
      if e.e_workload = workload && e.e_config = config then
        match e.e_events_per_s with
        | Some eps -> Some (Float.max eps (Option.value best ~default:0.0))
        | None -> best
      else best)
    None baseline.b_entries

(* Wall time is a machine-and-shape-bound number: unlike events/s it is
   only comparable between runs of the same suite with the same label and
   worker count. Pre-v2 files record neither, so they contribute no wall
   bar — the per-event throughput rows carry the cross-file gate. *)
let best_wall baseline ~name ~label ~jobs =
  List.fold_left
    (fun best s ->
      if s.s_name = name && s.s_label = Some label && s.s_jobs = Some jobs then
        Some
          (match best with
          | None -> s.s_wall_s
          | Some b -> Float.min b s.s_wall_s)
      else best)
    None baseline.b_suites

(* A row the committed baseline has never seen (a freshly landed suite,
   say) must not silently vanish from the gate's output, and must not
   fail it either — the baseline rows can only exist after the suite
   lands. Emit a warn verdict: visible in the table, never a
   regression. *)
let no_baseline ~key ~metric current =
  {
    v_key = key;
    v_metric = metric;
    v_baseline = 0.0;
    v_current = current;
    v_delta = 0.0;
    v_status = No_baseline;
    v_regressed = false;
  }

let check_throughput ?(threshold = default_threshold) baseline current =
  List.map
    (fun (workload, config, eps) ->
      let key = workload ^ "/" ^ config in
      match best_eps baseline ~workload ~config with
      | None -> no_baseline ~key ~metric:"events/s" eps
      | Some base ->
          let delta = (eps -. base) /. base in
          let regressed = delta < -.threshold in
          {
            v_key = key;
            v_metric = "events/s";
            v_baseline = base;
            v_current = eps;
            v_delta = delta;
            v_status = (if regressed then Regressed else Passed);
            v_regressed = regressed;
          })
    current

let check_wall ?(threshold = default_threshold) baseline ~label ~jobs current =
  List.map
    (fun (name, wall) ->
      match best_wall baseline ~name ~label ~jobs with
      | None -> no_baseline ~key:name ~metric:"wall_s" wall
      | Some base ->
          (* Lower is better: normalise so negative delta means slower,
             matching the throughput rows. *)
          let delta = (base -. wall) /. base in
          let regressed = delta < -.threshold in
          {
            v_key = name;
            v_metric = "wall_s";
            v_baseline = base;
            v_current = wall;
            v_delta = delta;
            v_status = (if regressed then Regressed else Passed);
            v_regressed = regressed;
          })
    current

let any_regressed = List.exists (fun v -> v.v_regressed)

let warnings verdicts =
  List.filter_map
    (fun v -> if v.v_status = No_baseline then Some v.v_key else None)
    verdicts

let table ?title verdicts =
  let t =
    Table.create
      ~title:(Option.value title ~default:"bench --check")
      ~headers:[ "key"; "metric"; "baseline"; "current"; "delta"; "verdict" ]
      ()
  in
  List.iter
    (fun v ->
      let fmt x =
        if v.v_metric = "events/s" then Printf.sprintf "%.2fM" (x /. 1e6)
        else Printf.sprintf "%.2fs" x
      in
      Table.add_row t
        [
          v.v_key;
          v.v_metric;
          (if v.v_status = No_baseline then "-" else fmt v.v_baseline);
          fmt v.v_current;
          (if v.v_status = No_baseline then "-" else Table.fmt_pct v.v_delta);
          (match v.v_status with
          | Regressed -> "REGRESSED"
          | Passed -> "ok"
          | No_baseline -> "no baseline (warn)");
        ])
    verdicts;
  t
