type suite = {
  workloads : Workload.t list;
  seeds : int list;
  (* workload name -> kind -> one measurement per seed (same order as
     [seeds]) *)
  data : (string * (Runner.kind * Runner.measurement list) list) list;
}

let suite_kinds = [ Runner.Jemalloc; Runner.Halo; Runner.Hds; Runner.Random_pools 4 ]

let run_suite ?(seeds = [ 2 ]) ?workloads ?(progress = fun _ -> ()) ?jobs ?obs
    ?engine ?plan_source () =
  let workloads = Option.value workloads ~default:Workloads.all in
  (* One task per workload×kind×seed cell. Each cell builds its own Vmem,
     allocator and interpreter, so cells are independent; Par.map returns
     results in submission order, making the suite's contents identical at
     any worker count. *)
  let cells =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun kind -> List.map (fun seed -> (w, kind, seed)) seeds)
          suite_kinds)
      workloads
  in
  let progress =
    (* Workers report completion concurrently; serialise the callback. *)
    let mu = Mutex.create () in
    fun line -> Mutex.protect mu (fun () -> progress line)
  in
  let measurements =
    Par.map_obs ?obs ~name:"suite" ?jobs
      (fun wobs (w, kind, seed) ->
        let m = Runner.run ?obs:wobs ?engine ~seed ?plan_source w kind in
        progress
          (Printf.sprintf "%s/%s (seed %d) done" w.Workload.name
             (Runner.kind_name kind) seed);
        m)
      cells
  in
  (* Reassemble in the cell-generation order: measurements.(i) is cell i. *)
  let arr = Array.of_list measurements in
  let idx = ref 0 in
  let next () =
    let m = arr.(!idx) in
    incr idx;
    m
  in
  let data =
    List.map
      (fun w ->
        let per_kind =
          List.map (fun kind -> (kind, List.map (fun _ -> next ()) seeds)) suite_kinds
        in
        (w.Workload.name, per_kind))
      workloads
  in
  { workloads; seeds; data }

let runs_of suite bench kind =
  match List.assoc_opt bench suite.data with
  | None -> []
  | Some per_kind -> Option.value (List.assoc_opt kind per_kind) ~default:[]

(* Median across seeds of a per-seed metric derived from (baseline, run)
   pairs. Dynamically composed suites can lack a kind entirely or carry
   per-kind seed lists of different lengths; zip only the common prefix
   (List.map2 would raise) so metric_cell degrades to "-" instead of
   crashing the whole table. *)
let metric_values suite bench kind metric =
  let baselines = runs_of suite bench Runner.Jemalloc in
  let runs = runs_of suite bench kind in
  let rec zip acc bs ms =
    match (bs, ms) with
    | b :: bs, m :: ms -> zip (metric ~baseline:b m :: acc) bs ms
    | _, _ -> List.rev acc
  in
  zip [] baselines runs |> Array.of_list

(* §5.1 measurement style: median with 25th/75th-percentile error bars when
   several input seeds were run. *)
let metric_cell suite bench kind metric =
  let values = metric_values suite bench kind metric in
  match Array.length values with
  | 0 -> "-"
  | 1 -> Table.fmt_pct values.(0)
  | _ ->
      let s = Stats.summarize values in
      Printf.sprintf "%s [%s, %s]" (Table.fmt_pct s.Stats.median)
        (Table.fmt_pct s.Stats.p25) (Table.fmt_pct s.Stats.p75)

let bench_names suite = List.map (fun w -> w.Workload.name) suite.workloads

let paper_fig13_14 bench =
  List.find_opt (fun (p : Paper_data.fig13_14) -> p.bench = bench)
    Paper_data.fig13_14

let fig13 suite =
  let t =
    Table.create
      ~title:
        "Figure 13 — L1 D-cache miss reduction vs jemalloc (paper bars are \
         approximate reads)"
      ~headers:
        [ "benchmark"; "HDS (paper)"; "HDS (measured)"; "HALO (paper)";
          "HALO (measured)" ]
      ()
  in
  List.iter
    (fun bench ->
      let p = paper_fig13_14 bench in
      Table.add_row t
        [
          bench;
          (match p with Some p -> Table.fmt_pct p.hds_miss | None -> "-");
          metric_cell suite bench Runner.Hds Runner.miss_reduction_vs;
          (match p with Some p -> Table.fmt_pct p.halo_miss | None -> "-");
          metric_cell suite bench Runner.Halo Runner.miss_reduction_vs;
        ])
    (bench_names suite);
  t

let fig14 suite =
  let t =
    Table.create
      ~title:
        "Figure 14 — execution-time speedup vs jemalloc (paper bars are \
         approximate reads)"
      ~headers:
        [ "benchmark"; "HDS (paper)"; "HDS (measured)"; "HALO (paper)";
          "HALO (measured)" ]
      ()
  in
  List.iter
    (fun bench ->
      let p = paper_fig13_14 bench in
      Table.add_row t
        [
          bench;
          (match p with Some p -> Table.fmt_pct p.hds_speed | None -> "-");
          metric_cell suite bench Runner.Hds Runner.speedup_vs;
          (match p with Some p -> Table.fmt_pct p.halo_speed | None -> "-");
          metric_cell suite bench Runner.Halo Runner.speedup_vs;
        ])
    (bench_names suite);
  t

let fig15 suite =
  let t =
    Table.create
      ~title:
        "Figure 15 — speedup under a random 4-pool allocator (placement \
         sensitivity probe)"
      ~headers:[ "benchmark"; "paper"; "measured" ]
      ()
  in
  List.iter
    (fun bench ->
      let paper =
        Option.map snd
          (List.find_opt (fun (b, _) -> b = bench) Paper_data.fig15)
      in
      Table.add_row t
        [
          bench;
          (match paper with Some p -> Table.fmt_pct p | None -> "-");
          metric_cell suite bench (Runner.Random_pools 4) Runner.speedup_vs;
        ])
    (bench_names suite);
  t

let tab1 suite =
  let t =
    Table.create
      ~title:
        "Table 1 — fragmentation of grouped objects at peak memory usage \
         (HALO's specialised allocator)"
      ~headers:
        [ "benchmark"; "frag % (paper)"; "frag % (measured)";
          "frag bytes (paper)"; "frag bytes (measured)" ]
      ()
  in
  List.iter
    (fun (bench, ppct, pbytes) ->
      match runs_of suite bench Runner.Halo with
      | [] -> ()
      | m :: _ -> (
          match m.Runner.halo with
          | None -> ()
          | Some h ->
              Table.add_row t
                [
                  bench;
                  Printf.sprintf "%.2f%%" (100.0 *. ppct);
                  Printf.sprintf "%.2f%%" (100.0 *. h.Runner.frag.Group_alloc.frag_pct);
                  Table.fmt_bytes pbytes;
                  Table.fmt_bytes h.Runner.frag.Group_alloc.frag_bytes;
                ]))
    (List.filter
       (fun (bench, _, _) ->
         match List.find_opt (fun w -> w.Workload.name = bench) suite.workloads with
         | Some w -> w.Workload.in_frag_table
         | None -> false)
       Paper_data.table1);
  t

let fig12 ?distances () =
  let distances =
    Option.value distances
      ~default:(List.init 15 (fun k -> 1 lsl (k + 3)) (* 2^3 .. 2^17 *))
  in
  let w =
    match Workloads.find "omnetpp" with
    | Some w -> w
    | None -> invalid_arg "Figures.fig12: omnetpp workload missing"
  in
  let baseline = Runner.run w Runner.Jemalloc in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 12 — omnetpp simulated time vs affinity distance (baseline \
            jemalloc: %.2f ms simulated; paper baseline ~%.0f s wall-clock)"
           (baseline.Runner.seconds *. 1e3)
           Paper_data.fig12_baseline_seconds)
      ~headers:[ "affinity distance (bytes)"; "time (sim ms)"; "vs baseline" ]
      ()
  in
  List.iter
    (fun a ->
      let config =
        {
          Pipeline.default_config with
          Pipeline.profiler =
            { Profiler.default_config with Profiler.affinity_distance = a };
        }
      in
      let m = Runner.run ~pipeline_config:config w Runner.Halo in
      Table.add_row t
        [
          string_of_int a;
          Printf.sprintf "%.3f" (m.Runner.seconds *. 1e3);
          Table.fmt_pct (Runner.speedup_vs ~baseline m);
        ])
    distances;
  t

let selection_criterion ?workloads () =
  let workloads = Option.value workloads ~default:Workloads.all in
  let t =
    Table.create
      ~title:
        "Section 5.1 — benchmark selection: heap allocations per million          instructions on the train input (threshold: > 1)"
      ~headers:[ "benchmark"; "allocations"; "instructions"; "allocs/Minstr" ]
      ()
  in
  List.iter
    (fun w ->
      let program = w.Workload.make Workload.Train in
      let vmem = Vmem.create () in
      let alloc = Jemalloc_sim.create vmem in
      let interp = Interp.create ~seed:1 ~program ~alloc () in
      ignore (Interp.run interp : int);
      let stats = alloc.Alloc_iface.stats () in
      let instr = Interp.instructions interp in
      Table.add_row t
        [
          w.Workload.name;
          string_of_int stats.Alloc_iface.mallocs;
          string_of_int instr;
          Printf.sprintf "%.1f"
            (1e6 *. float_of_int stats.Alloc_iface.mallocs /. float_of_int instr);
        ])
    workloads;
  t

let sec51_baseline ?workloads () =
  let workloads = Option.value workloads ~default:Workloads.all in
  let t =
    Table.create
      ~title:
        "Section 5.1 — baseline choice: L1D miss reduction of jemalloc over \
         ptmalloc2 (paper: up to 32%)"
      ~headers:[ "benchmark"; "ptmalloc L1 misses"; "jemalloc L1 misses"; "reduction" ]
      ()
  in
  List.iter
    (fun w ->
      let je = Runner.run w Runner.Jemalloc in
      let pt = Runner.run w Runner.Ptmalloc in
      Table.add_row t
        [
          w.Workload.name;
          string_of_int pt.Runner.counters.Hierarchy.l1_misses;
          string_of_int je.Runner.counters.Hierarchy.l1_misses;
          Table.fmt_pct
            (Timing.miss_reduction
               ~baseline:pt.Runner.counters.Hierarchy.l1_misses
               ~optimised:je.Runner.counters.Hierarchy.l1_misses);
        ])
    workloads;
  t

let overhead_control ?workloads () =
  let workloads = Option.value workloads ~default:Workloads.all in
  let t =
    Table.create
      ~title:
        "Section 5.2 control — instrumented binary without the specialised \
         allocator (overhead should be noise)"
      ~headers:[ "benchmark"; "speedup vs jemalloc" ]
      ()
  in
  List.iter
    (fun w ->
      let base = Runner.run w Runner.Jemalloc in
      let m = Runner.run w Runner.Halo_no_alloc in
      Table.add_row t [ w.Workload.name; Table.fmt_pct (Runner.speedup_vs ~baseline:base m) ])
    workloads;
  t

let hds_diagnostics suite =
  let t =
    Table.create
      ~title:
        "Section 5.2 — model sizes: hot-data-stream candidates vs affinity \
         graph nodes (paper's roms: >150,000 streams vs 31 nodes)"
      ~headers:
        [ "benchmark"; "candidate streams"; "selected"; "coverage";
          "HDS pools"; "HALO graph nodes"; "HALO groups" ]
      ()
  in
  List.iter
    (fun bench ->
      let hds_run = match runs_of suite bench Runner.Hds with m :: _ -> Some m | [] -> None in
      let halo_run = match runs_of suite bench Runner.Halo with m :: _ -> Some m | [] -> None in
      match (hds_run, halo_run) with
      | Some hm, Some am -> (
          match (hm.Runner.hds, am.Runner.halo) with
          | Some h, Some a ->
              Table.add_row t
                [
                  bench;
                  string_of_int h.Runner.stream_count;
                  string_of_int h.Runner.selected_streams;
                  Printf.sprintf "%.0f%%" (100.0 *. h.Runner.hds_coverage);
                  string_of_int h.Runner.pools;
                  string_of_int a.Runner.graph_nodes;
                  string_of_int a.Runner.groups;
                ]
          | _ -> ())
      | _ -> ())
    (bench_names suite);
  t

let ablation_grouping ?workloads () =
  let workloads =
    Option.value workloads
      ~default:
        (List.filter
           (fun w -> List.mem w.Workload.name [ "health"; "povray"; "xalanc" ])
           Workloads.all)
  in
  let clusterers =
    [
      ("halo (fig 6)", None);
      ("modularity", Some (fun g p -> Clustering.as_grouping g p (Clustering.modularity g)));
      ("hcs", Some (fun g p -> Clustering.as_grouping g p (Clustering.hcs g)));
      ( "threshold",
        Some
          (fun g (p : Grouping.params) ->
            Clustering.as_grouping g p
              (Clustering.threshold_components
                 ~min_weight:p.Grouping.min_edge_weight g)) );
    ]
  in
  let t =
    Table.create
      ~title:
        "Ablation — grouping algorithm swapped inside the HALO pipeline          (Section 4.2's comparison claim)"
      ~headers:
        ([ "clusterer" ]
        @ List.concat_map
            (fun w -> [ w.Workload.name ^ " miss red."; w.Workload.name ^ " groups" ])
            workloads)
      ()
  in
  let baselines = List.map (fun w -> Runner.run w Runner.Jemalloc) workloads in
  List.iter
    (fun (name, group_fn) ->
      let cells =
        List.concat
          (List.map2
             (fun w base ->
               let m = Runner.run ?group_fn w Runner.Halo in
               let groups =
                 match m.Runner.halo with
                 | Some h -> string_of_int h.Runner.groups
                 | None -> "-"
               in
               [ Table.fmt_pct (Runner.miss_reduction_vs ~baseline:base m); groups ])
             workloads baselines)
      in
      Table.add_row t (name :: cells))
    clusterers;
  t

let ablation_packing ?workloads () =
  let workloads =
    Option.value workloads
      ~default:
        (List.filter
           (fun w -> List.mem w.Workload.name [ "health"; "ft"; "povray"; "roms" ])
           Workloads.all)
  in
  let t =
    Table.create
      ~title:
        "Ablation — hot-data-streams set packing: stream-faithful weights vs \
         merged identical sets (repairs the weight scattering of Section 5.2)"
      ~headers:
        [ "benchmark"; "HDS miss red."; "HDS speedup"; "merged miss red.";
          "merged speedup" ]
      ()
  in
  List.iter
    (fun w ->
      let base = Runner.run w Runner.Jemalloc in
      let hds = Runner.run w Runner.Hds in
      let merged = Runner.run w Runner.Hds_merged_packing in
      Table.add_row t
        [
          w.Workload.name;
          Table.fmt_pct (Runner.miss_reduction_vs ~baseline:base hds);
          Table.fmt_pct (Runner.speedup_vs ~baseline:base hds);
          Table.fmt_pct (Runner.miss_reduction_vs ~baseline:base merged);
          Table.fmt_pct (Runner.speedup_vs ~baseline:base merged);
        ])
    workloads;
  t

let ablation_identification ?workloads () =
  let workloads =
    Option.value workloads
      ~default:
        (List.filter
           (fun w ->
             List.mem w.Workload.name [ "health"; "povray"; "xalanc"; "leela" ])
           Workloads.all)
  in
  let t =
    Table.create
      ~title:
        "Ablation — identification granularity (same grouping; Section          2.2.3's schemes vs full-context selectors), L1D miss reduction"
      ~headers:
        ([ "scheme" ] @ List.map (fun w -> w.Workload.name) workloads)
      ()
  in
  let baselines = List.map (fun w -> Runner.run w Runner.Jemalloc) workloads in
  List.iter
    (fun (label, kind) ->
      let cells =
        List.map2
          (fun w base ->
            let m = Runner.run w kind in
            Table.fmt_pct (Runner.miss_reduction_vs ~baseline:base m))
          workloads baselines
      in
      Table.add_row t (label :: cells))
    [
      ("immediate site (MO/HDS)", Runner.Ident_window 1);
      ("xor-4 name (Calder)", Runner.Ident_window 4);
      ("full context (HALO)", Runner.Halo);
    ];
  t

let ablation_backend ?workloads () =
  let workloads =
    Option.value workloads
      ~default:
        (List.filter
           (fun w -> List.mem w.Workload.name [ "leela"; "omnetpp"; "health" ])
           Workloads.all)
  in
  let t =
    Table.create
      ~title:
        "Extension — group-pool backend: bump-only (paper) vs sharded free          lists (Section 6 future work)"
      ~headers:
        [ "benchmark"; "backend"; "miss red."; "speedup"; "frag %"; "frag bytes" ]
      ()
  in
  List.iter
    (fun w ->
      let base = Runner.run w Runner.Jemalloc in
      List.iter
        (fun (label, backend) ->
          let cfg =
            { Pipeline.default_config with
              Pipeline.allocator =
                { Pipeline.default_config.Pipeline.allocator with
                  Group_alloc.backend } }
          in
          let m = Runner.run ~pipeline_config:cfg w Runner.Halo in
          match m.Runner.halo with
          | Some h ->
              Table.add_row t
                [
                  w.Workload.name;
                  label;
                  Table.fmt_pct (Runner.miss_reduction_vs ~baseline:base m);
                  Table.fmt_pct (Runner.speedup_vs ~baseline:base m);
                  Printf.sprintf "%.2f%%"
                    (100.0 *. h.Runner.frag.Group_alloc.frag_pct);
                  Table.fmt_bytes h.Runner.frag.Group_alloc.frag_bytes;
                ]
          | None -> ())
        [ ("bump", Group_alloc.Bump_only);
          ("sharded", Group_alloc.Sharded_free_lists) ])
    workloads;
  t

let ablation_sampling ?workloads ?(periods = [ 1; 10; 100; 1000 ]) () =
  let workloads =
    Option.value workloads
      ~default:
        (List.filter
           (fun w -> List.mem w.Workload.name [ "health"; "xalanc" ])
           Workloads.all)
  in
  let t =
    Table.create
      ~title:
        "Extension — profiling sample period vs plan quality (the paper          samples every access)"
      ~headers:
        ([ "sample period" ]
        @ List.map (fun w -> w.Workload.name ^ " miss red.") workloads)
      ()
  in
  let baselines = List.map (fun w -> Runner.run w Runner.Jemalloc) workloads in
  List.iter
    (fun period ->
      let cfg =
        { Pipeline.default_config with
          Pipeline.profiler =
            { Profiler.default_config with Profiler.sample_period = period } }
      in
      let cells =
        List.map2
          (fun w base ->
            let m = Runner.run ~pipeline_config:cfg w Runner.Halo in
            Table.fmt_pct (Runner.miss_reduction_vs ~baseline:base m))
          workloads baselines
      in
      Table.add_row t (string_of_int period :: cells))
    periods;
  t

(* The multi-tenant extension the paper's per-binary evaluation never
   exercises: the plan-staleness drift study over the shared drifting
   traffic shape, scaled down (3 drifts x 3 cadences, 4 epochs) so the
   full figure suite stays fast. [halo traffic study] runs the
   full-size sweep. *)
let drift_study ?jobs () =
  let params =
    {
      Traffic_study.default_params with
      Traffic_study.drifts = [ 0.0; 0.5; 1.0 ];
      cadences = [ 0; 1; 2 ];
      phases = 4;
      rate = 3.0;
    }
  in
  Traffic_study.table (Traffic_study.run ?jobs params)

let print_all ?jobs ?obs ?engine ?plan_source () =
  let progress line = Printf.eprintf "  [suite] %s\n%!" line in
  print_endline "Running the full measurement suite (11 workloads x 4 configs)...";
  let suite = run_suite ~progress ?jobs ?obs ?engine ?plan_source () in
  Table.print (fig13 suite);
  print_newline ();
  Table.print (fig14 suite);
  print_newline ();
  Table.print (fig15 suite);
  print_newline ();
  Table.print (tab1 suite);
  print_newline ();
  Table.print (hds_diagnostics suite);
  print_newline ();
  print_endline "Running the Figure 12 affinity-distance sweep (omnetpp)...";
  Table.print (fig12 ());
  print_newline ();
  print_endline "Running the Section 5.1 selection criterion...";
  Table.print (selection_criterion ());
  print_newline ();
  print_endline "Running the Section 5.1 baseline comparison...";
  Table.print (sec51_baseline ());
  print_newline ();
  print_endline "Running the Section 5.2 instrumentation-overhead control...";
  Table.print (overhead_control ());
  print_newline ();
  print_endline "Running the grouping-algorithm ablation...";
  Table.print (ablation_grouping ());
  print_newline ();
  print_endline "Running the set-packing ablation...";
  Table.print (ablation_packing ());
  print_newline ();
  print_endline "Running the identification-granularity ablation...";
  Table.print (ablation_identification ());
  print_newline ();
  print_endline "Running the allocator-backend extension...";
  Table.print (ablation_backend ());
  print_newline ();
  print_endline "Running the profiling-sampling extension...";
  Table.print (ablation_sampling ());
  print_newline ();
  print_endline "Running the plan-staleness drift study...";
  Table.print (drift_study ?jobs ())
