type kind =
  | Jemalloc
  | Ptmalloc
  | Halo
  | Halo_no_alloc
  | Hds
  | Hds_merged_packing
  | Random_pools of int
  | Ident_window of int

let kind_name = function
  | Jemalloc -> "jemalloc"
  | Ptmalloc -> "ptmalloc"
  | Halo -> "halo"
  | Halo_no_alloc -> "halo-no-alloc"
  | Hds -> "hds"
  | Hds_merged_packing -> "hds-merged"
  | Random_pools n -> Printf.sprintf "random-%d" n
  | Ident_window 1 -> "ident-site"
  | Ident_window n -> Printf.sprintf "ident-xor%d" n

type halo_details = {
  groups : int;
  monitored_sites : int;
  graph_nodes : int;
  frag : Group_alloc.frag_stats;
  grouped_mallocs : int;
  chunks_carved : int;
  chunk_reuses : int;
}

type hds_details = {
  pools : int;
  stream_count : int;
  selected_streams : int;
  trace_length : int;
  hds_coverage : float;
}

type measurement = {
  workload : string;
  kind : kind;
  instructions : int;
  counters : Hierarchy.counters;
  cycles : float;
  seconds : float;
  alloc_stats : Alloc_iface.stats;
  halo : halo_details option;
  hds : hds_details option;
}

let measure ?obs ?(engine = Engine.Interp) ~w ~kind ~seed ~alloc ~patches
    ?env ~halo ~hds () =
  let program = w.Workload.make Workload.Ref in
  let hier = Hierarchy.create ?obs () in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_access = (fun addr size _write -> Hierarchy.access hier addr size);
    }
  in
  let interp =
    Engine.create ~kind:engine ~seed ~hooks ~patches ?env ?obs ~program ~alloc
      ()
  in
  Obs.span obs "measurement"
    ~attrs:[ ("stage", Json.String "measurement") ]
    ~instructions:(fun () -> Engine.instructions interp)
    (fun () ->
      ignore (Engine.run interp : int);
      let c = Hierarchy.counters hier in
      Obs.add_attrs obs
        [
          ("accesses", Json.Int c.Hierarchy.accesses);
          ("l1_misses", Json.Int c.Hierarchy.l1_misses);
        ];
      (* Final cumulative counters, so the registry summary carries the
         hierarchy's end state alongside the sampled miss streams. *)
      Obs.count obs "cache.accesses" c.Hierarchy.accesses;
      Obs.count obs "cache.l1.misses" c.Hierarchy.l1_misses;
      Obs.count obs "cache.l2.misses" c.Hierarchy.l2_misses;
      Obs.count obs "cache.l3.misses" c.Hierarchy.l3_misses;
      Obs.count obs "cache.tlb.misses" c.Hierarchy.tlb_misses);
  let counters = Hierarchy.counters hier in
  let instructions = Engine.instructions interp in
  let model = Timing.skylake_sp in
  let cycles = Timing.cycles model ~instructions counters in
  let seconds = Timing.seconds model ~instructions counters in
  {
    workload = w.Workload.name;
    kind;
    instructions;
    counters;
    cycles;
    seconds;
    alloc_stats = alloc.Alloc_iface.stats ();
    halo = halo ();
    hds;
  }

let halo_pipeline_config pipeline_config w =
  let base = Option.value pipeline_config ~default:Pipeline.default_config in
  {
    base with
    Pipeline.grouping = w.Workload.halo_grouping base.Pipeline.grouping;
    allocator = w.Workload.halo_allocator base.Pipeline.allocator;
  }

let run_kind ?obs ?engine ~seed ?pipeline_config ?group_fn ?plan_source w
    kind =
  let no_halo () = None in
  match kind with
  | Jemalloc ->
      let vmem = Vmem.create () in
      measure ?obs ?engine ~w ~kind ~seed ~alloc:(Jemalloc_sim.create vmem) ~patches:[]
        ~halo:no_halo ~hds:None ()
  | Ptmalloc ->
      let vmem = Vmem.create () in
      measure ?obs ?engine ~w ~kind ~seed ~alloc:(Ptmalloc_sim.create vmem) ~patches:[]
        ~halo:no_halo ~hds:None ()
  | Random_pools pools ->
      (* Figure 15's strawman is "a variant of HALO with an extremely poor
         grouping algorithm": the same specialised allocator, classifying
         uniformly at random. *)
      let vmem = Vmem.create () in
      let fallback = Jemalloc_sim.create vmem in
      let rng = Rng.create ~seed:(seed * 7919) in
      let classify ~size:_ = Some (Rng.int rng pools) in
      let alloc_cfg = w.Workload.halo_allocator Group_alloc.default_config in
      let galloc =
        Group_alloc.create ~config:alloc_cfg ?obs ~classify ~fallback vmem
      in
      measure ?obs ?engine ~w ~kind ~seed ~alloc:(Group_alloc.iface galloc) ~patches:[]
        ~halo:no_halo ~hds:None ()
  | Halo | Halo_no_alloc ->
      let config = halo_pipeline_config pipeline_config w in
      let plan =
        Pipeline.plan ?obs ?source:plan_source ?engine ~config ?group_fn
          (w.Workload.make Workload.Test)
      in
      let vmem = Vmem.create () in
      let fallback = Jemalloc_sim.create vmem in
      if kind = Halo_no_alloc then
        (* Instrumented binary, default allocator: measures the overhead of
           the inserted set/unset-bit instructions alone. *)
        let env = Exec_env.create ~group_bits:(max plan.Pipeline.rewrite.Rewrite.nbits 1) () in
        measure ?obs ?engine ~w ~kind ~seed ~alloc:fallback
          ~patches:plan.Pipeline.rewrite.Rewrite.patches ~env ~halo:no_halo
          ~hds:None ()
      else begin
        let rt = Pipeline.instantiate ?obs plan ~fallback vmem in
        let galloc = rt.Pipeline.galloc in
        let halo () =
          Some
            {
              groups = Array.length plan.Pipeline.grouping.Grouping.groups;
              monitored_sites = plan.Pipeline.rewrite.Rewrite.nbits;
              graph_nodes =
                List.length
                  (Affinity_graph.nodes plan.Pipeline.profile.Profiler.graph);
              frag = Group_alloc.frag_stats galloc;
              grouped_mallocs = Group_alloc.grouped_mallocs galloc;
              chunks_carved = Group_alloc.chunks_carved galloc;
              chunk_reuses = Group_alloc.reuses galloc;
            }
        in
        measure ?obs ?engine ~w ~kind ~seed ~alloc:(Group_alloc.iface galloc)
          ~patches:rt.Pipeline.patches ~env:rt.Pipeline.env ~halo ~hds:None ()
      end
  | Ident_window window ->
      let config = halo_pipeline_config pipeline_config w in
      let profile =
        Profiler.profile ?obs ?engine ~config:config.Pipeline.profiler
          (w.Workload.make Workload.Test)
      in
      let min_edge_weight =
        max config.Pipeline.grouping.Grouping.min_edge_weight
          (int_of_float
             (config.Pipeline.min_edge_frac
             *. float_of_int profile.Profiler.total_accesses))
      in
      let params = { config.Pipeline.grouping with Grouping.min_edge_weight } in
      let nplan = Name_ident.plan ~params ~window profile in
      let vmem = Vmem.create () in
      let fallback = Jemalloc_sim.create vmem in
      let env = Exec_env.create () in
      let classify = Name_ident.classifier nplan ~env in
      let galloc =
        Group_alloc.create ~config:config.Pipeline.allocator ?obs ~classify
          ~fallback vmem
      in
      measure ?obs ?engine ~w ~kind ~seed ~alloc:(Group_alloc.iface galloc) ~patches:[]
        ~env ~halo:(fun () -> None) ~hds:None ()
  | Hds | Hds_merged_packing ->
      let hconfig =
        if kind = Hds_merged_packing then
          (* plan applies merging internally when asked *)
          { Hds_pipeline.default_config with Hds_pipeline.max_sets = None }
        else Hds_pipeline.default_config
      in
      let merge = kind = Hds_merged_packing in
      let hplan =
        Hds_pipeline.plan ~config:hconfig ~merge_identical:merge
          (w.Workload.make Workload.Test)
      in
      let vmem = Vmem.create () in
      let fallback = Jemalloc_sim.create vmem in
      let env = Exec_env.create () in
      let classify = Hds_pipeline.classifier hplan ~env in
      let alloc_cfg = w.Workload.halo_allocator Group_alloc.default_config in
      let galloc =
        Group_alloc.create ~config:alloc_cfg ?obs ~classify ~fallback vmem
      in
      let hds =
        Some
          {
            pools = Array.length hplan.Hds_pipeline.groups;
            stream_count = hplan.Hds_pipeline.stream_count;
            selected_streams = hplan.Hds_pipeline.selected_streams;
            trace_length = hplan.Hds_pipeline.trace_length;
            hds_coverage = hplan.Hds_pipeline.coverage;
          }
      in
      measure ?obs ?engine ~w ~kind ~seed ~alloc:(Group_alloc.iface galloc) ~patches:[]
        ~env ~halo:no_halo ~hds ()

let run ?obs ?engine ?(seed = 2) ?pipeline_config ?group_fn ?plan_source w
    kind =
  Obs.span obs "run"
    ~attrs:
      [
        ("workload", Json.String w.Workload.name);
        ("configuration", Json.String (kind_name kind));
        ("seed", Json.Int seed);
      ]
    (fun () ->
      run_kind ?obs ?engine ~seed ?pipeline_config ?group_fn ?plan_source w
        kind)

let to_json ?baseline m =
  let counters c =
    Json.Obj
      [
        ("accesses", Json.Int c.Hierarchy.accesses);
        ("l1_misses", Json.Int c.Hierarchy.l1_misses);
        ("l2_misses", Json.Int c.Hierarchy.l2_misses);
        ("l3_misses", Json.Int c.Hierarchy.l3_misses);
        ("tlb_misses", Json.Int c.Hierarchy.tlb_misses);
        ("prefetches", Json.Int c.Hierarchy.prefetches);
      ]
  in
  let halo =
    match m.halo with
    | None -> Json.Null
    | Some h ->
        Json.Obj
          [
            ("groups", Json.Int h.groups);
            ("monitored_sites", Json.Int h.monitored_sites);
            ("graph_nodes", Json.Int h.graph_nodes);
            ("grouped_mallocs", Json.Int h.grouped_mallocs);
            ("chunks_carved", Json.Int h.chunks_carved);
            ("chunk_reuses", Json.Int h.chunk_reuses);
            ("frag_pct", Json.Float h.frag.Group_alloc.frag_pct);
            ("frag_bytes", Json.Int h.frag.Group_alloc.frag_bytes);
            ("peak_resident", Json.Int h.frag.Group_alloc.peak_resident);
          ]
  in
  let hds =
    match m.hds with
    | None -> Json.Null
    | Some h ->
        Json.Obj
          [
            ("pools", Json.Int h.pools);
            ("candidate_streams", Json.Int h.stream_count);
            ("selected_streams", Json.Int h.selected_streams);
            ("trace_length", Json.Int h.trace_length);
            ("coverage", Json.Float h.hds_coverage);
          ]
  in
  let derived =
    match baseline with
    | None -> []
    | Some b ->
        [
          ("miss_reduction", Json.Float (Timing.miss_reduction
             ~baseline:b.counters.Hierarchy.l1_misses
             ~optimised:m.counters.Hierarchy.l1_misses));
          ("speedup", Json.Float (Timing.speedup ~baseline:b.cycles ~optimised:m.cycles));
        ]
  in
  Json.Obj
    ([
       ("workload", Json.String m.workload);
       ("configuration", Json.String (kind_name m.kind));
       ("instructions", Json.Int m.instructions);
       ("counters", counters m.counters);
       ("cycles", Json.Float m.cycles);
       ("sim_seconds", Json.Float m.seconds);
       ("mallocs", Json.Int m.alloc_stats.Alloc_iface.mallocs);
       ("frees", Json.Int m.alloc_stats.Alloc_iface.frees);
       ("peak_live_bytes", Json.Int m.alloc_stats.Alloc_iface.peak_live_bytes);
       ("halo", halo);
       ("hds", hds);
     ]
    @ derived)

let speedup_vs ~baseline m =
  Timing.speedup ~baseline:baseline.cycles ~optimised:m.cycles

let miss_reduction_vs ~baseline m =
  Timing.miss_reduction ~baseline:baseline.counters.Hierarchy.l1_misses
    ~optimised:m.counters.Hierarchy.l1_misses
