let header_bytes = 64
(* Reserved at the start of every chunk for its header (group id,
   live_regions, bump cursor). Regions never overlap it, so masking a
   region pointer down to the chunk base always lands on the header. *)

type backend = Bump_only | Sharded_free_lists

type spare_policy = Keep_spare of int | Always_reuse

type config = {
  slab_size : int;
  chunk_size : int;
  max_grouped_size : int;
  spare_policy : spare_policy;
  backend : backend;
  color_groups : bool;
}

let default_config =
  {
    slab_size = 64 lsl 20;
    chunk_size = 1 lsl 20;
    max_grouped_size = 4096;
    spare_policy = Keep_spare 1;
    backend = Bump_only;
    color_groups = false;
  }

type chunk = {
  base : Addr.t;
  mutable group : int;
  mutable bump : int; (* offset of the next free byte, from base *)
  mutable live_regions : int;
  mutable hw_pages : int; (* pages made resident by the bump high-water *)
}

(* Pre-resolved telemetry handles; [None] when observability is disabled. *)
type gobs = {
  o : Obs.t option; (* always [Some]; kept as option for Obs.event *)
  m_grouped : Metrics.counter; (* alloc.grouped_mallocs *)
  m_forwarded : Metrics.counter; (* alloc.fallback_mallocs *)
  m_carved : Metrics.counter; (* alloc.chunks.carved *)
  m_reused : Metrics.counter; (* alloc.chunks.reused *)
  m_purged : Metrics.counter; (* alloc.chunks.purged *)
  m_freelist : Metrics.counter; (* alloc.freelist.reuses *)
  g_spare : Metrics.gauge; (* alloc.chunks.spare *)
  h_occupancy : Metrics.histogram; (* alloc.pool.occupancy *)
  sample_every : int;
  mutable until_sample : int;
}

type state = {
  vmem : Vmem.t;
  cfg : config;
  classify : size:int -> int option;
  fallback : Alloc_iface.t;
  table : Alloc_iface.Live_table.table;
  chunks : (Addr.t, chunk) Hashtbl.t;
  current : (int, chunk) Hashtbl.t; (* group -> current chunk *)
  mutable spare : chunk list; (* empty, still resident *)
  mutable spare_count : int;
  mutable purged : chunk list; (* empty, pages returned to the OS *)
  mutable slab_cursor : Addr.t;
  mutable slab_limit : Addr.t;
  (* Sharded free lists: (group, reserved size) -> freed region stack. *)
  shards : (int * int, Addr.t list ref) Hashtbl.t;
  gobs : gobs option;
  mutable carved : int;
  mutable reuses : int;
  mutable freelist_reuses : int;
  mutable grouped_mallocs : int;
  mutable resident : int; (* allocator-resident bytes across group chunks *)
  mutable peak_resident : int;
  mutable live_at_peak : int;
}

type t = { st : state; iface : Alloc_iface.t }

let page = Vmem.page_size

let grow_residency st chunk =
  (* Bump allocation touches pages in order; account for pages newly
     covered by [0, bump). *)
  let pages = (chunk.bump + page - 1) / page in
  if pages > chunk.hw_pages then begin
    let delta = (pages - chunk.hw_pages) * page in
    chunk.hw_pages <- pages;
    st.resident <- st.resident + delta;
    if st.resident > st.peak_resident then begin
      st.peak_resident <- st.resident;
      st.live_at_peak <- (Alloc_iface.Live_table.stats st.table).Alloc_iface.live_bytes
    end
  end

(* Per-group colour: a line-granular offset into the chunk so group g's
   first regions map to a different L1 set than group g'. Bounded well
   below the chunk size. *)
let color_offset st group =
  if st.cfg.color_groups then 64 * (group * 7 mod 61) else 0

let reset_chunk st chunk group =
  chunk.group <- group;
  chunk.bump <- header_bytes + color_offset st group;
  chunk.live_regions <- 0;
  grow_residency st chunk

let spare_gauge st =
  match st.gobs with
  | None -> ()
  | Some g -> Metrics.set g.g_spare (float_of_int st.spare_count)

let acquire_chunk st group =
  let chunk =
    match st.spare with
    | c :: rest ->
        st.spare <- rest;
        st.spare_count <- st.spare_count - 1;
        st.reuses <- st.reuses + 1;
        (match st.gobs with None -> () | Some g -> Metrics.incr g.m_reused);
        spare_gauge st;
        c
    | [] -> (
        match st.purged with
        | c :: rest ->
            st.purged <- rest;
            st.reuses <- st.reuses + 1;
            (match st.gobs with None -> () | Some g -> Metrics.incr g.m_reused);
            c
        | [] ->
            if st.slab_cursor + st.cfg.chunk_size > st.slab_limit then begin
              let slab =
                Vmem.mmap st.vmem ~size:st.cfg.slab_size ~align:st.cfg.chunk_size
              in
              st.slab_cursor <- slab;
              st.slab_limit <- slab + st.cfg.slab_size
            end;
            let base = st.slab_cursor in
            st.slab_cursor <- base + st.cfg.chunk_size;
            st.carved <- st.carved + 1;
            (match st.gobs with None -> () | Some g -> Metrics.incr g.m_carved);
            let c = { base; group; bump = 0; live_regions = 0; hw_pages = 0 } in
            Hashtbl.replace st.chunks base c;
            c)
  in
  reset_chunk st chunk group;
  Hashtbl.replace st.current group chunk;
  chunk

let shard st group reserved =
  let key = (group, reserved) in
  match Hashtbl.find_opt st.shards key with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace st.shards key l;
      l

(* One series point per group's current chunk: live regions, bump
   utilisation. Sampled every [sample_every] grouped mallocs so trace
   volume stays bounded on allocation-heavy runs. *)
let sample_pools st g =
  Hashtbl.iter
    (fun group chunk ->
      Metrics.observe g.h_occupancy (float_of_int chunk.live_regions);
      Obs.event g.o ~name:"alloc.pool.occupancy"
        ~attrs:
          [
            ("group", Json.Int group);
            ( "bump_util",
              Json.Float
                (float_of_int chunk.bump /. float_of_int st.cfg.chunk_size) );
          ]
        (float_of_int chunk.live_regions))
    st.current;
  Obs.event g.o ~name:"alloc.chunks.spare" (float_of_int st.spare_count)

let gobs_on_malloc st =
  match st.gobs with
  | None -> ()
  | Some g ->
      Metrics.incr g.m_grouped;
      g.until_sample <- g.until_sample - 1;
      if g.until_sample = 0 then begin
        g.until_sample <- g.sample_every;
        sample_pools st g
      end

let group_malloc st group n =
  let reserved = Addr.align_up (max n 1) 8 in
  (* Sharded backend: reuse a freed region of the exact reserved size from
     this group before advancing any bump cursor. *)
  match
    if st.cfg.backend = Sharded_free_lists then
      match !(shard st group reserved) with
      | addr :: rest ->
          (shard st group reserved) := rest;
          Some addr
      | [] -> None
    else None
  with
  | Some addr ->
      let base = addr land lnot (st.cfg.chunk_size - 1) in
      (match Hashtbl.find_opt st.chunks base with
      | Some chunk -> chunk.live_regions <- chunk.live_regions + 1
      | None -> failwith "Group_alloc: freed region lost its chunk");
      st.grouped_mallocs <- st.grouped_mallocs + 1;
      st.freelist_reuses <- st.freelist_reuses + 1;
      (match st.gobs with None -> () | Some g -> Metrics.incr g.m_freelist);
      gobs_on_malloc st;
      Alloc_iface.Live_table.on_malloc st.table addr ~requested:n ~reserved;
      addr
  | None ->
  let chunk =
    match Hashtbl.find_opt st.current group with
    | Some c when c.bump + reserved <= st.cfg.chunk_size -> c
    | _ -> acquire_chunk st group
  in
  if chunk.bump + reserved > st.cfg.chunk_size then
    failwith "Group_alloc: request exceeds chunk capacity";
  let addr = chunk.base + chunk.bump in
  chunk.bump <- chunk.bump + reserved;
  chunk.live_regions <- chunk.live_regions + 1;
  st.grouped_mallocs <- st.grouped_mallocs + 1;
  gobs_on_malloc st;
  Alloc_iface.Live_table.on_malloc st.table addr ~requested:n ~reserved;
  grow_residency st chunk;
  addr

let drop_chunk_shards st chunk =
  (* A drained chunk is about to be rewound or recycled: regions from it
     must leave the free lists or they would alias fresh bump space. *)
  Hashtbl.iter
    (fun (group, _) l ->
      if group = chunk.group then
        l :=
          List.filter
            (fun a -> a land lnot (st.cfg.chunk_size - 1) <> chunk.base)
            !l)
    st.shards

let recycle_chunk st chunk =
  match st.cfg.spare_policy with
  | Always_reuse ->
      st.spare <- chunk :: st.spare;
      st.spare_count <- st.spare_count + 1;
      spare_gauge st
  | Keep_spare k ->
      if st.spare_count < k then begin
        st.spare <- chunk :: st.spare;
        st.spare_count <- st.spare_count + 1;
        spare_gauge st
      end
      else begin
        (* Purge the chunk's dirty pages back to the OS. *)
        Vmem.purge st.vmem chunk.base st.cfg.chunk_size;
        st.resident <- st.resident - (chunk.hw_pages * page);
        chunk.hw_pages <- 0;
        st.purged <- chunk :: st.purged;
        match st.gobs with None -> () | Some g -> Metrics.incr g.m_purged
      end

let grouped_free st addr =
  let _requested, reserved = Alloc_iface.Live_table.on_free st.table addr in
  let base = addr land lnot (st.cfg.chunk_size - 1) in
  let chunk =
    match Hashtbl.find_opt st.chunks base with
    | Some c -> c
    | None -> failwith "Group_alloc: freed region has no chunk header"
  in
  if chunk.live_regions <= 0 then
    failwith "Group_alloc: chunk live_regions underflow";
  chunk.live_regions <- chunk.live_regions - 1;
  if st.cfg.backend = Sharded_free_lists && chunk.live_regions > 0 then begin
    let l = shard st chunk.group reserved in
    l := addr :: !l
  end;
  if chunk.live_regions = 0 then
    match Hashtbl.find_opt st.current chunk.group with
    | Some cur when cur == chunk ->
        (* The group's active chunk drained: rewind the bump cursor and
           keep using it in place. *)
        drop_chunk_shards st chunk;
        chunk.bump <- header_bytes + color_offset st chunk.group
    | _ ->
        drop_chunk_shards st chunk;
        recycle_chunk st chunk

let is_grouped st addr = Option.is_some (Alloc_iface.Live_table.find st.table addr)

let malloc st n =
  if n < 0 then invalid_arg "Group_alloc.malloc: negative size";
  let groupable = max n 1 <= min st.cfg.max_grouped_size (page - 1) in
  match if groupable then st.classify ~size:n else None with
  | Some g -> group_malloc st g n
  | None ->
      Alloc_iface.Live_table.count_forwarded st.table;
      (match st.gobs with None -> () | Some g -> Metrics.incr g.m_forwarded);
      st.fallback.Alloc_iface.malloc n

let free st addr =
  if addr <> Addr.null then
    if is_grouped st addr then grouped_free st addr
    else st.fallback.Alloc_iface.free addr

let usable_size st addr =
  match Alloc_iface.Live_table.find st.table addr with
  | Some (_, reserved) -> Some reserved
  | None -> st.fallback.Alloc_iface.usable_size addr

let realloc st old n =
  if old = Addr.null then malloc st n
  else if is_grouped st old then
    match Alloc_iface.Live_table.find st.table old with
    | Some (_, reserved) when n > 0 && n <= reserved -> old
    | _ ->
        let fresh = malloc st n in
        grouped_free st old;
        fresh
  else begin
    (* Fallback-owned region. If the new size would still be forwarded,
       let the fallback realloc in place; otherwise migrate into a group. *)
    let groupable = max n 1 <= min st.cfg.max_grouped_size (page - 1) in
    match if groupable then st.classify ~size:n else None with
    | None -> st.fallback.Alloc_iface.realloc old n
    | Some g ->
        let fresh = group_malloc st g n in
        st.fallback.Alloc_iface.free old;
        fresh
  end

type frag_stats = {
  peak_resident : int;
  live_at_peak : int;
  frag_bytes : int;
  frag_pct : float;
}

let create ?(config = default_config) ?obs ?(sample_every = 256) ~classify
    ~fallback vmem =
  if sample_every < 1 then
    invalid_arg "Group_alloc.create: sample_every must be >= 1";
  if not (Addr.is_power_of_two config.chunk_size) then
    invalid_arg "Group_alloc.create: chunk_size must be a power of two";
  if config.chunk_size < 2 * header_bytes then
    invalid_arg "Group_alloc.create: chunk_size too small";
  if config.color_groups && config.chunk_size < 8192 then
    invalid_arg "Group_alloc.create: chunk too small for colouring";
  if config.slab_size mod config.chunk_size <> 0 then
    invalid_arg "Group_alloc.create: slab_size must be a multiple of chunk_size";
  let st =
    {
      vmem;
      cfg = config;
      classify;
      fallback;
      table = Alloc_iface.Live_table.create ~name:"halo-group" ();
      chunks = Hashtbl.create 64;
      current = Hashtbl.create 16;
      shards = Hashtbl.create 64;
      gobs =
        Option.map
          (fun o ->
            let m = Obs.metrics o in
            {
              o = Some o;
              m_grouped = Metrics.counter m "alloc.grouped_mallocs";
              m_forwarded = Metrics.counter m "alloc.fallback_mallocs";
              m_carved = Metrics.counter m "alloc.chunks.carved";
              m_reused = Metrics.counter m "alloc.chunks.reused";
              m_purged = Metrics.counter m "alloc.chunks.purged";
              m_freelist = Metrics.counter m "alloc.freelist.reuses";
              g_spare = Metrics.gauge m "alloc.chunks.spare";
              h_occupancy = Metrics.histogram m "alloc.pool.occupancy";
              sample_every;
              until_sample = sample_every;
            })
          obs;
      spare = [];
      spare_count = 0;
      purged = [];
      slab_cursor = Addr.null;
      slab_limit = Addr.null;
      carved = 0;
      reuses = 0;
      freelist_reuses = 0;
      grouped_mallocs = 0;
      resident = 0;
      peak_resident = 0;
      live_at_peak = 0;
    }
  in
  let iface =
    {
      Alloc_iface.name = "halo-group";
      malloc = (fun n -> malloc st n);
      free = (fun a -> free st a);
      realloc = (fun old n -> realloc st old n);
      usable_size = (fun a -> usable_size st a);
      stats = (fun () -> Alloc_iface.Live_table.stats st.table);
    }
  in
  { st; iface }

let iface t = t.iface

let frag_stats t =
  let st = t.st in
  if st.peak_resident = 0 then
    { peak_resident = 0; live_at_peak = 0; frag_bytes = 0; frag_pct = 0.0 }
  else
    let frag = st.peak_resident - st.live_at_peak in
    {
      peak_resident = st.peak_resident;
      live_at_peak = st.live_at_peak;
      frag_bytes = frag;
      frag_pct = float_of_int frag /. float_of_int st.peak_resident;
    }

let grouped_mallocs t = t.st.grouped_mallocs
let freelist_reuses t = t.st.freelist_reuses
let chunks_carved t = t.st.carved
let reuses t = t.st.reuses
