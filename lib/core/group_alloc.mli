(** HALO's specialised group allocator (§4.4, Figure 11).

    Combines the efficiency and contiguity guarantees of bump allocation
    with a chunk-based reuse model:

    - memory is reserved from the (simulated) OS in large demand-paged
      {e slabs} to amortise mmap costs;
    - slabs are carved into group-specific {e chunks}, aligned to the chunk
      size so a region's chunk header is found by masking low address bits;
    - each group bump-allocates from its current chunk with no per-object
      headers, guaranteeing contiguity of consecutive grouped allocations;
    - a chunk header's [live_regions] count is incremented per allocation
      and decremented per free; at zero the chunk is empty and is reused or
      purged, keeping up to [max_spare_chunks] spare chunks resident (early
      jemalloc's behaviour) — or always reused under {!Always_reuse} (the
      omnetpp/xalanc configuration);
    - requests that are not grouped — classifier says no group, or size at
      least the page size / above the max grouped size — are forwarded to
      the next available allocator (the [dlsym] chain in the paper).

    The classifier is a closure so the same allocator body serves both
    HALO proper (selectors over the group-state vector, via
    {!Rewrite.classify}) and the hot-data-streams comparator
    (immediate-call-site lookup). *)

type backend =
  | Bump_only
      (** The paper's allocator: pure bump allocation inside chunks; space
          is reclaimed only when a whole chunk empties. *)
  | Sharded_free_lists
      (** The future-work extension (§6, after mimalloc): freed regions go
          onto per-group, per-size-class free lists and are reused before
          the bump cursor advances, so long-lived chunks stop leaking
          space. Spatial locality is preserved because a group's free list
          only ever holds that group's own regions. *)

type spare_policy =
  | Keep_spare of int
      (** Retain at most N empty chunks resident; purge the rest's pages
          back to the OS (dirty-page purging). The evaluation default is
          [Keep_spare 1]. *)
  | Always_reuse
      (** Empty chunks return to the reuse pool without purging. *)

type config = {
  slab_size : int;  (** Default 64 MiB. *)
  chunk_size : int;  (** Default 1 MiB (§5.1); must be a power of two. *)
  max_grouped_size : int;  (** Default 4 KiB. *)
  spare_policy : spare_policy;
  backend : backend;  (** Default [Bump_only] (the paper's design). *)
  color_groups : bool;
      (** Cache-index-aware chunk colouring (a §4.4-cited direction, after
          Afek et al.): offset each group's first region by a per-group
          stride so different groups' hot prefixes do not all map to cache
          set 0. Off by default (the paper's allocator starts every chunk
          at its header). *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?obs:Obs.t ->
  ?sample_every:int ->
  classify:(size:int -> int option) ->
  fallback:Alloc_iface.t ->
  Vmem.t ->
  t
(** [classify ~size] decides group membership at allocation time (it runs
    only for requests within the grouped size bound).

    [obs] enables allocator telemetry: counters
    [alloc.grouped_mallocs] / [alloc.fallback_mallocs] /
    [alloc.chunks.carved] / [alloc.chunks.reused] / [alloc.chunks.purged] /
    [alloc.freelist.reuses], the [alloc.chunks.spare] gauge, the
    [alloc.pool.occupancy] histogram, and — every [sample_every]
    (default 256) grouped mallocs — one [alloc.pool.occupancy] trace
    series point per active pool (live regions, bump utilisation) plus an
    [alloc.chunks.spare] point. Handles are resolved once here; without
    [obs] the malloc/free paths match the seed allocator exactly. *)

val iface : t -> Alloc_iface.t
(** The POSIX surface to hand to the interpreter. Its [stats] cover only
    the grouped side; [forwarded] counts requests sent to the fallback. *)

type frag_stats = {
  peak_resident : int;
      (** High-water of allocator-resident bytes in group chunks. *)
  live_at_peak : int;  (** Live grouped bytes at that moment. *)
  frag_bytes : int;  (** [peak_resident - live_at_peak] — Table 1's bytes. *)
  frag_pct : float;  (** [frag_bytes / peak_resident] — Table 1's %. *)
}

val frag_stats : t -> frag_stats
(** Fragmentation behaviour of grouped objects at peak memory usage
    (Table 1). Zeroes if nothing was ever grouped. *)

val grouped_mallocs : t -> int
val chunks_carved : t -> int
(** Chunks ever carved from slabs (excludes reuses). *)

val reuses : t -> int
(** Times an empty chunk was reassigned instead of carving a new one. *)

val freelist_reuses : t -> int
(** Regions served from sharded free lists (always 0 under
    [Bump_only]). *)
