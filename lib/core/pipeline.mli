(** The end-to-end HALO pipeline (Figure 4).

    [Executable -> Profiling -> Affinity graph -> Grouping -> Identification
    -> BOLT rewriting + allocator synthesis -> Optimised executable].

    Profiling runs on a {e test}-scale program; the resulting plan (groups,
    selectors, patch list) is then instantiated against a {e ref}-scale
    program for measurement — mirroring the paper's profile-on-test /
    measure-on-ref methodology (§5.1). The two programs must share
    structure (same sites); workload generators guarantee this by varying
    only input-scale constants. *)

type config = {
  profiler : Profiler.config;
  grouping : Grouping.params;
  min_edge_frac : float;
      (** Noise threshold for edges as a fraction of total observed
          accesses; the effective [min_edge_weight] is the max of this and
          the absolute parameter. Default 1e-4. *)
  allocator : Group_alloc.config;
}

val default_config : config

type plan = {
  config : config;
  profile : Profiler.result;
  grouping : Grouping.t;
  selectors : Identify.selector list;
  rewrite : Rewrite.t;
}

type plan_source = {
  lookup : Obs.t option -> Ir.program -> config -> plan option;
  store : Obs.t option -> Ir.program -> config -> plan -> unit;
}
(** An external supplier of ready-made plans — the seam the persistent
    store's content-addressed plan cache plugs into. {!plan} consults
    [lookup] before profiling and hands freshly computed plans to [store];
    a source that misses everywhere and stores nothing is the identity. *)

val constant_source : plan -> plan_source
(** A source that always answers with the given plan (and stores
    nothing) — the record/apply split's apply side: measure under a plan
    decoded from an artifact rather than one profiled in-process. *)

val derive :
  ?obs:Obs.t ->
  ?config:config ->
  ?group_fn:(Affinity_graph.t -> Grouping.params -> Grouping.t) ->
  Profiler.result ->
  plan
(** The apply phase alone: derive groups, selectors and the rewriting plan
    from an existing profile — recorded in an earlier run, merged across
    runs, or just produced by {!Profiler.profile}. [group_fn] substitutes
    an alternative clustering algorithm (see {!Clustering}) for Figure
    6's — the grouping-ablation hook; default is {!Grouping.group}. [obs]
    records the [grouping], [identification] and [rewrite] spans with
    stage-shape attributes. *)

val plan :
  ?obs:Obs.t ->
  ?source:plan_source ->
  ?engine:Engine.kind ->
  ?config:config ->
  ?group_fn:(Affinity_graph.t -> Grouping.params -> Grouping.t) ->
  Ir.program ->
  plan
(** The record phase plus {!derive}: profile the (test-scale) program and
    derive the plan. [engine] picks the profiling run's execution engine
    (default the interpreter); engines are observably identical, so it
    is deliberately not part of any plan-cache key. [source] short-circuits both phases when it already
    holds a plan for this program/config pair, and receives the computed
    plan otherwise; it is consulted only when [group_fn] is not given (a
    custom clusterer is not part of any cache key). [obs] adds the
    profiler's [profile] and [affinity-graph] spans ahead of the derive
    spans. *)

type runtime = {
  env : Exec_env.t;  (** Share between allocator and interpreter. *)
  galloc : Group_alloc.t;
  patches : (Ir.site * int) list;  (** Pass to {!Interp.create}. *)
}

val instantiate :
  ?obs:Obs.t ->
  ?allocator:Group_alloc.config ->
  plan ->
  fallback:Alloc_iface.t ->
  Vmem.t ->
  runtime
(** Synthesise the specialised allocator and runtime environment for a
    measurement run. [allocator] overrides the plan's allocator config
    (per-benchmark flags like chunk size or spare policy). [obs] records
    the [allocator-synthesis] span and threads allocator telemetry
    (pool occupancy, spare-chunk churn) into the synthesised
    {!Group_alloc}. *)

val graph_dot : plan -> site_label:(Ir.site -> string) -> string
(** Figure 9 analog: the filtered affinity graph with nodes coloured by
    group (grey when ungrouped), as graphviz dot text. *)

val describe : plan -> site_label:(Ir.site -> string) -> string
(** Human-readable summary: groups with member contexts, selectors, and
    monitored sites. *)
