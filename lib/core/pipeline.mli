(** The end-to-end HALO pipeline (Figure 4).

    [Executable -> Profiling -> Affinity graph -> Grouping -> Identification
    -> BOLT rewriting + allocator synthesis -> Optimised executable].

    Profiling runs on a {e test}-scale program; the resulting plan (groups,
    selectors, patch list) is then instantiated against a {e ref}-scale
    program for measurement — mirroring the paper's profile-on-test /
    measure-on-ref methodology (§5.1). The two programs must share
    structure (same sites); workload generators guarantee this by varying
    only input-scale constants. *)

type config = {
  profiler : Profiler.config;
  grouping : Grouping.params;
  min_edge_frac : float;
      (** Noise threshold for edges as a fraction of total observed
          accesses; the effective [min_edge_weight] is the max of this and
          the absolute parameter. Default 1e-4. *)
  allocator : Group_alloc.config;
}

val default_config : config

type plan = {
  config : config;
  profile : Profiler.result;
  grouping : Grouping.t;
  selectors : Identify.selector list;
  rewrite : Rewrite.t;
}

val plan :
  ?obs:Obs.t ->
  ?config:config ->
  ?group_fn:(Affinity_graph.t -> Grouping.params -> Grouping.t) ->
  Ir.program ->
  plan
(** Profile the (test-scale) program and derive groups, selectors and the
    rewriting plan. [group_fn] substitutes an alternative clustering
    algorithm (see {!Clustering}) for Figure 6's — the grouping-ablation
    hook; default is {!Grouping.group}. [obs] records one span per stage
    ([profile] and [affinity-graph] inside the profiler, then [grouping],
    [identification], [rewrite]) with stage-shape attributes. *)

type runtime = {
  env : Exec_env.t;  (** Share between allocator and interpreter. *)
  galloc : Group_alloc.t;
  patches : (Ir.site * int) list;  (** Pass to {!Interp.create}. *)
}

val instantiate :
  ?obs:Obs.t ->
  ?allocator:Group_alloc.config ->
  plan ->
  fallback:Alloc_iface.t ->
  Vmem.t ->
  runtime
(** Synthesise the specialised allocator and runtime environment for a
    measurement run. [allocator] overrides the plan's allocator config
    (per-benchmark flags like chunk size or spare policy). [obs] records
    the [allocator-synthesis] span and threads allocator telemetry
    (pool occupancy, spare-chunk churn) into the synthesised
    {!Group_alloc}. *)

val graph_dot : plan -> site_label:(Ir.site -> string) -> string
(** Figure 9 analog: the filtered affinity graph with nodes coloured by
    group (grey when ungrouped), as graphviz dot text. *)

val describe : plan -> site_label:(Ir.site -> string) -> string
(** Human-readable summary: groups with member contexts, selectors, and
    monitored sites. *)
