type config = {
  profiler : Profiler.config;
  grouping : Grouping.params;
  min_edge_frac : float;
  allocator : Group_alloc.config;
}

let default_config =
  {
    profiler = Profiler.default_config;
    grouping = Grouping.default_params;
    min_edge_frac = 1e-4;
    allocator = Group_alloc.default_config;
  }

type plan = {
  config : config;
  profile : Profiler.result;
  grouping : Grouping.t;
  selectors : Identify.selector list;
  rewrite : Rewrite.t;
}

let derive ?obs ?(config = default_config) ?(group_fn = Grouping.group)
    (profile : Profiler.result) =
  let min_edge_weight =
    max config.grouping.Grouping.min_edge_weight
      (int_of_float
         (config.min_edge_frac *. float_of_int profile.Profiler.total_accesses))
  in
  let gparams = { config.grouping with Grouping.min_edge_weight } in
  let grouping =
    Obs.span obs "grouping" ~attrs:[ ("stage", Json.String "grouping") ]
      (fun () ->
        let g = group_fn profile.Profiler.graph gparams in
        Obs.add_attrs obs
          [
            ("groups", Json.Int (Array.length g.Grouping.groups));
            ("min_edge_weight", Json.Int min_edge_weight);
          ];
        g)
  in
  let selectors =
    Obs.span obs "identification"
      ~attrs:[ ("stage", Json.String "identification") ]
      (fun () ->
        let sels = Identify.build ~contexts:profile.Profiler.contexts ~grouping in
        Obs.add_attrs obs
          [
            ("selectors", Json.Int (List.length sels));
            ( "monitored_sites",
              Json.Int (List.length (Identify.monitored_sites sels)) );
          ];
        sels)
  in
  let rewrite =
    Obs.span obs "rewrite" ~attrs:[ ("stage", Json.String "rewrite") ]
      (fun () ->
        let r = Rewrite.plan selectors in
        Obs.add_attrs obs
          [
            ("bits", Json.Int r.Rewrite.nbits);
            ("patches", Json.Int (List.length r.Rewrite.patches));
          ];
        r)
  in
  { config; profile; grouping; selectors; rewrite }

type plan_source = {
  lookup : Obs.t option -> Ir.program -> config -> plan option;
  store : Obs.t option -> Ir.program -> config -> plan -> unit;
}

let constant_source plan =
  { lookup = (fun _ _ _ -> Some plan); store = (fun _ _ _ _ -> ()) }

let plan ?obs ?source ?engine ?config ?group_fn program =
  let compute () =
    let cfg = Option.value config ~default:default_config in
    let profile = Profiler.profile ?obs ?engine ~config:cfg.profiler program in
    derive ?obs ~config:cfg ?group_fn profile
  in
  match (source, group_fn) with
  | Some s, None -> (
      (* A source only answers for the stock grouping algorithm: a custom
         [group_fn] is not part of the cache key, so ablations that swap
         the clusterer bypass the source entirely. *)
      let cfg = Option.value config ~default:default_config in
      match s.lookup obs program cfg with
      | Some p -> p
      | None ->
          let p = compute () in
          s.store obs program cfg p;
          p)
  | _ -> compute ()

type runtime = {
  env : Exec_env.t;
  galloc : Group_alloc.t;
  patches : (Ir.site * int) list;
}

let instantiate ?obs ?allocator plan ~fallback vmem =
  Obs.span obs "allocator-synthesis"
    ~attrs:[ ("stage", Json.String "allocator-synthesis") ]
    (fun () ->
      let alloc_cfg = Option.value allocator ~default:plan.config.allocator in
      let env =
        Exec_env.create ~group_bits:(max plan.rewrite.Rewrite.nbits 1) ()
      in
      let classify ~size:_ =
        Rewrite.classify plan.rewrite env.Exec_env.group_state
      in
      let galloc =
        Group_alloc.create ~config:alloc_cfg ?obs ~classify ~fallback vmem
      in
      Obs.add_attrs obs
        [
          ("groups", Json.Int (Array.length plan.grouping.Grouping.groups));
          ("chunk_size", Json.Int alloc_cfg.Group_alloc.chunk_size);
        ];
      { env; galloc; patches = plan.rewrite.Rewrite.patches })

let graph_dot plan ~site_label =
  let g = plan.profile.Profiler.graph in
  let contexts = plan.profile.Profiler.contexts in
  let nodes =
    List.map
      (fun id ->
        {
          Dot.id;
          label = Context.label contexts site_label id;
          group = Grouping.group_of plan.grouping id;
          accesses = Affinity_graph.node_accesses g id;
        })
      (Affinity_graph.nodes g)
  in
  let edges =
    List.map
      (fun (x, y, w) -> { Dot.src = x; dst = y; weight = w })
      (Affinity_graph.edges g)
  in
  Dot.render ~name:"halo-affinity" nodes edges

let describe plan ~site_label =
  let buf = Buffer.create 1024 in
  let contexts = plan.profile.Profiler.contexts in
  let g = plan.profile.Profiler.graph in
  Buffer.add_string buf
    (Printf.sprintf
       "profile: %d tracked allocs, %d macro accesses, %d contexts, %d graph nodes\n"
       plan.profile.Profiler.tracked_allocs plan.profile.Profiler.total_accesses
       (Context.count contexts)
       (List.length (Affinity_graph.nodes g)));
  Array.iteri
    (fun gi members ->
      Buffer.add_string buf
        (Printf.sprintf "group %d (accesses=%d, weight=%d):\n" gi
           plan.grouping.Grouping.group_accesses.(gi)
           plan.grouping.Grouping.group_weights.(gi));
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "  ctx %d: %s\n" c (Context.label contexts site_label c)))
        members)
    plan.grouping.Grouping.groups;
  List.iter
    (fun (sel : Identify.selector) ->
      Buffer.add_string buf (Printf.sprintf "selector for group %d:\n" sel.group);
      List.iter
        (fun conj ->
          Buffer.add_string buf
            (Printf.sprintf "  [%s]\n"
               (String.concat " && " (List.map site_label conj))))
        sel.disjuncts)
    plan.selectors;
  Buffer.add_string buf
    (Printf.sprintf "monitored sites: %s\n"
       (String.concat ", "
          (List.map site_label (Identify.monitored_sites plan.selectors))));
  Buffer.contents buf
