(* The `halo` command-line tool.

   Mirrors the artefact appendix's workflow (A.5): `halo baseline` and
   `halo run` measure a workload under the default and optimised
   configurations, `halo plot`'s role is played by `halo figures` (text
   tables rather than PDFs), and the A.8 per-benchmark flags
   (--chunk-size, --max-spare-chunks, --max-groups) are accepted by
   `halo run`. `halo plan` additionally exposes the optimisation plan
   itself — groups, selectors, monitored sites, and the Figure 9 affinity
   graph as graphviz dot.

   Observability: `halo run --trace-out FILE` exports the run's telemetry
   (pipeline-stage spans, allocator/cache metric series) as JSONL, and
   `halo telemetry` runs a workload/configuration pair and pretty-prints
   the span tree and the top-N metrics. *)

open Cmdliner

let workload_conv =
  let parse s =
    match Workloads.lookup s with
    | Ok w -> Ok w
    | Error e -> Error (`Msg (Workloads.lookup_error_to_string e))
  in
  let print ppf w = Format.pp_print_string ppf w.Workload.name in
  Arg.conv (parse, print)

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"NAME" ~doc:"Workload to operate on.")

let seed_arg =
  Arg.(value & opt int 2 & info [ "seed" ] ~docv:"N" ~doc:"Measurement input seed.")

let kind_conv =
  let table =
    [
      ("jemalloc", Runner.Jemalloc);
      ("ptmalloc", Runner.Ptmalloc);
      ("halo", Runner.Halo);
      ("noalloc", Runner.Halo_no_alloc);
      ("hds", Runner.Hds);
      ("hds-merged", Runner.Hds_merged_packing);
      ("random", Runner.Random_pools 4);
    ]
  in
  let parse s =
    match List.assoc_opt s table with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown config %S (one of: %s)" s
                (String.concat ", " (List.map fst table))))
  in
  let print ppf k = Format.pp_print_string ppf (Runner.kind_name k) in
  Arg.conv (parse, print)

let kind_arg =
  Arg.(
    value
    & opt kind_conv Runner.Halo
    & info [ "c"; "config"; "kind" ] ~docv:"CONFIG"
        ~doc:
          "Allocator configuration: jemalloc, ptmalloc, halo, noalloc, hds, \
           hds-merged, or random.")

let chunk_size_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chunk-size" ] ~docv:"BYTES" ~doc:"Group-chunk size (A.8 flag).")

let spare_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-spare-chunks" ] ~docv:"N"
        ~doc:"Spare chunks kept resident when purging (A.8 flag).")

let max_groups_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-groups" ] ~docv:"N" ~doc:"Cap on allocation groups (A.8 flag).")

let affinity_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "affinity-distance" ] ~docv:"BYTES"
        ~doc:"Affinity distance A for profiling (default 128).")

let engine_conv =
  let parse s =
    match Engine.of_string s with
    | Some k -> Ok k
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown engine %S (one of: %s)" s
                (String.concat ", " (List.map Engine.to_string Engine.all))))
  in
  let print ppf k = Format.pp_print_string ppf (Engine.to_string k) in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt engine_conv Engine.Interp
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine: interp (baseline interpreter), traced \
           (trace-compiled fast path), or selfcheck (traced with every fused \
           region cross-checked against the interpreter). Engines are \
           observably identical; they differ only in speed.")

let pipeline_config ~chunk_size ~spare ~max_groups ~affinity =
  let c = Pipeline.default_config in
  let allocator =
    {
      c.Pipeline.allocator with
      Group_alloc.chunk_size =
        Option.value chunk_size ~default:c.Pipeline.allocator.Group_alloc.chunk_size;
      spare_policy =
        (match spare with
        | Some n -> Group_alloc.Keep_spare n
        | None -> c.Pipeline.allocator.Group_alloc.spare_policy);
    }
  in
  let grouping =
    match max_groups with
    | Some n -> { c.Pipeline.grouping with Grouping.max_groups = Some n }
    | None -> c.Pipeline.grouping
  in
  let profiler =
    match affinity with
    | Some a -> { c.Pipeline.profiler with Profiler.affinity_distance = a }
    | None -> c.Pipeline.profiler
  in
  { c with Pipeline.allocator; grouping; profiler }

(* The one measurement formatter, shared by `run`, `baseline` and
   `telemetry`: a two-column Util.Table rather than ad-hoc printf. *)
let measurement_table ?baseline (m : Runner.measurement) =
  let t =
    Table.create
      ~title:(Printf.sprintf "%s / %s" m.Runner.workload (Runner.kind_name m.Runner.kind))
      ~headers:[ "metric"; "value" ] ()
  in
  Table.set_aligns t [ Table.Left; Table.Right ];
  let row k v = Table.add_row t [ k; v ] in
  row "workload" m.Runner.workload;
  row "configuration" (Runner.kind_name m.Runner.kind);
  row "instructions" (string_of_int m.Runner.instructions);
  row "accesses" (string_of_int m.Runner.counters.Hierarchy.accesses);
  row "L1D misses" (string_of_int m.Runner.counters.Hierarchy.l1_misses);
  row "L2 misses" (string_of_int m.Runner.counters.Hierarchy.l2_misses);
  row "L3 misses" (string_of_int m.Runner.counters.Hierarchy.l3_misses);
  row "DTLB misses" (string_of_int m.Runner.counters.Hierarchy.tlb_misses);
  row "cycles" (Printf.sprintf "%.0f" m.Runner.cycles);
  row "sim time" (Printf.sprintf "%.3f ms" (m.Runner.seconds *. 1e3));
  (match baseline with
  | Some b when b != m ->
      Table.add_rule t;
      row "vs jemalloc misses" (Table.fmt_pct (Runner.miss_reduction_vs ~baseline:b m));
      row "vs jemalloc time" (Table.fmt_pct (Runner.speedup_vs ~baseline:b m))
  | _ -> ());
  (match m.Runner.halo with
  | Some h ->
      Table.add_rule t;
      row "halo groups" (string_of_int h.Runner.groups);
      row "monitored sites" (string_of_int h.Runner.monitored_sites);
      row "graph nodes" (string_of_int h.Runner.graph_nodes);
      row "grouped mallocs" (string_of_int h.Runner.grouped_mallocs);
      row "chunks carved" (string_of_int h.Runner.chunks_carved);
      row "chunk reuses" (string_of_int h.Runner.chunk_reuses);
      row "fragmentation"
        (Printf.sprintf "%.2f%% (%s at peak)"
           (100.0 *. h.Runner.frag.Group_alloc.frag_pct)
           (Table.fmt_bytes h.Runner.frag.Group_alloc.frag_bytes))
  | None -> ());
  (match m.Runner.hds with
  | Some h ->
      Table.add_rule t;
      row "hds pools" (string_of_int h.Runner.pools);
      row "candidate streams" (string_of_int h.Runner.stream_count);
      row "selected streams" (string_of_int h.Runner.selected_streams);
      row "stream coverage" (Printf.sprintf "%.0f%%" (100.0 *. h.Runner.hds_coverage));
      row "trace length" (string_of_int h.Runner.trace_length)
  | None -> ());
  t

let print_measurement ?baseline m = Table.print (measurement_table ?baseline m)

(* Shared by `run --trace-out` and `telemetry`: an Obs context whose JSONL
   sink is the given file (when any). *)
let with_obs trace_out f =
  match trace_out with
  | None ->
      let obs = Obs.create () in
      let r = f obs in
      Obs.finish obs;
      r
  | Some path ->
      let oc =
        try open_out path
        with Sys_error msg ->
          Printf.eprintf "halo: cannot open trace file: %s\n" msg;
          exit 1
      in
      let obs = Obs.create ~sink:(Trace.to_channel oc) () in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          let r = f obs in
          Obs.finish obs;
          Printf.printf "trace written to %s\n" path;
          r)

(* Suites and fuzz campaigns fan out over a Par domain pool; measurement
   tables and oracle verdicts are bit-identical at any worker count. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the fan-out (default: the runtime's \
           recommended domain count). Output is bit-identical at any \
           $(docv).")

let effective_jobs = function
  | Some n -> max 1 n
  | None -> Par.default_jobs ()

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the run's telemetry (span + metric events) as JSONL to \
           $(docv).")

(* ---------------- persistent profile/plan store ---------------- *)

let or_die = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "halo: %s\n" (Store.error_to_string e);
      exit 1

let fmt_time t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let plan_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plan-cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed plan cache: HALO plans are stored under \
           $(docv) keyed by program and config digest, and warmed entries \
           answer repeat runs without re-profiling.")

let plan_cache_of = Option.map (fun dir -> Plan_cache.create dir)

let report_cache = function
  | None -> ()
  | Some cache ->
      let s = Plan_cache.stats cache in
      Printf.printf
        "plan cache (%s): %d hits, %d misses, %d stores (hit rate %.0f%%)\n"
        (Plan_cache.dir cache) s.Plan_cache.hits s.Plan_cache.misses
        s.Plan_cache.stores
        (100.0 *. Plan_cache.hit_rate s)

let profile_out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Artifact file to write.")

let format_conv =
  let parse s =
    match Store.format_of_string s with
    | Some f -> Ok f
    | None ->
        Error (`Msg (Printf.sprintf "unknown store format %S (want v1 or v2)" s))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (Store.format_to_string f))

let format_arg =
  Arg.(
    value & opt format_conv Store.V2
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Artifact container codec: $(b,v2) (compact binary, the \
           default) or $(b,v1) (JSONL). Readers auto-detect, so either \
           output feeds every other subcommand.")

let profile_record_cmd =
  let run w prof_seed affinity out format =
    let config =
      {
        Profiler.default_config with
        Profiler.seed = prof_seed;
        affinity_distance =
          Option.value affinity
            ~default:Profiler.default_config.Profiler.affinity_distance;
      }
    in
    let program = w.Workload.make Workload.Test in
    let result = Profiler.profile ~config program in
    or_die
      (Store.write_profile ~format ~path:out
         ~program_digest:(Ir_digest.program program)
         ~config ~producer:"halo_cli"
         ~extra_meta:[ ("workload", Json.String w.Workload.name) ]
         result);
    Printf.printf
      "recorded %s (seed %d) to %s (%s): %d contexts, %d tracked allocs, %d \
       macro accesses, %d graph nodes\n"
      w.Workload.name config.Profiler.seed out
      (Store.format_to_string format)
      (Context.count result.Profiler.contexts)
      result.Profiler.tracked_allocs result.Profiler.total_accesses
      (List.length (Affinity_graph.nodes result.Profiler.graph))
  in
  let prof_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Profiling input seed (default 1).")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Profile a workload's test-scale program and persist the result \
          as a versioned artifact (the pipeline's record phase).")
    Term.(
      const run $ workload_arg $ prof_seed_arg $ affinity_arg $ profile_out_arg
      $ format_arg)

let profile_files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"ARTIFACT" ~doc:"Recorded profile artifacts.")

let profile_merge_cmd =
  let run files weights out format jobs =
    let artifacts = List.map (fun f -> or_die (Store.read_profile f)) files in
    let weights =
      match weights with
      | None -> List.map (fun _ -> 1.0) artifacts
      | Some ws when List.length ws = List.length artifacts -> ws
      | Some ws ->
          Printf.eprintf "halo: %d weights for %d artifacts\n" (List.length ws)
            (List.length artifacts);
          exit 1
    in
    let jobs = effective_jobs jobs in
    let config, merged =
      or_die
        (Store.merge_profiles_sharded ~jobs (List.combine artifacts weights))
    in
    let first = List.hd artifacts in
    or_die
      (Store.write_profile ~format ~path:out
         ~program_digest:first.Store.header.Store.program_digest ~config
         ~producer:"halo_cli"
         ~extra_meta:
           [
             ("merged_inputs", Json.Int (List.length artifacts));
             ("weights", Json.List (List.map (fun w -> Json.Float w) weights));
           ]
         merged);
    Printf.printf
      "merged %d runs into %s (%s, %d jobs): %d contexts, %d macro accesses, \
       %d graph nodes\n"
      (List.length artifacts) out
      (Store.format_to_string format)
      jobs
      (Context.count merged.Profiler.contexts)
      merged.Profiler.total_accesses
      (List.length (Affinity_graph.nodes merged.Profiler.graph))
  in
  let weights_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "weights" ] ~docv:"W1,W2,..."
          ~doc:
            "Per-run weights, in artifact order (default: 1 each). Counts \
             are scaled before the merged noise filter runs.")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Combine several recorded runs of one program/config pair into a \
          single weighted profile artifact. The fold shards over worker \
          domains; the merged artifact is byte-identical at any $(b,--jobs).")
    Term.(
      const run $ profile_files_arg $ weights_arg $ profile_out_arg
      $ format_arg $ jobs_arg)

let profile_migrate_cmd =
  let run src out format =
    let h = or_die (Store.migrate ~format ~src out) in
    Printf.printf "migrated %s %s to %s (%s v%d)\n" h.Store.kind src out
      (Store.format_to_string format)
      h.Store.version
  in
  let src_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"ARTIFACT"
          ~doc:"Artifact to re-encode (profile or plan, either codec).")
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:
         "Re-encode an artifact into the other container codec, preserving \
          its header metadata — v1 to v2 to v1 round-trips byte for byte, \
          and both encodings decode and merge identically.")
    Term.(const run $ src_arg $ profile_out_arg $ format_arg)

(* `profile inspect --stats DIR`: the plan cache's cumulative ledger,
   read from the directory alone — no daemon, no profiling. *)
let inspect_cache_dir dir =
  let cache = Plan_cache.create dir in
  let s = Plan_cache.lifetime_stats cache in
  let entries = Plan_cache.entry_names cache in
  let t =
    Table.create
      ~title:(Printf.sprintf "plan cache %s" dir)
      ~headers:[ "field"; "value" ] ()
  in
  Table.set_aligns t [ Table.Left; Table.Right ];
  let row k v = Table.add_row t [ k; v ] in
  row "entries" (string_of_int (List.length entries));
  row "hits" (string_of_int s.Plan_cache.hits);
  row "misses" (string_of_int s.Plan_cache.misses);
  row "stores" (string_of_int s.Plan_cache.stores);
  row "evictions" (string_of_int s.Plan_cache.evictions);
  row "hit rate" (Table.fmt_pct (Plan_cache.hit_rate s));
  if entries <> [] then begin
    Table.add_rule t;
    List.iter
      (fun name ->
        let path = Filename.concat dir name in
        let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
        row name (Table.fmt_bytes size))
      entries
  end;
  Table.print t

let profile_inspect_cmd =
  let run file top stats =
    if stats then inspect_cache_dir file
    else begin
    let header = or_die (Store.read_header file) in
    let result =
      match header.Store.kind with
      | "profile" -> (or_die (Store.read_profile file)).Store.result
      | "plan" -> (snd (or_die (Store.read_plan file))).Pipeline.profile
      | k ->
          Printf.eprintf "halo: unknown artifact kind %S\n" k;
          exit 1
    in
    let t =
      Table.create ~title:(Filename.basename file)
        ~headers:[ "field"; "value" ] ()
    in
    Table.set_aligns t [ Table.Left; Table.Left ];
    let row k v = Table.add_row t [ k; v ] in
    row "format"
      (Printf.sprintf "%s v%d" Store.format_name header.Store.version);
    row "kind" header.Store.kind;
    row "program digest" header.Store.program_digest;
    row "config digest" header.Store.config_digest;
    row "created" (fmt_time header.Store.created);
    row "producer" header.Store.producer;
    List.iter
      (fun (k, v) -> row k (Json.to_string ~pretty:false v))
      header.Store.meta;
    Table.add_rule t;
    row "contexts" (string_of_int (Context.count result.Profiler.contexts));
    row "tracked allocs" (string_of_int result.Profiler.tracked_allocs);
    row "macro accesses" (string_of_int result.Profiler.total_accesses);
    let g = result.Profiler.graph in
    row "graph nodes" (string_of_int (List.length (Affinity_graph.nodes g)));
    row "graph edges" (string_of_int (List.length (Affinity_graph.edges g)));
    Table.print t;
    print_newline ();
    let edges =
      List.sort
        (fun (_, _, a) (_, _, b) -> compare b a)
        (Affinity_graph.edges g)
    in
    let e =
      Table.create
        ~title:(Printf.sprintf "top %d affinity edges" top)
        ~headers:[ "weight"; "ctx"; "accesses"; "ctx"; "accesses"; "sites" ]
        ()
    in
    Table.set_aligns e
      [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ];
    let chain id =
      Context.sites result.Profiler.contexts id
      |> Array.to_list
      |> List.map (Printf.sprintf "0x%x")
      |> String.concat ">"
    in
    List.iteri
      (fun i (x, y, w) ->
        if i < top then
          Table.add_row e
            [
              string_of_int w;
              string_of_int x;
              string_of_int (Affinity_graph.node_accesses g x);
              string_of_int y;
              string_of_int (Affinity_graph.node_accesses g y);
              Printf.sprintf "%s | %s" (chain x) (chain y);
            ])
      edges;
    Table.print e
    end
  in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"ARTIFACT"
          ~doc:
            "Artifact to inspect (profile or plan), or a plan-cache \
             directory with $(b,--stats).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"Affinity edges to show (by weight).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Treat the positional argument as a plan-cache directory and \
             print its cumulative hit/miss/store/eviction counters and \
             entries (persisted across processes by the cache's stats \
             ledger).")
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Render an artifact's header and hottest affinity edges, or a \
          plan-cache directory's counters with $(b,--stats).")
    Term.(const run $ file_arg $ top_arg $ stats_arg)

let profile_apply_cmd =
  let run w file seed chunk_size spare max_groups json_out =
    let program = w.Workload.make Workload.Test in
    let artifact =
      or_die
        (Store.read_profile ~expect_program:(Ir_digest.program program) file)
    in
    let pc =
      pipeline_config ~chunk_size ~spare ~max_groups ~affinity:None
    in
    let config =
      {
        pc with
        Pipeline.profiler = artifact.Store.config;
        grouping = w.Workload.halo_grouping pc.Pipeline.grouping;
        allocator = w.Workload.halo_allocator pc.Pipeline.allocator;
      }
    in
    let plan = Pipeline.derive ~config artifact.Store.result in
    let plan_source = Pipeline.constant_source plan in
    let baseline = Runner.run ~seed w Runner.Jemalloc in
    let m = Runner.run ~seed ~plan_source w Runner.Halo in
    print_measurement ~baseline m;
    match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Json.to_channel oc (Runner.to_json ~baseline m);
        close_out oc;
        Printf.printf "data points written to %s\n" path
  in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"ARTIFACT"
          ~doc:"Recorded (or merged) profile artifact to apply.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the run's data points as JSON.")
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:
         "Derive a plan from a recorded profile artifact and measure the \
          workload under it (the pipeline's apply phase) — no profiler run \
          involved.")
    Term.(
      const run $ workload_arg $ file_arg $ seed_arg $ chunk_size_arg
      $ spare_arg $ max_groups_arg $ json_arg)

let profile_cmd =
  Cmd.group
    (Cmd.info "profile"
       ~doc:
         "Persistent profiling artifacts: record runs, merge them across \
          inputs, inspect them, migrate them between codecs, and apply \
          them without re-profiling.")
    [
      profile_record_cmd;
      profile_merge_cmd;
      profile_inspect_cmd;
      profile_migrate_cmd;
      profile_apply_cmd;
    ]

let run_cmd =
  let run w kind seed engine chunk_size spare max_groups affinity json_out
      trace_out =
    let pc = pipeline_config ~chunk_size ~spare ~max_groups ~affinity in
    let baseline = Runner.run ~engine ~seed w Runner.Jemalloc in
    let measured obs =
      if kind = Runner.Jemalloc then Runner.run ?obs ~engine ~seed w kind
      else Runner.run ?obs ~engine ~seed ~pipeline_config:pc w kind
    in
    let m =
      match trace_out with
      | None -> if kind = Runner.Jemalloc then baseline else measured None
      | Some _ -> with_obs trace_out (fun obs -> measured (Some obs))
    in
    print_measurement ~baseline m;
    match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Json.to_channel oc (Runner.to_json ~baseline m);
        close_out oc;
        Printf.printf "data points written to %s\n" path
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the run's data points as JSON (A.6 workflow).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Measure a workload under a configuration.")
    Term.(
      const run $ workload_arg $ kind_arg $ seed_arg $ engine_arg
      $ chunk_size_arg $ spare_arg $ max_groups_arg $ affinity_arg $ json_arg
      $ trace_out_arg)

let top_arg =
  Arg.(
    value & opt int 10
    & info [ "top" ] ~docv:"N" ~doc:"Entries to show per ranked table.")

let telemetry_run_cmd =
  let run w kind seed chunk_size spare max_groups affinity trace_out top =
    let pc = pipeline_config ~chunk_size ~spare ~max_groups ~affinity in
    with_obs trace_out (fun obs ->
        let m = Runner.run ~obs ~seed ~pipeline_config:pc w kind in
        print_measurement m;
        print_newline ();
        print_endline "span tree (wall clock; retired instructions where measured):";
        print_string (Obs.span_tree_string obs);
        print_newline ();
        Printf.printf "top %d metrics by volume:\n" top;
        print_string (Obs.top_metrics_string ~n:top obs))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run a workload/configuration pair with full observability: print \
          the pipeline span tree and the hottest metrics, optionally \
          exporting the JSONL trace.")
    Term.(
      const run $ workload_arg $ kind_arg $ seed_arg $ chunk_size_arg $ spare_arg
      $ max_groups_arg $ affinity_arg $ trace_out_arg $ top_arg)

let load_telemetry path =
  match Telemetry.load path with
  | Ok t -> t
  | Error e ->
      Printf.eprintf "halo: %s: %s\n" path e;
      exit 1

let telemetry_report_cmd =
  let run file top = print_string (Telemetry.report_string ~top (load_telemetry file)) in
  let file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"TRACE.jsonl" ~doc:"JSONL trace to analyse.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyse a recorded JSONL trace: per-stage self-vs-total time, the \
          longest spans, and every metric's summary (histogram quantiles \
          re-derived from the merged sketches).")
    Term.(const run $ file_arg $ top_arg)

let telemetry_diff_cmd =
  let run file_a file_b threshold =
    let a = load_telemetry file_a and b = load_telemetry file_b in
    let table, regressed = Telemetry.diff_table ~threshold a b in
    Table.print table;
    if regressed then begin
      Printf.printf "metrics moved beyond %.0f%% (marked !)\n" (100.0 *. threshold);
      exit 1
    end
  in
  let file_a_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"A.jsonl" ~doc:"Baseline trace.")
  in
  let file_b_arg =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"B.jsonl" ~doc:"Candidate trace.")
  in
  let threshold_arg =
    Arg.(
      value & opt float 0.10
      & info [ "threshold" ] ~docv:"FRACTION"
          ~doc:
            "Flag metrics whose representative statistic (counter value, \
             gauge level, histogram p99) moves by more than $(docv); exit 1 \
             when any does.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two recorded JSONL traces metric by metric; exits non-zero \
          when any metric moves beyond the threshold.")
    Term.(const run $ file_a_arg $ file_b_arg $ threshold_arg)

let telemetry_cmd =
  Cmd.group
    (Cmd.info "telemetry"
       ~doc:
         "Observability tooling: run a workload with full telemetry, analyse \
          a recorded trace, or diff two traces with a regression threshold.")
    [ telemetry_run_cmd; telemetry_report_cmd; telemetry_diff_cmd ]

let baseline_cmd =
  let run w seed =
    print_measurement (Runner.run ~seed w Runner.Jemalloc)
  in
  Cmd.v
    (Cmd.info "baseline" ~doc:"Measure a workload under plain jemalloc.")
    Term.(const run $ workload_arg $ seed_arg)

let plan_cmd =
  let run w dot_file affinity =
    let pc =
      pipeline_config ~chunk_size:None ~spare:None ~max_groups:None ~affinity
    in
    let config =
      {
        pc with
        Pipeline.grouping = w.Workload.halo_grouping pc.Pipeline.grouping;
        allocator = w.Workload.halo_allocator pc.Pipeline.allocator;
      }
    in
    let program = w.Workload.make Workload.Test in
    let plan = Pipeline.plan ~config program in
    print_string (Pipeline.describe plan ~site_label:(Ir.site_label program));
    match dot_file with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc
          (Pipeline.graph_dot plan ~site_label:(Ir.site_label program));
        close_out oc;
        Printf.printf "affinity graph written to %s\n" path
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Write the grouped affinity graph (Figure 9 analog) as dot.")
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Show the HALO optimisation plan for a workload.")
    Term.(const run $ workload_arg $ dot_arg $ affinity_arg)

let sweep_cmd =
  let run distances =
    let distances = match distances with [] -> None | l -> Some l in
    Table.print (Figures.fig12 ?distances ())
  in
  let distances_arg =
    Arg.(
      value & opt (list int) []
      & info [ "distances" ] ~docv:"A,B,..."
          ~doc:"Affinity distances to sweep (default 8..131072, powers of 2).")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Figure 12: omnetpp execution time across affinity distances.")
    Term.(const run $ distances_arg)

let figures_cmd =
  let run which jobs engine plan_cache trace_out =
    let jobs = effective_jobs jobs in
    let cache = plan_cache_of plan_cache in
    let plan_source = Option.map Plan_cache.source cache in
    let obs = Option.map (fun _ -> Obs.create ()) trace_out in
    (match which with
    | "all" -> Figures.print_all ~jobs ?obs ~engine ?plan_source ()
    | "fig12" -> Table.print (Figures.fig12 ())
    | "drift" -> Table.print (Figures.drift_study ~jobs ())
    | "sec51" -> Table.print (Figures.sec51_baseline ())
    | "overhead" -> Table.print (Figures.overhead_control ())
    | "ablation" ->
        Table.print (Figures.ablation_grouping ());
        Table.print (Figures.ablation_packing ());
        Table.print (Figures.ablation_identification ());
        Table.print (Figures.ablation_backend ());
        Table.print (Figures.ablation_sampling ())
    | "fig13" | "fig14" | "fig15" | "tab1" | "diag" ->
        let suite = Figures.run_suite ~jobs ?obs ~engine ?plan_source () in
        let t =
          match which with
          | "fig13" -> Figures.fig13 suite
          | "fig14" -> Figures.fig14 suite
          | "fig15" -> Figures.fig15 suite
          | "tab1" -> Figures.tab1 suite
          | _ -> Figures.hds_diagnostics suite
        in
        Table.print t
    | other ->
        Printf.eprintf "unknown figure %S\n" other;
        exit 2);
    (match (obs, trace_out) with
    | Some obs, Some path ->
        Obs.finish obs;
        Trace_event.write ~path obs;
        Printf.printf "\nChrome trace written to %s (load in Perfetto)\n" path
    | _ -> ());
    report_cache cache
  in
  let which_arg =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"FIGURE"
          ~doc:
            "One of: all, fig12, fig13, fig14, fig15, tab1, sec51, overhead, \
             diag, ablation, drift.")
  in
  let figures_trace_arg =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Export the suite run's span timeline as a Chrome trace-event \
             JSON file (one track per worker domain; open in Perfetto or \
             chrome://tracing).")
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures.")
    Term.(
      const run $ which_arg $ jobs_arg $ engine_arg $ plan_cache_arg
      $ figures_trace_arg)

let contexts_cmd =
  let run w =
    let program = w.Workload.make Workload.Test in
    let r = Profiler.profile program in
    let label = Ir.site_label program in
    let graph = r.Profiler.graph in
    Printf.printf
      "%d contexts observed; %d tracked allocations; %d macro accesses\n\n"
      (Context.count r.Profiler.contexts)
      r.Profiler.tracked_allocs r.Profiler.total_accesses;
    Context.fold r.Profiler.contexts ~init:() ~f:(fun () id _sites ->
        Printf.printf "ctx %3d  %8d accesses%s  %s\n" id
          (Affinity_graph.node_accesses r.Profiler.raw_graph id)
          (if Affinity_graph.node_accesses graph id > 0 then "" else " (filtered)")
          (Context.label r.Profiler.contexts label id))
  in
  Cmd.v
    (Cmd.info "contexts"
       ~doc:"Profile a workload and list its allocation contexts.")
    Term.(const run $ workload_arg)

let disasm_cmd =
  let run w scale_name stats =
    let scale =
      match scale_name with
      | "test" -> Workload.Test
      | "train" -> Workload.Train
      | _ -> Workload.Ref
    in
    let program = w.Workload.make scale in
    if stats then print_string (Ir_analysis.stats_to_string (Ir_analysis.analyse program))
    else print_string (Ir_print.program_to_string program)
  in
  let scale_arg =
    Arg.(
      value & opt string "test"
      & info [ "scale" ] ~docv:"SCALE" ~doc:"test, train or ref.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print call-graph statistics instead of the IR.")
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Pretty-print a workload's IR with site addresses.")
    Term.(const run $ workload_arg $ scale_arg $ stats_arg)

let fuzz_cmd =
  let run seeds seed_base ref_scale engine time_budget replay corpus
      shrink_steps jobs trace_out plan_cache digests_out digests_check =
    let cache = plan_cache_of plan_cache in
    match (replay, digests_out, digests_check) with
    | None, Some path, _ ->
        (* Record the seed set's semantics: reference digests, plan shape
           and allocator-stat totals, one JSON record per seed. *)
        let records =
          Fuzz_harness.digest_sweep ~ref_scale ~seed_base ~engine ~seeds ()
        in
        let failing = List.filter (fun r -> r.Fuzz_harness.d_failures > 0) records in
        if failing <> [] then begin
          List.iter
            (fun r ->
              Printf.printf "seed %d: %d oracle failures\n" r.Fuzz_harness.d_seed
                r.Fuzz_harness.d_failures)
            failing;
          print_endline "refusing to record a corpus with oracle failures";
          exit 1
        end;
        Fuzz_harness.save_digests ~path ~ref_scale records;
        Printf.printf "recorded %d case digests to %s\n" (List.length records) path
    | None, None, Some path -> (
        match Fuzz_harness.load_digests ~path with
        | Error e ->
            Printf.eprintf "halo: %s\n" e;
            exit 1
        | Ok (ref_scale, expected) -> (
            let got =
              Fuzz_harness.digest_sweep ~ref_scale
                ~seed_base:
                  (match expected with
                  | r :: _ -> r.Fuzz_harness.d_seed
                  | [] -> 1)
                ~engine ~seeds:(List.length expected) ()
            in
            match Fuzz_harness.check_digests ~expected got with
            | [] ->
                Printf.printf
                  "digest check: %d cases identical to %s (access digests, \
                   contexts, plans, allocator stats)\n"
                  (List.length expected) path
            | mismatches ->
                List.iter print_endline mismatches;
                Printf.printf "digest check: %d mismatches against %s\n"
                  (List.length mismatches) path;
                exit 1))
    | Some seed, _, _ ->
        let case, result = Fuzz_harness.replay ~ref_scale ~engine seed in
        Printf.printf "seed %d: %d trace decisions, %d IR statements (ref)\n"
          seed
          (Array.length case.Fuzz_gen.trace)
          (Fuzz_gen.stmt_count case.Fuzz_gen.ref_);
        let s = result.Fuzz_oracle.stats in
        Printf.printf
          "%d configurations, %d allocations, %d accesses, %d groups, %d \
           monitored sites\n"
          s.Fuzz_oracle.configs s.Fuzz_oracle.allocs s.Fuzz_oracle.accesses
          s.Fuzz_oracle.groups s.Fuzz_oracle.monitored;
        (match result.Fuzz_oracle.failures with
        | [] -> print_endline "oracle: pass"
        | fs ->
            List.iter
              (fun (f : Fuzz_oracle.failure) ->
                Printf.printf "FAIL [%s] %s\n" f.Fuzz_oracle.config
                  f.Fuzz_oracle.reason)
              fs;
            exit 1)
    | None, None, None ->
        let summary =
          with_obs trace_out (fun obs ->
              Fuzz_harness.run
                {
                  Fuzz_harness.default with
                  Fuzz_harness.seeds;
                  seed_base;
                  ref_scale;
                  time_budget;
                  corpus_dir = corpus;
                  shrink_steps;
                  engine;
                  plan_source = Option.map Plan_cache.source cache;
                  jobs = effective_jobs jobs;
                  obs = Some obs;
                  log = Some print_endline;
                })
        in
        Printf.printf
          "%d cases in %.1fs: %d oracle violations (%d allocations, %d \
           accesses checked)\n"
          summary.Fuzz_harness.cases summary.Fuzz_harness.elapsed_s
          summary.Fuzz_harness.violations summary.Fuzz_harness.allocs
          summary.Fuzz_harness.accesses;
        report_cache cache;
        (match summary.Fuzz_harness.failing_seeds with
        | [] -> ()
        | l ->
            Printf.printf "failing seeds: %s\n"
              (String.concat ", " (List.map string_of_int l));
            List.iter
              (fun r ->
                Printf.printf
                  "\nseed %d shrunk to %d statements (replay with --replay \
                   %d):\n%s"
                  r.Fuzz_harness.seed r.Fuzz_harness.shrunk_stmts
                  r.Fuzz_harness.seed r.Fuzz_harness.shrunk_program)
              summary.Fuzz_harness.reports;
            exit 1)
  in
  let seeds_arg =
    Arg.(
      value & opt int 200
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let seed_base_arg =
    Arg.(
      value & opt int 1
      & info [ "seed-base" ] ~docv:"N" ~doc:"First seed of the campaign.")
  in
  let ref_scale_arg =
    Arg.(
      value & opt int 3
      & info [ "ref-scale" ] ~docv:"N"
          ~doc:"Loop-scale multiplier for measurement programs.")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Stop starting new cases after $(docv).")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:
            "Rebuild one seed's case, run the oracle once and exit — \
             bit-for-bit the campaign's view of that seed.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Save failing cases (seed, trace, minimal program) as JSON.")
  in
  let shrink_arg =
    Arg.(
      value & opt int 2000
      & info [ "shrink-steps" ] ~docv:"N"
          ~doc:"Shrink budget (oracle replays) per failing case.")
  in
  let digests_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "digests-out" ] ~docv:"FILE"
          ~doc:
            "Record the seed set's semantics (reference digests, plan \
             shape, allocator stats) to $(docv) instead of running a \
             campaign; fails if any seed violates the oracle.")
  in
  let digests_check_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "digests-check" ] ~docv:"FILE"
          ~doc:
            "Re-run the seed set recorded in $(docv) and fail on any \
             semantic divergence from the recorded digests.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generative differential testing: sweep seeds through the full \
          pipeline, checking semantic equivalence across allocator \
          configurations, heap invariants and plan well-formedness; shrink \
          and report any failure.")
    Term.(
      const run $ seeds_arg $ seed_base_arg $ ref_scale_arg $ engine_arg
      $ budget_arg $ replay_arg $ corpus_arg $ shrink_arg $ jobs_arg
      $ trace_out_arg $ plan_cache_arg $ digests_out_arg $ digests_check_arg)

(* ---------------- continuous-profiling service mode ---------------- *)

let serve_cmd =
  let run stdin_batch socket simulate jobs plan_cache staleness chunk_size
      spare max_groups affinity trace_out clients rounds record_prob drift
      sim_seed json_out =
    let jobs = effective_jobs jobs in
    let cache = plan_cache_of plan_cache in
    let pc = pipeline_config ~chunk_size ~spare ~max_groups ~affinity in
    let cfg =
      { Serve.jobs; staleness_weight = staleness; pipeline = pc; cache }
    in
    let modes =
      (if stdin_batch then 1 else 0)
      + (match socket with Some _ -> 1 | None -> 0)
      + if simulate then 1 else 0
    in
    if modes <> 1 then begin
      Printf.eprintf
        "halo: serve needs exactly one of --stdin-batch, --socket PATH or \
         --simulate\n";
      exit 2
    end;
    (* Not with_obs: stdout is the response stream in --stdin-batch mode,
       so the trace notice goes to stderr. *)
    let serve_with_obs f =
      match trace_out with
      | None ->
          let obs = Obs.create () in
          let r = f obs in
          Obs.finish obs;
          r
      | Some path ->
          let oc =
            try open_out path
            with Sys_error msg ->
              Printf.eprintf "halo: cannot open trace file: %s\n" msg;
              exit 1
          in
          let obs = Obs.create ~sink:(Trace.to_channel oc) () in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              let r = f obs in
              Obs.finish obs;
              Printf.eprintf "trace written to %s\n" path;
              r)
    in
    serve_with_obs (fun obs ->
        if stdin_batch then begin
          let engine = Serve.create ~obs cfg in
          let n = Serve.run_channels engine stdin stdout in
          Printf.eprintf "served %d responses\n" n
        end
        else
          match socket with
          | Some path ->
              let engine = Serve.create ~obs cfg in
              Printf.eprintf "listening on %s\n%!" path;
              let n = Serve.run_socket engine ~path in
              Printf.eprintf "served %d responses\n" n
          | None ->
              let sim_cfg =
                {
                  Serve_sim.clients;
                  rounds;
                  record_prob;
                  drift;
                  seed = sim_seed;
                  serve = cfg;
                }
              in
              let r = Serve_sim.run ~obs sim_cfg in
              Table.print (Serve_sim.report_table r);
              (match json_out with
              | None -> ()
              | Some path ->
                  let oc = open_out path in
                  Json.to_channel oc (Serve_sim.report_to_json r);
                  close_out oc;
                  Printf.printf "report written to %s\n" path))
  in
  let stdin_arg =
    Arg.(
      value & flag
      & info [ "stdin-batch" ]
          ~doc:
            "Read every job line from stdin, answer each on stdout in \
             order, then exit (the CI/test mode). Responses are \
             byte-identical at any $(b,--jobs) count.")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve jobs over a Unix-domain socket at $(docv) until a \
             shutdown job arrives.")
  in
  let simulate_arg =
    Arg.(
      value & flag
      & info [ "simulate" ]
          ~doc:
            "Run the fleet simulator against an in-process engine and \
             print the report (hit rates, merge throughput, latency \
             quantiles).")
  in
  let staleness_arg =
    Arg.(
      value
      & opt float Serve.default_staleness_weight
      & info [ "staleness-weight" ] ~docv:"W"
          ~doc:
            "New profile mass (merge weight) that invalidates a derived \
             plan; the next request re-derives from the aggregate.")
  in
  let clients_arg =
    Arg.(
      value & opt int 1000
      & info [ "clients" ] ~docv:"N" ~doc:"Simulated clients per round.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 20
      & info [ "rounds" ] ~docv:"N" ~doc:"Simulation rounds (one batch each).")
  in
  let record_prob_arg =
    Arg.(
      value & opt float 0.02
      & info [ "record-prob" ] ~docv:"P"
          ~doc:"Per-client-per-round profile upload probability.")
  in
  let drift_arg =
    Arg.(
      value & opt float 0.25
      & info [ "drift" ] ~docv:"P"
          ~doc:"Per-round workload-popularity rotation probability.")
  in
  let sim_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N" ~doc:"Simulator RNG seed.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the simulation report as JSON.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Continuous-profiling service: accept line-delimited JSON jobs \
          (profile-record, plan-request, stats, shutdown) over stdin or a \
          Unix socket, folding profiles into per-program aggregates and \
          answering plan requests from the plan cache — or simulate a \
          whole fleet against it.")
    Term.(
      const run $ stdin_arg $ socket_arg $ simulate_arg $ jobs_arg
      $ plan_cache_arg $ staleness_arg $ chunk_size_arg $ spare_arg
      $ max_groups_arg $ affinity_arg $ trace_out_arg $ clients_arg
      $ rounds_arg $ record_prob_arg $ drift_arg $ sim_seed_arg $ json_arg)

(* ---------------- shaped multi-tenant traffic mode ---------------- *)

let traffic_spec_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "spec" ] ~docv:"FILE"
        ~doc:
          "Mix-spec file describing the schedule (one $(b,phase) or \
           $(b,pause) directive per line; see the README for the \
           grammar). When absent, a built-in drifting schedule is used, \
           shaped by $(b,--drift), $(b,--phases), $(b,--ticks-per-phase) \
           and $(b,--rate).")

let traffic_drift_arg =
  Arg.(
    value & opt float 0.5
    & info [ "drift" ] ~docv:"R"
        ~doc:
          "Expected popularity-ranking rotations per phase of the \
           built-in drifting schedule (error-diffused, so 0.25 rotates \
           exactly once every four phases).")

let traffic_phases_arg =
  Arg.(
    value & opt int 6
    & info [ "phases" ] ~docv:"N" ~doc:"Epochs in the drifting schedule.")

let traffic_ticks_arg =
  Arg.(
    value & opt int 2
    & info [ "ticks-per-phase" ] ~docv:"N" ~doc:"Ticks per epoch.")

let traffic_rate_arg =
  Arg.(
    value & opt float 4.0
    & info [ "rate" ] ~docv:"R"
        ~doc:"Jobs per tick of the drifting schedule.")

let traffic_workloads_arg =
  Arg.(
    value & opt (list string) []
    & info [ "workloads" ] ~docv:"W1,W2,..."
        ~doc:
          "Workloads the drifting schedule's popularity ranking rotates \
           over (default: the full registry).")

let traffic_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N" ~doc:"Traffic seed (per-job seed streams).")

let traffic_schedule ~spec ~workloads ~ticks_per_phase ~rate ~phases ~drift =
  match spec with
  | Some path -> (
      match
        Schedule.of_spec (In_channel.with_open_bin path In_channel.input_all)
      with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "halo: %s: %s\n" path e;
          exit 1)
  | None ->
      let workloads = match workloads with [] -> None | l -> Some l in
      Schedule.drifting ?workloads ~ticks_per_phase ~rate ~phases ~drift ()

let traffic_run_cmd =
  let run spec workloads ticks_per_phase rate phases drift seed plan_budget
      reprofile_every window engine tenants trace_out json_out =
    let sched =
      traffic_schedule ~spec ~workloads ~ticks_per_phase ~rate ~phases ~drift
    in
    let config =
      {
        Traffic_mix.default_config with
        Traffic_mix.plan_budget;
        reprofile_every;
        window;
        engine;
      }
    in
    let r =
      with_obs trace_out (fun obs -> Traffic_mix.run ~obs ~config ~seed sched)
    in
    Table.print (Traffic_mix.report_table r);
    if tenants then begin
      print_newline ();
      Table.print (Traffic_mix.tenant_table r)
    end;
    match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Json.to_channel oc (Traffic_mix.report_to_json r);
        close_out oc;
        Printf.printf "report written to %s\n" path
  in
  let plan_budget_arg =
    Arg.(
      value & opt int Traffic_mix.default_config.Traffic_mix.plan_budget
      & info [ "plan-budget" ] ~docv:"K"
          ~doc:"Hottest-K workloads holding live plans at once.")
  in
  let reprofile_arg =
    Arg.(
      value & opt int 2
      & info [ "reprofile-every" ] ~docv:"TICKS"
          ~doc:
            "Ticks between hot-set re-plans; 0 plans once at tick 0 and \
             lets the plan age forever (the stale baseline).")
  in
  let window_arg =
    Arg.(
      value & opt int Traffic_mix.default_config.Traffic_mix.window
      & info [ "window" ] ~docv:"TICKS"
          ~doc:"Ticks of traffic history that vote on the hot set.")
  in
  let tenants_arg =
    Arg.(
      value & flag
      & info [ "tenants" ] ~doc:"Also print the per-tenant breakdown.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full report (tenants, phases) as JSON.")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a traffic schedule's job stream against one shared heap \
          with HALO plans applied per workload under a plan budget; \
          report coverage, miss rate and plan age per phase and tenant.")
    Term.(
      const run $ traffic_spec_arg $ traffic_workloads_arg $ traffic_ticks_arg
      $ traffic_rate_arg $ traffic_phases_arg $ traffic_drift_arg
      $ traffic_seed_arg $ plan_budget_arg $ reprofile_arg $ window_arg
      $ engine_arg $ tenants_arg $ trace_out_arg $ json_arg)

let traffic_study_cmd =
  let run drifts cadences phases ticks_per_phase rate workloads seed jobs
      trace_out json_out =
    let jobs = effective_jobs jobs in
    let p =
      {
        Traffic_study.default_params with
        Traffic_study.drifts;
        cadences;
        phases;
        ticks_per_phase;
        rate;
        workloads = (match workloads with [] -> None | l -> Some l);
        seed;
      }
    in
    let study =
      with_obs trace_out (fun obs -> Traffic_study.run ~obs ~jobs p)
    in
    Table.print (Traffic_study.table study);
    match json_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Json.to_channel oc (Traffic_study.to_json study);
        close_out oc;
        Printf.printf "study written to %s\n" path
  in
  let drifts_arg =
    Arg.(
      value
      & opt (list float) Traffic_study.default_params.Traffic_study.drifts
      & info [ "drifts" ] ~docv:"R1,R2,..."
          ~doc:"Drift rates (ranking rotations per epoch) to sweep.")
  in
  let cadences_arg =
    Arg.(
      value
      & opt (list int) Traffic_study.default_params.Traffic_study.cadences
      & info [ "cadences" ] ~docv:"T1,T2,..."
          ~doc:
            "Re-profile cadences (ticks) to sweep; keep 0 in the list — \
             it is the stale baseline the verdict column compares \
             against.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write every cell's full report as JSON.")
  in
  Cmd.v
    (Cmd.info "study"
       ~doc:
         "The plan-staleness drift study: sweep drift rate x re-profile \
          cadence over the shared drifting traffic shape and report when \
          re-profiling (charged at one cycle per profiled access) beats \
          running on a stale plan. Cells fan out over --jobs with \
          byte-identical results.")
    Term.(
      const run $ drifts_arg $ cadences_arg $ traffic_phases_arg
      $ traffic_ticks_arg $ traffic_rate_arg $ traffic_workloads_arg
      $ traffic_seed_arg $ jobs_arg $ trace_out_arg $ json_arg)

let traffic_events_cmd =
  let run spec workloads ticks_per_phase rate phases drift seed dump =
    let sched =
      traffic_schedule ~spec ~workloads ~ticks_per_phase ~rate ~phases ~drift
    in
    let events = Schedule.events ~seed sched in
    if dump then
      List.iter
        (fun (e : Schedule.event) ->
          Printf.printf "%4d %2d %-12s %-12s %-10s %d\n" e.Schedule.ev_tick
            e.Schedule.ev_phase e.Schedule.ev_label e.Schedule.ev_tenant
            e.Schedule.ev_workload e.Schedule.ev_seed)
        events;
    Printf.printf "%d events, digest %s\n" (List.length events)
      (Schedule.digest events)
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ]
          ~doc:"Print every event (tick, phase, tenant, workload, seed).")
  in
  Cmd.v
    (Cmd.info "events"
       ~doc:
         "Lower a schedule to its deterministic event stream and print \
          its FNV-1a digest — the identity the golden test and the CI \
          smoke pin.")
    Term.(
      const run $ traffic_spec_arg $ traffic_workloads_arg $ traffic_ticks_arg
      $ traffic_rate_arg $ traffic_phases_arg $ traffic_drift_arg
      $ traffic_seed_arg $ dump_arg)

let traffic_cmd =
  Cmd.group
    (Cmd.info "traffic"
       ~doc:
         "Shaped, drifting, multi-tenant workload traffic: execute a mix \
          schedule against one shared heap, sweep the plan-staleness \
          drift study, or digest a schedule's event stream.")
    [ traffic_run_cmd; traffic_study_cmd; traffic_events_cmd ]

let list_cmd =
  let run () =
    List.iter
      (fun w -> Printf.printf "%-10s %s\n" w.Workload.name w.Workload.description)
      Workloads.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available workloads.") Term.(const run $ const ())

let () =
  let info =
    Cmd.info "halo" ~version:"1.0.0"
      ~doc:"HALO post-link heap-layout optimisation (simulated reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; baseline_cmd; telemetry_cmd; plan_cmd; profile_cmd;
            serve_cmd; traffic_cmd; sweep_cmd; figures_cmd; fuzz_cmd;
            disasm_cmd; contexts_cmd; list_cmd;
          ]))
