(* Benchmark harness.

   Two halves:

   - the experiment harness, which regenerates every table and figure of
     the paper's evaluation (Figures 12-15, Table 1, the Section 5.1
     baseline comparison, the Section 5.2 instrumentation control and
     model-size diagnostics, plus two ablations) with the reproduction's
     measured values printed beside the paper's reported ones;

   - Bechamel micro-benchmarks of the core algorithms (one Test.make per
     component), which measure the toolchain itself rather than the
     simulated machine.

   Usage:
     dune exec bench/main.exe                 # experiments + micro-benches
     dune exec bench/main.exe -- experiments  # experiments only
     dune exec bench/main.exe -- micro        # micro-benches only
     dune exec bench/main.exe -- obs          # telemetry-overhead comparison
     dune exec bench/main.exe -- fig12 | fig13 | fig14 | fig15 | tab1
                               | sec51 | overhead | diag | ablation

   `--seed N` (anywhere on the command line) pins the measurement input
   seed for the suite-backed figures (fig13/14/15, tab1, diag) and sets
   the base seed for `trials N`, making benchmark runs reproducible.

   `--jobs N` (anywhere on the command line) fans the suite's
   workload×config×seed cells out over N worker domains (default: the
   runtime's recommended domain count). Every cell simulates its own
   machine, so tables are bit-identical at any N; the Bechamel
   micro-benches and the obs-overhead comparison stay sequential because
   they measure wall-clock throughput of this host.

   `--plan-cache DIR` (anywhere on the command line) routes suite-backed
   runs through the persistent plan cache: a warmed cache answers every
   Pipeline.plan call from disk, so no run re-profiles.

   `--check BENCH_<date>.json` (anywhere on the command line) turns the
   run into a regression gate: the hot path is measured (if the chosen
   subcommand didn't already) and compared against the committed baseline
   file — exit 1 if events/s or wall time regresses beyond
   `--check-threshold` (default 0.10). `--handicap F` multiplies every
   measured hot-path duration by F, a test hook that proves the gate
   trips on a synthetic slowdown.

   Every invocation appends a machine-readable record of what it ran to
   `BENCH_<date>.json` in the working directory (per-suite wall time and
   events/s with per-trial quantiles, plan-cache hit rate, label and run
   config) — CI uploads it as an artifact so cache effectiveness is
   visible per run. *)

let seed_override = ref None

let jobs_override = ref None

let jobs () =
  match !jobs_override with Some j -> max 1 j | None -> Par.default_jobs ()

let plan_cache_dir = ref None

let plan_cache_memo = ref None

let plan_cache () =
  match !plan_cache_dir with
  | None -> None
  | Some dir -> (
      match !plan_cache_memo with
      | Some c -> Some c
      | None ->
          let c = Plan_cache.create dir in
          plan_cache_memo := Some c;
          Some c)

let plan_source () = Option.map Plan_cache.source (plan_cache ())

(* `--label` names the run in BENCH_<date>.json's hotpath section, so a
   baseline measurement and a post-optimisation one sit side by side in
   the same-day artifact. *)
let bench_label = ref "current"

(* `--check FILE` gates the run against a committed BENCH_<date>.json:
   exit 1 when throughput or wall time regresses beyond the threshold.
   `--handicap F` multiplies every measured hot-path duration by F — a
   test hook that injects a synthetic slowdown to prove the gate trips. *)
let check_file = ref None
let check_threshold = ref Bench_check.default_threshold
let handicap = ref 1.0

(* ------------------------------------------------------------------ *)
(* BENCH_<date>.json: per-suite wall time and cache effectiveness.     *)
(* ------------------------------------------------------------------ *)

let bench_records : (string * float * Plan_cache.stats) list ref = ref []

(* (workload, config, events, median events/s, per-trial events/s) rows
   from `--hotpath`. *)
let hotpath_records : (string * string * int * float * float list) list ref =
  ref []

(* Suite-level events/s where one is meaningful (filled by `--hotpath`:
   total events over total measured time). *)
let suite_eps : (string, float) Hashtbl.t = Hashtbl.create 4

let cache_snapshot () =
  match plan_cache () with
  | Some c -> Plan_cache.stats c
  | None -> { Plan_cache.hits = 0; misses = 0; stores = 0; evictions = 0 }

let timed name f =
  let before = cache_snapshot () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  let after = cache_snapshot () in
  let delta =
    {
      Plan_cache.hits = after.Plan_cache.hits - before.Plan_cache.hits;
      misses = after.Plan_cache.misses - before.Plan_cache.misses;
      stores = after.Plan_cache.stores - before.Plan_cache.stores;
      evictions = after.Plan_cache.evictions - before.Plan_cache.evictions;
    }
  in
  bench_records := (name, dt, delta) :: !bench_records;
  r

let bench_date () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let write_bench_report () =
  match !bench_records with
  | [] -> ()
  | records ->
      let path = Printf.sprintf "BENCH_%s.json" (bench_date ()) in
      (* Same-day invocations accumulate: a cold run followed by a warmed
         --plan-cache run leaves both wall times side by side in one
         artifact — likewise a `--label baseline` hotpath run followed by
         a `--label optimised` one. *)
      let earlier_fields =
        if not (Sys.file_exists path) then []
        else
          match Json.of_string (In_channel.with_open_bin path In_channel.input_all) with
          | Ok (Json.Obj fields) -> fields
          | _ -> []
      in
      let earlier_list key =
        match List.assoc_opt key earlier_fields with
        | Some (Json.List l) -> l
        | _ -> []
      in
      let earlier = earlier_list "suites" in
      (* Per-trial quantiles through the same sketch every exporter uses;
         with few trials p50/p90/p99 collapse towards the extremes, but
         the shape is forward-compatible with longer campaigns. *)
      let percentiles trials =
        match trials with
        | [] -> []
        | _ ->
            let h = Metrics.histogram (Metrics.create ()) "eps" in
            List.iter (Metrics.observe h) trials;
            let q p =
              match Metrics.quantile h p with
              | Some v -> Json.Float v
              | None -> Json.Null
            in
            [
              ( "percentiles",
                Json.Obj [ ("p50", q 0.5); ("p90", q 0.9); ("p99", q 0.99) ] );
            ]
      in
      let hotpath =
        earlier_list "hotpath"
        @ List.rev_map
            (fun (workload, config, events, eps, trials) ->
              Json.Obj
                ([
                   ("label", Json.String !bench_label);
                   ("workload", Json.String workload);
                   ("config", Json.String config);
                   ("events", Json.Int events);
                   ("events_per_s", Json.Float eps);
                 ]
                @ percentiles trials))
            !hotpath_records
      in
      let run_config =
        Json.Obj
          [
            ("jobs", Json.Int (jobs ()));
            ( "seed",
              match !seed_override with Some s -> Json.Int s | None -> Json.Null );
            ("plan_cache", Json.Bool (Option.is_some !plan_cache_dir));
          ]
      in
      let suites =
        List.rev_map
          (fun (name, wall, s) ->
            Json.Obj
              [
                ("name", Json.String name);
                ("label", Json.String !bench_label);
                ("config", run_config);
                ("wall_s", Json.Float wall);
                ( "events_per_sec",
                  match Hashtbl.find_opt suite_eps name with
                  | Some eps -> Json.Float eps
                  | None -> Json.Null );
                ( "cache",
                  Json.Obj
                    [
                      ("hits", Json.Int s.Plan_cache.hits);
                      ("misses", Json.Int s.Plan_cache.misses);
                      ("stores", Json.Int s.Plan_cache.stores);
                      ("evictions", Json.Int s.Plan_cache.evictions);
                      ("hit_rate", Json.Float (Plan_cache.hit_rate s));
                    ] );
              ])
          records
      in
      let j =
        Json.Obj
          [
            ("date", Json.String (bench_date ()));
            ("jobs", Json.Int (jobs ()));
            ( "plan_cache_dir",
              match !plan_cache_dir with
              | Some d -> Json.String d
              | None -> Json.Null );
            ("suites", Json.List (earlier @ suites));
            ("hotpath", Json.List hotpath);
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string ~pretty:true j);
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "  [bench] wrote %s\n%!" path

let suite_memo = ref None

let suite () =
  match !suite_memo with
  | Some s -> s
  | None ->
      let progress line = Printf.eprintf "  [suite] %s\n%!" line in
      let seeds = Option.map (fun s -> [ s ]) !seed_override in
      let s =
        timed "suite" (fun () ->
            Figures.run_suite ?seeds ~progress ~jobs:(jobs ())
              ?plan_source:(plan_source ()) ())
      in
      suite_memo := Some s;
      s

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let bench_jemalloc =
    let vmem = Vmem.create () in
    let alloc = Jemalloc_sim.create vmem in
    Test.make ~name:"jemalloc_sim.malloc+free"
      (Staged.stage (fun () ->
           let a = alloc.Alloc_iface.malloc 48 in
           alloc.Alloc_iface.free a))
  in
  let bench_group_alloc =
    let vmem = Vmem.create () in
    let fallback = Jemalloc_sim.create vmem in
    let galloc =
      Group_alloc.create ~classify:(fun ~size:_ -> Some 0) ~fallback vmem
    in
    let iface = Group_alloc.iface galloc in
    Test.make ~name:"group_alloc.malloc+free"
      (Staged.stage (fun () ->
           let a = iface.Alloc_iface.malloc 48 in
           iface.Alloc_iface.free a))
  in
  let bench_cache =
    let h = Hierarchy.create () in
    let counter = ref 0 in
    Test.make ~name:"hierarchy.access"
      (Staged.stage (fun () ->
           incr counter;
           Hierarchy.access h (!counter * 40 land 0xFFFFF) 8))
  in
  let bench_affinity_queue =
    let heap = Heap_model.create () in
    let objs =
      Array.init 64 (fun k ->
          Heap_model.on_alloc heap ~addr:(0x1000 + (k * 64)) ~size:32
            ~ctx:(k mod 4))
    in
    let q =
      Affinity_queue.create ~affinity_distance:128 ~heap
        ~on_affinity:(fun _ _ -> ())
        ()
    in
    let counter = ref 0 in
    Test.make ~name:"affinity_queue.add"
      (Staged.stage (fun () ->
           incr counter;
           ignore (Affinity_queue.add q objs.(!counter land 63) ~bytes:8 : bool)))
  in
  let bench_sequitur =
    Test.make ~name:"sequitur.push(1k, period 25)"
      (Staged.stage (fun () ->
           let t = Sequitur.create () in
           for k = 0 to 999 do
             Sequitur.push t (k mod 25)
           done))
  in
  let bench_grouping =
    (* A fixed 40-node graph with 8 hot cliques. *)
    let g = Affinity_graph.create () in
    for c = 0 to 7 do
      for a = 0 to 4 do
        for b = a + 1 to 4 do
          for _ = 0 to 9 do
            Affinity_graph.add_affinity g ((c * 5) + a) ((c * 5) + b)
          done
        done;
        for _ = 0 to 99 do
          Affinity_graph.add_access g ((c * 5) + a)
        done
      done
    done;
    Test.make ~name:"grouping.group(40 nodes)"
      (Staged.stage (fun () ->
           ignore (Grouping.group g Grouping.default_params : Grouping.t)))
  in
  let bench_shadow =
    let s = Shadow_stack.create () in
    Test.make ~name:"shadow_stack.push/reduce/pop(depth 12)"
      (Staged.stage (fun () ->
           for d = 0 to 11 do
             Shadow_stack.push s ~func:(string_of_int (d land 3)) ~site:(d * 16)
           done;
           ignore (Shadow_stack.reduced s : int array);
           for _ = 0 to 11 do
             Shadow_stack.pop s
           done))
  in
  [
    bench_jemalloc;
    bench_group_alloc;
    bench_cache;
    bench_affinity_queue;
    bench_sequitur;
    bench_grouping;
    bench_shadow;
  ]

let run_micro () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  print_endline "Micro-benchmarks (Bechamel; ns per run, OLS estimate):";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> Printf.sprintf "%12.1f ns/run" x
            | _ -> "(no estimate)"
          in
          Printf.printf "  %-42s %s\n%!" name ns)
        analysis)
    (micro_tests ())

(* ------------------------------------------------------------------ *)
(* Telemetry-overhead comparison.                                      *)
(*                                                                     *)
(* The observability layer must be zero-cost when disabled: with       *)
(* [?obs] omitted, Interp/Hierarchy/Group_alloc construct the exact    *)
(* closures the seed built, so "obs off" below IS the seed interpreter *)
(* — the acceptance bar is off-vs-seed throughput within 2%, which     *)
(* holds by construction and is confirmed here by measuring identical  *)
(* code twice. "obs on" quantifies what full telemetry (metrics +      *)
(* buffered JSONL sink) costs when you do switch it on.                *)
(* ------------------------------------------------------------------ *)

let run_obs_overhead () =
  let time_measurement w ~obs =
    let program = w.Workload.make Workload.Ref in
    let vmem = Vmem.create () in
    let alloc = Jemalloc_sim.create vmem in
    let hier = Hierarchy.create ?obs () in
    let hooks =
      {
        Interp.no_hooks with
        Interp.on_access = (fun addr size _w -> Hierarchy.access hier addr size);
      }
    in
    let interp = Interp.create ~seed:2 ~hooks ?obs ~program ~alloc () in
    let t0 = Unix.gettimeofday () in
    ignore (Interp.run interp : int);
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int (Interp.instructions interp) /. dt
  in
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length a / 2)
  in
  let trials = 5 in
  let workloads = [ "health"; "omnetpp"; "leela" ] in
  let t =
    Table.create ~title:"interpreter throughput: telemetry off vs on"
      ~headers:
        [ "workload"; "obs off (Minstr/s)"; "obs on (Minstr/s)"; "on/off" ]
      ()
  in
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let off =
        median (List.init trials (fun _ -> time_measurement w ~obs:None))
      in
      let on =
        median
          (List.init trials (fun _ ->
               let buf = Buffer.create (1 lsl 16) in
               let obs = Obs.create ~sink:(Trace.to_buffer buf) () in
               let r = time_measurement w ~obs:(Some obs) in
               Obs.finish obs;
               r))
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.1f" (off /. 1e6);
          Printf.sprintf "%.1f" (on /. 1e6);
          Printf.sprintf "%.3f" (on /. off);
        ];
      Printf.eprintf "  [obs] %s done\n%!" name)
    workloads;
  Table.print t;
  print_endline
    "(obs off is bit-identical to the seed interpreter: ?obs omitted\n\
    \ compiles the uninstrumented closures; within-2%-of-seed holds by\n\
    \ construction, modulo timer noise across the two runs.)"

(* ------------------------------------------------------------------ *)
(* Hot-path throughput: events/s of the simulate/profile inner loop.   *)
(*                                                                     *)
(* One "event" is one executed load or store — the unit every per-     *)
(* access hook pays for. The count comes from a bare uninstrumented    *)
(* run: hooks never touch the program's Rand stream, so the interp,    *)
(* simulate and profile configurations all replay exactly the same     *)
(* event trace and their wall times are directly comparable.           *)
(* ------------------------------------------------------------------ *)

let run_hotpath () =
  let seed = Option.value !seed_override ~default:2 in
  (* Gated runs take extra trials: the gate judges best-of-trials, and
     more draws make the best a stabler estimate of uncontended speed. *)
  let trials = if !check_file <> None then 5 else 3 in
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length a / 2)
  in
  let config_names =
    [
      "interp";
      "simulate";
      "profile";
      "traced";
      "traced-simulate";
      "traced-profile";
    ]
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "hot-path throughput (label %S, seed %d)" !bench_label
           seed)
      ~headers:[ "workload"; "config"; "events"; "Mevents/s" ]
      ()
  in
  let totals = Hashtbl.create 8 in
  let record workload config events eps trial_eps =
    hotpath_records :=
      (workload, config, events, eps, trial_eps) :: !hotpath_records;
    Table.add_row t
      [
        workload; config; string_of_int events; Printf.sprintf "%.2f" (eps /. 1e6);
      ]
  in
  List.iter
    (fun name ->
      let w = Option.get (Workloads.find name) in
      let program = w.Workload.make Workload.Ref in
      let bare () =
        let vmem = Vmem.create () in
        let alloc = Jemalloc_sim.create vmem in
        Interp.create ~seed ~program ~alloc ()
      in
      let events =
        let interp = bare () in
        ignore (Interp.run interp : int);
        let loads, stores = Interp.load_store_counts interp in
        loads + stores
      in
      let configs =
        [
          ( "interp",
            fun () ->
              let interp = bare () in
              ignore (Interp.run interp : int) );
          ( "simulate",
            fun () ->
              let vmem = Vmem.create () in
              let alloc = Jemalloc_sim.create vmem in
              let hier = Hierarchy.create () in
              let hooks =
                {
                  Interp.no_hooks with
                  Interp.on_access =
                    (fun addr size _w -> Hierarchy.access hier addr size);
                }
              in
              let interp = Interp.create ~seed ~hooks ~program ~alloc () in
              ignore (Interp.run interp : int) );
          ( "profile",
            fun () ->
              ignore
                (Profiler.profile
                   ~config:{ Profiler.default_config with Profiler.seed }
                   program
                  : Profiler.result) );
          (* The same three shapes under the trace-compiled engine. The
             bare traced row is the headline: fused hot loops with no
             hooks in the way. The hooked rows bound what tracing buys
             when every access still pays a callback. *)
          ( "traced",
            fun () ->
              let vmem = Vmem.create () in
              let alloc = Jemalloc_sim.create vmem in
              let e =
                Engine.create ~kind:Engine.Traced ~seed ~program ~alloc ()
              in
              ignore (Engine.run e : int) );
          ( "traced-simulate",
            fun () ->
              let vmem = Vmem.create () in
              let alloc = Jemalloc_sim.create vmem in
              let hier = Hierarchy.create () in
              let hooks =
                {
                  Interp.no_hooks with
                  Interp.on_access =
                    (fun addr size _w -> Hierarchy.access hier addr size);
                }
              in
              let e =
                Engine.create ~kind:Engine.Traced ~seed ~hooks ~program ~alloc
                  ()
              in
              ignore (Engine.run e : int) );
          ( "traced-profile",
            fun () ->
              ignore
                (Profiler.profile ~engine:Engine.Traced
                   ~config:{ Profiler.default_config with Profiler.seed }
                   program
                  : Profiler.result) );
        ]
      in
      List.iter
        (fun (cname, f) ->
          let times =
            List.init trials (fun _ ->
                let t0 = Unix.gettimeofday () in
                f ();
                (Unix.gettimeofday () -. t0) *. !handicap)
          in
          let dt = median times in
          let eps = float_of_int events /. dt in
          let trial_eps = List.map (fun d -> float_of_int events /. d) times in
          record name cname events eps trial_eps;
          let e0, d0 =
            Option.value (Hashtbl.find_opt totals cname) ~default:(0, 0.)
          in
          Hashtbl.replace totals cname (e0 + events, d0 +. dt);
          Printf.eprintf "  [hotpath] %s/%s: %.2f Mevents/s\n%!" name cname
            (eps /. 1e6))
        configs)
    [ "health"; "omnetpp"; "leela" ];
  List.iter
    (fun cname ->
      match Hashtbl.find_opt totals cname with
      | Some (e, d) -> record "all" cname e (float_of_int e /. d) []
      | None -> ())
    config_names;
  let all_events, all_dt =
    Hashtbl.fold (fun _ (e, d) (te, td) -> (te + e, td +. d)) totals (0, 0.0)
  in
  if all_dt > 0.0 then
    Hashtbl.replace suite_eps "hotpath" (float_of_int all_events /. all_dt);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Serve-mode fleet benchmark: plan-cache hit rate, merge throughput   *)
(* and job-latency quantiles of the continuous-profiling daemon under  *)
(* a simulated fleet. Jobs/s feeds the --check gate as the             *)
(* "serve/fleet" hotpath row (handicap applies, so the gate's          *)
(* self-test covers this suite too).                                   *)
(* ------------------------------------------------------------------ *)

let run_serve () =
  let seed = Option.value !seed_override ~default:1 in
  let cfg =
    {
      Serve_sim.default_config with
      Serve_sim.clients = 400;
      rounds = 10;
      seed;
      serve =
        {
          Serve.default_config with
          Serve.jobs = jobs ();
          cache = plan_cache ();
        };
    }
  in
  let r = Serve_sim.run cfg in
  Table.print (Serve_sim.report_table r);
  let eps = r.Serve_sim.jobs_per_sec /. !handicap in
  hotpath_records :=
    ("serve", "fleet", r.Serve_sim.jobs_total, eps, [ eps ])
    :: !hotpath_records;
  Hashtbl.replace suite_eps "serve" eps;
  Printf.eprintf
    "  [serve] %d jobs, %.0f jobs/s, plan hit rate %.1f%%, %d profiler runs\n%!"
    r.Serve_sim.jobs_total eps
    (100.0 *. r.Serve_sim.plan_hit_rate)
    r.Serve_sim.profile_runs

(* ------------------------------------------------------------------ *)
(* Traffic benchmark: the shared-heap mix executor on a drifting       *)
(* multi-tenant schedule, plus the drift-rate x reprofile-cadence      *)
(* study fanned out over the worker pool. Rows feed the --check gate   *)
(* as traffic/<row> hotpath entries (handicap applies).                *)
(* ------------------------------------------------------------------ *)

let run_traffic () =
  let seed = Option.value !seed_override ~default:1 in
  (* Wall-clock rows are scheduler-noise-bound, so each is the median of
     several timed trials of the same deterministic computation — the
     same defence the hot-path suite uses. *)
  let median l =
    let a = List.sort compare l in
    List.nth a (List.length a / 2)
  in
  let row name events times =
    let times = List.map (fun t -> t *. !handicap) times in
    let dt = median times in
    let eps = float_of_int events /. dt in
    let trial_eps = List.map (fun t -> float_of_int events /. t) times in
    hotpath_records := ("traffic", name, events, eps, trial_eps) :: !hotpath_records;
    eps
  in
  let trials n f =
    let out = ref None in
    let times =
      List.init n (fun _ ->
          let t0 = Unix.gettimeofday () in
          out := Some (f ());
          Unix.gettimeofday () -. t0)
    in
    (Option.get !out, times)
  in
  (* One representative mix run: executor throughput in simulated
     accesses/s over a drifting schedule with a live re-profile cadence. *)
  let sched =
    Schedule.drifting ~phases:4 ~ticks_per_phase:2 ~rate:6.0 ~drift:0.5 ()
  in
  let mix, mix_times =
    trials 3 (fun () ->
        Traffic_mix.run
          ~config:
            { Traffic_mix.default_config with Traffic_mix.reprofile_every = 2 }
          ~seed sched)
  in
  Table.print (Traffic_mix.report_table mix);
  print_newline ();
  let mix_eps =
    row "mix-exec" mix.Traffic_mix.counters.Hierarchy.accesses mix_times
  in
  (* The full drift study at the configured worker count. *)
  let study, study_times =
    trials 2 (fun () ->
        Traffic_study.run ~jobs:(jobs ())
          { Traffic_study.default_params with Traffic_study.seed })
  in
  Table.print (Traffic_study.table study);
  let study_jobs =
    List.fold_left
      (fun acc c -> acc + c.Traffic_study.c_report.Traffic_mix.jobs)
      0 study.Traffic_study.cells
  in
  let study_eps = row "study" study_jobs study_times in
  Hashtbl.replace suite_eps "traffic" study_eps;
  Printf.eprintf
    "  [traffic] mix %.2f Maccesses/s (median of %d), study %d jobs at %.0f \
     jobs/s (median of %d)\n\
     %!"
    (mix_eps /. 1e6) (List.length mix_times) study_jobs study_eps
    (List.length study_times)

(* ------------------------------------------------------------------ *)
(* Store codec benchmark: encode/decode throughput of both containers  *)
(* and sharded-merge throughput over a synthetic fleet of >= 1000      *)
(* profiles, with the byte-identity acceptance asserted inline. Rows   *)
(* feed the --check gate as store/<row> hotpath entries.               *)
(* ------------------------------------------------------------------ *)

let run_store () =
  let seed0 = Option.value !seed_override ~default:1 in
  let n_profiles = 1200 in
  let fail_store e = failwith (Store.error_to_string e) in
  let rok = function Ok v -> v | Error e -> fail_store e in
  (* A handful of distinct synthetic base recordings (same notional
     program, different seeds — mergeable by construction), replicated
     to fleet size. Synthetic rather than profiled so the payload is
     big enough (hundreds of contexts, thousands of edges) that codec
     throughput, not per-file fixed costs, is what gets measured. *)
  let digest = "feedc0defeedc0defeedc0defeedc0de" in
  let synth_result seed =
    let n_ctx = 400 and edges_per_ctx = 6 in
    let tbl = Context.create () in
    let raw = Affinity_graph.create () in
    for k = 0 to n_ctx - 1 do
      let id =
        Context.intern tbl
          [| 0x1000 + k; 0x2000 + (k mod 97); 0x3000 + (k mod 31) |]
      in
      Affinity_graph.add_access_n raw id (1 + ((k * seed) mod 911))
    done;
    for k = 0 to (edges_per_ctx * n_ctx) - 1 do
      let x = k mod n_ctx and y = ((k * 7919) + 13 + seed) mod n_ctx in
      if x <> y then Affinity_graph.add_affinity_n raw x y (1 + (k mod 53))
    done;
    {
      Profiler.graph = Affinity_graph.filter_top raw ~coverage:0.9;
      raw_graph = raw;
      contexts = tbl;
      total_accesses = Affinity_graph.total_accesses raw;
      tracked_allocs = n_ctx;
      instructions = 1_000_000 + seed;
    }
  in
  let base =
    List.init 6 (fun k ->
        let config =
          { Profiler.default_config with Profiler.seed = seed0 + k }
        in
        (config, synth_result (seed0 + k)))
  in
  let nbase = List.length base in
  let reps = n_profiles / nbase in
  let tmp fmt i =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "halo-bench-store-%d-%d.%s" (Unix.getpid ()) i
         (Store.format_to_string fmt))
  in
  let rows = ref [] in
  let row name events eps =
    let eps = eps /. !handicap in
    hotpath_records := ("store", name, events, eps, [ eps ]) :: !hotpath_records;
    rows := (name, events, eps) :: !rows
  in
  (* Encode: every base artifact written [reps] times per codec;
     events = bytes on disk, so the row reads as bytes/s. *)
  let encode fmt =
    let bytes = ref 0 in
    let t0 = Unix.gettimeofday () in
    List.iteri
      (fun i (config, result) ->
        let path = tmp fmt i in
        for _ = 1 to reps do
          rok
            (Store.write_profile ~format:fmt ~created:0.0 ~producer:"bench"
               ~path ~program_digest:digest ~config result)
        done;
        bytes := !bytes + ((Unix.stat path).Unix.st_size * reps))
      base;
    let dt = Unix.gettimeofday () -. t0 in
    row
      (Printf.sprintf "encode-%s" (Store.format_to_string fmt))
      !bytes
      (float_of_int !bytes /. dt)
  in
  encode Store.V1;
  encode Store.V2;
  (* Decode + sequential merge: the fleet-aggregation inner loop, per
     codec; events = profiles folded. *)
  let decode_merge fmt =
    let t0 = Unix.gettimeofday () in
    let arts =
      List.init n_profiles (fun k ->
          (rok (Store.read_profile (tmp fmt (k mod nbase))), 1.0))
    in
    let merged = rok (Store.merge_profiles_sharded ~jobs:1 arts) in
    let dt = Unix.gettimeofday () -. t0 in
    row
      (Printf.sprintf "decode-merge-%s" (Store.format_to_string fmt))
      n_profiles
      (float_of_int n_profiles /. dt);
    (arts, merged, dt)
  in
  let _, merged_v1, dt_v1 = decode_merge Store.V1 in
  let arts_v2, merged_v2, dt_v2 = decode_merge Store.V2 in
  (* Sharded merge over the decoded fleet at the full worker count. *)
  let t0 = Unix.gettimeofday () in
  let merged_sharded =
    rok (Store.merge_profiles_sharded ~jobs:(jobs ()) arts_v2)
  in
  let dt_sharded = Unix.gettimeofday () -. t0 in
  let sharded_eps = float_of_int n_profiles /. dt_sharded in
  row "sharded-merge" n_profiles sharded_eps;
  Hashtbl.replace suite_eps "store" sharded_eps;
  (* Acceptance: the sharded fold and both codecs produce one merged
     artifact, byte for byte. *)
  let merged_bytes (config, result) =
    let path = tmp Store.V1 99 in
    rok
      (Store.write_profile ~created:0.0 ~producer:"bench" ~path
         ~program_digest:digest ~config result);
    let b = In_channel.with_open_bin path In_channel.input_all in
    Sys.remove path;
    b
  in
  let b_seq = merged_bytes merged_v1 in
  if not (String.equal b_seq (merged_bytes merged_v2)) then
    failwith "store bench: v1 and v2 decode+merge disagree";
  if not (String.equal b_seq (merged_bytes merged_sharded)) then
    failwith "store bench: sharded merge is not byte-identical to sequential";
  List.iteri (fun i _ -> Sys.remove (tmp Store.V1 i)) base;
  List.iteri (fun i _ -> Sys.remove (tmp Store.V2 i)) base;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "store codecs: %d synthetic profiles, %d jobs"
           n_profiles (jobs ()))
      ~headers:[ "row"; "events"; "rate" ] ()
  in
  Table.set_aligns t [ Table.Left; Table.Right; Table.Right ];
  List.iter
    (fun (name, events, eps) ->
      let rate =
        if String.length name >= 6 && String.sub name 0 6 = "encode" then
          Printf.sprintf "%s/s" (Table.fmt_bytes (int_of_float eps))
        else Printf.sprintf "%.0f profiles/s" eps
      in
      Table.add_row t [ name; string_of_int events; rate ])
    (List.rev !rows);
  Table.print t;
  Printf.eprintf
    "  [store] v2 decode+merge %.1fx v1 (%.2fs vs %.2fs), sharded %.0f \
     profiles/s, byte-identity ok\n%!"
    (dt_v1 /. dt_v2) dt_v2 dt_v1 sharded_eps

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)
(* ------------------------------------------------------------------ *)

let run_experiments () =
  timed "experiments" (fun () ->
      Figures.print_all ~jobs:(jobs ()) ?plan_source:(plan_source ()) ())

(* The regression gate: measure the hot path (unless this invocation
   already did), compare throughput and wall time against the committed
   baseline, exit 1 on any regression beyond the threshold. *)
let run_check () =
  match !check_file with
  | None -> ()
  | Some path -> (
      if !hotpath_records = [] then timed "hotpath" run_hotpath;
      match Bench_check.load path with
      | Error e ->
          Printf.eprintf "bench --check: %s\n%!" e;
          exit 2
      | Ok baseline ->
          let threshold = !check_threshold in
          (* Judge best-of-trials, not the median: contention from a noisy
             neighbour only ever slows a trial down, so the fastest trial
             is the robust estimate of what this tree can do. *)
          let current_tp =
            List.rev_map
              (fun (w, c, _events, eps, trials) ->
                (w, c, List.fold_left Float.max eps trials))
              !hotpath_records
          in
          let current_wall =
            List.rev_map (fun (name, wall, _) -> (name, wall)) !bench_records
          in
          let verdicts =
            Bench_check.check_throughput ~threshold baseline current_tp
            @ Bench_check.check_wall ~threshold baseline ~label:!bench_label
                ~jobs:(jobs ()) current_wall
          in
          print_newline ();
          Table.print
            (Bench_check.table
               ~title:
                 (Printf.sprintf "bench --check vs %s (threshold %.0f%%)" path
                    (100.0 *. threshold))
               verdicts);
          (match Bench_check.warnings verdicts with
          | [] -> ()
          | keys ->
              Printf.eprintf
                "  [bench] warn: no baseline for %s (gate passes; commit rows \
                 to set the bar)\n\
                 %!"
                (String.concat ", " keys));
          if Bench_check.any_regressed verdicts then begin
            Printf.eprintf "  [bench] REGRESSION beyond %.0f%% vs %s\n%!"
              (100.0 *. threshold) path;
            write_bench_report ();
            exit 1
          end
          else Printf.eprintf "  [bench] check ok vs %s\n%!" path)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip_flags acc = function
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> seed_override := Some s
        | None ->
            Printf.eprintf "--seed: not an integer: %S\n" n;
            exit 2);
        strip_flags acc rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j -> jobs_override := Some j
        | None ->
            Printf.eprintf "--jobs: not an integer: %S\n" n;
            exit 2);
        strip_flags acc rest
    | "--plan-cache" :: dir :: rest ->
        plan_cache_dir := Some dir;
        strip_flags acc rest
    | "--label" :: l :: rest ->
        bench_label := l;
        strip_flags acc rest
    | "--check" :: path :: rest ->
        check_file := Some path;
        strip_flags acc rest
    | "--check-threshold" :: f :: rest ->
        (match float_of_string_opt f with
        | Some t when t > 0.0 -> check_threshold := t
        | _ ->
            Printf.eprintf "--check-threshold: not a positive number: %S\n" f;
            exit 2);
        strip_flags acc rest
    | "--handicap" :: f :: rest ->
        (match float_of_string_opt f with
        | Some h when h > 0.0 ->
            handicap := h;
            if h <> 1.0 then bench_label := !bench_label ^ "+handicap"
        | _ ->
            Printf.eprintf "--handicap: not a positive number: %S\n" f;
            exit 2);
        strip_flags acc rest
    | [ ("--seed" | "--jobs" | "--plan-cache" | "--label" | "--check"
        | "--check-threshold" | "--handicap") as flag ] ->
        Printf.eprintf "%s: missing value\n" flag;
        exit 2
    | a :: rest -> strip_flags (a :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_flags [] args in
  (match args with
  | [] when !check_file <> None ->
      (* Bare `--check FILE`: the gate itself runs the hot path. *)
      ()
  | [] ->
      run_experiments ();
      print_newline ();
      timed "micro" run_micro
  | [ "experiments" ] -> run_experiments ()
  | [ "trials"; n ] ->
      (* §5.1-style multi-trial run: distinct input seeds, medians with
         25th/75th-percentile error bars in Figures 13-15. *)
      let n = int_of_string n in
      let base = Option.value !seed_override ~default:2 in
      let seeds = List.init n (fun k -> base + (3 * k)) in
      let progress line = Printf.eprintf "  [suite] %s\n%!" line in
      let suite =
        timed
          (Printf.sprintf "trials-%d" n)
          (fun () ->
            Figures.run_suite ~seeds ~progress ~jobs:(jobs ())
              ?plan_source:(plan_source ()) ())
      in
      Table.print (Figures.fig13 suite);
      print_newline ();
      Table.print (Figures.fig14 suite);
      print_newline ();
      Table.print (Figures.fig15 suite)
  | [ "micro" ] -> timed "micro" run_micro
  | [ "serve" ] -> timed "serve" run_serve
  | [ "store" ] -> timed "store" run_store
  | [ "traffic" ] -> timed "traffic" run_traffic
  | [ "obs" ] -> timed "obs" run_obs_overhead
  | [ "--hotpath" ] -> timed "hotpath" run_hotpath
  | [ "fig12" ] -> Table.print (timed "fig12" Figures.fig12)
  | [ "fig13" ] -> Table.print (Figures.fig13 (suite ()))
  | [ "fig14" ] -> Table.print (Figures.fig14 (suite ()))
  | [ "fig15" ] -> Table.print (Figures.fig15 (suite ()))
  | [ "tab1" ] -> Table.print (Figures.tab1 (suite ()))
  | [ "sec51" ] -> Table.print (timed "sec51" Figures.sec51_baseline)
  | [ "overhead" ] -> Table.print (timed "overhead" Figures.overhead_control)
  | [ "diag" ] -> Table.print (Figures.hds_diagnostics (suite ()))
  | [ "ablation" ] ->
      timed "ablation" (fun () ->
          Table.print (Figures.ablation_grouping ());
          print_newline ();
          Table.print (Figures.ablation_packing ());
          print_newline ();
          Table.print (Figures.ablation_identification ());
          print_newline ();
          Table.print (Figures.ablation_backend ());
          print_newline ();
          Table.print (Figures.ablation_sampling ()))
  | _ ->
      prerr_endline
        "usage: main.exe \
         [experiments|trials N|micro|serve|store|traffic|obs|--hotpath|fig12|fig13|fig14|fig15|tab1|sec51|overhead|diag|ablation] \
         [--seed N] [--jobs N] [--plan-cache DIR] [--label NAME] \
         [--check BENCH.json] [--check-threshold F] [--handicap F]";
      exit 2);
  run_check ();
  write_bench_report ()
