(* Figure 1 illustration: how different allocators lay out the same
   allocation stream.

   Replays one allocation sequence — the paper's `a`/`b`/`c`/`d` example
   followed by an interleaved hot/cold stream — against the simulated
   allocators and prints where each object lands, making the
   size-segregation (jemalloc), boundary-tag spacing (ptmalloc) and
   bump-contiguity (group allocator) policies visible.

     dune exec examples/allocator_duel.exe *)

let stream =
  (* (label, size, hot) *)
  [
    ("a", 4, true);
    ("b", 4, true);
    ("c", 16, false);
    ("d", 32, false);
    ("e1", 24, true);
    ("x1", 24, false);
    ("e2", 24, true);
    ("x2", 24, false);
    ("e3", 24, true);
  ]

let replay name (alloc : Alloc_iface.t) =
  Printf.printf "\n%s:\n" name;
  let placements =
    List.map (fun (label, size, hot) -> (label, hot, alloc.Alloc_iface.malloc size)) stream
  in
  let base = List.fold_left (fun acc (_, _, a) -> min acc a) max_int placements in
  List.iter
    (fun (label, hot, addr) ->
      Printf.printf "  %-3s %s at base+%-6d (line %d)%s\n" label
        (if hot then "[hot] " else "[cold]")
        (addr - base) ((addr - base) / 64)
        (if (addr - base) mod 64 = 0 then "  <- line start" else ""))
    placements

let () =
  let vmem1 = Vmem.create () in
  replay "jemalloc (size-segregated)" (Jemalloc_sim.create vmem1);
  let vmem2 = Vmem.create () in
  replay "ptmalloc (boundary tags, best fit)" (Ptmalloc_sim.create vmem2);
  let vmem3 = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem3 in
  (* A group allocator told that hot objects form group 0: the stream's
     hot entries are the odd pattern below, mimicking what a HALO selector
     would decide at runtime. *)
  let hots = List.map (fun (_, _, h) -> h) stream in
  let remaining = ref hots in
  let classify ~size:_ =
    match !remaining with
    | h :: rest ->
        remaining := rest;
        if h then Some 0 else None
    | [] -> None
  in
  let galloc = Group_alloc.create ~classify ~fallback vmem3 in
  replay "halo group allocator (hot pooled)" (Group_alloc.iface galloc);
  print_endline
    "\nNote how jemalloc co-locates by size class and order, ptmalloc spaces \
     blocks\nwith 16-byte headers, and the group allocator packs the hot \
     objects contiguously."
