(* Fragmentation study: the Table 1 pathology and the §6 fix.

   Runs the leela workload (per-search tree teardown with pinned nodes —
   the paper's worst fragmentation case at 99.99%) under HALO with the
   paper's bump-only pools and with the future-work sharded-free-list
   backend, printing fragmentation at peak alongside the cache effect.
   Memory checking is enabled throughout: every access is validated
   against the simulated address space.

     dune exec examples/fragmentation_study.exe *)

let run backend =
  let w = Option.get (Workloads.find "leela") in
  let config =
    {
      Pipeline.default_config with
      Pipeline.allocator =
        { Pipeline.default_config.Pipeline.allocator with Group_alloc.backend };
    }
  in
  let plan = Pipeline.plan ~config (w.Workload.make Workload.Test) in
  let vmem = Vmem.create () in
  let fallback = Jemalloc_sim.create vmem in
  let rt = Pipeline.instantiate plan ~fallback vmem in
  let hier = Hierarchy.create () in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_access = (fun a s _ -> Hierarchy.access hier a s);
    }
  in
  let interp =
    Interp.create ~seed:2 ~hooks ~patches:rt.Pipeline.patches ~env:rt.Pipeline.env
      ~memcheck:vmem
      ~program:(w.Workload.make Workload.Ref)
      ~alloc:(Group_alloc.iface rt.Pipeline.galloc) ()
  in
  ignore (Interp.run interp : int);
  let frag = Group_alloc.frag_stats rt.Pipeline.galloc in
  let misses = (Hierarchy.counters hier).Hierarchy.l1_misses in
  (frag, misses, Group_alloc.freelist_reuses rt.Pipeline.galloc)

let () =
  print_endline
    "leela under HALO: fragmentation of grouped objects at peak memory usage\n";
  let show label (frag, misses, reuses) =
    Printf.printf
      "%-22s frag %6.2f%%  (%s wasted of %s resident)  L1D misses %d  freelist \
       reuses %d\n"
      label
      (100.0 *. frag.Group_alloc.frag_pct)
      (Table.fmt_bytes frag.Group_alloc.frag_bytes)
      (Table.fmt_bytes frag.Group_alloc.peak_resident)
      misses reuses
  in
  show "bump-only (paper):" (run Group_alloc.Bump_only);
  show "sharded (sec. 6):" (run Group_alloc.Sharded_free_lists);
  print_endline
    "\nBump-only pools reclaim space only when a whole chunk empties, so the\n\
     pinned node each search leaves behind strands its chunk (Table 1's\n\
     99.99%). Sharded free lists reuse freed regions in place — the paper's\n\
     proposed future work — and collapse the waste without losing locality."
