(* Quickstart: the paper's Figure 2/3 example, end to end.

   Builds the povray-style token program (allocate interleaved A/B/C
   objects through a wrapper, then traverse only the A/B list), runs the
   whole HALO pipeline on it, and measures the layout's effect on the
   simulated cache hierarchy.

     dune exec examples/quickstart.exe *)

type setup = {
  alloc : Alloc_iface.t;
  patches : (Ir.site * int) list;
  env : Exec_env.t option;
}

let measure w name (mk : Vmem.t -> setup) =
  let program = w.Workload.make Workload.Ref in
  let hier = Hierarchy.create () in
  let hooks =
    {
      Interp.no_hooks with
      Interp.on_access = (fun addr size _ -> Hierarchy.access hier addr size);
    }
  in
  let vmem = Vmem.create () in
  let s = mk vmem in
  let interp =
    Interp.create ~seed:2 ~hooks ~patches:s.patches ?env:s.env ~program
      ~alloc:s.alloc ()
  in
  ignore (Interp.run interp : int);
  let c = Hierarchy.counters hier in
  let cycles =
    Timing.cycles Timing.skylake_sp ~instructions:(Interp.instructions interp) c
  in
  Printf.printf "%-10s L1D misses: %8d   cycles: %12.0f\n" name
    c.Hierarchy.l1_misses cycles;
  (c.Hierarchy.l1_misses, cycles)

let () =
  (* 1. The "target binary": a workload program in the IR. The registry's
     povray analog is exactly Figure 2's shape. *)
  let w = Option.get (Workloads.find "povray") in
  let test_program = w.Workload.make Workload.Test in

  (* 2. Profile + group + identify + plan the rewrite (Figure 4's
     pipeline), on the small test input. *)
  let plan = Pipeline.plan test_program in
  print_endline "=== Optimisation plan (profiled on the test input) ===";
  print_string (Pipeline.describe plan ~site_label:(Ir.site_label test_program));

  (* 3. Measure on the larger ref input: baseline jemalloc vs the
     rewritten program linked against the specialised allocator. The
     group-state environment must be shared between the interpreter (which
     sets bits at patched sites) and the allocator (whose selectors read
     them). *)
  print_endline "\n=== Measurement (ref input) ===";
  let base_misses, base_cycles =
    measure w "jemalloc" (fun vmem ->
        { alloc = Jemalloc_sim.create vmem; patches = []; env = None })
  in
  let halo_misses, halo_cycles =
    measure w "halo" (fun vmem ->
        let fallback = Jemalloc_sim.create vmem in
        let rt = Pipeline.instantiate plan ~fallback vmem in
        {
          alloc = Group_alloc.iface rt.Pipeline.galloc;
          patches = rt.Pipeline.patches;
          env = Some rt.Pipeline.env;
        })
  in
  Printf.printf "\nHALO reduced L1D misses by %s and execution time by %s.\n"
    (Table.fmt_pct
       (Timing.miss_reduction ~baseline:base_misses ~optimised:halo_misses))
    (Table.fmt_pct (Timing.speedup ~baseline:base_cycles ~optimised:halo_cycles))
