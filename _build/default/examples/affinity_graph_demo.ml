(* Figure 9 analog: profile the povray test workload, group its affinity
   graph, and emit the grouped graph as graphviz dot (nodes coloured by
   group, grey when ungrouped, edge width by weight).

     dune exec examples/affinity_graph_demo.exe -- [workload] [out.dot]

   Render with: neato -Tpdf out.dot -o out.pdf *)

let () =
  let wname = if Array.length Sys.argv > 1 then Sys.argv.(1) else "povray" in
  let out = if Array.length Sys.argv > 2 then Sys.argv.(2) else wname ^ "-affinity.dot" in
  let w =
    match Workloads.find wname with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s\n" wname;
        exit 2
  in
  let program = w.Workload.make Workload.Test in
  let plan = Pipeline.plan program in
  let label = Ir.site_label program in

  (* Textual version of the figure. *)
  let g = plan.Pipeline.profile.Profiler.graph in
  let contexts = plan.Pipeline.profile.Profiler.contexts in
  Printf.printf "affinity graph for %s (test input): %d nodes, %d edges\n" wname
    (List.length (Affinity_graph.nodes g))
    (List.length (Affinity_graph.edges g));
  List.iter
    (fun id ->
      let group =
        match Grouping.group_of plan.Pipeline.grouping id with
        | Some gi -> Printf.sprintf "group %d" gi
        | None -> "ungrouped"
      in
      Printf.printf "  node %d [%s, %d accesses]: %s\n" id group
        (Affinity_graph.node_accesses g id)
        (Context.label contexts label id))
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, wt) -> Printf.printf "  edge %d -- %d  weight %d\n" x y wt)
    (List.sort (fun (_, _, a) (_, _, b) -> compare b a) (Affinity_graph.edges g));

  (* The dot file itself. *)
  let oc = open_out out in
  output_string oc (Pipeline.graph_dot plan ~site_label:label);
  close_out oc;
  Printf.printf "wrote %s (render with: neato -Tpdf %s)\n" out out
