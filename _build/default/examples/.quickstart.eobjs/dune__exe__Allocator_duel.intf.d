examples/allocator_duel.mli:
