examples/affinity_graph_demo.ml: Affinity_graph Array Context Grouping Ir List Pipeline Printf Profiler Sys Workload Workloads
