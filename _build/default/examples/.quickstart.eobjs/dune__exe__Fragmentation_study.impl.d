examples/fragmentation_study.ml: Group_alloc Hierarchy Interp Jemalloc_sim Option Pipeline Printf Table Vmem Workload Workloads
