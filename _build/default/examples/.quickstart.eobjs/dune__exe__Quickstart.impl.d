examples/quickstart.ml: Alloc_iface Exec_env Group_alloc Hierarchy Interp Ir Jemalloc_sim Option Pipeline Printf Table Timing Vmem Workload Workloads
