examples/affinity_graph_demo.mli:
