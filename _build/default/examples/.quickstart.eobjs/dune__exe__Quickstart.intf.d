examples/quickstart.mli:
