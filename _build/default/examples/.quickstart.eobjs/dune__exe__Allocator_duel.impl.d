examples/allocator_duel.ml: Alloc_iface Group_alloc Jemalloc_sim List Printf Ptmalloc_sim Vmem
