examples/custom_workload.ml: Dsl Group_alloc Hierarchy Interp Ir Jemalloc_sim Pipeline Printf Table Timing Vmem
