(* Bring your own program: author a workload directly against the IR DSL
   and push it through the full pipeline.

   The program below is a tiny order-book: hot "order" cells are kept in a
   book list and matched every tick, while cold "audit" entries from the
   same size class are interleaved between them. HALO discovers the
   order/audit split from the profile alone.

     dune exec examples/custom_workload.exe *)

open Dsl

let make_program ~orders ~ticks =
  program ~main:"main"
    [
      func "new_order" []
        [
          malloc "o" (i 32);
          store (v "o") (i 8) (rand (i 1000)) (* price *);
          return_ (v "o");
        ];
      func "new_audit" []
        [ malloc "a" (i 32); store (v "a") (i 0) (rand (i 100)); return_ (v "a") ];
      func "submit" []
        [
          call ~dst:"o" "new_order" [];
          store (v "o") (i 0) (g "book");
          gassign "book" (v "o");
          (* Compliance writes an audit entry per submission. *)
          call ~dst:"a" "new_audit" [];
        ];
      func "match_tick" []
        [
          let_ "o" (g "book");
          let_ "best" (i 0);
          while_
            (v "o" <>: i 0)
            [
              load "px" (v "o") (i 8);
              if_ (v "px" >: v "best") [ let_ "best" (v "px") ] [];
              load "nxt" (v "o") (i 0);
              let_ "o" (v "nxt");
            ];
          return_ (v "best");
        ];
      func "main" []
        ([ gassign "book" (i 0) ]
        @ for_ "k" ~from:(i 0) ~below:(i orders) [ call "submit" [] ]
        @ for_ "t" ~from:(i 0) ~below:(i ticks) [ call "match_tick" [] ]);
    ]

let () =
  let test = make_program ~orders:400 ~ticks:50 in
  let refp = make_program ~orders:1500 ~ticks:200 in

  (* Plan on the small input. *)
  let plan = Pipeline.plan test in
  print_endline "=== plan ===";
  print_string (Pipeline.describe plan ~site_label:(Ir.site_label test));

  (* Measure on the large input, baseline vs HALO. *)
  let measure name mk =
    let hier = Hierarchy.create () in
    let hooks =
      {
        Interp.no_hooks with
        Interp.on_access = (fun addr size _ -> Hierarchy.access hier addr size);
      }
    in
    let vmem = Vmem.create () in
    let alloc, patches, env = mk vmem in
    let interp = Interp.create ~seed:9 ~hooks ~patches ?env ~program:refp ~alloc () in
    ignore (Interp.run interp : int);
    let c = Hierarchy.counters hier in
    Printf.printf "%-10s L1D misses: %d\n" name c.Hierarchy.l1_misses;
    c.Hierarchy.l1_misses
  in
  let base =
    measure "jemalloc" (fun vmem -> (Jemalloc_sim.create vmem, [], None))
  in
  let halo =
    measure "halo" (fun vmem ->
        let fallback = Jemalloc_sim.create vmem in
        let rt = Pipeline.instantiate plan ~fallback vmem in
        (Group_alloc.iface rt.Pipeline.galloc, rt.Pipeline.patches,
         Some rt.Pipeline.env))
  in
  Printf.printf "miss reduction: %s\n"
    (Table.fmt_pct (Timing.miss_reduction ~baseline:base ~optimised:halo))
