(** Hot data stream extraction (Chilimbi, PLDI'01; as used by Chilimbi &
    Shaham, PLDI'06 — the paper's comparison technique, §5.1).

    The profiled data-reference trace (a sequence of object ids) is
    compressed with SEQUITUR; the grammar's rules are the candidate
    {e streams}. A rule's {e heat} is [expansion length x uses] — the
    number of trace positions it accounts for. Following the paper's
    replication settings, minimal hot data streams contain between 2 and
    20 elements, and the stream threshold is set so that hot streams
    account for 90% of all heap accesses: rules are taken hottest-first
    until the target coverage is reached (or candidates run out — the
    situation §5.2 describes for roms, where regularities scatter across
    very many streams). *)

type config = {
  min_elems : int;  (** 2 *)
  max_elems : int;  (** 20 *)
  coverage : float;  (** 0.9 of trace positions *)
}

val default_config : config

type stream = {
  objects : int array;  (** The stream's object ids, in reference order. *)
  heat : int;  (** length x uses. *)
  uses : int;
}

type result = {
  streams : stream list;  (** Selected hot streams, hottest first. *)
  candidate_count : int;
      (** All length-eligible rules — the "over 150,000 streams" count the
          paper reports for roms. *)
  covered : int;  (** Trace positions covered by the selected streams. *)
  trace_length : int;
}

val extract : ?config:config -> Sequitur.t -> result
