(** SEQUITUR grammar inference (Nevill-Manning & Witten, 1997).

    Builds, online and in linear time, a context-free grammar in which no
    digram (adjacent symbol pair) appears twice ({e digram uniqueness}) and
    every rule is used at least twice ({e rule utility}). The hot-data-
    streams comparator (§5.1, after Chilimbi & Shaham) compresses the
    profiled data-reference trace with SEQUITUR and mines the grammar's
    rules for frequently repeated access sequences.

    Terminals are non-negative integers (object ids in the comparator's
    use). *)

type t

val create : unit -> t

val push : t -> int -> unit
(** Append a terminal to the input; the grammar is maintained
    incrementally. Terminals must be non-negative. *)

val input_length : t -> int
(** Terminals pushed so far. *)

type rule_info = {
  rule_id : int;  (** 0 is the start rule. *)
  expansion : int array;  (** The rule fully expanded to terminals. *)
  uses : int;
      (** Occurrences of this rule in the full derivation of the input
          (the start rule has 1). [expansion length * uses] is the number
          of trace positions the rule accounts for — its {e heat}. *)
  rhs_length : int;  (** Symbols on the right-hand side (not expanded). *)
}

val rules : t -> rule_info list
(** All current rules. The start rule is first; others follow in
    unspecified order. *)

val expand : t -> int array
(** The full reconstructed input — must equal the pushed sequence (the
    round-trip property the tests rely on). Linear in input length. *)

val rule_count : t -> int

val check_invariants : t -> (unit, string) result
(** Verify digram uniqueness and rule utility; used by the property
    tests. *)
