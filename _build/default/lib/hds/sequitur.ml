(* Classic imperative SEQUITUR (after the reference implementation by
   Nevill-Manning & Witten): doubly-linked symbol lists per rule with a
   circular guard, a digram index enforcing digram uniqueness, and rule
   utility enforced by expanding rules whose use count falls to one. *)

type value = Term of int | NonTerm of rule | Guard of rule

and sym = { mutable v : value; mutable prev : sym; mutable next : sym }

and rule = { id : int; guard : sym; mutable refs : int }

type key = int * int * int * int

type t = {
  start : rule;
  index : (key, sym) Hashtbl.t;
  mutable next_rule_id : int;
  mutable input_len : int;
  mutable nrules : int;
}

let is_guard s = match s.v with Guard _ -> true | _ -> false

let val_key = function
  | Term i -> (0, i)
  | NonTerm r -> (1, r.id)
  | Guard _ -> invalid_arg "Sequitur: guard in digram"

let digram_key s =
  let a, b = val_key s.v and c, d = val_key s.next.v in
  (a, b, c, d)

let raw_rule id =
  let rec guard = { v = Term (-1); prev = guard; next = guard } in
  let r = { id; guard; refs = 0 } in
  guard.v <- Guard r;
  r

let mk_rule t =
  let r = raw_rule t.next_rule_id in
  t.next_rule_id <- t.next_rule_id + 1;
  t.nrules <- t.nrules + 1;
  r

let create () =
  {
    start = raw_rule 0;
    index = Hashtbl.create 4096;
    next_rule_id = 1;
    input_len = 0;
    nrules = 1;
  }

(* Remove the index entry for the digram starting at [s], if it is the
   indexed occurrence (physical equality guards against unrelated pairs
   with equal values). *)
let delete_digram t s =
  if (not (is_guard s)) && not (is_guard s.next) then begin
    let k = digram_key s in
    match Hashtbl.find_opt t.index k with
    | Some m when m == s -> Hashtbl.remove t.index k
    | _ -> ()
  end

(* Link left -> right, un-indexing the digram that used to start at
   [left]. *)
let join t left right =
  delete_digram t left;
  left.next <- right;
  right.prev <- left

let insert_after t s fresh =
  join t fresh s.next;
  join t s fresh

let deuse = function NonTerm r -> r.refs <- r.refs - 1 | _ -> ()
let reuse = function NonTerm r -> r.refs <- r.refs + 1 | _ -> ()

(* Unlink and discard a (non-guard) symbol. *)
let delete_sym t s =
  join t s.prev s.next;
  delete_digram t s;
  deuse s.v

let new_nonterm r =
  r.refs <- r.refs + 1;
  NonTerm r

let rule_of_guard s =
  match s.v with Guard r -> r | _ -> invalid_arg "Sequitur: not a guard"

let first r = r.guard.next
let last r = r.guard.prev

(* Forward declarations for the mutually recursive check / match /
   substitute / expand. *)
let rec check t s =
  if is_guard s || is_guard s.next then false
  else begin
    let k = digram_key s in
    match Hashtbl.find_opt t.index k with
    | None ->
        Hashtbl.replace t.index k s;
        false
    | Some m when m == s || m.next == s || s.next == m ->
        (* Already indexed here, or the occurrences overlap (aaa) in either
           direction — the right-overlap case arises only from the extra
           chain probes in [substitute]. *)
        false
    | Some m ->
        process_match t s m;
        true
  end

and process_match t s m =
  let r =
    if is_guard m.prev && is_guard m.next.next then begin
      (* The earlier occurrence is a complete rule body: reuse the rule. *)
      let r = rule_of_guard m.prev in
      substitute t s r;
      r
    end
    else begin
      (* Create a new rule for the digram and substitute both
         occurrences. *)
      let r = mk_rule t in
      let c1 = { v = s.v; prev = r.guard; next = r.guard } in
      reuse c1.v;
      insert_after t (last r) c1;
      let c2 = { v = s.next.v; prev = r.guard; next = r.guard } in
      reuse c2.v;
      insert_after t (last r) c2;
      substitute t m r;
      substitute t s r;
      Hashtbl.replace t.index (digram_key (first r)) (first r);
      r
    end
  in
  (* Rule utility: if the rule's first symbol is a nonterminal used only
     once, inline it. *)
  match (first r).v with
  | NonTerm r2 when r2.refs = 1 -> expand_sym t (first r)
  | _ -> ()

and substitute t s r =
  let q = s.prev in
  delete_sym t s.next;
  delete_sym t s;
  let fresh = { v = new_nonterm r; prev = q; next = q } in
  insert_after t q fresh;
  (* Re-check digrams around the replacement. Beyond the canonical
     (q, fresh) and (fresh, q.next.next) checks, equal-symbol chains
     ("aaa") need two more: deleting the pair can orphan the index slot of
     a chain digram one position to the left of [q] or one position to the
     right of [fresh], because overlapping occurrences share a key and only
     one occurrence is ever indexed. A check () on an indexed digram is a
     no-op, so the extra probes are harmless otherwise. Each check can
     itself substitute (invalidating saved pointers), so stop at the first
     that does — its own recursion re-checks the new neighbourhood. *)
  if not (check t q.prev) then
    if not (check t q) then
      if not (check t q.next) then ignore (check t q.next.next : bool)

and expand_sym t s =
  (* [s] is a nonterminal whose rule is used exactly once: splice the rule
     body in place of [s] and delete the rule. *)
  let r = match s.v with NonTerm r -> r | _ -> invalid_arg "expand_sym" in
  let left = s.prev and right = s.next in
  let f = first r and l = last r in
  delete_digram t s;
  join t left f;
  join t l right;
  Hashtbl.replace t.index (digram_key l) l;
  t.nrules <- t.nrules - 1

let push t terminal =
  if terminal < 0 then invalid_arg "Sequitur.push: negative terminal";
  let g = t.start.guard in
  let fresh = { v = Term terminal; prev = g; next = g } in
  insert_after t g.prev fresh;
  t.input_len <- t.input_len + 1;
  if t.input_len > 1 then ignore (check t fresh.prev : bool)

let input_length t = t.input_len

let iter_rhs r f =
  let s = ref (first r) in
  while not (is_guard !s) do
    f !s;
    s := !s.next
  done

let all_rules t =
  (* Collect reachable rules from the start rule (all rules are reachable
     by construction). *)
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit r =
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.replace seen r.id r;
      iter_rhs r (fun s ->
          match s.v with NonTerm r2 -> visit r2 | _ -> ());
      order := r :: !order
    end
  in
  visit t.start;
  (* [order] is reverse-topological: children before parents. *)
  !order

type rule_info = {
  rule_id : int;
  expansion : int array;
  uses : int;
  rhs_length : int;
}

let rules t =
  let topo = all_rules t in
  (* children-first list reversed = parents first *)
  let parents_first = topo in
  (* uses: start = 1; each nonterminal occurrence contributes the
     containing rule's uses. Process parents before children. *)
  let uses = Hashtbl.create 64 in
  Hashtbl.replace uses t.start.id 1;
  List.iter
    (fun r ->
      let u = try Hashtbl.find uses r.id with Not_found -> 0 in
      iter_rhs r (fun s ->
          match s.v with
          | NonTerm r2 ->
              let cur = try Hashtbl.find uses r2.id with Not_found -> 0 in
              Hashtbl.replace uses r2.id (cur + u)
          | _ -> ()))
    parents_first;
  (* expansions: children before parents, memoised. *)
  let expansions = Hashtbl.create 64 in
  let expansion_of r =
    let buf = ref [] in
    iter_rhs r (fun s ->
        match s.v with
        | Term i -> buf := [| i |] :: !buf
        | NonTerm r2 -> buf := Hashtbl.find expansions r2.id :: !buf
        | Guard _ -> ());
    Array.concat (List.rev !buf)
  in
  List.iter
    (fun r -> Hashtbl.replace expansions r.id (expansion_of r))
    (List.rev parents_first);
  List.map
    (fun r ->
      let rhs_length = ref 0 in
      iter_rhs r (fun _ -> incr rhs_length);
      {
        rule_id = r.id;
        expansion = Hashtbl.find expansions r.id;
        uses = (try Hashtbl.find uses r.id with Not_found -> 0);
        rhs_length = !rhs_length;
      })
    parents_first

let expand t =
  match List.find_opt (fun ri -> ri.rule_id = t.start.id) (rules t) with
  | Some ri -> ri.expansion
  | None -> [||]

let rule_count t = t.nrules

let check_invariants t =
  let rl = all_rules t in
  let digrams = Hashtbl.create 256 in
  let err = ref None in
  let fail msg = if !err = None then err := Some msg in
  (* Digram uniqueness across all rule bodies. Overlapping occurrences
     (chains like "aaa") are legal: SEQUITUR only rewrites non-overlapping
     repeats, so a repeat is a violation only when the previous occurrence
     of the same digram is not the immediately preceding symbol. *)
  List.iter
    (fun r ->
      let s = ref (first r) in
      while not (is_guard !s) do
        if not (is_guard !s.next) then begin
          let k = digram_key !s in
          (match Hashtbl.find_opt digrams k with
          | Some prev when prev.next != !s ->
              fail (Printf.sprintf "digram repeated in rule %d" r.id)
          | _ -> ());
          Hashtbl.replace digrams k !s
        end;
        s := !s.next
      done)
    rl;
  (* Rule utility and refcount consistency. *)
  let counted = Hashtbl.create 64 in
  List.iter
    (fun r ->
      iter_rhs r (fun s ->
          match s.v with
          | NonTerm r2 ->
              Hashtbl.replace counted r2.id
                (1 + try Hashtbl.find counted r2.id with Not_found -> 0)
          | _ -> ()))
    rl;
  List.iter
    (fun r ->
      if r.id <> t.start.id then begin
        let actual = try Hashtbl.find counted r.id with Not_found -> 0 in
        if actual <> r.refs then
          fail (Printf.sprintf "rule %d refcount %d but %d occurrences" r.id r.refs actual);
        if actual < 2 then
          fail (Printf.sprintf "rule %d used %d time(s): utility violated" r.id actual)
      end)
    rl;
  match !err with None -> Ok () | Some m -> Error m
