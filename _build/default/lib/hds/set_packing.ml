type candidate = { sites : int list; weight : int }

let normalize sites = List.sort_uniq compare sites

let pack ?(merge_identical = false) ?max_sets candidates =
  let cands =
    List.filter_map
      (fun c ->
        let key = normalize c.sites in
        if key = [] then None else Some (key, c.weight))
      candidates
  in
  let cands =
    if not merge_identical then cands
    else begin
      let merged = Hashtbl.create 64 in
      List.iter
        (fun (sites, w) ->
          let cur = try Hashtbl.find merged sites with Not_found -> 0 in
          Hashtbl.replace merged sites (cur + w))
        cands;
      Hashtbl.fold (fun sites w acc -> (sites, w) :: acc) merged []
    end
  in
  (* Greedy by weight / sqrt(cardinality) (Halldórsson's greedy gives a
     sqrt(m)-approximation for weighted set packing). *)
  let scored =
    List.map
      (fun (sites, w) ->
        (float_of_int w /. sqrt (float_of_int (List.length sites)), sites, w))
      cands
  in
  let sorted =
    List.sort
      (fun (sa, sitesa, _) (sb, sitesb, _) -> compare (sb, sitesa) (sa, sitesb))
      scored
  in
  let used = Hashtbl.create 64 in
  let selected = ref [] in
  let count = ref 0 in
  let limit = Option.value max_sets ~default:max_int in
  List.iter
    (fun (_, sites, _) ->
      if
        !count < limit
        && List.for_all (fun s -> not (Hashtbl.mem used s)) sites
        && not (List.mem sites !selected)
      then begin
        List.iter (fun s -> Hashtbl.replace used s ()) sites;
        selected := sites :: !selected;
        incr count
      end)
    sorted;
  List.rev !selected
