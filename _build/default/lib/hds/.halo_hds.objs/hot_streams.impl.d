lib/hds/hot_streams.ml: Array List Sequitur
