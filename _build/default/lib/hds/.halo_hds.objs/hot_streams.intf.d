lib/hds/hot_streams.mli: Sequitur
