lib/hds/hds_pipeline.ml: Array Context Exec_env Hashtbl Heap_model Hot_streams Interp Jemalloc_sim List Sequitur Set_packing Vmem
