lib/hds/set_packing.ml: Hashtbl List Option
