lib/hds/set_packing.mli:
