lib/hds/hds_pipeline.mli: Exec_env Hot_streams Ir
