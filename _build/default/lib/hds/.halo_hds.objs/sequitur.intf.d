lib/hds/sequitur.mli:
