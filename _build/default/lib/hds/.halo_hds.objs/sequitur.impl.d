lib/hds/sequitur.ml: Array Hashtbl List Printf
