(** Weighted set packing for co-allocation set selection.

    Each hot data stream suggests a {e co-allocation set}: the allocation
    sites of its objects, weighted by the stream's projected benefit. A
    site can belong to at most one runtime pool, so choosing which
    suggestions to enact is weighted set packing — NP-hard, approximated
    (as in Chilimbi & Shaham, following Halldórsson '99) greedily: sets are
    considered in decreasing [weight / sqrt(|set|)] order and accepted when
    disjoint from everything already accepted.

    By default candidate sets are scored {e independently}, as the
    stream-centric original does — which is exactly how context-level
    regularities scattered across many object-level streams end up
    under-weighted (§5.2's roms analysis). Pass [~merge_identical:true] to
    sum the weights of candidates with equal site sets first; the ablation
    bench uses this to quantify how much of the comparator's failure that
    one decision explains. *)

type candidate = { sites : int list; weight : int }
(** [sites] need not be sorted or deduplicated; normalisation happens
    inside. *)

val pack :
  ?merge_identical:bool -> ?max_sets:int -> candidate list -> int list list
(** The selected pairwise-disjoint site sets (each sorted ascending), in
    selection order (best first). At most [max_sets] are returned when
    given. Candidates with empty site lists are ignored. *)
