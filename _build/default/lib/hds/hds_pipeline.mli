(** The hot-data-streams co-allocation comparator, end to end (§5.1).

    Replicates the comparison technique evaluated in the paper: profile a
    data-reference trace, compress it with SEQUITUR, extract minimal hot
    data streams (2–20 elements, 90% coverage), convert each stream into a
    co-allocation set of {e immediate allocation call sites}, select a
    compatible collection of sets by greedy weighted set packing, and
    enforce the resulting pools at runtime with the same specialised
    allocator HALO uses — but identified only by the allocation's immediate
    call site, which is precisely the limitation §5.2 shows defeats it on
    povray (wrappers), leela (single [new] site) and xalanc (deep
    indirection). *)

type config = {
  streams : Hot_streams.config;
  max_trace : int;
      (** Trace-length cap for the profiling run (default 1,000,000). *)
  max_tracked_size : int;  (** Same 4 KiB bound as HALO's profiling. *)
  max_sets : int option;  (** Cap on selected co-allocation sets. *)
  seed : int;
}

val default_config : config

type plan = {
  groups : int list array;
      (** Selected co-allocation sets: group index -> allocation sites. *)
  stream_count : int;  (** Candidate streams (the roms blow-up metric). *)
  selected_streams : int;
  trace_length : int;
  grammar_rules : int;
  coverage : float;  (** Fraction of the trace the hot streams covered. *)
}

val plan : ?config:config -> ?merge_identical:bool -> Ir.program -> plan
(** Profile the (test-scale) program and derive co-allocation sets.
    [merge_identical] (default false) is forwarded to {!Set_packing.pack}
    — the ablation knob. *)

val classifier : plan -> env:Exec_env.t -> size:int -> int option
(** Runtime identification: the group whose site set contains the
    allocation's immediate call site ([env.cur_alloc_site]), if any.
    Partially applied ([classifier plan ~env]) it is the [classify]
    argument for {!Group_alloc.create}. *)
