type config = { min_elems : int; max_elems : int; coverage : float }

let default_config = { min_elems = 2; max_elems = 20; coverage = 0.9 }

type stream = { objects : int array; heat : int; uses : int }

type result = {
  streams : stream list;
  candidate_count : int;
  covered : int;
  trace_length : int;
}

(* Cut a hot rule's expansion into consecutive streams of at most
   [max_elems] elements. SEQUITUR's rule-utility property inlines rules
   used only once, so a long repeating pattern surfaces as one long rule;
   the bounded "minimal hot data streams" are its segments. *)
let chunk config (r : Sequitur.rule_info) =
  let exp = r.expansion in
  let n = Array.length exp in
  let rec go start acc =
    if start >= n then List.rev acc
    else begin
      let len = min config.max_elems (n - start) in
      if len < config.min_elems then List.rev acc
      else
        go (start + len)
          ({ objects = Array.sub exp start len; heat = len * r.uses; uses = r.uses }
          :: acc)
    end
  in
  go 0 []

let extract ?(config = default_config) grammar =
  if config.min_elems < 1 || config.max_elems < config.min_elems then
    invalid_arg "Hot_streams.extract: bad element bounds";
  if config.coverage <= 0.0 || config.coverage > 1.0 then
    invalid_arg "Hot_streams.extract: coverage must be in (0,1]";
  let trace_length = Sequitur.input_length grammar in
  let rules = Sequitur.rules grammar in
  let start_id = match rules with r :: _ -> r.Sequitur.rule_id | [] -> -1 in
  let eligible =
    List.filter
      (fun (r : Sequitur.rule_info) ->
        r.rule_id <> start_id && Array.length r.expansion >= config.min_elems)
      rules
  in
  (* Hottest rules first; among equals prefer the shortest (the "minimal"
     stream for a periodic pattern is the smallest period, and SEQUITUR
     produces the whole doubling hierarchy above it with equal heat). *)
  let sorted =
    List.sort
      (fun (a : Sequitur.rule_info) (b : Sequitur.rule_info) ->
        let heat (r : Sequitur.rule_info) = Array.length r.expansion * r.uses in
        compare
          (heat b, Array.length a.expansion, a.rule_id)
          (heat a, Array.length b.expansion, b.rule_id))
      eligible
  in
  let candidate_count =
    List.fold_left
      (fun acc (r : Sequitur.rule_info) ->
        let n = Array.length r.expansion in
        acc + ((n + config.max_elems - 1) / config.max_elems))
      0 eligible
  in
  let target = config.coverage *. float_of_int trace_length in
  let rec take covered acc = function
    | [] -> (covered, acc)
    | (r : Sequitur.rule_info) :: rest ->
        if float_of_int covered >= target then (covered, acc)
        else
          let heat = Array.length r.expansion * r.uses in
          take (covered + heat) (List.rev_append (chunk config r) acc) rest
  in
  let covered, streams_rev = take 0 [] sorted in
  {
    streams = List.rev streams_rev;
    candidate_count;
    covered = min covered trace_length;
    trace_length;
  }
