(** Fixed-capacity mutable bit vectors.

    The rewritten program and the specialised allocator communicate through
    a shared "group state" bit vector (§4.3): instrumented call sites set a
    bit on entry and clear it on exit, and the allocator evaluates group
    selectors against the vector at allocation time. This module is that
    vector. *)

type t

val create : int -> t
(** [create n] is an all-zero bitset of capacity [n] bits. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool
val clear_all : t -> unit
val cardinal : t -> int
(** Number of set bits. *)

val copy : t -> t
val to_list : t -> int list
(** Indices of set bits, ascending. *)

val pp : Format.formatter -> t -> unit
(** Renders as e.g. [{0,3,7}]. *)
