type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset: index %d out of bounds [0,%d)" i t.n)

let set t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b lor (1 lsl (i land 7)))

let clear t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

let get t i =
  check t i;
  Bytes.get_uint8 t.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let cardinal t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if get t i then incr c
  done;
  !c

let copy t = { bits = Bytes.copy t.bits; n = t.n }

let to_list t =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (to_list t)))
