type align = Left | Right | Center

type item = Row of string list | Rule

type t = {
  title : string option;
  headers : string list;
  arity : int;
  mutable aligns : align list;
  mutable items : item list; (* reversed *)
}

let create ?title ~headers () =
  let arity = List.length headers in
  if arity = 0 then invalid_arg "Table.create: no headers";
  let aligns = List.mapi (fun i _ -> if i = 0 then Left else Right) headers in
  { title; headers; arity; aligns; items = [] }

let set_aligns t aligns =
  if List.length aligns <> t.arity then invalid_arg "Table.set_aligns: arity mismatch";
  t.aligns <- aligns

let add_row t row =
  if List.length row <> t.arity then invalid_arg "Table.add_row: arity mismatch";
  t.items <- Row row :: t.items

let add_rule t = t.items <- Rule :: t.items

(* Visible width: we only emit ASCII so String.length is accurate. *)
let width = String.length

let pad align w s =
  let n = width s in
  if n >= w then s
  else
    match align with
    | Left -> s ^ String.make (w - n) ' '
    | Right -> String.make (w - n) ' ' ^ s
    | Center ->
        let l = (w - n) / 2 in
        String.make l ' ' ^ s ^ String.make (w - n - l) ' '

let render t =
  let rows = List.rev t.items in
  let widths = Array.of_list (List.map width t.headers) in
  List.iter
    (function
      | Rule -> ()
      | Row r -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (width c)) r)
    rows;
  let buf = Buffer.create 1024 in
  let rule_line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let emit_row aligns r =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      r;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n');
  rule_line ();
  emit_row (List.map (fun _ -> Center) t.headers) t.headers;
  rule_line ();
  List.iter (function Rule -> rule_line () | Row r -> emit_row t.aligns r) rows;
  rule_line ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_pct f =
  let pct = f *. 100.0 in
  Printf.sprintf "%+.2f%%" pct

let fmt_bytes n =
  let f = float_of_int n in
  if n < 1024 then Printf.sprintf "%dB" n
  else if n < 1024 * 1024 then Printf.sprintf "%.2fKiB" (f /. 1024.0)
  else if n < 1024 * 1024 * 1024 then Printf.sprintf "%.2fMiB" (f /. (1024.0 *. 1024.0))
  else Printf.sprintf "%.2fGiB" (f /. (1024.0 *. 1024.0 *. 1024.0))

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
