type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = true) t =
  let buf = Buffer.create 256 in
  let rec go indent t =
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if pretty then Buffer.add_char buf '\n' in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f -> Buffer.add_string buf (float_str f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun k item ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 1);
            go (indent + 1) item)
          items;
        nl ();
        pad indent;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun k (name, value) ->
            if k > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (indent + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape name);
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (indent + 1) value)
          fields;
        nl ();
        pad indent;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let to_channel ?pretty oc t =
  output_string oc (to_string ?pretty t);
  output_char oc '\n'
