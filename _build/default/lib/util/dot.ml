type node = { id : int; label : string; group : int option; accesses : int }
type edge = { src : int; dst : int; weight : int }

(* A colour-blind-safe qualitative palette (Okabe–Ito). *)
let palette =
  [|
    "#E69F00"; "#56B4E9"; "#009E73"; "#F0E442"; "#0072B2"; "#D55E00"; "#CC79A7";
    "#999933"; "#882255"; "#44AA99";
  |]

let group_color g = palette.(abs g mod Array.length palette)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(name = "affinity") ?(min_weight = 0) nodes edges =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  layout=neato;\n  overlap=false;\n  splines=true;\n";
  Buffer.add_string buf "  node [style=filled, fontname=\"Helvetica\"];\n";
  let max_w =
    List.fold_left (fun acc (e : edge) -> max acc e.weight) 1 edges |> float_of_int
  in
  List.iter
    (fun (n : node) ->
      let color, fontcolor =
        match n.group with
        | Some g -> (group_color g, "#000000")
        | None -> ("#BBBBBB", "#333333")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [label=\"%s\\n(%d accesses)\", fillcolor=\"%s\", fontcolor=\"%s\"];\n"
           n.id (escape n.label) n.accesses color fontcolor))
    nodes;
  List.iter
    (fun (e : edge) ->
      if e.weight >= min_weight then
        let pen = 1.0 +. (7.0 *. (float_of_int e.weight /. max_w)) in
        Buffer.add_string buf
          (Printf.sprintf "  n%d -- n%d [penwidth=%.2f, label=\"%d\"];\n" e.src e.dst
             pen e.weight))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
