(** Plain-text table rendering for experiment output.

    The benchmark harness prints one table per reproduced paper figure/table;
    this module renders aligned, boxed ASCII tables so the output is readable
    both in a terminal and in [bench_output.txt]. *)

type align = Left | Right | Center

type t
(** A table under construction. *)

val create : ?title:string -> headers:string list -> unit -> t
(** [create ~headers ()] starts a table; every row added later must have the
    same arity as [headers]. *)

val set_aligns : t -> align list -> unit
(** Per-column alignment; default is [Left] for the first column and [Right]
    for the rest (numeric-heavy tables). Raises [Invalid_argument] on arity
    mismatch. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] on arity mismatch. *)

val add_rule : t -> unit
(** Append a horizontal separator rule at the current position. *)

val render : t -> string
(** Render to a string (trailing newline included). *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val fmt_pct : float -> string
(** Format a fraction as a signed percentage, e.g. [0.0423] -> ["+4.23%"]. *)

val fmt_bytes : int -> string
(** Human bytes: ["37.06KiB"], ["2.05MiB"], matching the paper's Table 1
    style. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float with [decimals] (default 2) places. *)
