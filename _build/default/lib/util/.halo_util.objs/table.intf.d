lib/util/table.mli:
