lib/util/dot.mli:
