lib/util/dot.ml: Array Buffer List Printf String
