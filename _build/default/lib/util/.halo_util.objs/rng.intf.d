lib/util/rng.mli:
