lib/util/json.mli:
