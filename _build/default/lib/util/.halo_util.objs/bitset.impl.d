lib/util/bitset.ml: Bytes Format List Printf String
