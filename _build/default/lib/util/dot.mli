(** Graphviz [dot] emission for affinity graphs (Figure 9 analog).

    The paper visualises allocation-context affinity graphs with nodes
    coloured by group and edge thickness proportional to weight; this module
    produces an equivalent [.dot] file from abstract node/edge descriptions
    so the reproduction's graphs can be rendered with stock graphviz. *)

type node = {
  id : int;
  label : string;
  group : int option;  (** [None] renders grey (ungrouped), like the paper. *)
  accesses : int;
}

type edge = { src : int; dst : int; weight : int }

val render : ?name:string -> ?min_weight:int -> node list -> edge list -> string
(** [render nodes edges] produces the text of an undirected dot graph.
    Edges below [min_weight] (default 0) are hidden, mirroring the paper's
    "edges with weight less than 200,000 are hidden" treatment. *)

val group_color : int -> string
(** Deterministic colour for a group index (cycles through a fixed palette). *)
