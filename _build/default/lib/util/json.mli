(** Minimal JSON emission (no external dependencies).

    The paper's artefact generates "JSON files ... containing the specific
    data points for each run" (A.6); {!Runner.to_json}-style serialisation
    and the CLI's [--json] flag use this module. Emission only — the
    reproduction never needs to parse JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialise; [pretty] (default true) indents with two spaces. Strings
    are escaped per RFC 8259; non-finite floats become [null]. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit
