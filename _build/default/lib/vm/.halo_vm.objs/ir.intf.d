lib/vm/ir.mli:
