lib/vm/exec_env.mli: Bitset Ir
