lib/vm/dsl.ml: Ir
