lib/vm/ir_print.mli: Format Ir
