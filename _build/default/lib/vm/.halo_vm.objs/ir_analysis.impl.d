lib/vm/ir_analysis.ml: Hashtbl Ir List Printf
