lib/vm/dsl.mli: Ir
