lib/vm/interp.mli: Addr Alloc_iface Exec_env Ir Vmem
