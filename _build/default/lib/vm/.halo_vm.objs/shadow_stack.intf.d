lib/vm/shadow_stack.mli: Ir
