lib/vm/shadow_stack.ml: Array Hashtbl Ir List
