lib/vm/ir_analysis.mli: Ir
