lib/vm/ir_print.ml: Format Ir List String
