lib/vm/ir.ml: Hashtbl List Printf
