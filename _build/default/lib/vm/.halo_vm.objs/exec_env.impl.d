lib/vm/exec_env.ml: Bitset Ir
