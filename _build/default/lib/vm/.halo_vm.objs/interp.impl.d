lib/vm/interp.ml: Addr Alloc_iface Array Bitset Exec_env Fun Hashtbl Ir List Option Printf Rng Shadow_stack Vmem
