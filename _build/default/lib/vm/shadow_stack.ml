type frame = { func : string; site : Ir.site }
type t = { mutable frames : frame list (* innermost first *); mutable depth : int }

let create () = { frames = []; depth = 0 }

let push t ~func ~site =
  t.frames <- { func; site } :: t.frames;
  t.depth <- t.depth + 1

let pop t =
  match t.frames with
  | [] -> failwith "Shadow_stack.pop: underflow"
  | _ :: rest ->
      t.frames <- rest;
      t.depth <- t.depth - 1

let depth t = t.depth

(* Walk innermost-to-outermost keeping the first (i.e. most recent)
   occurrence of each (function, site) pair, then reverse into
   outermost-to-innermost order. *)
let reduce_frames frames =
  let seen = Hashtbl.create 16 in
  let kept =
    List.filter
      (fun f ->
        let key = (f.func, f.site) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      frames
  in
  let n = List.length kept in
  let out = Array.make n 0 in
  List.iteri (fun idx f -> out.(n - 1 - idx) <- f.site) kept;
  out

let reduced t = reduce_frames t.frames

let reduce_sites arr =
  let frames =
    Array.to_list arr |> List.rev
    |> List.map (fun (func, site) -> { func; site })
  in
  reduce_frames frames
