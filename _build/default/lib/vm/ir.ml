type site = int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type expr =
  | Int of int
  | Var of string
  | Gvar of string
  | Binop of binop * expr * expr
  | Not of expr
  | Rand of expr

type stmt =
  | Let of string * expr
  | Gassign of string * expr
  | Malloc of string * expr * site
  | Calloc of string * expr * expr * site
  | Realloc of string * expr * expr * site
  | Free of expr
  | Load of string * expr * expr * int
  | Store of expr * expr * expr * int
  | Call of string option * string * expr list * site
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | Compute of int

type func = { fname : string; params : string list; body : stmt list }

type site_info = {
  in_func : string;
  ordinal : int; (* per-function site counter, for labelling *)
  callee : string option; (* Some f for calls; None for alloc intrinsics *)
  intrinsic : string option; (* "malloc" / "calloc" / "realloc" for allocs *)
}

type program = {
  funcs : func list;
  main : string;
  by_name : (string, func) Hashtbl.t;
  site_infos : (site, site_info) Hashtbl.t;
}

let funcs p = p.funcs
let main p = p.main
let find_func p name = Hashtbl.find_opt p.by_name name

let sites p =
  Hashtbl.fold (fun s _ acc -> s :: acc) p.site_infos [] |> List.sort compare

let alloc_sites p =
  Hashtbl.fold
    (fun s info acc -> if info.intrinsic <> None then s :: acc else acc)
    p.site_infos []
  |> List.sort compare

let site_callee p s =
  match Hashtbl.find_opt p.site_infos s with
  | Some { callee; _ } -> callee
  | None -> None

let site_label p s =
  match Hashtbl.find_opt p.site_infos s with
  | None -> Printf.sprintf "0x%x" s
  | Some info ->
      let target =
        match (info.callee, info.intrinsic) with
        | Some f, _ -> f
        | None, Some i -> i
        | None, None -> "?"
      in
      Printf.sprintf "%s:%d(%s)" info.in_func info.ordinal target

let finalize ?(site_base = 0x400000) ~main:main_name fns =
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun f ->
      if Hashtbl.mem by_name f.fname then
        invalid_arg (Printf.sprintf "Ir.finalize: duplicate function %S" f.fname);
      Hashtbl.replace by_name f.fname f)
    fns;
  if not (Hashtbl.mem by_name main_name) then
    invalid_arg (Printf.sprintf "Ir.finalize: main function %S not defined" main_name);
  let site_infos = Hashtbl.create 256 in
  let next = ref site_base in
  let used = Hashtbl.create 256 in
  let claim s =
    if Hashtbl.mem used s then
      invalid_arg (Printf.sprintf "Ir.finalize: duplicate explicit site 0x%x" s);
    Hashtbl.replace used s ()
  in
  (* Pre-claim all explicitly given (non-zero) sites so fresh assignment
     never collides with them. *)
  let rec preclaim_stmt = function
    | Malloc (_, _, s) | Calloc (_, _, _, s) | Realloc (_, _, _, s)
    | Call (_, _, _, s) ->
        if s <> 0 then claim s
    | If (_, a, b) ->
        List.iter preclaim_stmt a;
        List.iter preclaim_stmt b
    | While (_, a) -> List.iter preclaim_stmt a
    | Let _ | Gassign _ | Free _ | Load _ | Store _ | Return _ | Compute _ -> ()
  in
  List.iter (fun f -> List.iter preclaim_stmt f.body) fns;
  let counter = ref 0 in
  let fresh () =
    (* Irregular strides mimic real code addresses (instructions between
       call sites vary in length); a 16-spaced lattice would make XOR-based
       naming schemes collide systematically in a way real binaries do
       not. Deterministic: depends only on how many sites precede. *)
    incr counter;
    let stride = 16 + (8 * ((5 + (13 * !counter)) mod 37)) in
    next := !next + stride;
    while Hashtbl.mem used !next do
      next := !next + 16
    done;
    let s = !next in
    Hashtbl.replace used s ();
    s
  in
  let check_call fname callee args =
    match Hashtbl.find_opt by_name callee with
    | None ->
        invalid_arg
          (Printf.sprintf "Ir.finalize: %S calls undefined function %S" fname callee)
    | Some f ->
        if List.length args <> List.length f.params then
          invalid_arg
            (Printf.sprintf
               "Ir.finalize: %S calls %S with %d argument(s); it takes %d" fname
               callee (List.length args) (List.length f.params))
  in
  let rewrite_func f =
    let ordinal = ref 0 in
    let register s callee intrinsic =
      incr ordinal;
      Hashtbl.replace site_infos s
        { in_func = f.fname; ordinal = !ordinal; callee; intrinsic }
    in
    let rec stmt = function
      | Malloc (v, sz, s) ->
          let s = if s = 0 then fresh () else s in
          register s None (Some "malloc");
          Malloc (v, sz, s)
      | Calloc (v, n, sz, s) ->
          let s = if s = 0 then fresh () else s in
          register s None (Some "calloc");
          Calloc (v, n, sz, s)
      | Realloc (v, p, sz, s) ->
          let s = if s = 0 then fresh () else s in
          register s None (Some "realloc");
          Realloc (v, p, sz, s)
      | Call (dst, callee, args, s) ->
          check_call f.fname callee args;
          let s = if s = 0 then fresh () else s in
          register s (Some callee) None;
          Call (dst, callee, args, s)
      | If (c, a, b) -> If (c, List.map stmt a, List.map stmt b)
      | While (c, a) -> While (c, List.map stmt a)
      | (Let _ | Gassign _ | Free _ | Load _ | Store _ | Return _ | Compute _) as st
        ->
          st
    in
    { f with body = List.map stmt f.body }
  in
  let fns = List.map rewrite_func fns in
  Hashtbl.reset by_name;
  List.iter (fun f -> Hashtbl.replace by_name f.fname f) fns;
  { funcs = fns; main = main_name; by_name; site_infos }
