(** Static analysis over workload programs.

    Small compiler-style analyses used for workload validation, for
    reasoning about identification (which call sites can appear on the
    stack above each allocation), and by the CLI's program statistics:

    - the static call graph and reachability from [main];
    - static call-depth bounds (with recursion detected and reported);
    - for every allocation site, the set of call sites that can possibly
      be live on the stack when it executes — a sound over-approximation
      of the contexts the profiler can observe, which the tests use to
      check that selectors only ever monitor plausible sites. *)

type t

val analyse : Ir.program -> t

val call_graph : t -> (string * string list) list
(** Each function with the (sorted, distinct) functions it may call. *)

val reachable : t -> string list
(** Functions reachable from [main], sorted. *)

val unreachable : t -> string list
(** Dead functions (defined but unreachable), sorted. *)

val recursive : t -> bool
(** Whether the call graph has a cycle reachable from [main]. *)

val max_depth : t -> int option
(** Longest call chain from [main] (1 = just [main]); [None] when the
    program is recursive (depth unbounded statically). *)

val possible_sites_above : t -> Ir.site -> Ir.site list
(** For an allocation site, every call site that can be on the stack when
    the allocation executes (not including the allocation site itself),
    sorted. Raises [Invalid_argument] for a non-allocation site. *)

val stats_to_string : t -> string
(** Human-readable summary: function/site counts, reachability, depth. *)
