(** The profiler's shadow call stack (§4.1).

    During profiling HALO maintains a shadow stack that deliberately differs
    from the true call stack: it records, for each active call, the exact
    call site from which the function was invoked. At an allocation, the
    stack is flattened into the allocation's {e context}.

    Stacks containing recursive calls are transformed into a canonical
    {e reduced} form in which only the most recent occurrence of any
    (function, call site) pair is retained — bounding contexts for
    arbitrarily deep recursion without imposing fixed size limits, while
    avoiding the overfitting of raw unbounded stacks. *)

type t

val create : unit -> t
val push : t -> func:string -> site:Ir.site -> unit
val pop : t -> unit
(** Raises [Failure] on underflow (an interpreter bug, not a program one). *)

val depth : t -> int
(** Raw (un-reduced) depth. *)

val reduced : t -> Ir.site array
(** The canonical reduced context: call sites from outermost to innermost,
    with only the most recent occurrence of each (function, site) pair
    kept. The allocation site itself is {e not} included — callers append
    it (see {!Profiler}). *)

val reduce_sites : (string * Ir.site) array -> Ir.site array
(** Pure reduction on an explicit outermost-to-innermost stack of
    (function, site) frames — exposed for direct testing of the
    canonicalisation rule. *)
