type t = {
  group_state : Bitset.t;
  mutable cur_alloc_site : Ir.site;
  mutable cur_name4 : int;
}

let create ?(group_bits = 64) () =
  { group_state = Bitset.create group_bits; cur_alloc_site = 0; cur_name4 = 0 }
