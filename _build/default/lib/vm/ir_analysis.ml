type info = {
  program : Ir.program;
  calls : (string, (Ir.site * string) list) Hashtbl.t;
      (* function -> its call sites with callees *)
  allocs : (string, Ir.site list) Hashtbl.t; (* function -> allocation sites *)
  func_of_site : (Ir.site, string) Hashtbl.t;
}

type t = info

let analyse program =
  let calls = Hashtbl.create 64 in
  let allocs = Hashtbl.create 64 in
  let func_of_site = Hashtbl.create 256 in
  let add tbl key v =
    Hashtbl.replace tbl key (v :: (try Hashtbl.find tbl key with Not_found -> []))
  in
  List.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace calls f.Ir.fname [];
      Hashtbl.replace allocs f.Ir.fname [];
      let rec stmt = function
        | Ir.Call (_, callee, _, site) ->
            add calls f.Ir.fname (site, callee);
            Hashtbl.replace func_of_site site f.Ir.fname
        | Ir.Malloc (_, _, site) | Ir.Calloc (_, _, _, site)
        | Ir.Realloc (_, _, _, site) ->
            add allocs f.Ir.fname site;
            Hashtbl.replace func_of_site site f.Ir.fname
        | Ir.If (_, a, b) ->
            List.iter stmt a;
            List.iter stmt b
        | Ir.While (_, a) -> List.iter stmt a
        | Ir.Let _ | Ir.Gassign _ | Ir.Free _ | Ir.Load _ | Ir.Store _
        | Ir.Return _ | Ir.Compute _ ->
            ()
      in
      List.iter stmt f.Ir.body)
    (Ir.funcs program);
  { program; calls; allocs; func_of_site }

let callees t f =
  (try Hashtbl.find t.calls f with Not_found -> [])
  |> List.map snd |> List.sort_uniq compare

let call_graph t =
  Ir.funcs t.program
  |> List.map (fun (f : Ir.func) -> (f.Ir.fname, callees t f.Ir.fname))
  |> List.sort compare

let reachable_set t =
  let seen = Hashtbl.create 64 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      List.iter go (callees t f)
    end
  in
  go (Ir.main t.program);
  seen

let reachable t =
  let seen = reachable_set t in
  Hashtbl.fold (fun f () acc -> f :: acc) seen [] |> List.sort compare

let unreachable t =
  let seen = reachable_set t in
  Ir.funcs t.program
  |> List.filter_map (fun (f : Ir.func) ->
         if Hashtbl.mem seen f.Ir.fname then None else Some f.Ir.fname)
  |> List.sort compare

(* Cycle detection restricted to the reachable subgraph, via DFS colours. *)
let recursive t =
  let state = Hashtbl.create 64 in
  (* 1 = on stack, 2 = done *)
  let rec go f =
    match Hashtbl.find_opt state f with
    | Some 1 -> true
    | Some _ -> false
    | None ->
        Hashtbl.replace state f 1;
        let cyc = List.exists go (callees t f) in
        Hashtbl.replace state f 2;
        cyc
  in
  go (Ir.main t.program)

let max_depth t =
  if recursive t then None
  else begin
    let memo = Hashtbl.create 64 in
    let rec depth f =
      match Hashtbl.find_opt memo f with
      | Some d -> d
      | None ->
          let d =
            1 + List.fold_left (fun acc g -> max acc (depth g)) 0 (callees t f)
          in
          Hashtbl.replace memo f d;
          d
    in
    Some (depth (Ir.main t.program))
  end

(* can_reach.(g)(f): g = f, or a call path g -> ... -> f exists. *)
let can_reach t src dst =
  let seen = Hashtbl.create 64 in
  let rec go f =
    f = dst
    || (not (Hashtbl.mem seen f))
       && begin
            Hashtbl.replace seen f ();
            List.exists go (callees t f)
          end
  in
  go src

let possible_sites_above t site =
  let owner =
    match Hashtbl.find_opt t.func_of_site site with
    | Some f -> f
    | None -> invalid_arg "Ir_analysis.possible_sites_above: unknown site"
  in
  if not (List.exists (fun (_, sites) -> List.mem site sites)
            (Hashtbl.fold (fun f s acc -> (f, s) :: acc) t.allocs []))
  then invalid_arg "Ir_analysis.possible_sites_above: not an allocation site";
  let main_reach = reachable_set t in
  let result = ref [] in
  Hashtbl.iter
    (fun g call_sites ->
      if Hashtbl.mem main_reach g then
        List.iter
          (fun (s, callee) -> if can_reach t callee owner then result := s :: !result)
          call_sites)
    t.calls;
  List.sort_uniq compare !result

let stats_to_string t =
  let nfuncs = List.length (Ir.funcs t.program) in
  let nsites = List.length (Ir.sites t.program) in
  let nallocs = List.length (Ir.alloc_sites t.program) in
  let depth =
    match max_depth t with
    | Some d -> string_of_int d
    | None -> "unbounded (recursive)"
  in
  Printf.sprintf
    "functions: %d (%d unreachable)\nsites: %d (%d allocation sites)\nmax call depth: %s\nrecursive: %b\n"
    nfuncs
    (List.length (unreachable t))
    nsites nallocs depth (recursive t)
