open Ir

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Var x -> Format.pp_print_string ppf x
  | Gvar x -> Format.fprintf ppf "@@%s" x
  | Rand b -> Format.fprintf ppf "rand(%a)" pp_expr b
  | Not e -> Format.fprintf ppf "!(%a)" pp_expr e
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b

let pp_args ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_expr ppf args

let rec pp_stmt ?(indent = 0) ppf st =
  let pad = String.make indent ' ' in
  let block body =
    List.iter
      (fun s -> Format.fprintf ppf "%a@," (pp_stmt ~indent:(indent + 2)) s)
      body
  in
  match st with
  | Let (x, e) -> Format.fprintf ppf "%s%s = %a;" pad x pp_expr e
  | Gassign (x, e) -> Format.fprintf ppf "%s@@%s = %a;" pad x pp_expr e
  | Malloc (x, sz, site) ->
      Format.fprintf ppf "%s%s = malloc(%a);  // site 0x%x" pad x pp_expr sz site
  | Calloc (x, n, sz, site) ->
      Format.fprintf ppf "%s%s = calloc(%a, %a);  // site 0x%x" pad x pp_expr n
        pp_expr sz site
  | Realloc (x, p, sz, site) ->
      Format.fprintf ppf "%s%s = realloc(%a, %a);  // site 0x%x" pad x pp_expr p
        pp_expr sz site
  | Free e -> Format.fprintf ppf "%sfree(%a);" pad pp_expr e
  | Load (x, p, off, bytes) ->
      Format.fprintf ppf "%s%s = *%d(%a + %a);" pad x bytes pp_expr p pp_expr off
  | Store (p, off, value, bytes) ->
      Format.fprintf ppf "%s*%d(%a + %a) = %a;" pad bytes pp_expr p pp_expr off
        pp_expr value
  | Call (dst, f, args, site) ->
      Format.fprintf ppf "%s%s%s(%a);  // site 0x%x" pad
        (match dst with Some d -> d ^ " = " | None -> "")
        f pp_args args site
  | If (c, a, b) ->
      Format.fprintf ppf "%sif (%a) {@," pad pp_expr c;
      block a;
      if b <> [] then begin
        Format.fprintf ppf "%s} else {@," pad;
        block b
      end;
      Format.fprintf ppf "%s}" pad
  | While (c, body) ->
      Format.fprintf ppf "%swhile (%a) {@," pad pp_expr c;
      block body;
      Format.fprintf ppf "%s}" pad
  | Return e -> Format.fprintf ppf "%sreturn %a;" pad pp_expr e
  | Compute n -> Format.fprintf ppf "%scompute(%d);" pad n

let pp_func ppf (f : func) =
  Format.fprintf ppf "@[<v>func %s(%s) {@," f.fname (String.concat ", " f.params);
  List.iter (fun s -> Format.fprintf ppf "%a@," (pp_stmt ~indent:2) s) f.body;
  Format.fprintf ppf "}@]"

let pp_program ppf p =
  Format.fprintf ppf "@[<v>// main = %s@,@," (Ir.main p);
  List.iter (fun f -> Format.fprintf ppf "%a@,@," pp_func f) (Ir.funcs p);
  Format.fprintf ppf "@]"

let program_to_string p = Format.asprintf "%a" pp_program p
