(** The workload intermediate representation.

    HALO operates on x86-64 binaries; this reproduction operates on programs
    in a small imperative IR, which plays the role of the "target binary".
    The IR exposes exactly the observables HALO consumes:

    - {b call sites}: every call and every allocation statement carries a
      unique integer {!site} (a stand-in for the instruction address), which
      is what shadow stacks, allocation contexts, selectors and the
      rewriting pass all speak in terms of;
    - {b POSIX.1 allocation intrinsics} ([malloc]/[calloc]/[realloc]/[free])
      dispatched through a pluggable allocator;
    - {b loads and stores} with byte sizes, from which the address trace is
      generated.

    Programs are built with {!Dsl} and must be passed through {!finalize},
    which assigns site addresses and validates the program, before
    execution. *)

type site = int
(** A call-site "address". Assigned by {!finalize}; unique per syntactic
    call/allocation statement, stable across runs of the same program. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Truncating; division by zero is a simulated crash. *)
  | Rem
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And  (** Logical on 0/1 (operands already evaluated). *)
  | Or

type expr =
  | Int of int
  | Var of string  (** Local variable (or parameter) of the current function. *)
  | Gvar of string  (** Global scalar ("register-allocated": no memory traffic). *)
  | Binop of binop * expr * expr
  | Not of expr
  | Rand of expr
      (** [Rand bound]: uniform draw in \[0, bound) from the program's own
          deterministic stream — models input-dependent control flow. *)

type stmt =
  | Let of string * expr  (** Bind/overwrite a local. *)
  | Gassign of string * expr
  | Malloc of string * expr * site  (** [v = malloc(size)] *)
  | Calloc of string * expr * expr * site  (** [v = calloc(n, size)] *)
  | Realloc of string * expr * expr * site  (** [v = realloc(ptr, size)] *)
  | Free of expr
  | Load of string * expr * expr * int
      (** [Load (v, ptr, off, bytes)]: [v = *(ptr + off)], a [bytes]-wide
          read. *)
  | Store of expr * expr * expr * int
      (** [Store (ptr, off, value, bytes)]: [*(ptr + off) = value]. *)
  | Call of string option * string * expr list * site
      (** [Call (dst, f, args, site)]; [dst] receives the return value. *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of expr
  | Compute of int
      (** [Compute n]: [n] pure ALU instructions; models compute-bound
          phases without generating memory traffic. *)

type func = { fname : string; params : string list; body : stmt list }

type program
(** A finalized program: validated, with all sites assigned. *)

val finalize : ?site_base:int -> main:string -> func list -> program
(** Assigns a unique address to every call/allocation site (starting at
    [site_base], default [0x400000], spaced 16 bytes apart, in textual
    order — mimicking code addresses in a linked binary), and validates:
    [main] exists, function names are unique, every called function is
    defined and invoked with the right arity, and any pre-set (non-zero)
    sites are unique. Raises [Invalid_argument] with a diagnostic
    otherwise. *)

val funcs : program -> func list
val main : program -> string
val find_func : program -> string -> func option

val sites : program -> site list
(** All sites, ascending. *)

val site_label : program -> site -> string
(** Human-readable label for a site, e.g. ["parse_scene:3(create_a)"] —
    enclosing function, statement ordinal, and callee — the reproduction's
    analog of symbolised addresses in Figure 9's node labels. *)

val site_callee : program -> site -> string option
(** The called function for a call site; [None] for allocation intrinsics
    (whose "callee" is malloc/calloc/realloc itself). *)

val alloc_sites : program -> site list
(** Sites of allocation intrinsics only. *)
