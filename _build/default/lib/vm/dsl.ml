open Ir

let i n = Int n
let v x = Var x
let g x = Gvar x
let rand b = Rand b
let not_ e = Not e
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( %: ) a b = Binop (Rem, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( =: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Ne, a, b)
let ( &&: ) a b = Binop (And, a, b)
let ( ||: ) a b = Binop (Or, a, b)
let let_ x e = Let (x, e)
let gassign x e = Gassign (x, e)
let malloc ?(site = 0) x sz = Malloc (x, sz, site)
let calloc ?(site = 0) x n sz = Calloc (x, n, sz, site)
let realloc_ ?(site = 0) x p sz = Realloc (x, p, sz, site)
let free_ p = Free p
let load ?(bytes = 8) x p off = Load (x, p, off, bytes)
let store ?(bytes = 8) p off value = Store (p, off, value, bytes)
let call ?(site = 0) ?dst f args = Call (dst, f, args, site)
let if_ c a b = If (c, a, b)
let while_ c body = While (c, body)

let for_ x ~from ~below body =
  [
    Let (x, from);
    While (Binop (Lt, Var x, below), body @ [ Let (x, Binop (Add, Var x, Int 1)) ]);
  ]

let return_ e = Return e
let compute n = Compute n
let func fname params body = { fname; params; body }
let program ?site_base ~main fns = finalize ?site_base ~main fns
