(** Shared runtime state between the rewritten program and the allocator.

    In the real system, BOLT-inserted instructions write a group-state bit
    vector in a known data section, and the specialised allocator locates it
    when loaded (§4.4); the allocator also implicitly sees the return
    address of its caller. Here the two sides share this record instead:
    the interpreter updates it, and allocator classifiers read it. Create
    it first, hand it to both {!Group_alloc.create}-style allocators and
    {!Interp.create}. *)

type t = {
  group_state : Bitset.t;
      (** One bit per instrumented call site; set while control is inside
          the site's dynamic extent. *)
  mutable cur_alloc_site : Ir.site;
      (** The call site of the allocation currently being serviced — the
          "immediate call site of the allocation procedure" used by the
          hot-data-streams comparator's identification; 0 outside an
          allocation. *)
  mutable cur_name4 : int;
      (** Calder-style allocation name: XOR of the last four sites of the
          current allocation's reduced context (the runtime analog of
          XOR-ing the last four return addresses); 0 outside an
          allocation. Used by {!Name_ident}. *)
}

val create : ?group_bits:int -> unit -> t
(** [group_bits] (default 64) is the capacity of the group-state vector. *)
