(** Combinators for authoring workload programs.

    A thin, readable layer over {!Ir} used by the 11 benchmark analogs in
    [halo_workloads] and by the examples. Sites default to 0 and are
    assigned by {!Ir.finalize} (via {!program}); pass [~site] only when a
    test needs to refer to a site by a known address. *)

(** {1 Expressions} *)

val i : int -> Ir.expr
val v : string -> Ir.expr
val g : string -> Ir.expr
val rand : Ir.expr -> Ir.expr
val not_ : Ir.expr -> Ir.expr

val ( +: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( -: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( *: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( /: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( %: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( <: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( <=: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( >: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( >=: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( =: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( <>: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( &&: ) : Ir.expr -> Ir.expr -> Ir.expr
val ( ||: ) : Ir.expr -> Ir.expr -> Ir.expr

(** {1 Statements} *)

val let_ : string -> Ir.expr -> Ir.stmt
val gassign : string -> Ir.expr -> Ir.stmt
val malloc : ?site:Ir.site -> string -> Ir.expr -> Ir.stmt
val calloc : ?site:Ir.site -> string -> Ir.expr -> Ir.expr -> Ir.stmt
val realloc_ : ?site:Ir.site -> string -> Ir.expr -> Ir.expr -> Ir.stmt
val free_ : Ir.expr -> Ir.stmt

val load : ?bytes:int -> string -> Ir.expr -> Ir.expr -> Ir.stmt
(** [load v ptr off] : [v = *(ptr+off)]; [bytes] defaults to 8. *)

val store : ?bytes:int -> Ir.expr -> Ir.expr -> Ir.expr -> Ir.stmt
(** [store ptr off value]. *)

val call : ?site:Ir.site -> ?dst:string -> string -> Ir.expr list -> Ir.stmt
val if_ : Ir.expr -> Ir.stmt list -> Ir.stmt list -> Ir.stmt
val while_ : Ir.expr -> Ir.stmt list -> Ir.stmt

val for_ : string -> from:Ir.expr -> below:Ir.expr -> Ir.stmt list -> Ir.stmt list
(** [for_ "i" ~from ~below body] expands to a counted loop; returns the
    init + loop statements (splice with [@]). *)

val return_ : Ir.expr -> Ir.stmt
val compute : int -> Ir.stmt

(** {1 Programs} *)

val func : string -> string list -> Ir.stmt list -> Ir.func
val program : ?site_base:int -> main:string -> Ir.func list -> Ir.program
