(** Pretty-printing ("disassembly") of workload programs.

    Renders a finalized program in a readable C-like syntax with every
    call/allocation site annotated by its address — the reproduction's
    analog of objdump output, used by the CLI's [disasm] command, by tests
    that assert program structure, and when debugging workload authoring. *)

val pp_expr : Format.formatter -> Ir.expr -> unit
val pp_stmt : ?indent:int -> Format.formatter -> Ir.stmt -> unit
val pp_func : Format.formatter -> Ir.func -> unit
val pp_program : Format.formatter -> Ir.program -> unit

val program_to_string : Ir.program -> string
(** [pp_program] into a string. *)
