lib/alloc/ptmalloc_sim.mli: Alloc_iface Vmem
