lib/alloc/alloc_iface.ml: Addr Hashtbl Lazy Printf
