lib/alloc/ptmalloc_sim.ml: Addr Alloc_iface Int Lazy Map Option Set Vmem
