lib/alloc/random_pool.ml: Addr Alloc_iface Array Lazy Option Printf Rng Vmem
