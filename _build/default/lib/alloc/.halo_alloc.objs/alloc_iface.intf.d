lib/alloc/alloc_iface.mli: Addr Lazy
