lib/alloc/jemalloc_sim.mli: Alloc_iface Vmem
