lib/alloc/random_pool.mli: Alloc_iface Rng Vmem
