lib/alloc/jemalloc_sim.ml: Addr Alloc_iface Array Hashtbl Lazy Option Size_class Vmem
