lib/alloc/bump.mli: Alloc_iface Vmem
