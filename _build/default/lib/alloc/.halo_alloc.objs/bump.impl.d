lib/alloc/bump.ml: Addr Alloc_iface Lazy Option Vmem
