(** A trivial bump ("arena") allocator.

    Satisfies every request by advancing a cursor through large slabs mapped
    from {!Vmem}; [free] only validates and accounts (memory is reclaimed
    when the whole arena is dropped). Used as a building block in tests and
    as the simplest possible placement policy: objects are laid out exactly
    in allocation order, regardless of size. *)

val create : ?slab_size:int -> ?min_align:int -> Vmem.t -> Alloc_iface.t
(** [create vmem] builds a bump allocator drawing [slab_size] (default
    1 MiB) slabs. All blocks are aligned to [min_align] (default 8). *)
