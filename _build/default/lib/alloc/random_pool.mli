(** The Figure 15 strawman: random pool assignment.

    §5.2 probes which benchmarks are sensitive to small-object placement at
    all by running them under "an allocator that randomly allocates objects
    smaller than the page size from four 'groups', much in the same way that
    a variant of HALO with an extremely poor grouping algorithm might".
    Larger objects are forwarded to the default allocator.

    Each pool is a bump-allocated sequence of chunks, so the mechanism is
    identical to HALO's specialised allocator — only the grouping decision
    (uniformly random) differs. Benchmarks whose behaviour this allocator
    visibly changes are the ones HALO can help or hurt. *)

val create :
  ?pools:int ->
  ?chunk_size:int ->
  ?max_object:int ->
  rng:Rng.t ->
  fallback:Alloc_iface.t ->
  Vmem.t ->
  Alloc_iface.t
(** [create ~rng ~fallback vmem] builds the random-pool allocator with
    [pools] pools (default 4), [chunk_size] chunks (default 1 MiB), and
    forwarding of requests larger than [max_object] (default one page) to
    [fallback]. *)
