(** Simulated jemalloc — the paper's baseline allocator.

    The evaluation (§5.1) runs every configuration on top of jemalloc 5.1.0,
    chosen because it universally outperformed glibc's ptmalloc2. This module
    reproduces the parts of jemalloc that determine {e data placement}, which
    is all the cache simulator can see:

    - size-segregated small classes ({!Size_class}), so objects are
      co-located by size class and allocation order (Figure 1);
    - per-class runs carved from large arena chunks, with bump-style fill of
      fresh runs;
    - LIFO reuse of freed regions within a class (recently freed blocks are
      handed back first);
    - dedicated page-aligned mappings for large (> 16 KiB) requests.

    Thread caches, arenas-per-CPU and decay-based purging are deliberately
    out of scope: the paper's workloads are single-threaded and those
    mechanisms do not change placement within a run. *)

val create : ?chunk_size:int -> Vmem.t -> Alloc_iface.t
(** [create vmem] builds a fresh simulated jemalloc arena drawing
    [chunk_size] (default 2 MiB) chunks from [vmem]. *)
