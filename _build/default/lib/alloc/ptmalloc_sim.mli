(** Simulated ptmalloc2 (glibc malloc).

    §5.1 justifies the jemalloc baseline by noting that jemalloc universally
    outperformed glibc 2.27's ptmalloc2, reducing L1 data-cache misses by as
    much as 32%. To reproduce that comparison the placement-relevant parts
    of ptmalloc2 are modelled:

    - per-block boundary-tag headers (16 bytes) that interleave metadata
      with payloads, diluting useful bytes per cache line;
    - best-fit search over free chunks with splitting, so reused blocks land
      wherever a sufficiently large hole happens to be;
    - immediate coalescing of adjacent free chunks, which erases past
      placement structure;
    - a single contiguous heap ("main arena") grown at the top.

    Fastbins/tcache (which would restore some LIFO locality for tiny sizes)
    are modelled by exact-fit preference in the best-fit search. *)

val create : ?heap_size:int -> Vmem.t -> Alloc_iface.t
(** [create vmem] reserves a contiguous demand-paged heap of [heap_size]
    bytes (default 256 MiB) and serves all requests from it. *)
