(* omnetpp (SPEC CPU2017) — discrete-event network simulation.

   Every heap object is created through a shared sim_alloc wrapper (the
   simulation kernel's allocator entry point), so the immediate allocation
   site is useless for identification — hot data streams gets nothing —
   while HALO's context reaches the per-kind creation helpers one level
   up.

   The hot data is per-module state: module records are touched on every
   delivered event, and in the baseline they are interleaved with cold
   per-module gate descriptors from the same size class, pushing the
   per-event working set past the L1. The event loop also churns small
   message objects through a bounded ring and reads a large queue array
   (forwarded), which dilutes the benefit to the paper's modest ~4%
   speedup. *)

open Dsl

let sizes = function
  | Workload.Test -> (300, 25_000) (* modules, events *)
  | Workload.Train -> (550, 60_000)
  | Workload.Ref -> (800, 120_000)

let ring = 64

(* Module record: 0 kind, 8 counter, 16 state. Gate: cold. Message: 0
   payload. *)

let make scale =
  let modules, events = sizes scale in
  let funcs =
    [
      (* The single underlying allocation site. *)
      func "sim_alloc" [ "size" ] [ malloc "p" (v "size"); return_ (v "p") ];
      func "create_module" []
        [
          call ~dst:"m" "sim_alloc" [ i 32 ];
          store (v "m") (i 0) (rand (i 4));
          store (v "m") (i 8) (i 0);
          store (v "m") (i 24) (i 0);
          return_ (v "m");
        ];
      func "create_gate" []
        [
          call ~dst:"gt" "sim_alloc" [ i 32 ];
          store (v "gt") (i 0) (rand (i 100));
          return_ (v "gt");
        ];
      func "create_message" []
        [
          call ~dst:"msg" "sim_alloc" [ i 32 ];
          store (v "msg") (i 0) (rand (i 1000));
          return_ (v "msg");
        ];
      func "deliver" [ "m" ]
        [
          load "k" (v "m") (i 0);
          load "cnt" (v "m") (i 8);
          store (v "m") (i 8) (v "cnt" +: i 1);
          store (v "m") (i 16) (v "k" +: v "cnt");
          (* Rare gate-status probe: at sane affinity distances these
             accesses are too sparse to matter, but a very large window
             manufactures module<->gate affinity and pulls the cold gates
             into the module pool — the right arm of Figure 12's U. *)
          if_ (rand (i 24) =: i 0)
            [ load "gp" (v "m") (i 24);
              if_ (v "gp" <>: i 0) [ load "gs" (v "gp") (i 0) ] [] ]
            [];
          (* Routing-table lookups: large forwarded array, equal cost under
             every allocator — dilutes the layout effect to paper scale. *)
          load "r1" (g "routes") (rand (i 32768) *: i 8);
          load "r2" (g "routes") (rand (i 32768) *: i 8);
          compute 26;
        ];
      func "main" []
        ([
           calloc "tab" (i modules) (i 8);
           gassign "mtab" (v "tab");
           calloc "rt" (i 32768) (i 8);
           gassign "routes" (v "rt");
           calloc "r" (i ring) (i 8);
           gassign "msgring" (v "r");
           gassign "rpos" (i 0);
         ]
        (* Topology setup: each module record followed by two cold gate
           descriptors (same size class, same wrapper). *)
        @ for_ "k" ~from:(i 0) ~below:(i modules)
            [
              call ~dst:"m" "create_module" [];
              store (g "mtab") (v "k" *: i 8) (v "m");
              call ~dst:"g1" "create_gate" [];
              store (v "m") (i 24) (v "g1");
              call ~dst:"g2" "create_gate" [];
            ]
        (* Event loop: deliver to a random module; light message churn
           through a bounded ring. *)
        @ for_ "e" ~from:(i 0) ~below:(i events)
            [
              load "m" (g "mtab") (rand (i modules) *: i 8);
              call "deliver" [ v "m" ];
              if_ (rand (i 8) =: i 0)
                [
                  let_ "slot" (g "rpos" %: i ring *: i 8);
                  load "old" (g "msgring") (v "slot");
                  if_ (v "old" <>: i 0) [ free_ (v "old") ] [];
                  call ~dst:"msg" "create_message" [];
                  store (g "msgring") (v "slot") (v "msg");
                  gassign "rpos" (g "rpos" +: i 1);
                ]
                [];
            ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"omnetpp"
    ~description:
      "SPEC omnetpp: per-event module-state access through a shared \
       sim_alloc wrapper; gate descriptors dilute the module class; \
       bounded message churn"
    ~in_frag_table:false
    ~halo_allocator:(fun c ->
      (* A.8: --chunk-size 131072 --max-spare-chunks 0; always reused. *)
      {
        c with
        Group_alloc.chunk_size = 128 * 1024;
        spare_policy = Group_alloc.Always_reuse;
      })
    ~make ()
