lib/workloads/wl_equake.mli: Workload
