lib/workloads/wl_ammp.mli: Workload
