lib/workloads/workload.ml: Fun Group_alloc Grouping Ir
