lib/workloads/wl_leela.mli: Workload
