lib/workloads/wl_omnetpp.mli: Workload
