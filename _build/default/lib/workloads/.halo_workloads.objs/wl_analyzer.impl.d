lib/workloads/wl_analyzer.ml: Dsl Workload
