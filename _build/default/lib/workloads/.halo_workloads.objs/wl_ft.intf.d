lib/workloads/wl_ft.mli: Workload
