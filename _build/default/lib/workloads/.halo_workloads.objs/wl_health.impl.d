lib/workloads/wl_health.ml: Dsl Workload
