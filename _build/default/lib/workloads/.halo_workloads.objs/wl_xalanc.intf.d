lib/workloads/wl_xalanc.mli: Workload
