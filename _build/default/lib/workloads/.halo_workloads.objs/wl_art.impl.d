lib/workloads/wl_art.ml: Dsl Workload
