lib/workloads/wl_ammp.ml: Dsl Workload
