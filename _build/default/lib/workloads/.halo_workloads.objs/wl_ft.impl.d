lib/workloads/wl_ft.ml: Dsl Workload
