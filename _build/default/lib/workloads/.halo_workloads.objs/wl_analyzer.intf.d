lib/workloads/wl_analyzer.mli: Workload
