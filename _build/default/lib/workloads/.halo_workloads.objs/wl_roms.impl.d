lib/workloads/wl_roms.ml: Dsl Grouping Workload
