lib/workloads/wl_equake.ml: Dsl Workload
