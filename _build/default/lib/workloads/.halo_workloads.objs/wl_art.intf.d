lib/workloads/wl_art.mli: Workload
