lib/workloads/wl_health.mli: Workload
