lib/workloads/wl_leela.ml: Dsl Workload
