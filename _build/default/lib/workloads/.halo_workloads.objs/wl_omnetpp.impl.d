lib/workloads/wl_omnetpp.ml: Dsl Group_alloc Workload
