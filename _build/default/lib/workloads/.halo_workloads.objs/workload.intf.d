lib/workloads/workload.mli: Group_alloc Grouping Ir
