lib/workloads/wl_povray.ml: Dsl Workload
