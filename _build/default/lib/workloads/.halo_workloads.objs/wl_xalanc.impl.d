lib/workloads/wl_xalanc.ml: Dsl Group_alloc Workload
