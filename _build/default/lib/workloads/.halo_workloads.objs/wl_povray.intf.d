lib/workloads/wl_povray.mli: Workload
