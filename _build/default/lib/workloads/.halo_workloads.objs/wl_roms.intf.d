lib/workloads/wl_roms.mli: Workload
