lib/workloads/workloads.ml: List Wl_ammp Wl_analyzer Wl_art Wl_equake Wl_ft Wl_health Wl_leela Wl_omnetpp Wl_povray Wl_roms Wl_xalanc Workload
