(** Registry of the 11 evaluation workloads, in the paper's Figure 13/14
    order: the six prior-work benchmarks first, then the five SPECrate
    CPU2017 ones. *)

val all : Workload.t list
val find : string -> Workload.t option
val names : string list
