(** The evaluation workloads (§5.1).

    Eleven synthetic programs, one per paper benchmark, written in the
    workload IR. Each reproduces the allocation/access {e structure} the
    paper identifies as decisive for its benchmark — wrapper functions,
    deep call chains, a single [operator new] site, direct [malloc] calls
    and so on — rather than the benchmark's computation. Programs come in
    two scales: [Test] (small, for profiling) and [Ref] (larger, for
    measurement), built from identical IR structure so call sites coincide
    — the reproduction's analog of profiling on SPEC [test] inputs and
    measuring on [ref] inputs. [Train] sits between the two; §5.1 uses the
    train inputs for benchmark selection (more than one heap allocation
    per million instructions).

    Each workload also carries its artefact-appendix configuration quirks
    (chunk size, spare-chunk policy, group cap). *)

type scale = Test | Train | Ref

type t = {
  name : string;
  description : string;
  make : scale -> Ir.program;
  halo_allocator : Group_alloc.config -> Group_alloc.config;
      (** Per-benchmark allocator flag overrides (A.8): e.g. omnetpp's
          128 KiB chunks and always-reuse policy. *)
  halo_grouping : Grouping.params -> Grouping.params;
      (** Per-benchmark grouping overrides: e.g. roms's [--max-groups 4]. *)
  in_frag_table : bool;  (** Appears in Table 1 (9 of the 11 do). *)
}

val plain :
  name:string ->
  description:string ->
  make:(scale -> Ir.program) ->
  ?halo_allocator:(Group_alloc.config -> Group_alloc.config) ->
  ?halo_grouping:(Grouping.params -> Grouping.params) ->
  ?in_frag_table:bool ->
  unit ->
  t
(** Constructor with identity defaults. *)
