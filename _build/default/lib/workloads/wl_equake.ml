(* equake (SPEC CPU2000) — earthquake simulation, sparse matrix-vector
   products.

   The sparse matrix is a list of row headers, each owning a chain of
   coefficient cells; rows and cells are allocated interleaved with cold
   per-row index records of the same size class. The SMVP loop walks rows
   and their cells every timestep. Direct sites; both techniques gain
   (paper: ~10-15%). *)

open Dsl

let sizes = function
  | Workload.Test -> (240, 6, 42) (* rows, cells/row, timesteps *)
  | Workload.Train -> (550, 7, 90)
  | Workload.Ref -> (950, 7, 160)

(* Row: 0 next-row, 8 cell head, 16 accumulator. Cell: 0 next, 8 coeff,
   16 column. *)

let make scale =
  let rows, cells_per, steps = sizes scale in
  let funcs =
    [
      func "new_row" []
        [
          malloc "r" (i 32);
          store (v "r") (i 8) (i 0);
          store (v "r") (i 16) (i 0);
          return_ (v "r");
        ];
      func "new_cell" [ "row" ]
        [
          malloc "c" (i 32);
          load "head" (v "row") (i 8);
          store (v "c") (i 0) (v "head");
          store (v "c") (i 8) (rand (i 64) +: i 1);
          store (v "c") (i 16) (rand (i 1024));
          store (v "row") (i 8) (v "c");
        ];
      func "new_index_rec" []
        [ malloc "x" (i 32); store (v "x") (i 0) (rand (i 1024)); return_ (v "x") ];
      func "smvp_step" []
        [
          let_ "r" (g "rows");
          while_
            (v "r" <>: i 0)
            [
              let_ "acc" (i 0);
              load "c" (v "r") (i 8);
              while_
                (v "c" <>: i 0)
                [
                  load "coef" (v "c") (i 8);
                  load "col" (v "c") (i 16);
                  let_ "acc" (v "acc" +: (v "coef" *: v "col"));
                  load "c2" (v "c") (i 0);
                  let_ "c" (v "c2");
                ];
              store (v "r") (i 16) (v "acc");
              load "r2" (v "r") (i 0);
              let_ "r" (v "r2");
            ];
        ];
      func "main" []
        ([ gassign "rows" (i 0) ]
        @ for_ "ir" ~from:(i 0) ~below:(i rows)
            ([
               call ~dst:"r" "new_row" [];
               store (v "r") (i 0) (g "rows");
               gassign "rows" (v "r");
               call ~dst:"x" "new_index_rec" [];
             ]
            @ for_ "k" ~from:(i 0) ~below:(i cells_per)
                [ call "new_cell" [ v "r" ] ]
            @ [ call ~dst:"x2" "new_index_rec" []; call ~dst:"x3" "new_index_rec" [] ])
        @ for_ "t" ~from:(i 0) ~below:(i steps) [ call "smvp_step" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"equake"
    ~description:
      "SPEC equake: SMVP over row/cell chains; cold index records \
       interleave both hot classes"
    ~make ()
