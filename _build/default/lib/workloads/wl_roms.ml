(* roms (SPEC CPU2017) — ocean model; the hot-data-streams failure case.

   Traffic is dominated by stride scans over large grid arrays (forwarded,
   never grouped). The small-object population is paired state records:
   for each column i, an `a` record (site new_state_a) and a `b` record
   (site new_state_b) allocated back to back, so the size-segregated
   baseline already co-locates each pair. Timesteps touch a stable hot 20%
   of pairs, in a per-step pseudo-random order.

   Profiling inputs also run "diagnostic passes" that sweep each record
   kind separately (a self-check phase, more prominent in the small test
   input). At object granularity those sweeps compress into many hot
   within-kind streams, while the pair relationship — obvious at context
   granularity — is scattered across hundreds of barely-warm two-element
   streams (§5.2's critique). Set packing therefore selects {a}-only and
   {b}-only co-allocation sets, and the resulting pools split pairs the
   baseline had co-located: hot-data-streams *increases* misses. HALO's
   affinity graph aggregates the same evidence per context (a handful of
   nodes vs. the paper's 150,000+ streams), groups a+b together, and
   reproduces a layout at least as good as the baseline. The artefact runs
   roms with --max-groups 4. *)

open Dsl

let sizes = function
  | Workload.Test -> (1600, 6, 30, 24 * 1024)
  (* pairs, diagnostic passes, timesteps, grid bytes *)
  | Workload.Train -> (2200, 4, 60, 40 * 1024)
  | Workload.Ref -> (3000, 2, 110, 56 * 1024)

let make scale =
  let n_pairs, diag_passes, steps, grid_bytes = sizes scale in
  let hot_stride = 5 in
  let n_hot = n_pairs / hot_stride in
  let funcs =
    [
      func "new_state_a" []
        [ malloc "a" (i 32); store (v "a") (i 0) (rand (i 128)); return_ (v "a") ];
      func "new_state_b" []
        [ malloc "b" (i 32); store (v "b") (i 0) (rand (i 128)); return_ (v "b") ];
      func "new_meta" []
        [ malloc "m" (i 32); store (v "m") (i 0) (rand (i 16)); return_ (v "m") ];
      (* Sweep one grid array one cache line at a time. *)
      func "sweep_grid" [ "grid" ]
        [
          let_ "off" (i 0);
          while_
            (v "off" <: i grid_bytes)
            [
              load "x" (v "grid") (v "off");
              store (v "grid") (v "off") (v "x" +: i 1);
              let_ "off" (v "off" +: i 64);
            ];
        ];
      (* Diagnostic pass: sweep all a records, then all b records. *)
      func "diagnose" []
        (for_ "k" ~from:(i 0) ~below:(i n_pairs)
           [
             load "a" (g "atab") (v "k" *: i 8);
             load "x" (v "a") (i 0);
             store (v "a") (i 8) (v "x");
           ]
        @ for_ "k" ~from:(i 0) ~below:(i n_pairs)
            [
              load "b" (g "btab") (v "k" *: i 8);
              load "x" (v "b") (i 0);
              store (v "b") (i 8) (v "x");
            ]);
      (* One timestep: grid sweeps plus the hot pairs in a per-step order. *)
      func "timestep" []
        ([
           call "sweep_grid" [ g "grid1" ];
           call "sweep_grid" [ g "grid2" ];
           call "sweep_grid" [ g "grid3" ];
           let_ "off" (rand (i n_hot));
         ]
        @ for_ "j" ~from:(i 0) ~below:(i n_hot)
            [
              (* Stable hot set (multiples of hot_stride); varying visit
                 order so object-level sequences never repeat verbatim. *)
              let_ "h"
                ((v "j" *: i 7 +: v "off") %: i n_hot *: i hot_stride);
              load "a" (g "atab") (v "h" *: i 8);
              load "ax" (v "a") (i 0);
              load "b" (g "btab") (v "h" *: i 8);
              load "bx" (v "b") (i 0);
              store (v "b") (i 8) (v "ax" +: v "bx");
              compute 3;
            ]);
      func "main" []
        ([
           calloc "g1" (i 1) (i grid_bytes);
           gassign "grid1" (v "g1");
           calloc "g2" (i 1) (i grid_bytes);
           gassign "grid2" (v "g2");
           calloc "g3" (i 1) (i grid_bytes);
           gassign "grid3" (v "g3");
           calloc "ta" (i n_pairs) (i 8);
           gassign "atab" (v "ta");
           calloc "tb" (i n_pairs) (i 8);
           gassign "btab" (v "tb");
         ]
        @ for_ "k" ~from:(i 0) ~below:(i n_pairs)
            [
              call ~dst:"a" "new_state_a" [];
              store (g "atab") (v "k" *: i 8) (v "a");
              call ~dst:"b" "new_state_b" [];
              store (g "btab") (v "k" *: i 8) (v "b");
              (* occasional metadata record between pairs *)
              if_ (v "k" %: i 8 =: i 7) [ call ~dst:"m" "new_meta" [] ] [];
            ]
        @ for_ "d" ~from:(i 0) ~below:(i diag_passes) [ call "diagnose" [] ]
        @ for_ "t" ~from:(i 0) ~below:(i steps) [ call "timestep" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"roms"
    ~description:
      "SPEC roms: grid-sweep dominated; paired a/b records already \
       co-located by the baseline; object-level streams mislead the \
       comparator into splitting the pairs"
    ~halo_grouping:(fun p -> { p with Grouping.max_groups = Some 4 })
    ~make ()
