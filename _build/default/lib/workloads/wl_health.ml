(* health (Olden) — hierarchical healthcare simulation.

   The paper's best case (~28% speedup; both techniques help, HALO most).
   Patients and their ward-list cells are allocated back to back (a
   64-byte pair) from distinct direct sites — easy for both identification
   schemes. Two sources of dilution:

   - archival records (cold cells from their own site) interleave the
     pairs, so the baseline splits many of them across lines;
   - screened (cold) patients are allocated through the {e same}
     new_patient site as admitted ones, distinguishable only by caller.

   Immediate-call-site identification (hot data streams) pools the hot
   pair sites but must also pull in every screened patient, re-splitting
   some pairs; HALO's full-context grouping keeps the hot pool pure —
   that is the extra ~7 points the paper attributes to full-context
   identification on health. Random pool assignment (Figure 15) destroys
   the pair adjacency entirely. *)

open Dsl

let sizes = function
  | Workload.Test -> (350, 70) (* patients, simulation steps *)
  | Workload.Train -> (600, 150)
  | Workload.Ref -> (1000, 300)

(* Patient: 0 severity, 8 visits, 16 link. Cell: 0 next, 8 patient. *)

let make scale =
  let n_patients, steps = sizes scale in
  let funcs =
    [
      (* Shared allocation site; callers distinguish hot from cold. *)
      func "new_patient" []
        [
          malloc "p" (i 32);
          store (v "p") (i 0) (rand (i 16));
          store (v "p") (i 8) (i 0);
          return_ (v "p");
        ];
      func "add_active" [ "p" ]
        [
          malloc "c" (i 32);
          store (v "c") (i 0) (g "active");
          store (v "c") (i 8) (v "p");
          gassign "active" (v "c");
        ];
      (* Cold per-admission paperwork from its own site: both schemes can
         exclude it, the baseline cannot. One 32-byte record per admission
         keeps hot pairs drifting across line boundaries. *)
      func "file_record" []
        [ malloc "rec" (i 32); store (v "rec") (i 0) (rand (i 100)) ];
      (* Hot path: patient + active cell, allocated as a pair. *)
      func "admit" []
        [
          call ~dst:"p" "new_patient" [];
          call "add_active" [ v "p" ];
          call "file_record" [];
        ];
      (* Cold path: a screened patient through the same new_patient site,
         filed straight into the discharged list. *)
      func "screen" []
        [
          call ~dst:"p" "new_patient" [];
          store (v "p") (i 16) (g "discharged");
          gassign "discharged" (v "p");
        ];
      func "check_active" []
        [
          let_ "c" (g "active");
          while_
            (v "c" <>: i 0)
            [
              load "p" (v "c") (i 8);
              load "sev" (v "p") (i 0);
              load "vis" (v "p") (i 8);
              store (v "p") (i 8) (v "vis" +: i 1);
              compute 4;
              load "c2" (v "c") (i 0);
              let_ "c" (v "c2");
            ];
        ];
      func "main" []
        ([ gassign "active" (i 0); gassign "discharged" (i 0) ]
        @ for_ "i" ~from:(i 0) ~below:(i n_patients)
            [
              call "admit" [];
              if_ (rand (i 2) =: i 0) [ call "screen" [] ] [];
            ]
        @ for_ "t" ~from:(i 0) ~below:(i steps) [ call "check_active" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"health"
    ~description:
      "Olden health: ward-list traversal of patient/cell pairs; cold \
       archive records and screened patients (same allocation site) \
       dilute the baseline"
    ~make ()
