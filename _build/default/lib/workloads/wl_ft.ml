(* ft (Ptrdist) — minimum-spanning-tree over an adjacency-list graph.

   A classic prior-work target: vertices and edge cells allocated directly
   from distinct sites, interleaved with cold edge-weight shadow records of
   the same size class. The MST main loop repeatedly walks vertex adjacency
   lists (edge cell -> vertex), so co-locating the hot cells roughly doubles
   line density. Both identification schemes see the sites clearly; gains
   are moderate (paper: ~5-8%). *)

open Dsl

let sizes = function
  | Workload.Test -> (300, 4, 22) (* vertices, edges/vertex, passes *)
  | Workload.Train -> (700, 5, 45)
  | Workload.Ref -> (1200, 5, 85)

(* Vertex: 0 key, 8 adjacency head, 16 parent. Edge cell: 0 next, 8 target
   vertex, 16 weight. Shadow record: cold. *)

let make scale =
  let n_vertices, degree, passes = sizes scale in
  let funcs =
    [
      func "new_vertex" []
        [
          malloc "vx" (i 32);
          store (v "vx") (i 0) (rand (i 1000));
          store (v "vx") (i 8) (i 0);
          store (v "vx") (i 16) (i 0);
          return_ (v "vx");
        ];
      (* Add one edge cell to a vertex's adjacency list, plus a cold
         bookkeeping record from the same size class. *)
      func "add_edge" [ "vx"; "target" ]
        [
          malloc "e" (i 32);
          load "head" (v "vx") (i 8);
          store (v "e") (i 0) (v "head");
          store (v "e") (i 8) (v "target");
          store (v "e") (i 16) (rand (i 100));
          store (v "vx") (i 8) (v "e");
        ];
      (* Cold per-vertex bookkeeping, allocated after the edge burst. *)
      func "add_shadow" [ "vx" ]
        [ malloc "shadow" (i 32); store (v "shadow") (i 0) (v "vx") ];
      (* Relax all edges of vertex vx. *)
      func "relax" [ "vx" ]
        [
          load "e" (v "vx") (i 8);
          while_
            (v "e" <>: i 0)
            [
              load "t" (v "e") (i 8);
              load "w" (v "e") (i 16);
              load "key" (v "t") (i 0);
              if_
                (v "w" <: v "key")
                [ store (v "t") (i 0) (v "w"); store (v "t") (i 16) (v "vx") ]
                [ compute 2 ];
              load "e2" (v "e") (i 0);
              let_ "e" (v "e2");
            ];
        ];
      func "main" []
        ([ gassign "vtab" (i 0) ]
        (* Vertex table: a plain array of vertex pointers (one large cold
           allocation, forwarded at runtime). *)
        @ [ calloc "tab" (i n_vertices) (i 8); gassign "vtab" (v "tab") ]
        @ for_ "iv" ~from:(i 0) ~below:(i n_vertices)
            [
              call ~dst:"vx" "new_vertex" [];
              store (g "vtab") (v "iv" *: i 8) (v "vx");
            ]
        @ for_ "iv" ~from:(i 0) ~below:(i n_vertices)
            ([ load "vx" (g "vtab") (v "iv" *: i 8) ]
            @ for_ "k" ~from:(i 0) ~below:(i degree)
                [
                  load "tv" (g "vtab") (rand (i n_vertices) *: i 8);
                  call "add_edge" [ v "vx"; v "tv" ];
                ]
            @ [ call "add_shadow" [ v "vx" ]; call "add_shadow" [ v "vx" ] ])
        @ for_ "pass" ~from:(i 0) ~below:(i passes)
            (for_ "iv" ~from:(i 0) ~below:(i n_vertices)
               [
                 load "vx" (g "vtab") (v "iv" *: i 8);
                 call "relax" [ v "vx" ];
               ]));
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"ft"
    ~description:
      "Ptrdist ft: MST edge relaxation over adjacency lists; hot edge cells \
       diluted by same-class shadow records"
    ~make ()
