(* xalanc (SPEC CPU2017) — XSLT transformation with deep indirection.

   The paper: "xalanc displays significant indirection in its call chains,
   requiring the traversal of tens of stack frames to properly appreciate
   the context in which allocations have been made". Result-tree nodes of
   three kinds are allocated through a shared five-stage forwarding chain
   ending in a XalanAllocate wrapper; the kinds are distinguishable only
   near the top of the stack (handle_element / handle_text / handle_attr).

   The immediate allocation site is identical for everything, so hot-data-
   streams identification fails entirely; HALO's reduced full-stack context
   separates the kinds and pools the two hot ones (element + text nodes),
   whose output traversal is memory-bound. The paper's largest CPU2017 win
   (~16% speedup). *)

open Dsl

let sizes = function
  | Workload.Test -> (1800, 30) (* input items, output passes *)
  | Workload.Train -> (3800, 65)
  | Workload.Ref -> (7000, 120)

(* Node: 0 next, 8 payload, 16 aux. *)

let chain_funcs =
  (* stage1 -> ... -> stage5 -> xalan_allocate -> malloc: one shared path,
     ~7 frames between the distinguishing caller and the allocation. *)
  [
    func "xalan_allocate" [ "size" ] [ malloc "p" (v "size"); return_ (v "p") ];
    func "stage5" [ "size" ]
      [ call ~dst:"p" "xalan_allocate" [ v "size" ]; return_ (v "p") ];
    func "stage4" [ "size" ] [ call ~dst:"p" "stage5" [ v "size" ]; return_ (v "p") ];
    func "stage3" [ "size" ] [ call ~dst:"p" "stage4" [ v "size" ]; return_ (v "p") ];
    func "stage2" [ "size" ] [ call ~dst:"p" "stage3" [ v "size" ]; return_ (v "p") ];
    func "stage1" [ "size" ] [ call ~dst:"p" "stage2" [ v "size" ]; return_ (v "p") ];
  ]

let make scale =
  let n_items, passes = sizes scale in
  let handler name list_global extra =
    func name []
      ([
         call ~dst:"n" "stage1" [ i 32 ];
         store (v "n") (i 8) (rand (i 512));
       ]
      @ extra
      @ [
          store (v "n") (i 0) (g list_global);
          gassign list_global (v "n");
        ])
  in
  let funcs =
    chain_funcs
    @ [
        (* Hot: element and text result nodes, each on its own output list. *)
        handler "handle_element" "elements" [ store (v "n") (i 16) (rand (i 64)) ];
        handler "handle_text" "texts" [];
        (* Cold: attribute nodes, written once and never traversed. *)
        handler "handle_attr" "attrs" [ compute 2 ];
        func "emit_list" [ "head" ]
          [
            let_ "n" (v "head");
            while_
              (v "n" <>: i 0)
              [
                load "p1" (v "n") (i 8);
                load "p2" (v "n") (i 16);
                store (v "n") (i 16) (v "p2" +: v "p1");
                compute 2;
                load "nxt" (v "n") (i 0);
                let_ "n" (v "nxt");
              ];
          ];
        func "transform" []
          (for_ "it" ~from:(i 0) ~below:(i n_items)
             [
               let_ "kind" (rand (i 3));
               (* Attribute (cold) nodes are half of all allocations,
                  diluting the hot lists in the shared size class. *)
               if_ (v "kind" =: i 0)
                 [ call "handle_element" [] ]
                 [
                   if_ (v "kind" =: i 1)
                     [ call "handle_text" [] ]
                     [ call "handle_attr" [] ];
                 ];
             ]);
        func "main" []
          ([
             gassign "elements" (i 0);
             gassign "texts" (i 0);
             gassign "attrs" (i 0);
             call "transform" [];
           ]
          @ for_ "p" ~from:(i 0) ~below:(i passes)
              [
                call "emit_list" [ g "elements" ];
                call "emit_list" [ g "texts" ];
              ]);
      ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"xalanc"
    ~description:
      "SPEC xalanc: result-tree nodes through a deep shared forwarding \
       chain; kinds distinguishable only by full context"
    ~in_frag_table:false
    ~halo_allocator:(fun c ->
      (* A.8: --max-spare-chunks 0; group chunks always reused. *)
      { c with Group_alloc.spare_policy = Group_alloc.Always_reuse })
    ~make ()
