(* ammp (SPEC CPU2000) — molecular mechanics.

   Atoms live on a linked list walked every force step, reading position
   fields and one bonded neighbour; each atom drags a same-size-class
   "bond parameter" record allocated right after it that the force loop
   never touches. Direct, distinct allocation sites: an easy target for
   both techniques (paper: ~8-12% for both, HALO ahead). *)

open Dsl

let sizes = function
  | Workload.Test -> (900, 55) (* atoms, force steps *)
  | Workload.Train -> (2000, 110)
  | Workload.Ref -> (3600, 200)

(* Atom: 0 next, 8 x, 16 y, 24 z, 32 bonded-neighbour ptr. *)

let make scale =
  let n_atoms, steps = sizes scale in
  let funcs =
    [
      func "new_atom" []
        [
          malloc "a" (i 32);
          store (v "a") (i 8) (rand (i 512));
          store (v "a") (i 16) (rand (i 512));
          store (v "a") (i 24) (i 0);
          return_ (v "a");
        ];
      func "new_bond_params" []
        [ malloc "b" (i 32); store (v "b") (i 0) (rand (i 64)); return_ (v "b") ];
      func "build_molecule" []
        (* Atoms arrive in residue bursts of four, followed by the
           residue's cold parameter record — so the baseline keeps bursts
           nearly contiguous (random pools destroy this; Figure 15). *)
        (for_ "k" ~from:(i 0) ~below:(i n_atoms)
           [
             call ~dst:"a" "new_atom" [];
             store (v "a") (i 24) (g "atoms");
             store (v "a") (i 0) (g "atoms");
             gassign "atoms" (v "a");
             if_ (v "k" %: i 4 =: i 3) [ call ~dst:"bp" "new_bond_params" [] ] [];
           ]);
      func "force_step" []
        [
          let_ "a" (g "atoms");
          while_
            (v "a" <>: i 0)
            [
              load "x" (v "a") (i 8);
              load "y" (v "a") (i 16);
              load "nb" (v "a") (i 24);
              if_ (v "nb" <>: i 0)
                [
                  load "nx" (v "nb") (i 8);
                  store (v "a") (i 8) (v "x" +: ((v "nx" -: v "x") /: i 16));
                ]
                [ store (v "a") (i 8) (v "x" +: v "y") ];
              compute 7;
              load "nxt" (v "a") (i 0);
              let_ "a" (v "nxt");
            ];
        ];
      func "main" []
        ([ gassign "atoms" (i 0); call "build_molecule" [] ]
        @ for_ "t" ~from:(i 0) ~below:(i steps) [ call "force_step" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"ammp"
    ~description:
      "SPEC ammp: force loop over an atom list with bonded-neighbour \
       reads; cold bond-parameter records interleave the atom class"
    ~make ()
