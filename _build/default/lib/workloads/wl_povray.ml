(* povray (SPEC CPU2017) — the paper's motivating example (§3, Figure 2).

   A token-driven parse loop allocates three kinds of geometry objects
   (A ~ planes, B ~ CSG composites, C ~ texture entries) strictly through a
   `pov_malloc` wrapper, so every heap object shares one immediate
   allocation call site. A and B are linked into one list and traversed
   repeatedly with heavy per-node computation; C objects are never touched
   again.

   Hot-data-streams identification collapses to the single pov_malloc site
   and cannot separate C from A/B (paper: ~2% miss reduction, ~0 speedup).
   HALO's full-context grouping pools A+B away from C (paper: 5-15% fewer
   L1D misses) — but the compute-heavy access loop means the miss savings
   barely move execution time. *)

open Dsl

let sizes = function
  | Workload.Test -> (1500, 35) (* tokens, render passes *)
  | Workload.Train -> (3200, 70)
  | Workload.Ref -> (6000, 130)

let make scale =
  let n_tokens, passes = sizes scale in
  let funcs =
    [
      (* The wrapper every allocation goes through (pov::pov_malloc). *)
      func "pov_malloc" [ "size" ]
        [ malloc "p" (v "size"); return_ (v "p") ];
      func "create_a" []
        [
          call ~dst:"o" "pov_malloc" [ i 32 ];
          store (v "o") (i 8) (rand (i 256));
          return_ (v "o");
        ];
      func "create_b" []
        [
          call ~dst:"o" "pov_malloc" [ i 32 ];
          store (v "o") (i 8) (rand (i 256));
          store (v "o") (i 16) (rand (i 256));
          return_ (v "o");
        ];
      func "create_c" []
        [
          call ~dst:"o" "pov_malloc" [ i 32 ];
          store (v "o") (i 8) (rand (i 256));
          return_ (v "o");
        ];
      (* Figure 2's allocation loop: A/B go on the sibling list, C is
         handled once and abandoned. *)
      func "parse_scene" []
        (for_ "t" ~from:(i 0) ~below:(i n_tokens)
           [
             let_ "kind" (rand (i 3));
             if_ (v "kind" =: i 0)
               [
                 call ~dst:"o" "create_a" [];
                 store (v "o") (i 0) (g "list");
                 gassign "list" (v "o");
               ]
               [
                 if_ (v "kind" =: i 1)
                   [
                     call ~dst:"o" "create_b" [];
                     store (v "o") (i 0) (g "list");
                     gassign "list" (v "o");
                   ]
                   [ call ~dst:"o" "create_c" []; compute 3 ];
               ];
           ]);
      (* Figure 2's access loop, with povray's compute-bound per-object
         work (intersection tests). *)
      func "render_pass" []
        [
          let_ "o" (g "list");
          while_
            (v "o" <>: i 0)
            [
              load "f" (v "o") (i 8);
              compute 55;
              store (v "o") (i 8) (v "f" +: i 1);
              load "nxt" (v "o") (i 0);
              let_ "o" (v "nxt");
            ];
        ];
      func "main" []
        ([ gassign "list" (i 0); call "parse_scene" [] ]
        @ for_ "p" ~from:(i 0) ~below:(i passes) [ call "render_pass" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"povray"
    ~description:
      "SPEC povray: Figure-2 pattern; all allocation through a pov_malloc \
       wrapper; compute-bound A/B list traversal with interleaved cold C"
    ~make ()
