type scale = Test | Train | Ref

type t = {
  name : string;
  description : string;
  make : scale -> Ir.program;
  halo_allocator : Group_alloc.config -> Group_alloc.config;
  halo_grouping : Grouping.params -> Grouping.params;
  in_frag_table : bool;
}

let plain ~name ~description ~make ?(halo_allocator = Fun.id)
    ?(halo_grouping = Fun.id) ?(in_frag_table = true) () =
  { name; description; make; halo_allocator; halo_grouping; in_frag_table }
