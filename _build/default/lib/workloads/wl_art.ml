(* art (SPEC CPU2000) — adaptive resonance theory neural network.

   F1-layer neurons are allocated directly and scanned in order through a
   pointer table every training iteration (two fields read, one written);
   a same-size-class weight-shadow record per neuron is written once at
   initialisation and never read in the scan. Direct sites; both
   techniques co-locate the neurons (paper: both gain, ~6-10%). *)

open Dsl

let sizes = function
  | Workload.Test -> (1100, 110) (* neurons, training scans *)
  | Workload.Train -> (2500, 220)
  | Workload.Ref -> (4500, 400)

(* Neuron: 0 activation, 8 gain, 16 output. *)

let make scale =
  let n_neurons, scans = sizes scale in
  let funcs =
    [
      func "new_neuron" []
        [
          malloc "u" (i 32);
          store (v "u") (i 0) (rand (i 256));
          store (v "u") (i 8) (i 1);
          return_ (v "u");
        ];
      func "new_weight_shadow" []
        [ malloc "w" (i 32); store (v "w") (i 0) (rand (i 256)); return_ (v "w") ];
      func "train_scan" []
        (for_ "k" ~from:(i 0) ~below:(i n_neurons)
           [
             load "u" (g "f1") (v "k" *: i 8);
             load "act" (v "u") (i 0);
             load "gain" (v "u") (i 8);
             store (v "u") (i 16) (v "act" *: v "gain");
             compute 5;
           ]);
      func "main" []
        ([ calloc "t" (i n_neurons) (i 8); gassign "f1" (v "t") ]
        @ for_ "k" ~from:(i 0) ~below:(i n_neurons)
            [
              call ~dst:"u" "new_neuron" [];
              store (g "f1") (v "k" *: i 8) (v "u");
              (* Two cold shadows after each burst of five neurons (the
                 period is deliberately not a whole number of lines). *)
              if_ (v "k" %: i 5 =: i 4)
                [
                  call ~dst:"w" "new_weight_shadow" [];
                  call ~dst:"w2" "new_weight_shadow" [];
                ]
                [];
            ]
        @ for_ "s" ~from:(i 0) ~below:(i scans) [ call "train_scan" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"art"
    ~description:
      "SPEC art: in-order neuron scans via a pointer table; cold weight \
       shadows dilute the neuron size class"
    ~make ()
