(* analyzer (FreeBench) — trace analysis over a chained hash table.

   Event records are inserted into hash-bucket chains and looked up
   repeatedly; every event also allocates a same-size-class label string
   that is only read on a miss path (cold). Allocation sites are direct
   and distinct, so both identification schemes can separate hot events
   from cold labels; gains are solid for both (paper: ~10%+). *)

open Dsl

let sizes = function
  | Workload.Test -> (900, 64, 14_000) (* events, buckets, lookups *)
  | Workload.Train -> (1600, 128, 50_000)
  | Workload.Ref -> (2500, 128, 110_000)

(* Event: 0 next-in-bucket, 8 key, 16 count. Label: cold. *)

let make scale =
  let n_events, buckets, lookups = sizes scale in
  let funcs =
    [
      func "new_event" [ "key" ]
        [
          malloc "e" (i 32);
          store (v "e") (i 8) (v "key");
          store (v "e") (i 16) (i 0);
          return_ (v "e");
        ];
      func "new_label" []
        [ malloc "l" (i 32); store (v "l") (i 0) (rand (i 256)); return_ (v "l") ];
      func "insert" [ "key" ]
        [
          call ~dst:"e" "new_event" [ v "key" ];
          if_ (v "key" %: i 2 =: i 0)
            [ call ~dst:"l" "new_label" []; store (v "e") (i 16) (v "l") ]
            [];
          let_ "b" (v "key" %: i buckets);
          load "head" (g "table") (v "b" *: i 8);
          store (v "e") (i 0) (v "head");
          store (g "table") (v "b" *: i 8) (v "e");
        ];
      func "lookup" [ "key" ]
        [
          let_ "b" (v "key" %: i buckets);
          load "e" (g "table") (v "b" *: i 8);
          let_ "found" (i 0);
          while_
            ((v "e" <>: i 0) &&: not_ (v "found"))
            [
              load "k" (v "e") (i 8);
              if_ (v "k" =: v "key")
                [ let_ "found" (i 1) ]
                [ load "nxt" (v "e") (i 0); let_ "e" (v "nxt") ];
            ];
          return_ (v "found");
        ];
      func "main" []
        ([ calloc "t" (i buckets) (i 8); gassign "table" (v "t") ]
        @ for_ "iv" ~from:(i 0) ~below:(i n_events)
            [ call "insert" [ rand (i 4096) ] ]
        @ for_ "q" ~from:(i 0) ~below:(i lookups)
            [ call "lookup" [ rand (i 4096) ] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"analyzer"
    ~description:
      "FreeBench analyzer: hash-bucket chain walks; hot event records \
       diluted by same-class cold labels"
    ~make ()
