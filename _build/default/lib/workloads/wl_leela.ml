(* leela (SPEC CPU2017) — Go engine; every allocation through operator new.

   The paper: "leela allocates memory exclusively through C++'s new
   operator", so immediate-call-site identification sees one context and
   hot data streams achieves nothing. HALO distinguishes the callers of
   operator_new: UCT tree nodes (hot, probed many times per search) vs
   move-history entries (cold, interleaved, persistent). De-diluting the
   tree drops its probe working set back under the L1, cutting misses —
   but playouts are compute-bound (pattern-table lookups + heavy ALU), so
   execution time barely moves (paper: 5-15% miss reduction, ~0 speedup).

   Fragmentation (Table 1: 99.99%, 2.05 MiB): each search frees its whole
   tree but pins one node; pinned nodes keep every chunk the search
   touched resident, so at peak nearly all grouped-resident memory is
   dead. *)

open Dsl

let sizes = function
  | Workload.Test -> (12, 260, 10) (* searches, nodes/search, probe passes *)
  | Workload.Train -> (20, 450, 15)
  | Workload.Ref -> (30, 700, 22)

(* Tree node: 0 next-sibling, 8 visits, 16 score. *)

let make scale =
  let searches, nodes_per, probes = sizes scale in
  let pattern_bytes = 192 * 1024 in
  let funcs =
    [
      (* The single allocation site in the whole program. *)
      func "operator_new" [ "size" ] [ malloc "p" (v "size"); return_ (v "p") ];
      func "new_tree_node" []
        [
          call ~dst:"n" "operator_new" [ i 32 ];
          store (v "n") (i 8) (i 0);
          store (v "n") (i 16) (rand (i 100));
          return_ (v "n");
        ];
      func "new_history" []
        [
          call ~dst:"h" "operator_new" [ i 32 ];
          store (v "h") (i 0) (rand (i 361));
          return_ (v "h");
        ];
      (* One playout probe over the whole tree: memory-light, ALU-heavy,
         with a pattern-table lookup per node. *)
      func "probe_tree" []
        [
          let_ "n" (g "tree");
          while_
            (v "n" <>: i 0)
            [
              load "vis" (v "n") (i 8);
              load "sc" (v "n") (i 16);
              store (v "n") (i 8) (v "vis" +: i 1);
              load "pat" (g "patterns") (rand (i (pattern_bytes / 8)) *: i 8);
              compute 30;
              load "nxt" (v "n") (i 0);
              let_ "n" (v "nxt");
            ];
        ];
      func "search" []
        ([ gassign "tree" (i 0) ]
        @ for_ "k" ~from:(i 0) ~below:(i nodes_per)
            [
              call ~dst:"n" "new_tree_node" [];
              store (v "n") (i 0) (g "tree");
              gassign "tree" (v "n");
              call ~dst:"h" "new_history" [];
              store (v "h") (i 8) (g "hist");
              gassign "hist" (v "h");
            ]
        @ for_ "pass" ~from:(i 0) ~below:(i probes) [ call "probe_tree" [] ]
        (* Tear the tree down, pinning the root so its chunk stays live. *)
        @ [
            let_ "n" (g "tree");
            load "keep" (v "n") (i 0);
            store (v "n") (i 0) (g "pinned");
            gassign "pinned" (v "n");
            let_ "n" (v "keep");
            while_
              (v "n" <>: i 0)
              [ load "nxt" (v "n") (i 0); free_ (v "n"); let_ "n" (v "nxt") ];
          ]);
      func "main" []
        ([
           gassign "tree" (i 0);
           gassign "hist" (i 0);
           gassign "pinned" (i 0);
           calloc "pt" (i 1) (i pattern_bytes);
           gassign "patterns" (v "pt");
         ]
        @ for_ "s" ~from:(i 0) ~below:(i searches) [ call "search" [] ]);
    ]
  in
  program ~main:"main" funcs

let workload =
  Workload.plain ~name:"leela"
    ~description:
      "SPEC leela: all allocation via one operator-new site; hot UCT tree \
       vs cold history split only by caller context; per-search teardown \
       with pinned nodes drives Table-1 fragmentation"
    ~make ()
