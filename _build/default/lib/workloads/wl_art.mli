(** The art benchmark analog — see the implementation header for the
    structural design and the paper-claim rationale. *)

val workload : Workload.t
