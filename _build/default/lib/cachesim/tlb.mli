(** A data TLB model.

    Size-segregated allocators can scatter related objects across pages as
    well as lines, generating TLB misses (§2.1); co-location therefore also
    shows up as fewer page-table walks. Structurally a TLB is a
    set-associative cache of page numbers, so this wraps {!Cache} at page
    granularity. *)

type t

val create : ?entries:int -> ?assoc:int -> ?page_bytes:int -> unit -> t
(** Default: 64 entries, 4-way, 4 KiB pages (Skylake-SP L1 DTLB). *)

val access : t -> Addr.t -> bool
(** Translate the page containing [addr]; [true] on TLB hit. *)

val hits : t -> int
val misses : t -> int
val reset_counters : t -> unit
val page_bytes : t -> int
