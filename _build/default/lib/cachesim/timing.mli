(** A latency-based timing model.

    The paper measures wall-clock execution time on real hardware; the
    reproduction derives a simulated execution time from the interpreter's
    instruction count and the hierarchy's miss counters using published
    Skylake-SP load-to-use latencies. The model is deliberately simple — a
    fixed base CPI plus additive miss penalties — because the reproduced
    claims are relative (speedup of one layout over another on the same
    workload), for which a first-order model preserves ordering and rough
    magnitude. An out-of-order core hides part of each miss; the [overlap]
    factor discounts penalties accordingly. *)

type model = {
  base_cpi : float;  (** Cycles per instruction when every access hits L1. *)
  l2_latency : float;  (** Extra cycles for an L1 miss served by L2. *)
  l3_latency : float;  (** Extra cycles for an L2 miss served by L3. *)
  mem_latency : float;  (** Extra cycles for an L3 miss served by DRAM. *)
  tlb_latency : float;  (** Page-walk cycles for a DTLB miss. *)
  overlap : float;
      (** Fraction of each penalty hidden by out-of-order overlap, in
          \[0, 1). *)
  ghz : float;  (** Clock, for converting cycles to seconds. *)
}

val skylake_sp : model
(** Defaults for the Xeon W-2195 testbed. *)

val cycles : model -> instructions:int -> Hierarchy.counters -> float
(** Total simulated core cycles for a run. *)

val seconds : model -> instructions:int -> Hierarchy.counters -> float

val speedup : baseline:float -> optimised:float -> float
(** [speedup ~baseline ~optimised] as reported in the paper's Figure 14:
    the fraction by which execution time improved, e.g. [0.28] for a
    28% speedup ([(baseline - optimised) / baseline]). *)

val miss_reduction : baseline:int -> optimised:int -> float
(** Figure 13's metric: fractional reduction in (L1D) misses. *)
