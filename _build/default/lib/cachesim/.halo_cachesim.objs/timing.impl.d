lib/cachesim/timing.ml: Hierarchy
