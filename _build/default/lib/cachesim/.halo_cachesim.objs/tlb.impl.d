lib/cachesim/tlb.ml: Cache
