lib/cachesim/hierarchy.mli: Addr Format
