lib/cachesim/tlb.mli: Addr
