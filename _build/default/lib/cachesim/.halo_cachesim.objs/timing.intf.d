lib/cachesim/timing.mli: Hierarchy
