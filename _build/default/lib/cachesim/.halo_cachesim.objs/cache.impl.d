lib/cachesim/cache.ml: Addr Array
