lib/cachesim/hierarchy.ml: Addr Cache Format Tlb
