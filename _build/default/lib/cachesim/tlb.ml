type t = { cache : Cache.t; page_bytes : int }

let create ?(entries = 64) ?(assoc = 4) ?(page_bytes = 4096) () =
  if entries mod assoc <> 0 then invalid_arg "Tlb.create: entries not divisible by assoc";
  (* A TLB entry "line" is one page: reuse the cache machinery with
     line_bytes = page_bytes. *)
  {
    cache =
      Cache.create ~name:"dtlb" ~size_bytes:(entries * page_bytes) ~assoc
        ~line_bytes:page_bytes;
    page_bytes;
  }

let access t addr = Cache.access t.cache addr
let hits t = Cache.hits t.cache
let misses t = Cache.misses t.cache
let reset_counters t = Cache.reset_counters t.cache
let page_bytes t = t.page_bytes
