type model = {
  base_cpi : float;
  l2_latency : float;
  l3_latency : float;
  mem_latency : float;
  tlb_latency : float;
  overlap : float;
  ghz : float;
}

let skylake_sp =
  {
    base_cpi = 0.35;
    l2_latency = 10.0;
    l3_latency = 40.0;
    mem_latency = 200.0;
    tlb_latency = 25.0;
    overlap = 0.4;
    ghz = 2.3;
  }

let cycles m ~instructions (c : Hierarchy.counters) =
  if m.overlap < 0.0 || m.overlap >= 1.0 then
    invalid_arg "Timing.cycles: overlap must be in [0, 1)";
  let exposed = 1.0 -. m.overlap in
  let f = float_of_int in
  (* Each miss at level N is *additionally* delayed by the next level's
     latency: an L3 miss pays l2 + l3 + mem beyond the L1 hit path, which
     the summation below produces because l3_misses is a subset of
     l2_misses is a subset of l1_misses. *)
  (m.base_cpi *. f instructions)
  +. exposed
     *. ((m.l2_latency *. f c.Hierarchy.l1_misses)
        +. (m.l3_latency *. f c.Hierarchy.l2_misses)
        +. (m.mem_latency *. f c.Hierarchy.l3_misses)
        +. (m.tlb_latency *. f c.Hierarchy.tlb_misses))

let seconds m ~instructions c = cycles m ~instructions c /. (m.ghz *. 1e9)

let speedup ~baseline ~optimised =
  if baseline <= 0.0 then invalid_arg "Timing.speedup: non-positive baseline";
  (baseline -. optimised) /. baseline

let miss_reduction ~baseline ~optimised =
  if baseline <= 0 then 0.0
  else float_of_int (baseline - optimised) /. float_of_int baseline
