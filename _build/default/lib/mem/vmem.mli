(** Simulated OS virtual-memory layer.

    This stands in for Linux [mmap]/[munmap]/[madvise] in the reproduction.
    Allocators reserve large demand-paged regions here; pages only become
    {e resident} when first touched, and can be purged (the
    [madvise(MADV_DONTNEED)] analog used by dirty-page purging, §4.4).
    Residency accounting is what backs the fragmentation study (Table 1):
    fragmentation compares live allocated bytes against resident bytes.

    The artefact appendix notes running programs must be able to map at
    least 16 GiB of (overcommitted) virtual memory — cheap here, since a
    mapping is just an interval record. *)

type t

val page_size : int
(** 4096, as on the paper's x86-64 testbed. *)

val create : ?base:Addr.t -> unit -> t
(** Fresh address space. [base] (default [0x7f00_0000_0000]) is where the
    first mapping is placed; allocations grow upward. *)

val mmap : t -> size:int -> align:int -> Addr.t
(** Reserve a mapping of [size] bytes whose base is aligned to [align]
    (a power of two [>= page_size]). The mapping is demand-paged: no page is
    resident until touched. Size is rounded up to a whole number of pages. *)

val munmap : t -> Addr.t -> unit
(** Release a mapping previously returned by {!mmap} (identified by its base
    address). All its resident pages are discarded.
    Raises [Invalid_argument] for an unknown base. *)

val touch : t -> Addr.t -> int -> unit
(** [touch t addr len] simulates the program writing/reading
    [addr .. addr+len-1]: every containing page of a live mapping becomes
    resident. Touching unmapped memory raises [Failure] — the simulated
    segfault, which the test suite uses to catch allocator bugs. *)

val purge : t -> Addr.t -> int -> unit
(** [purge t addr len] returns the containing pages to the OS
    ([madvise(MADV_DONTNEED)]): they stay mapped but become non-resident. *)

val is_mapped : t -> Addr.t -> bool
(** Whether the address falls inside a live mapping. *)

val resident_bytes : t -> int
(** Total bytes of resident pages across all live mappings. *)

val resident_bytes_in : t -> Addr.t -> int -> int
(** Resident bytes within [addr .. addr+len-1]. *)

val mapped_bytes : t -> int
(** Total bytes of live mappings (virtual reservation). *)

val mmap_calls : t -> int
(** Number of {!mmap} system calls made so far (slabbing is meant to
    amortise these; the tests assert it stays small). *)
