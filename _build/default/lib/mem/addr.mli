(** Simulated virtual addresses and alignment arithmetic.

    Addresses in the reproduction are plain OCaml [int]s interpreted as
    byte offsets in a simulated 64-bit address space (63 usable bits is far
    more than any workload maps). Keeping them as [int]s makes them directly
    usable as cache-simulator inputs and hash keys. *)

type t = int
(** A simulated virtual address (non-negative). *)

val null : t
(** The null address (0). Never returned by a successful allocation. *)

val align_up : t -> int -> t
(** [align_up a n] rounds [a] up to the next multiple of [n]. [n] must be a
    positive power of two. *)

val align_down : t -> int -> t
(** [align_down a n] rounds [a] down to a multiple of [n]. *)

val is_aligned : t -> int -> bool
(** [is_aligned a n] is true iff [a] is a multiple of [n]. *)

val is_power_of_two : int -> bool

val pp : Format.formatter -> t -> unit
(** Hex rendering, e.g. [0x7f0000001000]. *)

val to_hex : t -> string
