lib/mem/vmem.mli: Addr
