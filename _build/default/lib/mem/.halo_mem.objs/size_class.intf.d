lib/mem/size_class.mli:
