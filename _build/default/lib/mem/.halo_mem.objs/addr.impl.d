lib/mem/addr.ml: Format Printf
