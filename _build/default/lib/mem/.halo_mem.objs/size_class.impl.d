lib/mem/size_class.ml: Array List Option
