lib/mem/vmem.ml: Addr Hashtbl Option Printf
