type t = int

let null = 0
let is_power_of_two n = n > 0 && n land (n - 1) = 0

let check_pow2 name n =
  if not (is_power_of_two n) then
    invalid_arg (Printf.sprintf "%s: alignment %d is not a positive power of two" name n)

let align_up a n =
  check_pow2 "Addr.align_up" n;
  (a + n - 1) land lnot (n - 1)

let align_down a n =
  check_pow2 "Addr.align_down" n;
  a land lnot (n - 1)

let is_aligned a n =
  check_pow2 "Addr.is_aligned" n;
  a land (n - 1) = 0

let to_hex a = Printf.sprintf "0x%x" a
let pp ppf a = Format.pp_print_string ppf (to_hex a)
