let quantum = 16
let small_max = 16 * 1024

(* jemalloc's class map: quantum-spaced classes up to 128 bytes, then groups
   of four classes per doubling (160/192/224/256, 320/384/448/512, ...). *)
let classes =
  let tbl = ref [] in
  (* 16, 32, ..., 128 *)
  let s = ref quantum in
  while !s <= 128 do
    tbl := !s :: !tbl;
    s := !s + quantum
  done;
  (* groups of four per doubling: base 128 -> spacing 32, etc. *)
  let base = ref 128 in
  while !base < small_max do
    let spacing = !base / 4 in
    for i = 1 to 4 do
      let c = !base + (i * spacing) in
      if c <= small_max then tbl := c :: !tbl
    done;
    base := !base * 2
  done;
  Array.of_list (List.rev !tbl)

let nclasses = Array.length classes

let size_of_class i =
  if i < 0 || i >= nclasses then invalid_arg "Size_class.size_of_class: out of range";
  classes.(i)

let class_of_size n =
  if n < 0 then invalid_arg "Size_class.class_of_size: negative size";
  let n = max n 1 in
  if n > small_max then None
  else begin
    (* Binary search for the first class >= n. *)
    let lo = ref 0 and hi = ref (nclasses - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if classes.(mid) >= n then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

let round_up n = Option.map size_of_class (class_of_size n)
