(** jemalloc-style size classes.

    Almost all contemporary general-purpose allocators are size-segregated
    (§2.1): free blocks are organised around a fixed set of size classes, so
    objects are co-located primarily by size and allocation order (Figure 1).
    This module reproduces jemalloc 5.x's small-size-class map: a linear
    quantum-spaced region followed by four classes per power-of-two doubling
    ("size class groups"). It is shared by the simulated jemalloc baseline
    and by the grouped-allocation threshold logic. *)

val quantum : int
(** 16 bytes — the minimum spacing (and minimum class). *)

val small_max : int
(** Largest "small" size (16 KiB here); beyond this the simulated baseline
    satisfies requests with dedicated mappings ("large" allocations). *)

val nclasses : int
(** Number of small size classes. *)

val class_of_size : int -> int option
(** [class_of_size n] is the index of the smallest class that fits a request
    of [n] bytes, or [None] when [n > small_max]. Requests of 0 bytes are
    treated as 1 (malloc(0) returns a unique pointer). *)

val size_of_class : int -> int
(** Byte size of class [i]. Raises [Invalid_argument] when out of range. *)

val round_up : int -> int option
(** [round_up n] is the class size that a request of [n] bytes actually
    occupies, or [None] for large requests. *)
