let page_size = 4096

type mapping = { base : Addr.t; size : int }

type t = {
  mutable cursor : Addr.t;
  mappings : (Addr.t, mapping) Hashtbl.t; (* keyed by base *)
  resident : (int, unit) Hashtbl.t; (* keyed by page index *)
  mutable mmap_calls : int;
}

let create ?(base = 0x7f00_0000_0000) () =
  {
    cursor = Addr.align_up base page_size;
    mappings = Hashtbl.create 64;
    resident = Hashtbl.create 4096;
    mmap_calls = 0;
  }

let mmap t ~size ~align =
  if size <= 0 then invalid_arg "Vmem.mmap: non-positive size";
  let align = max align page_size in
  if not (Addr.is_power_of_two align) then
    invalid_arg "Vmem.mmap: alignment must be a power of two";
  let size = Addr.align_up size page_size in
  let base = Addr.align_up t.cursor align in
  (* Leave a guard page between mappings so off-by-one allocator bugs fault
     in [touch] instead of silently landing in a neighbouring mapping. *)
  t.cursor <- base + size + page_size;
  Hashtbl.replace t.mappings base { base; size };
  t.mmap_calls <- t.mmap_calls + 1;
  base

let munmap t base =
  match Hashtbl.find_opt t.mappings base with
  | None -> invalid_arg "Vmem.munmap: unknown mapping base"
  | Some m ->
      Hashtbl.remove t.mappings base;
      let first = m.base / page_size and last = (m.base + m.size - 1) / page_size in
      for p = first to last do
        Hashtbl.remove t.resident p
      done

let find_mapping t addr =
  (* Mappings are few (slabs are large), so a linear scan is fine and keeps
     the structure simple. *)
  Hashtbl.fold
    (fun _ m acc ->
      match acc with
      | Some _ -> acc
      | None -> if addr >= m.base && addr < m.base + m.size then Some m else None)
    t.mappings None

let is_mapped t addr = Option.is_some (find_mapping t addr)

let touch t addr len =
  if len <= 0 then invalid_arg "Vmem.touch: non-positive length";
  (match find_mapping t addr with
  | Some m when addr + len <= m.base + m.size -> ()
  | _ ->
      failwith
        (Printf.sprintf "Vmem.touch: simulated segfault at %s (+%d bytes)"
           (Addr.to_hex addr) len));
  let first = addr / page_size and last = (addr + len - 1) / page_size in
  for p = first to last do
    if not (Hashtbl.mem t.resident p) then Hashtbl.replace t.resident p ()
  done

let purge t addr len =
  if len <= 0 then invalid_arg "Vmem.purge: non-positive length";
  (* Only whole pages strictly inside the range are purged, as madvise
     semantics round inward for partial pages. *)
  let first = (addr + page_size - 1) / page_size in
  let last = ((addr + len) / page_size) - 1 in
  for p = first to last do
    Hashtbl.remove t.resident p
  done

let resident_bytes t = Hashtbl.length t.resident * page_size

let resident_bytes_in t addr len =
  if len <= 0 then 0
  else begin
    let first = addr / page_size and last = (addr + len - 1) / page_size in
    let n = ref 0 in
    for p = first to last do
      if Hashtbl.mem t.resident p then incr n
    done;
    !n * page_size
  end

let mapped_bytes t = Hashtbl.fold (fun _ m acc -> acc + m.size) t.mappings 0
let mmap_calls t = t.mmap_calls
