(** Name-based identification — the identification-granularity ablation.

    The paper's central novelty claim is that identification by the {e full}
    reduced call stack (selectors over monitored sites) beats the cheaper
    identification schemes of prior work (§2.2.3):

    - Calder et al. name an allocation by XOR-ing the last four return
      addresses on the stack;
    - MO and the hot-data-streams comparator use the immediate call site
      alone (a window of one).

    This module implements that family: contexts are coarsened to the XOR
    of their last [window] sites, HALO's own grouping algorithm (Figure 6)
    runs on the coarsened affinity graph, and runtime identification looks
    the allocation's current name up in a table. Everything except the
    identification granularity is held constant, so comparing this against
    the full pipeline isolates exactly the paper's contribution.

    The interpreter maintains the current allocation's name in
    {!Exec_env.t} ([cur_name4] holds the window-4 name; window-1 is
    [cur_alloc_site]). *)

val name_of_ctx : window:int -> Ir.site array -> int
(** XOR of the last [min window (length ctx)] sites of a reduced context
    (the allocation site is the innermost element). *)

type plan

val plan :
  ?params:Grouping.params -> window:int -> Profiler.result -> plan
(** Coarsen the profile's contexts to names, aggregate the affinity graph
    over names, and group with Figure 6's algorithm. [window] must be 1
    (immediate site) or 4 (Calder's scheme) — the two granularities the
    runtime maintains. *)

val groups : plan -> int
(** Number of groups formed over names. *)

val classifier : plan -> env:Exec_env.t -> size:int -> int option
(** Runtime identification by name lookup. *)
