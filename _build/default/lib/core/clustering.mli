(** Alternative clustering algorithms for the grouping ablation.

    §4.2 claims the greedy merge-benefit algorithm "generates clusters we
    find to be more amenable to region-based co-allocation than standard
    modularity, HCS, or cut-based clustering techniques". To back that
    claim, this module implements those three standard techniques over the
    affinity graph; the ablation bench swaps each into the HALO pipeline
    and measures the resulting end-to-end miss reduction.

    All three return raw partitions (no popularity ordering, no group
    thresholding); {!as_grouping} converts a partition into the
    {!Grouping.t} shape the rest of the pipeline expects, applying the
    same max-members / gthresh / max-groups filters as Figure 6 so the
    comparison isolates the clustering decision itself. *)

val modularity : Affinity_graph.t -> Context.id list list
(** Greedy agglomerative modularity maximisation (Newman 2004 / CNM
    style): start from singletons, repeatedly apply the merge with the
    largest positive modularity gain. Singleton communities are returned
    too. *)

val hcs : Affinity_graph.t -> Context.id list list
(** Highly Connected Subgraphs (Hartuv & Shamir 2000): recursively split
    along a global minimum cut (Stoer–Wagner) until every subgraph's min
    cut exceeds half its node count; those subgraphs are the clusters. *)

val threshold_components : min_weight:int -> Affinity_graph.t -> Context.id list list
(** Cut-based strawman: drop edges lighter than [min_weight], return
    connected components. *)

val min_cut : Affinity_graph.t -> Context.id list -> int * Context.id list
(** [min_cut g nodes] is the Stoer–Wagner global minimum cut of the
    induced subgraph: total crossing weight and one side of the cut.
    Requires at least 2 nodes. Exposed for tests. *)

val as_grouping :
  Affinity_graph.t -> Grouping.params -> Context.id list list -> Grouping.t
(** Order a partition by popularity and apply Figure 6's group filters
    (max members by trimming coldest members, gthresh, max_groups). *)
