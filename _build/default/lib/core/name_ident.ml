let name_of_ctx ~window ctx =
  if window < 1 then invalid_arg "Name_ident.name_of_ctx: window must be >= 1";
  let n = Array.length ctx in
  let acc = ref 0 in
  for k = max 0 (n - window) to n - 1 do
    acc := !acc lxor ctx.(k)
  done;
  !acc

type plan = { window : int; group_of_name : (int, int) Hashtbl.t; ngroups : int }

let plan ?(params = Grouping.default_params) ~window profile =
  if window <> 1 && window <> 4 then
    invalid_arg "Name_ident.plan: runtime maintains windows 1 and 4 only";
  let contexts = profile.Profiler.contexts in
  let g = profile.Profiler.graph in
  (* Coarsen: context id -> name; re-aggregate the affinity graph over
     names. Names are sparse ints; give them dense ids for the grouping
     algorithm. *)
  let name_of_id = Hashtbl.create 64 in
  let dense_of_name = Hashtbl.create 64 in
  let names = ref [] in
  let dense name =
    match Hashtbl.find_opt dense_of_name name with
    | Some d -> d
    | None ->
        let d = Hashtbl.length dense_of_name in
        Hashtbl.replace dense_of_name name d;
        names := name :: !names;
        d
  in
  let coarse id =
    match Hashtbl.find_opt name_of_id id with
    | Some d -> d
    | None ->
        let d = dense (name_of_ctx ~window (Context.sites contexts id)) in
        Hashtbl.replace name_of_id id d;
        d
  in
  let cg = Affinity_graph.create () in
  List.iter
    (fun id ->
      let d = coarse id in
      for _ = 1 to Affinity_graph.node_accesses g id do
        Affinity_graph.add_access cg d
      done)
    (Affinity_graph.nodes g);
  List.iter
    (fun (x, y, w) ->
      let dx = coarse x and dy = coarse y in
      for _ = 1 to w do
        Affinity_graph.add_affinity cg dx dy
      done)
    (Affinity_graph.edges g);
  let grouping = Grouping.group cg params in
  let name_arr = Array.of_list (List.rev !names) in
  let group_of_name = Hashtbl.create 64 in
  Array.iteri
    (fun gi members ->
      List.iter
        (fun d ->
          let name = name_arr.(d) in
          if not (Hashtbl.mem group_of_name name) then
            Hashtbl.replace group_of_name name gi)
        members)
    grouping.Grouping.groups;
  { window; group_of_name; ngroups = Array.length grouping.Grouping.groups }

let groups p = p.ngroups

let classifier p ~env ~size:_ =
  let name =
    if p.window = 1 then env.Exec_env.cur_alloc_site else env.Exec_env.cur_name4
  in
  Hashtbl.find_opt p.group_of_name name
