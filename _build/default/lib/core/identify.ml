type conj = Ir.site list
type selector = { group : int; disjuncts : conj list }

let chain_contains chain site = Array.exists (fun s -> s = site) chain

(* Grow one conjunction for [member] (its site chain), counting conflicts
   against [candidates] (chains of contexts in no group or a less popular
   group). Returns the conjunction in insertion order. *)
let build_conjunction ~member ~candidates =
  let expr = ref [] in
  let satisfies chain = List.for_all (chain_contains chain) !expr in
  let conflicts = ref max_int in
  let continue_ = ref true in
  while !continue_ do
    let live_chains = List.filter satisfies candidates in
    if live_chains = [] then continue_ := false
    else begin
      (* For each site of the member's own chain, how many conflicting
         chains would survive if we required it? Prefer the minimum;
         tie-break toward sites lower in the stack (smaller index). *)
      let best = ref None in
      Array.iteri
        (fun _idx site ->
          let m =
            List.fold_left
              (fun acc c -> if chain_contains c site then acc + 1 else acc)
              0 live_chains
          in
          match !best with
          | Some (_, bm) when bm <= m -> ()
          | _ -> best := Some (site, m))
        member;
      match !best with
      | None -> continue_ := false
      | Some (site, m) ->
          if m >= !conflicts then continue_ := false
          else begin
            expr := !expr @ [ site ];
            conflicts := m;
            if m = 0 then continue_ := false
          end
    end
  done;
  (* An empty conjunction would match every allocation; anchor it with the
     member's allocation site so the selector is at least site-specific.
     (Reached only when the member conflicts with nothing from the very
     start.) *)
  if !expr = [] then [ member.(Array.length member - 1) ] else !expr

let build ~contexts ~grouping =
  let group_of_ctx = Hashtbl.create 64 in
  Array.iteri
    (fun gi members ->
      List.iter (fun c -> Hashtbl.replace group_of_ctx c gi) members)
    grouping.Grouping.groups;
  let all_chains =
    Context.fold contexts ~init:[] ~f:(fun acc id chain ->
        (id, chain, Hashtbl.find_opt group_of_ctx id) :: acc)
  in
  let ignored = Hashtbl.create 8 in
  Array.to_list
    (Array.mapi
       (fun gi members ->
         Hashtbl.replace ignored gi ();
         let candidates =
           List.filter_map
             (fun (_, chain, g) ->
               match g with
               | Some g when Hashtbl.mem ignored g -> None
               | _ -> Some chain)
             all_chains
         in
         let disjuncts =
           List.map
             (fun member_ctx ->
               let member = Context.sites contexts member_ctx in
               build_conjunction ~member ~candidates)
             members
         in
         { group = gi; disjuncts })
       grouping.Grouping.groups)

let eval live sel =
  List.exists (fun conj -> List.for_all live conj) sel.disjuncts

let classify_chain selectors chain =
  let live site = chain_contains chain site in
  List.find_map
    (fun sel -> if eval live sel then Some sel.group else None)
    selectors

let monitored_sites selectors =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun sel ->
      List.iter (List.iter (fun s -> Hashtbl.replace tbl s ())) sel.disjuncts)
    selectors;
  Hashtbl.fold (fun s () acc -> s :: acc) tbl [] |> List.sort compare
