lib/core/identify.mli: Context Grouping Ir
