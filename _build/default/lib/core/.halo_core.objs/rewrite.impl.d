lib/core/rewrite.ml: Bitset Hashtbl Identify Ir List Printf
