lib/core/grouping.mli: Affinity_graph Context
