lib/core/clustering.mli: Affinity_graph Context Grouping
