lib/core/rewrite.mli: Bitset Identify Ir
