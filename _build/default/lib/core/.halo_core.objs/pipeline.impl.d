lib/core/pipeline.ml: Affinity_graph Array Buffer Context Dot Exec_env Group_alloc Grouping Identify Ir List Option Printf Profiler Rewrite String
