lib/core/identify.ml: Array Context Grouping Hashtbl Ir List
