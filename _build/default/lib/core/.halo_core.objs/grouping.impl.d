lib/core/grouping.ml: Affinity_graph Array Context Hashtbl List Score
