lib/core/pipeline.mli: Affinity_graph Alloc_iface Exec_env Group_alloc Grouping Identify Ir Profiler Rewrite Vmem
