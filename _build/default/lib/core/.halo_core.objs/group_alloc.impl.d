lib/core/group_alloc.ml: Addr Alloc_iface Hashtbl List Option Vmem
