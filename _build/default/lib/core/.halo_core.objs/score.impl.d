lib/core/score.ml: Affinity_graph Float Hashtbl List
