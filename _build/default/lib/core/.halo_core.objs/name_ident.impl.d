lib/core/name_ident.ml: Affinity_graph Array Context Exec_env Grouping Hashtbl List Profiler
