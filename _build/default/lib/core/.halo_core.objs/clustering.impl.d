lib/core/clustering.ml: Affinity_graph Array Grouping Hashtbl List
