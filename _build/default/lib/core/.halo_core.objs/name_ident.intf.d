lib/core/name_ident.mli: Exec_env Grouping Ir Profiler
