lib/core/group_alloc.mli: Alloc_iface Vmem
