lib/core/score.mli: Affinity_graph Context
