(* Loop edges are ignored throughout this module: a (v,v) edge crosses no
   cut and joins no two communities, so none of these standard algorithms
   has a use for it. (Figure 6's own score function is the one that treats
   loops specially — that is part of what the ablation compares.) *)

let nonloop_edges g =
  List.filter (fun (x, y, _) -> x <> y) (Affinity_graph.edges g)

(* ------------------------------------------------------------------ *)
(* Greedy modularity (CNM-style agglomeration).                        *)
(* ------------------------------------------------------------------ *)

let modularity g =
  let edges = nonloop_edges g in
  let nodes = Affinity_graph.nodes g in
  let two_m =
    2 * List.fold_left (fun acc (_, _, w) -> acc + w) 0 edges
  in
  if two_m = 0 then List.map (fun n -> [ n ]) nodes
  else begin
    let comm = Hashtbl.create 64 in
    (* node -> community id; community id -> members, strength *)
    let members = Hashtbl.create 64 in
    let strength = Hashtbl.create 64 in
    List.iteri
      (fun idx n ->
        Hashtbl.replace comm n idx;
        Hashtbl.replace members idx [ n ];
        Hashtbl.replace strength idx 0)
      nodes;
    List.iter
      (fun (x, y, w) ->
        let cx = Hashtbl.find comm x and cy = Hashtbl.find comm y in
        Hashtbl.replace strength cx (Hashtbl.find strength cx + w);
        Hashtbl.replace strength cy (Hashtbl.find strength cy + w))
      edges;
    (* between.(a,b) = weight between communities a and b *)
    let between = Hashtbl.create 256 in
    let bkey a b = if a < b then (a, b) else (b, a) in
    List.iter
      (fun (x, y, w) ->
        let cx = Hashtbl.find comm x and cy = Hashtbl.find comm y in
        if cx <> cy then begin
          let k = bkey cx cy in
          let cur = try Hashtbl.find between k with Not_found -> 0 in
          Hashtbl.replace between k (cur + w)
        end)
      edges;
    let fm = float_of_int two_m in
    let gain a b =
      let w_ab = try Hashtbl.find between (bkey a b) with Not_found -> 0 in
      (2.0 *. float_of_int w_ab /. fm)
      -. (2.0
         *. float_of_int (Hashtbl.find strength a)
         *. float_of_int (Hashtbl.find strength b)
         /. (fm *. fm))
    in
    let continue_ = ref true in
    while !continue_ do
      (* Best positive-gain merge among currently-connected pairs. *)
      let best = ref None in
      Hashtbl.iter
        (fun (a, b) w ->
          if w > 0 && Hashtbl.mem members a && Hashtbl.mem members b then begin
            let gq = gain a b in
            match !best with
            | Some (_, _, bg) when bg >= gq -> ()
            | _ -> if gq > 0.0 then best := Some (a, b, gq)
          end)
        between;
      match !best with
      | None -> continue_ := false
      | Some (a, b, _) ->
          (* Merge b into a. *)
          Hashtbl.replace members a (Hashtbl.find members a @ Hashtbl.find members b);
          Hashtbl.replace strength a (Hashtbl.find strength a + Hashtbl.find strength b);
          Hashtbl.remove members b;
          Hashtbl.remove strength b;
          (* Re-point b's between-entries at a. *)
          let updates = ref [] in
          Hashtbl.iter
            (fun (x, y) w ->
              if x = b || y = b then begin
                let other = if x = b then y else x in
                updates := (other, w) :: !updates
              end)
            between;
          List.iter
            (fun (other, _) -> Hashtbl.remove between (bkey other b))
            !updates;
          List.iter
            (fun (other, w) ->
              if other <> a then begin
                let k = bkey a other in
                let cur = try Hashtbl.find between k with Not_found -> 0 in
                Hashtbl.replace between k (cur + w)
              end)
            !updates
    done;
    Hashtbl.fold (fun _ ms acc -> ms :: acc) members []
  end

(* ------------------------------------------------------------------ *)
(* Stoer–Wagner global minimum cut.                                    *)
(* ------------------------------------------------------------------ *)

let min_cut g nodes =
  let n = List.length nodes in
  if n < 2 then invalid_arg "Clustering.min_cut: need at least 2 nodes";
  let idx = Hashtbl.create 16 in
  List.iteri (fun k x -> Hashtbl.replace idx x k) nodes;
  let node_arr = Array.of_list nodes in
  let w = Array.make_matrix n n 0 in
  List.iter
    (fun (x, y, wt) ->
      match (Hashtbl.find_opt idx x, Hashtbl.find_opt idx y) with
      | Some a, Some b when a <> b ->
          w.(a).(b) <- w.(a).(b) + wt;
          w.(b).(a) <- w.(b).(a) + wt
      | _ -> ())
    (nonloop_edges g);
  (* merged.(v) holds the original nodes contracted into v. *)
  let merged = Array.init n (fun k -> [ node_arr.(k) ]) in
  let active = Array.make n true in
  let best_cut = ref max_int in
  let best_side = ref [] in
  let remaining = ref n in
  while !remaining > 1 do
    (* Maximum adjacency ordering. *)
    let in_a = Array.make n false in
    let weight_to_a = Array.make n 0 in
    let prev = ref (-1) in
    let last = ref (-1) in
    for _ = 1 to !remaining do
      let sel = ref (-1) in
      for v = 0 to n - 1 do
        if active.(v) && (not in_a.(v))
           && (!sel = -1 || weight_to_a.(v) > weight_to_a.(!sel))
        then sel := v
      done;
      let v = !sel in
      in_a.(v) <- true;
      prev := !last;
      last := v;
      for u = 0 to n - 1 do
        if active.(u) && not in_a.(u) then
          weight_to_a.(u) <- weight_to_a.(u) + w.(v).(u)
      done
    done;
    (* Cut of the phase: last vertex vs the rest. *)
    if weight_to_a.(!last) < !best_cut then begin
      best_cut := weight_to_a.(!last);
      best_side := merged.(!last)
    end;
    (* Contract last into prev. *)
    let s = !prev and t = !last in
    merged.(s) <- merged.(s) @ merged.(t);
    active.(t) <- false;
    for v = 0 to n - 1 do
      if active.(v) && v <> s then begin
        w.(s).(v) <- w.(s).(v) + w.(t).(v);
        w.(v).(s) <- w.(s).(v)
      end
    done;
    decr remaining
  done;
  (!best_cut, !best_side)

(* ------------------------------------------------------------------ *)
(* Highly Connected Subgraphs.                                         *)
(* ------------------------------------------------------------------ *)

let hcs g =
  let rec go nodes =
    let n = List.length nodes in
    if n < 2 then [ nodes ]
    else begin
      let cut, side = min_cut g nodes in
      if 2 * cut > n then [ nodes ] (* highly connected: min cut > n/2 *)
      else begin
        let in_side = Hashtbl.create 16 in
        List.iter (fun x -> Hashtbl.replace in_side x ()) side;
        let rest = List.filter (fun x -> not (Hashtbl.mem in_side x)) nodes in
        if side = [] || rest = [] then [ nodes ]
        else go side @ go rest
      end
    end
  in
  go (Affinity_graph.nodes g)

(* ------------------------------------------------------------------ *)
(* Threshold / cut-based components.                                   *)
(* ------------------------------------------------------------------ *)

let threshold_components ~min_weight g =
  let adj = Hashtbl.create 64 in
  let add a b =
    let cur = try Hashtbl.find adj a with Not_found -> [] in
    Hashtbl.replace adj a (b :: cur)
  in
  List.iter
    (fun (x, y, w) ->
      if w >= min_weight then begin
        add x y;
        add y x
      end)
    (nonloop_edges g);
  let seen = Hashtbl.create 64 in
  let component root =
    let acc = ref [] in
    let stack = ref [ root ] in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | x :: rest ->
          stack := rest;
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.replace seen x ();
            acc := x :: !acc;
            List.iter
              (fun y -> if not (Hashtbl.mem seen y) then stack := y :: !stack)
              (try Hashtbl.find adj x with Not_found -> [])
          end
    done;
    !acc
  in
  List.filter_map
    (fun x -> if Hashtbl.mem seen x then None else Some (component x))
    (Affinity_graph.nodes g)

(* ------------------------------------------------------------------ *)
(* Adapter into the pipeline's Grouping.t shape.                       *)
(* ------------------------------------------------------------------ *)

let as_grouping g (params : Grouping.params) partition =
  let heat x = Affinity_graph.node_accesses g x in
  let trimmed =
    List.map
      (fun group ->
        group
        |> List.sort (fun a b -> compare (heat b, a) (heat a, b))
        |> List.filteri (fun i _ -> i < params.Grouping.max_group_members))
      partition
  in
  let threshold =
    params.Grouping.gthresh *. float_of_int (Affinity_graph.total_accesses g)
  in
  let kept =
    List.filter
      (fun group ->
        List.length group >= 1
        && float_of_int (Affinity_graph.subgraph_weight g group) >= threshold
        && Affinity_graph.subgraph_weight g group > 0)
      trimmed
  in
  let with_pop =
    List.map
      (fun group ->
        (group, Affinity_graph.subgraph_weight g group,
         List.fold_left (fun acc x -> acc + heat x) 0 group))
      kept
  in
  let sorted = List.sort (fun (_, _, a) (_, _, b) -> compare b a) with_pop in
  let sorted =
    match params.Grouping.max_groups with
    | None -> sorted
    | Some n -> List.filteri (fun i _ -> i < n) sorted
  in
  let groups = Array.of_list (List.map (fun (m, _, _) -> m) sorted) in
  let group_weights = Array.of_list (List.map (fun (_, w, _) -> w) sorted) in
  let group_accesses = Array.of_list (List.map (fun (_, _, p) -> p) sorted) in
  let in_group = Hashtbl.create 64 in
  Array.iter (List.iter (fun x -> Hashtbl.replace in_group x ())) groups;
  let ungrouped =
    List.filter (fun x -> not (Hashtbl.mem in_group x)) (Affinity_graph.nodes g)
  in
  { Grouping.groups; group_accesses; group_weights; ungrouped }
