(** The binary-rewriting pass (§4.3) — the reproduction's BOLT analog.

    Given the selectors chosen by identification, this stage decides the
    concrete instrumentation: it assigns one group-state bit to every
    monitored call site and produces (a) the patch list the interpreter
    applies (the stand-in for BOLT inserting set/unset-bit instructions
    around each point of interest in the binary) and (b) selectors compiled
    down to bit indices, which the specialised allocator evaluates against
    the shared bit vector on every allocation. *)

type t = {
  patches : (Ir.site * int) list;  (** site -> group-state bit index. *)
  selectors : compiled list;  (** Evaluation (popularity) order. *)
  nbits : int;  (** Bits used; the {!Exec_env} must have at least this. *)
}

and compiled = { group : int; conjs : int list list (** bit indices *) }

val plan : Identify.selector list -> t
(** Raises [Invalid_argument] if more sites are monitored than
    {!max_bits}. *)

val max_bits : int
(** Capacity of the group-state vector (64, a single machine word in the
    real implementation's spirit). *)

val classify : t -> Bitset.t -> int option
(** Evaluate the compiled selectors against the live group-state vector;
    first (most popular) matching group wins. *)

val site_of_bit : t -> int -> Ir.site
(** Reverse mapping, for diagnostics. *)
