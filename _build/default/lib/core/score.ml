let score g members =
  let n = List.length members in
  if n = 0 then 0.0
  else begin
    let in_group = Hashtbl.create 16 in
    List.iter (fun x -> Hashtbl.replace in_group x ()) members;
    let weight_sum = ref 0 in
    let loops = ref 0 in
    (* Iterate each member's adjacency once; undirected edges are seen from
       both endpoints, so halve non-loop contributions. *)
    let double_nonloop = ref 0 in
    List.iter
      (fun x ->
        List.iter
          (fun (y, w) ->
            if Hashtbl.mem in_group y then
              if x = y then begin
                weight_sum := !weight_sum + w;
                incr loops
              end
              else double_nonloop := !double_nonloop + w)
          (Affinity_graph.edges_of g x))
      members;
    weight_sum := !weight_sum + (!double_nonloop / 2);
    let denom = float_of_int !loops +. (float_of_int (n * (n - 1)) /. 2.0) in
    if denom <= 0.0 then 0.0 else float_of_int !weight_sum /. denom
  end

let merge_benefit g ~tol group candidate =
  if tol < 0.0 || tol >= 1.0 then invalid_arg "Score.merge_benefit: tol out of range";
  if List.mem candidate group then
    invalid_arg "Score.merge_benefit: candidate already in group";
  let sa = score g group in
  let sb = score g [ candidate ] in
  let sc = score g (candidate :: group) in
  sc -. ((1.0 -. tol) *. Float.max sa sb)
