type params = {
  min_edge_weight : int;
  max_group_members : int;
  merge_tol : float;
  gthresh : float;
  max_groups : int option;
}

let default_params =
  {
    min_edge_weight = 2;
    max_group_members = 8;
    merge_tol = 0.05;
    gthresh = 0.001;
    max_groups = None;
  }

type t = {
  groups : Context.id list array;
  group_accesses : int array;
  group_weights : int array;
  ungrouped : Context.id list;
}

let strongest_avail_edge g avail =
  (* The strongest edge both of whose endpoints are still available; ties
     broken towards lower node ids for determinism. *)
  List.fold_left
    (fun best (x, y, w) ->
      if Hashtbl.mem avail x && Hashtbl.mem avail y then
        match best with
        | Some (_, _, bw) when bw > w -> best
        | Some (bx, by, bw) when bw = w && (bx, by) <= (x, y) -> best
        | _ -> Some (x, y, w)
      else best)
    None (Affinity_graph.edges g)

let group graph params =
  if params.max_group_members < 1 then
    invalid_arg "Grouping.group: max_group_members must be >= 1";
  let g = Affinity_graph.prune_edges graph ~min_weight:params.min_edge_weight in
  let avail = Hashtbl.create 64 in
  List.iter (fun x -> Hashtbl.replace avail x ()) (Affinity_graph.nodes g);
  let kept = ref [] in
  let continue_ = ref true in
  while !continue_ do
    match strongest_avail_edge g avail with
    | None -> continue_ := false
    | Some (x, y, _w) ->
        (* Seed with the hotter endpoint of the strongest edge. *)
        let seed =
          if Affinity_graph.node_accesses g x >= Affinity_graph.node_accesses g y
          then x
          else y
        in
        let group = ref [ seed ] in
        Hashtbl.remove avail seed;
        let growing = ref true in
        while !growing && List.length !group < params.max_group_members do
          let best =
            Hashtbl.fold
              (fun cand () best ->
                let benefit =
                  Score.merge_benefit g ~tol:params.merge_tol !group cand
                in
                match best with
                | Some (_, b) when b > benefit -> best
                | Some (bc, b) when b = benefit && bc <= cand -> best
                | _ -> if benefit > 0.0 then Some (cand, benefit) else best)
              avail None
          in
          match best with
          | None -> growing := false
          | Some (cand, _) ->
              group := cand :: !group;
              Hashtbl.remove avail cand
        done;
        let members = List.rev !group in
        let weight = Affinity_graph.subgraph_weight g members in
        let threshold =
          params.gthresh *. float_of_int (Affinity_graph.total_accesses g)
        in
        if float_of_int weight >= threshold then kept := (members, weight) :: !kept
        (* else: the group is dropped, but its nodes remain consumed. *)
  done;
  let popularity members =
    List.fold_left (fun acc x -> acc + Affinity_graph.node_accesses g x) 0 members
  in
  let with_pop =
    List.map (fun (members, weight) -> (members, weight, popularity members)) !kept
  in
  let sorted =
    List.sort (fun (_, _, pa) (_, _, pb) -> compare pb pa) with_pop
  in
  let sorted =
    match params.max_groups with
    | None -> sorted
    | Some n -> List.filteri (fun i _ -> i < n) sorted
  in
  let groups = Array.of_list (List.map (fun (m, _, _) -> m) sorted) in
  let group_weights = Array.of_list (List.map (fun (_, w, _) -> w) sorted) in
  let group_accesses = Array.of_list (List.map (fun (_, _, p) -> p) sorted) in
  let in_group = Hashtbl.create 64 in
  Array.iter (List.iter (fun x -> Hashtbl.replace in_group x ())) groups;
  let ungrouped =
    List.filter
      (fun x -> not (Hashtbl.mem in_group x))
      (Affinity_graph.nodes graph)
  in
  { groups; group_accesses; group_weights; ungrouped }

let group_of t ctx =
  let found = ref None in
  Array.iteri
    (fun i members -> if !found = None && List.mem ctx members then found := Some i)
    t.groups;
  !found
