(** Group quality scoring (§4.2, Figures 7 and 8).

    The score [s(G)] of a candidate group is a variant of weighted graph
    density:

    {v s(G) = (Σ_{(u,v) ∈ E} w(u,v)) / (|L| + |V|(|V|-1)/2) v}

    where [L] is the set of loop edges with positive weight. The standard
    formulation of weighted density ignores loop edges; this variant
    distributes weight among loops only when they are present, so a context
    that is strongly self-affinitive scores well alone, and adding it to a
    group must beat that.

    The merge benefit of folding candidate [B] into group [A] is

    {v m(A,B) = s(G[A ∪ B]) - (1 - T) · max(s(G[A]), s(G[B])) v}

    positive only when the union scores higher than either part alone —
    except that the tolerance [T] (5% in the evaluation) permits a
    fractionally lower combined score, without which most groups would
    stall at one or two nodes. *)

val score : Affinity_graph.t -> Context.id list -> float
(** [score g members] is [s] of the subgraph of [g] induced by [members].
    A subgraph with an empty denominator (a single node with no loop edge)
    scores 0. *)

val merge_benefit :
  Affinity_graph.t -> tol:float -> Context.id list -> Context.id -> float
(** [merge_benefit g ~tol group candidate] is [m(group, {candidate})]. *)
