(** Group identification: selector construction (§4.3, Figure 10).

    Rather than walking the call stack at runtime, HALO identifies group
    membership with {e selectors}: DNF boolean expressions over "has the
    flow of control passed through call site S?" predicates, evaluated
    against the group-state bit vector maintained by the rewritten binary.

    For each group, in descending popularity order, and for each member
    context of that group, a conjunction is grown greedily: at every step
    the candidate site (drawn from the member's own chain) that minimises
    the number of {e conflicting} contexts — contexts of not-yet-processed
    groups or of no group whose chains also satisfy the conjunction so
    far — is appended, until conflicts stop decreasing (ideally at zero).
    Ties prefer sites lower in the stack (closer to [main]). The member's
    conjunction is OR-ed into the group's selector.

    Conflicts with {e more} popular groups are permitted by construction
    (they left the conflict set before this group was processed); they are
    harmless because the runtime evaluates selectors in popularity order
    and takes the first match. Residual conflicts that cannot be resolved
    mean some foreign allocations will be pulled into the group at runtime
    — the accepted sub-optimality the paper notes. *)

type conj = Ir.site list
(** All listed sites must be live on the call stack. *)

type selector = {
  group : int;  (** Group index in the {!Grouping.t} order. *)
  disjuncts : conj list;  (** One conjunction per group member. *)
}

val build : contexts:Context.table -> grouping:Grouping.t -> selector list
(** Selectors for every group, in evaluation (popularity) order. *)

val eval : (Ir.site -> bool) -> selector -> bool
(** [eval live sel]: does any disjunct have all of its sites live? *)

val classify_chain : selector list -> Ir.site array -> int option
(** Classify a full context chain by selector order — the profiling-side
    oracle used in tests and in coverage statistics: a chain [c] matches a
    conjunction when every site of the conjunction occurs in [c]. *)

val monitored_sites : selector list -> Ir.site list
(** The distinct call sites appearing in any selector — the "small handful
    of call sites" the binary rewriter must instrument. Ascending. *)
