type t = {
  patches : (Ir.site * int) list;
  selectors : compiled list;
  nbits : int;
}

and compiled = { group : int; conjs : int list list }

let max_bits = 64

let plan selectors =
  let sites = Identify.monitored_sites selectors in
  let nbits = List.length sites in
  if nbits > max_bits then
    invalid_arg
      (Printf.sprintf
         "Rewrite.plan: %d monitored sites exceed the %d-bit group state vector"
         nbits max_bits);
  let bit_of = Hashtbl.create 32 in
  List.iteri (fun i s -> Hashtbl.replace bit_of s i) sites;
  let compile (sel : Identify.selector) =
    {
      group = sel.Identify.group;
      conjs =
        List.map (List.map (fun s -> Hashtbl.find bit_of s)) sel.Identify.disjuncts;
    }
  in
  {
    patches = List.mapi (fun i s -> (s, i)) sites;
    selectors = List.map compile selectors;
    nbits;
  }

let classify t state =
  let conj_live = List.for_all (fun b -> Bitset.get state b) in
  List.find_map
    (fun c -> if List.exists conj_live c.conjs then Some c.group else None)
    t.selectors

let site_of_bit t bit =
  match List.find_opt (fun (_, b) -> b = bit) t.patches with
  | Some (s, _) -> s
  | None -> invalid_arg (Printf.sprintf "Rewrite.site_of_bit: bit %d unused" bit)
