(** The context-grouping algorithm (§4.2, Figure 6).

    Partitions (part of) the affinity graph's contexts into tight-knit
    groups to be co-allocated from shared pools. A simple greedy process:
    repeatedly seed a group with the hotter endpoint of the strongest
    remaining edge, then grow it by the candidate with the highest merge
    benefit until no candidate is beneficial (or the member cap is hit).
    Groups whose internal weight falls below a fraction [gthresh] of all
    observed accesses are dropped as noise — but their nodes stay consumed,
    exactly as in the paper's pseudocode. *)

type params = {
  min_edge_weight : int;
      (** Edges lighter than this are removed before grouping (noise
          thresholding). *)
  max_group_members : int;
  merge_tol : float;  (** Tolerance [T]; 5% performs well (§4.2). *)
  gthresh : float;
      (** Minimum group weight as a fraction of total observed accesses. *)
  max_groups : int option;
      (** Keep only the N most popular groups (the artefact's
          [--max-groups], needed by roms). *)
}

val default_params : params
(** [min_edge_weight = 2], [max_group_members = 8], [merge_tol = 0.05],
    [gthresh = 0.001], no group cap. *)

type t = {
  groups : Context.id list array;
      (** Disjoint groups, sorted by descending popularity (total member
          accesses) — the order identification relies on. *)
  group_accesses : int array;  (** Popularity per group, same order. *)
  group_weights : int array;  (** Internal affinity weight per group. *)
  ungrouped : Context.id list;
      (** Graph nodes not in any kept group (insufficient merge benefit or
          group weight). *)
}

val group : Affinity_graph.t -> params -> t

val group_of : t -> Context.id -> int option
(** Index of the group containing a context, if any. *)
