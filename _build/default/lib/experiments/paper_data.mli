(** Reference values from the paper, for paper-vs-measured tables.

    Figures 13–15 are bar charts without printed values, so those entries
    are approximate visual reads (the text anchors a few exactly: up to
    23% L1D miss reduction, 28% health speedup, ~4% omnetpp and 16% xalanc
    speedups, roms misses {e increase} under hot data streams). Table 1's
    values are printed in the paper and exact. All values are fractions
    (0.28 = 28%). *)

type fig13_14 = {
  bench : string;
  hds_miss : float;  (** Fig. 13, Chilimbi et al. bar. *)
  halo_miss : float;  (** Fig. 13, HALO bar. *)
  hds_speed : float;  (** Fig. 14. *)
  halo_speed : float;
}

val fig13_14 : fig13_14 list
(** In the paper's benchmark order. *)

val fig15 : (string * float) list
(** Benchmark, random-pool speedup (mostly negative). *)

val table1 : (string * float * int) list
(** Benchmark, fragmentation fraction, fragmentation bytes — exact. *)

val fig12_baseline_seconds : float
(** Median omnetpp baseline execution time in Figure 12 (~285 s). *)
