lib/experiments/figures.mli: Table Workload
