lib/experiments/paper_data.ml:
