lib/experiments/runner.mli: Affinity_graph Alloc_iface Group_alloc Grouping Hierarchy Json Pipeline Workload
