type fig13_14 = {
  bench : string;
  hds_miss : float;
  halo_miss : float;
  hds_speed : float;
  halo_speed : float;
}

(* Approximate reads of Figures 13 and 14 (bar charts); text-anchored
   values marked in comments. *)
let fig13_14 =
  [
    { bench = "health"; hds_miss = 0.18; halo_miss = 0.22; hds_speed = 0.21;
      halo_speed = 0.28 (* text: ~28%, +7 points over HDS *) };
    { bench = "ft"; hds_miss = 0.06; halo_miss = 0.07; hds_speed = 0.07;
      halo_speed = 0.08 };
    { bench = "analyzer"; hds_miss = 0.08; halo_miss = 0.10; hds_speed = 0.06;
      halo_speed = 0.08 };
    { bench = "ammp"; hds_miss = 0.10; halo_miss = 0.12; hds_speed = 0.08;
      halo_speed = 0.10 };
    { bench = "art"; hds_miss = 0.12; halo_miss = 0.14; hds_speed = 0.09;
      halo_speed = 0.11 };
    { bench = "equake"; hds_miss = 0.12; halo_miss = 0.15; hds_speed = 0.10;
      halo_speed = 0.12 };
    { bench = "povray"; hds_miss = 0.02; halo_miss = 0.10; hds_speed = 0.00;
      halo_speed = 0.02 (* text: 5-15% fewer misses, time largely unchanged *) };
    { bench = "omnetpp"; hds_miss = 0.00; halo_miss = 0.06; hds_speed = 0.00;
      halo_speed = 0.04 (* text: roughly 4% speedup *) };
    { bench = "xalanc"; hds_miss = 0.01; halo_miss = 0.17; hds_speed = 0.00;
      halo_speed = 0.16 (* text: 16% speedup *) };
    { bench = "leela"; hds_miss = 0.02; halo_miss = 0.08; hds_speed = 0.00;
      halo_speed = 0.01 (* text: 5-15% fewer misses, time largely unchanged *) };
    { bench = "roms"; hds_miss = -0.04; halo_miss = 0.01; hds_speed = -0.02;
      halo_speed = 0.00 (* text: HDS increases misses; HALO essentially no effect *) };
  ]

let fig15 =
  [
    ("health", -0.55);
    ("ft", -0.10);
    ("analyzer", -0.08);
    ("ammp", -0.12);
    ("art", -0.15);
    ("equake", -0.20);
    ("povray", 0.00);
    ("omnetpp", -0.03);
    ("xalanc", -0.02);
    ("leela", 0.00);
    ("roms", -0.01);
  ]

(* Table 1: exact printed values. *)
let table1 =
  [
    ("health", 0.0001, 32747 (* 31.98 KiB *));
    ("equake", 0.0005, 12370 (* 12.08 KiB *));
    ("analyzer", 0.0013, 4413 (* 4.31 KiB *));
    ("ammp", 0.0020, 41953 (* 40.97 KiB *));
    ("art", 0.0062, 11981 (* 11.70 KiB *));
    ("ft", 0.0206, 4147 (* 4.05 KiB *));
    ("povray", 0.2647, 37949 (* 37.06 KiB *));
    ("roms", 0.9360, 30669 (* 29.95 KiB *));
    ("leela", 0.9999, 2149581 (* 2.05 MiB *));
  ]

let fig12_baseline_seconds = 285.0
