(** The affinity queue (§4.1, Figure 5).

    A sliding window over the most recent heap accesses, implicitly sized
    by the {e affinity distance} [A] in bytes. When a macro-level access to
    object [u] (allocated from context [x]) is appended, the queue is
    traversed from newest to oldest; an earlier access to object [v]
    (context [y]) is {e affinitive} to the new access iff the access sizes
    of the entries from [v] up to (excluding) [u] sum to less than [A] —
    this matches Figure 5, where with [A = 32] and 4-byte accesses the
    newest element is affinitive to exactly the seven entries to its left.

    Each affinitive pair reported is subject to the paper's four
    constraints:

    - {b deduplication}: consecutive accesses to a single object form one
      macro-level access and do not re-trigger traversal;
    - {b no self-affinity}: [u != v] (an object occupies one location);
    - {b no double counting}: each distinct [v] counts at most once per
      traversal;
    - {b co-allocatability}: no allocation chronologically between [u] and
      [v] may originate from [x] or [y] — otherwise co-locating all of
      [x]/[y]'s objects contiguously at runtime could not have placed [u]
      and [v] together.

    Affinitive pairs are reported through a callback as (x, y) context
    pairs — note x may equal y (distinct objects from one context), which
    produces the loop edges the score function treats specially.

    Entries are keyed by object identity (oids are never reused), so
    accesses to since-freed objects legitimately remain in the window:
    they did happen recently, and co-allocatability is what rules out
    impossible placements. *)

type t

val create :
  affinity_distance:int ->
  heap:Heap_model.t ->
  on_affinity:(Context.id -> Context.id -> unit) ->
  unit ->
  t
(** [on_affinity x y] is invoked once per affinitive pair discovered, with
    [x] the newest access's context. *)

val add : t -> Heap_model.obj -> bytes:int -> bool
(** Record a macro-level access of [bytes] bytes to the given object and
    report all affinitive relationships it forms. Returns [false] when the
    access was deduplicated into the previous macro access (same object),
    [true] when a new macro access was recorded. *)

val length : t -> int
(** Entries currently inside the window. *)

val accesses : t -> int
(** Macro-level accesses recorded (post-deduplication). *)
