lib/profile/affinity_graph.ml: Context Hashtbl List
