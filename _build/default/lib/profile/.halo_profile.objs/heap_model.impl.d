lib/profile/heap_model.ml: Addr Array Context Hashtbl Int Map
