lib/profile/profiler.ml: Affinity_graph Affinity_queue Context Heap_model Interp Jemalloc_sim Vmem
