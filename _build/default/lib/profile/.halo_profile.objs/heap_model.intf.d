lib/profile/heap_model.mli: Addr Context
