lib/profile/affinity_queue.mli: Context Heap_model
