lib/profile/affinity_queue.ml: Array Context Hashtbl Heap_model
