lib/profile/context.mli: Ir
