lib/profile/profiler.mli: Affinity_graph Context Ir
