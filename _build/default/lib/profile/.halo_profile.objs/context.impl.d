lib/profile/context.ml: Array Hashtbl List Printf String
