lib/profile/affinity_graph.mli: Context
