(** Interned allocation contexts.

    An allocation context is a reduced call-stack: the sequence of call
    sites from outermost frame to the allocation site itself (§4.1). The
    affinity graph, grouping and identification stages all key on contexts,
    so contexts are interned to dense integer ids. *)

type id = int
(** Dense context identifier, 0-based in order of first occurrence. *)

type table

val create : unit -> table

val intern : table -> Ir.site array -> id
(** Intern a context (the array is copied if fresh). Equal site sequences
    receive equal ids. *)

val sites : table -> id -> Ir.site array
(** The context's call sites, outermost first. Do not mutate. *)

val alloc_site : table -> id -> Ir.site
(** The innermost element — the immediate call site of the allocation
    procedure, which is all the hot-data-streams comparator gets to see. *)

val count : table -> int
val mem_sites : table -> Ir.site array -> bool

val label : table -> (Ir.site -> string) -> id -> string
(** Render as ["a -> b -> c"] using a site labeller
    (e.g. [Ir.site_label program]). *)

val fold : table -> init:'a -> f:('a -> id -> Ir.site array -> 'a) -> 'a
