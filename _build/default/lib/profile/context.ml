type id = int

type table = {
  by_sites : (int array, id) Hashtbl.t;
  mutable arr : int array array; (* id -> sites *)
  mutable n : int;
}

let create () = { by_sites = Hashtbl.create 256; arr = Array.make 64 [||]; n = 0 }

let intern t sites =
  match Hashtbl.find_opt t.by_sites sites with
  | Some id -> id
  | None ->
      if Array.length sites = 0 then invalid_arg "Context.intern: empty context";
      let id = t.n in
      let copy = Array.copy sites in
      Hashtbl.replace t.by_sites copy id;
      if id >= Array.length t.arr then begin
        let bigger = Array.make (2 * Array.length t.arr) [||] in
        Array.blit t.arr 0 bigger 0 t.n;
        t.arr <- bigger
      end;
      t.arr.(id) <- copy;
      t.n <- id + 1;
      id

let check t id =
  if id < 0 || id >= t.n then invalid_arg (Printf.sprintf "Context: bad id %d" id)

let sites t id =
  check t id;
  t.arr.(id)

let alloc_site t id =
  let s = sites t id in
  s.(Array.length s - 1)

let count t = t.n
let mem_sites t s = Hashtbl.mem t.by_sites s

let label t site_label id =
  sites t id |> Array.to_list |> List.map site_label |> String.concat " -> "

let fold t ~init ~f =
  let acc = ref init in
  for id = 0 to t.n - 1 do
    acc := f !acc id t.arr.(id)
  done;
  !acc
