(** Object-granularity tracking of live heap data (§4.1).

    The profiling tool instruments all POSIX.1 memory-management calls and
    tracks live data at object granularity: every load/store is resolved to
    the heap object containing its target address, and every object knows
    the context it was allocated from and its position in allocation order
    (its {e sequence number}), which the affinity queue's co-allocatability
    constraint consults. *)

type obj = {
  oid : int;  (** Unique per tracked allocation (never reused). *)
  addr : Addr.t;
  size : int;  (** Requested bytes. *)
  ctx : Context.id;
  seq : int;  (** Position in allocation order, 0-based, across contexts. *)
}

type t

val create : unit -> t

val on_alloc : t -> addr:Addr.t -> size:int -> ctx:Context.id -> obj
(** Track a new allocation. The sequence number advances even for
    allocations a caller later decides not to model, so chronology matches
    the program's real allocation order. *)

val on_free : t -> addr:Addr.t -> obj option
(** Stop tracking the object based at [addr]; [None] if the address is not
    a tracked object's base (e.g. it was never tracked). *)

val find : t -> Addr.t -> obj option
(** The live tracked object whose [addr, addr+size) interval contains the
    given address, if any. *)

val live_count : t -> int
val allocs_total : t -> int

val ctx_allocs_in_range : t -> ctx:Context.id -> lo:int -> hi:int -> bool
(** Whether any allocation from [ctx] has a sequence number strictly
    between [lo] and [hi] — the co-allocatability test's primitive. Counts
    all allocations ever made (freed or not): chronology is immutable. *)
