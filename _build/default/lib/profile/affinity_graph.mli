(** The pairwise affinity graph (§4.1).

    Nodes are reduced allocation contexts; the weight of edge (x, y) counts
    contemporaneous accesses to objects allocated from x and y within the
    affinity window. Loop edges (x, x) are legal and meaningful: they
    record affinity between distinct objects of a single context. Nodes
    also carry access counts, used both for the post-run noise filter (keep
    the hottest nodes covering 90% of observed accesses) and for grouping
    decisions. *)

type t

val create : unit -> t

val add_access : t -> Context.id -> unit
(** Count one macro-level access to an object of this context (creates the
    node if needed). *)

val add_affinity : t -> Context.id -> Context.id -> unit
(** Increment the (x, y) edge weight by one (undirected; x = y allowed). *)

val node_accesses : t -> Context.id -> int
(** 0 for absent nodes. *)

val weight : t -> Context.id -> Context.id -> int
val total_accesses : t -> int
val nodes : t -> Context.id list
(** Ascending by id. *)

val edges : t -> (Context.id * Context.id * int) list
(** Normalised (x <= y), positive-weight edges, in unspecified order. *)

val edges_of : t -> Context.id -> (Context.id * int) list
(** Neighbours of a node with edge weights (includes itself if a loop edge
    exists). *)

val filter_top : t -> coverage:float -> t
(** The paper's noise filter: iterate nodes from most- to least-accessed,
    accumulating access counts; once [coverage] (e.g. 0.9) of all observed
    accesses is covered, discard the remaining nodes (and their edges).
    [total_accesses] of the result still reports the original total, since
    thresholds in grouping are expressed against all observed accesses. *)

val prune_edges : t -> min_weight:int -> t
(** Drop edges with weight below [min_weight] (grouping's first step). *)

val subgraph_weight : t -> Context.id list -> int
(** Sum of weights of edges with both endpoints in the list (loops
    included) — the "group weight" tested against the gthresh cutoff. *)
