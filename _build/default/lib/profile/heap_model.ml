module Addr_map = Map.Make (Int)

type obj = { oid : int; addr : Addr.t; size : int; ctx : Context.id; seq : int }

(* Per-context allocation sequence numbers, appended in increasing order
   (seq is global and monotonic), so membership in an open interval is a
   binary search. *)
type seq_log = { mutable data : int array; mutable len : int }

type t = {
  mutable live : obj Addr_map.t; (* keyed by base address *)
  mutable next_oid : int;
  mutable next_seq : int;
  ctx_seqs : (Context.id, seq_log) Hashtbl.t;
}

let create () =
  { live = Addr_map.empty; next_oid = 0; next_seq = 0; ctx_seqs = Hashtbl.create 64 }

let log_push t ctx seq =
  let log =
    match Hashtbl.find_opt t.ctx_seqs ctx with
    | Some l -> l
    | None ->
        let l = { data = Array.make 16 0; len = 0 } in
        Hashtbl.replace t.ctx_seqs ctx l;
        l
  in
  if log.len = Array.length log.data then begin
    let bigger = Array.make (2 * log.len) 0 in
    Array.blit log.data 0 bigger 0 log.len;
    log.data <- bigger
  end;
  log.data.(log.len) <- seq;
  log.len <- log.len + 1

let on_alloc t ~addr ~size ~ctx =
  let o = { oid = t.next_oid; addr; size; ctx; seq = t.next_seq } in
  t.next_oid <- t.next_oid + 1;
  t.next_seq <- t.next_seq + 1;
  log_push t ctx o.seq;
  t.live <- Addr_map.add addr o t.live;
  o

let on_free t ~addr =
  match Addr_map.find_opt addr t.live with
  | None -> None
  | Some o ->
      t.live <- Addr_map.remove addr t.live;
      Some o

let find t addr =
  match Addr_map.find_last_opt (fun base -> base <= addr) t.live with
  | Some (_, o) when addr < o.addr + max o.size 1 -> Some o
  | _ -> None

let live_count t = Addr_map.cardinal t.live
let allocs_total t = t.next_seq

let ctx_allocs_in_range t ~ctx ~lo ~hi =
  if hi - lo <= 1 then false
  else
    match Hashtbl.find_opt t.ctx_seqs ctx with
    | None -> false
    | Some log ->
        (* Find the first seq > lo; check whether it is < hi. *)
        let a = ref 0 and b = ref log.len in
        while !a < !b do
          let mid = (!a + !b) / 2 in
          if log.data.(mid) <= lo then a := mid + 1 else b := mid
        done;
        !a < log.len && log.data.(!a) < hi
