type config = {
  affinity_distance : int;
  max_tracked_size : int;
  node_coverage : float;
  seed : int;
  sample_period : int;
}

let default_config =
  {
    affinity_distance = 128;
    max_tracked_size = 4096;
    node_coverage = 0.9;
    seed = 1;
    sample_period = 1;
  }

type result = {
  graph : Affinity_graph.t;
  raw_graph : Affinity_graph.t;
  contexts : Context.table;
  total_accesses : int;
  tracked_allocs : int;
  instructions : int;
}

let profile ?(config = default_config) program =
  let vmem = Vmem.create () in
  let alloc = Jemalloc_sim.create vmem in
  let contexts = Context.create () in
  let heap = Heap_model.create () in
  let graph = Affinity_graph.create () in
  let queue =
    Affinity_queue.create ~affinity_distance:config.affinity_distance ~heap
      ~on_affinity:(fun x y -> Affinity_graph.add_affinity graph x y)
      ()
  in
  if config.sample_period < 1 then
    invalid_arg "Profiler.profile: sample_period must be >= 1";
  let tracked_allocs = ref 0 in
  let tick = ref 0 in
  let track addr size ctx_sites =
    if size <= config.max_tracked_size then begin
      let cid = Context.intern contexts ctx_sites in
      ignore (Heap_model.on_alloc heap ~addr ~size ~ctx:cid : Heap_model.obj);
      incr tracked_allocs
    end
  in
  let hooks =
    {
      Interp.on_access =
        (fun addr size _write ->
          incr tick;
          if !tick mod config.sample_period = 0 then
            match Heap_model.find heap addr with
            | None -> ()
            | Some o ->
                if Affinity_queue.add queue o ~bytes:size then
                  Affinity_graph.add_access graph o.Heap_model.ctx);
      on_alloc = (fun addr size _site ctx -> track addr size ctx);
      on_realloc =
        (fun old_addr addr size _site ctx ->
          ignore (Heap_model.on_free heap ~addr:old_addr : Heap_model.obj option);
          track addr size ctx);
      on_free =
        (fun addr -> ignore (Heap_model.on_free heap ~addr : Heap_model.obj option));
    }
  in
  let interp = Interp.create ~seed:config.seed ~hooks ~program ~alloc () in
  ignore (Interp.run interp : int);
  let filtered = Affinity_graph.filter_top graph ~coverage:config.node_coverage in
  {
    graph = filtered;
    raw_graph = graph;
    contexts;
    total_accesses = Affinity_queue.accesses queue;
    tracked_allocs = !tracked_allocs;
    instructions = Interp.instructions interp;
  }
