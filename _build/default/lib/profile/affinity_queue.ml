type entry = { oid : int; ctx : Context.id; bytes : int; seq : int }

type t = {
  a : int; (* affinity distance, bytes *)
  heap : Heap_model.t;
  on_affinity : Context.id -> Context.id -> unit;
  mutable ring : entry array;
  mutable start : int; (* index of oldest entry *)
  mutable count : int;
  mutable accesses : int;
  seen : (int, unit) Hashtbl.t; (* per-traversal double-counting guard *)
}

let dummy = { oid = -1; ctx = -1; bytes = 0; seq = -1 }

let create ~affinity_distance ~heap ~on_affinity () =
  if affinity_distance <= 0 then
    invalid_arg "Affinity_queue.create: affinity distance must be positive";
  {
    a = affinity_distance;
    heap;
    on_affinity;
    ring = Array.make 64 dummy;
    start = 0;
    count = 0;
    accesses = 0;
    seen = Hashtbl.create 64;
  }

let length t = t.count
let accesses t = t.accesses

let nth_newest t i =
  (* i = 0 is the newest entry. *)
  let idx = (t.start + t.count - 1 - i) mod Array.length t.ring in
  t.ring.(idx)

let push t e =
  if t.count = Array.length t.ring then begin
    let bigger = Array.make (2 * t.count) dummy in
    for i = 0 to t.count - 1 do
      bigger.(i) <- t.ring.((t.start + i) mod Array.length t.ring)
    done;
    t.ring <- bigger;
    t.start <- 0
  end;
  t.ring.((t.start + t.count) mod Array.length t.ring) <- e;
  t.count <- t.count + 1

let drop_oldest t n =
  let n = min n t.count in
  t.start <- (t.start + n) mod Array.length t.ring;
  t.count <- t.count - n

let co_allocatable t (u : entry) (v : entry) =
  let lo = min u.seq v.seq and hi = max u.seq v.seq in
  (not (Heap_model.ctx_allocs_in_range t.heap ~ctx:u.ctx ~lo ~hi))
  && not
       (u.ctx <> v.ctx && Heap_model.ctx_allocs_in_range t.heap ~ctx:v.ctx ~lo ~hi)

let add t (o : Heap_model.obj) ~bytes =
  if bytes <= 0 then invalid_arg "Affinity_queue.add: non-positive access size";
  (* Deduplication: a repeat of the immediately preceding object is part of
     the same macro-level access. *)
  if t.count > 0 && (nth_newest t 0).oid = o.Heap_model.oid then false
  else begin
    t.accesses <- t.accesses + 1;
    let u = { oid = o.Heap_model.oid; ctx = o.Heap_model.ctx; bytes; seq = o.Heap_model.seq } in
    Hashtbl.reset t.seen;
    let acc = ref 0 in
    let i = ref 0 in
    let stop = ref false in
    while (not !stop) && !i < t.count do
      let v = nth_newest t !i in
      acc := !acc + v.bytes;
      if !acc >= t.a then begin
        stop := true;
        (* Entries older than this one can never again fall inside the
           window (future accumulated distances only grow), so trim them.
           [v] itself stays: a future smaller access pattern could... not
           reach it either, so it can go too once it has been excluded. *)
        drop_oldest t (t.count - !i)
      end
      else begin
        if v.oid <> u.oid && not (Hashtbl.mem t.seen v.oid) then begin
          Hashtbl.replace t.seen v.oid ();
          if co_allocatable t u v then t.on_affinity u.ctx v.ctx
        end;
        incr i
      end
    done;
    push t u;
    true
  end
