(* Tests for halo_hds: SEQUITUR (classic examples, invariants and
   round-trip properties), hot-stream extraction, weighted set packing,
   and the comparator pipeline. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let push_all t l = List.iter (Sequitur.push t) l
let expand_list t = Array.to_list (Sequitur.expand t)

(* ---------------- Sequitur ---------------- *)

let seq_empty () =
  let t = Sequitur.create () in
  checki "empty input" 0 (Sequitur.input_length t);
  Alcotest.check (Alcotest.list Alcotest.int) "empty expansion" [] (expand_list t)

let seq_roundtrip_simple () =
  let t = Sequitur.create () in
  let input = [ 1; 2; 3; 4; 5 ] in
  push_all t input;
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" input (expand_list t)

let seq_classic_abcdbc () =
  (* "abcdbc" -> S = a A d A; A = b c *)
  let t = Sequitur.create () in
  push_all t [ 0; 1; 2; 3; 1; 2 ];
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" [ 0; 1; 2; 3; 1; 2 ]
    (expand_list t);
  checki "one auxiliary rule" 2 (Sequitur.rule_count t);
  checkb "invariants" true (Sequitur.check_invariants t = Ok ())

let seq_hierarchy () =
  (* abcabdabcabd: rule for "ab", rule for abc-abd sequence, etc. *)
  let t = Sequitur.create () in
  let input = [ 1; 2; 3; 1; 2; 4; 1; 2; 3; 1; 2; 4 ] in
  push_all t input;
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" input (expand_list t);
  checkb "invariants" true (Sequitur.check_invariants t = Ok ());
  (* The half-input rule exists with two uses. *)
  let rules = Sequitur.rules t in
  checkb "found period rule" true
    (List.exists
       (fun (r : Sequitur.rule_info) ->
         r.Sequitur.uses = 2 && Array.to_list r.Sequitur.expansion = [ 1; 2; 3; 1; 2; 4 ])
       rules)

let seq_overlapping_chain () =
  (* "aaa" must not loop or corrupt: overlapping digram is left alone. *)
  let t = Sequitur.create () in
  push_all t [ 7; 7; 7 ];
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" [ 7; 7; 7 ] (expand_list t);
  checkb "invariants" true (Sequitur.check_invariants t = Ok ())

let seq_four_identical () =
  (* "aaaa" -> S = A A; A = a a *)
  let t = Sequitur.create () in
  push_all t [ 7; 7; 7; 7 ];
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" [ 7; 7; 7; 7 ]
    (expand_list t);
  checki "rule formed" 2 (Sequitur.rule_count t);
  checkb "invariants" true (Sequitur.check_invariants t = Ok ())

let seq_chain_regression () =
  (* The shrunk counterexample that once broke digram indexing on
     equal-symbol chains. *)
  let t = Sequitur.create () in
  let input = [ 4; 1; 1; 1; 4; 1; 0; 1; 1 ] in
  push_all t input;
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" input (expand_list t);
  checkb "invariants" true (Sequitur.check_invariants t = Ok ())

let seq_chain_regression2 () =
  let t = Sequitur.create () in
  let input = [ 8; 8; 8; 0; 8; 8; 8; 0; 8; 0; 8; 8 ] in
  push_all t input;
  Alcotest.check (Alcotest.list Alcotest.int) "roundtrip" input (expand_list t);
  checkb "invariants" true (Sequitur.check_invariants t = Ok ())

let seq_uses_accounting () =
  let t = Sequitur.create () in
  (* 50 repetitions of a period-4 pattern *)
  for _ = 1 to 50 do
    push_all t [ 1; 2; 3; 4 ]
  done;
  let rules = Sequitur.rules t in
  (* heat conservation: the start rule accounts for everything *)
  (match rules with
  | start :: _ ->
      checki "start uses" 1 start.Sequitur.uses;
      checki "start expansion" 200 (Array.length start.Sequitur.expansion)
  | [] -> Alcotest.fail "no rules");
  checkb "some rule is used many times" true
    (List.exists (fun (r : Sequitur.rule_info) -> r.Sequitur.uses >= 25) rules)

let seq_rejects_negative () =
  let t = Sequitur.create () in
  checkb "raises" true
    (try
       Sequitur.push t (-1);
       false
     with Invalid_argument _ -> true)

let prop_seq_roundtrip =
  QCheck2.Test.make ~name:"sequitur: expansion reproduces the input" ~count:300
    QCheck2.Gen.(list_size (int_range 0 400) (int_range 0 6))
    (fun input ->
      let t = Sequitur.create () in
      push_all t input;
      expand_list t = input)

let prop_seq_invariants =
  QCheck2.Test.make
    ~name:"sequitur: digram uniqueness and rule utility maintained" ~count:300
    QCheck2.Gen.(list_size (int_range 0 400) (int_range 0 4))
    (fun input ->
      let t = Sequitur.create () in
      push_all t input;
      Sequitur.check_invariants t = Ok ())

let prop_seq_binary_chains =
  QCheck2.Test.make ~name:"sequitur: binary alphabet (chain stress)" ~count:300
    QCheck2.Gen.(list_size (int_range 0 300) (int_range 0 1))
    (fun input ->
      let t = Sequitur.create () in
      push_all t input;
      expand_list t = input && Sequitur.check_invariants t = Ok ())

(* ---------------- Hot_streams ---------------- *)

let streams_periodic () =
  let t = Sequitur.create () in
  for _ = 1 to 50 do
    for k = 0 to 99 do
      Sequitur.push t k
    done
  done;
  let r = Hot_streams.extract t in
  checkb "streams found" true (r.Hot_streams.streams <> []);
  checkb "coverage reached" true
    (float_of_int r.Hot_streams.covered
    >= 0.9 *. float_of_int r.Hot_streams.trace_length);
  List.iter
    (fun (s : Hot_streams.stream) ->
      let n = Array.length s.Hot_streams.objects in
      checkb "length bounds" true (n >= 2 && n <= 20))
    r.Hot_streams.streams

let streams_chunking_covers_period () =
  (* One period-100 pattern: its chunks must jointly cover the period. *)
  let t = Sequitur.create () in
  for _ = 1 to 20 do
    for k = 0 to 99 do
      Sequitur.push t k
    done
  done;
  let r = Hot_streams.extract t in
  let covered = Hashtbl.create 128 in
  List.iter
    (fun (s : Hot_streams.stream) ->
      Array.iter (fun o -> Hashtbl.replace covered o ()) s.Hot_streams.objects)
    r.Hot_streams.streams;
  checki "all 100 objects appear in some stream" 100 (Hashtbl.length covered)

let streams_no_repeats_no_streams () =
  (* A trace with no repetition compresses to nothing: no rules, no
     streams. *)
  let t = Sequitur.create () in
  for k = 0 to 199 do
    Sequitur.push t k
  done;
  let r = Hot_streams.extract t in
  checki "no candidates" 0 r.Hot_streams.candidate_count;
  checkb "no streams" true (r.Hot_streams.streams = [])

let streams_empty_grammar () =
  let r = Hot_streams.extract (Sequitur.create ()) in
  checki "empty trace" 0 r.Hot_streams.trace_length;
  checkb "no streams" true (r.Hot_streams.streams = [])

(* ---------------- Set_packing ---------------- *)

let packing_disjoint () =
  let sel =
    Set_packing.pack
      [
        { Set_packing.sites = [ 1; 2 ]; weight = 100 };
        { Set_packing.sites = [ 2; 3 ]; weight = 90 };
        { Set_packing.sites = [ 3; 4 ]; weight = 80 };
      ]
  in
  (* {1,2} wins; {2,3} overlaps; {3,4} fits. *)
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "greedy disjoint" [ [ 1; 2 ]; [ 3; 4 ] ] sel

let packing_cardinality_scaling () =
  (* weight/sqrt(n): a big heavy set can lose to a small dense one. *)
  let sel =
    Set_packing.pack
      [
        { Set_packing.sites = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]; weight = 120 };
        { Set_packing.sites = [ 1 ]; weight = 50 };
      ]
  in
  (* 120/3 = 40 < 50/1: the singleton wins and blocks the big set. *)
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "density order" [ [ 1 ] ] sel

let packing_merge_identical () =
  let candidates =
    [
      { Set_packing.sites = [ 1; 2 ]; weight = 30 };
      { Set_packing.sites = [ 2; 1 ]; weight = 30 };
      { Set_packing.sites = [ 1 ]; weight = 50 };
    ]
  in
  (* Without merging, {1} (50) beats each {1,2} (30): pairs split. *)
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "unmerged: singleton wins" [ [ 1 ] ]
    (Set_packing.pack candidates);
  (* Merged, {1,2} weighs 60 -> 60/1.41 = 42.4 < 50... still loses; raise
     weights to cross. *)
  let candidates2 =
    [
      { Set_packing.sites = [ 1; 2 ]; weight = 40 };
      { Set_packing.sites = [ 2; 1 ]; weight = 40 };
      { Set_packing.sites = [ 1 ]; weight = 50 };
    ]
  in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "merged: combined pair wins" [ [ 1; 2 ] ]
    (Set_packing.pack ~merge_identical:true candidates2)

let packing_max_sets () =
  let sel =
    Set_packing.pack ~max_sets:1
      [
        { Set_packing.sites = [ 1 ]; weight = 10 };
        { Set_packing.sites = [ 2 ]; weight = 9 };
      ]
  in
  checki "capped" 1 (List.length sel)

let packing_ignores_empty () =
  checki "empty candidates ignored" 0
    (List.length (Set_packing.pack [ { Set_packing.sites = []; weight = 100 } ]))

let prop_packing_disjoint =
  QCheck2.Test.make ~name:"set packing: selected sets pairwise disjoint"
    ~count:200
    QCheck2.Gen.(
      list_size (int_range 0 20)
        (pair (list_size (int_range 0 6) (int_range 0 10)) (int_range 1 100)))
    (fun raw ->
      let sel =
        Set_packing.pack
          (List.map (fun (sites, weight) -> { Set_packing.sites; weight }) raw)
      in
      let seen = Hashtbl.create 16 in
      List.for_all
        (fun set ->
          List.for_all
            (fun s ->
              if Hashtbl.mem seen s then false
              else begin
                Hashtbl.replace seen s ();
                true
              end)
            set)
        sel)

(* ---------------- Hds_pipeline (integration) ---------------- *)

let hds_identifies_direct_sites () =
  (* health: direct cell/patient sites -> at least one co-allocation pool
     containing more than one site. *)
  let w = Option.get (Workloads.find "health") in
  let plan = Hds_pipeline.plan (w.Workload.make Workload.Test) in
  checkb "pools formed" true (Array.length plan.Hds_pipeline.groups >= 1);
  checkb "a multi-site pool exists" true
    (Array.exists (fun sites -> List.length sites >= 2) plan.Hds_pipeline.groups)

let hds_blind_to_wrappers () =
  (* povray: every allocation shares pov_malloc's malloc site, so no pool
     can separate anything: at most one pool, keyed by that single site. *)
  let w = Option.get (Workloads.find "povray") in
  let plan = Hds_pipeline.plan (w.Workload.make Workload.Test) in
  let distinct_sites =
    Array.to_list plan.Hds_pipeline.groups |> List.concat |> List.sort_uniq compare
  in
  checkb "at most one identifiable site" true (List.length distinct_sites <= 1)

let hds_classifier_uses_cur_site () =
  let plan =
    {
      Hds_pipeline.groups = [| [ 0x100; 0x200 ]; [ 0x300 ] |];
      stream_count = 0;
      selected_streams = 0;
      trace_length = 0;
      grammar_rules = 0;
      coverage = 0.0;
    }
  in
  let env = Exec_env.create () in
  let classify = Hds_pipeline.classifier plan ~env in
  env.Exec_env.cur_alloc_site <- 0x200;
  checkb "site in pool 0" true (classify ~size:32 = Some 0);
  env.Exec_env.cur_alloc_site <- 0x300;
  checkb "site in pool 1" true (classify ~size:32 = Some 1);
  env.Exec_env.cur_alloc_site <- 0x999;
  checkb "unknown site ungrouped" true (classify ~size:32 = None)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "sequitur: empty" seq_empty;
    tc "sequitur: simple roundtrip" seq_roundtrip_simple;
    tc "sequitur: classic abcdbc" seq_classic_abcdbc;
    tc "sequitur: hierarchical rules" seq_hierarchy;
    tc "sequitur: overlapping chain aaa" seq_overlapping_chain;
    tc "sequitur: aaaa forms a rule" seq_four_identical;
    tc "sequitur: chain regression 1" seq_chain_regression;
    tc "sequitur: chain regression 2" seq_chain_regression2;
    tc "sequitur: uses accounting" seq_uses_accounting;
    tc "sequitur: negative terminal rejected" seq_rejects_negative;
    tc "hot streams: periodic trace" streams_periodic;
    tc "hot streams: chunks cover the period" streams_chunking_covers_period;
    tc "hot streams: no repetition, no streams" streams_no_repeats_no_streams;
    tc "hot streams: empty grammar" streams_empty_grammar;
    tc "set packing: greedy disjoint" packing_disjoint;
    tc "set packing: cardinality scaling" packing_cardinality_scaling;
    tc "set packing: merge_identical ablation" packing_merge_identical;
    tc "set packing: max_sets" packing_max_sets;
    tc "set packing: empty candidates" packing_ignores_empty;
    tc "hds pipeline: identifies direct sites" hds_identifies_direct_sites;
    tc "hds pipeline: blind to wrappers" hds_blind_to_wrappers;
    tc "hds pipeline: classifier reads current site" hds_classifier_uses_cur_site;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_seq_roundtrip; prop_seq_invariants; prop_seq_binary_chains;
        prop_packing_disjoint ]
