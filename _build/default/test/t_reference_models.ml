(* Differential testing against brute-force reference models.

   The optimised implementations (the ring-buffer affinity queue, the
   set-associative cache with stamp-based LRU) are checked against naive,
   obviously-correct re-implementations of their specifications on random
   inputs. These oracles are written independently from the production
   code, directly off the paper text / textbook definition. *)

(* ------------------------------------------------------------------ *)
(* Reference affinity queue: a plain list of all past accesses, scanned *)
(* in full on every add, applying the four constraints literally.       *)
(* ------------------------------------------------------------------ *)

module Ref_queue = struct
  type entry = { oid : int; ctx : int; bytes : int; seq : int }

  type t = {
    a : int;
    mutable entries : entry list; (* newest first; never trimmed *)
    mutable pairs : (int * int) list; (* reported (x, y), newest first *)
    mutable accesses : int;
    allocs : (int * int) list; (* (seq, ctx) for every allocation, any order *)
  }

  let create ~a ~allocs = { a; entries = []; pairs = []; accesses = 0; allocs }

  let co_allocatable t u v =
    let lo = min u.seq v.seq and hi = max u.seq v.seq in
    not
      (List.exists
         (fun (seq, ctx) ->
           seq > lo && seq < hi && (ctx = u.ctx || ctx = v.ctx))
         t.allocs)

  let add t ~oid ~ctx ~bytes ~seq =
    match t.entries with
    | e :: _ when e.oid = oid -> () (* dedup: same macro access *)
    | _ ->
        t.accesses <- t.accesses + 1;
        let u = { oid; ctx; bytes; seq } in
        (* Walk older entries, accumulating sizes from the entry next to u
           (inclusive of the candidate). *)
        let acc = ref 0 in
        let seen = Hashtbl.create 8 in
        List.iter
          (fun v ->
            acc := !acc + v.bytes;
            if !acc < t.a then
              if v.oid <> u.oid && not (Hashtbl.mem seen v.oid) then begin
                Hashtbl.replace seen v.oid ();
                if co_allocatable t u v then t.pairs <- (u.ctx, v.ctx) :: t.pairs
              end)
          t.entries;
        t.entries <- u :: t.entries
end

let prop_affinity_queue_matches_reference =
  QCheck2.Test.make
    ~name:"affinity queue: matches the brute-force reference on random traces"
    ~count:200
    QCheck2.Gen.(
      triple (int_range 8 128)
        (list_size (int_range 1 25) (int_range 0 7)) (* allocation ctxs *)
        (list_size (int_range 0 120) (pair (int_range 0 24) (int_range 0 2))))
    (fun (a, alloc_ctxs, accesses) ->
      (* Allocate objects 0..n-1 with the given contexts (in order), then
         replay accesses of sizes 4/8/16. *)
      let heap = Heap_model.create () in
      let objs =
        List.mapi
          (fun k ctx ->
            Heap_model.on_alloc heap ~addr:(0x1000 + (k * 64)) ~size:8 ~ctx)
          alloc_ctxs
      in
      let objs = Array.of_list objs in
      if Array.length objs = 0 then true
      else begin
        let got = ref [] in
        let q =
          Affinity_queue.create ~affinity_distance:a ~heap
            ~on_affinity:(fun x y -> got := (x, y) :: !got)
            ()
        in
        let refq =
          Ref_queue.create ~a
            ~allocs:(List.mapi (fun k ctx -> (k, ctx)) alloc_ctxs)
        in
        List.iter
          (fun (obj_idx, size_k) ->
            let o = objs.(obj_idx mod Array.length objs) in
            let bytes = [| 4; 8; 16 |].(size_k) in
            ignore (Affinity_queue.add q o ~bytes : bool);
            Ref_queue.add refq ~oid:o.Heap_model.oid ~ctx:o.Heap_model.ctx
              ~bytes ~seq:o.Heap_model.seq)
          accesses;
        !got = refq.Ref_queue.pairs
        && Affinity_queue.accesses q = refq.Ref_queue.accesses
      end)

(* ------------------------------------------------------------------ *)
(* Reference cache: sets as explicit MRU-ordered lists.                 *)
(* ------------------------------------------------------------------ *)

module Ref_cache = struct
  type t = { sets : int list array; assoc : int; nsets : int; line : int }

  let create ~sets ~assoc ~line = { sets = Array.make sets []; assoc; nsets = sets; line }

  let access t addr =
    let lineno = addr / t.line in
    let set = lineno mod t.nsets in
    let tag = lineno / t.nsets in
    let cur = t.sets.(set) in
    let hit = List.mem tag cur in
    let without = List.filter (fun x -> x <> tag) cur in
    let updated = tag :: without in
    t.sets.(set) <-
      (if List.length updated > t.assoc then
         List.filteri (fun i _ -> i < t.assoc) updated
       else updated);
    hit
end

let prop_cache_matches_reference =
  QCheck2.Test.make
    ~name:"cache: matches an MRU-list reference on random access streams"
    ~count:200
    QCheck2.Gen.(list_size (int_range 1 400) (int_range 0 8191))
    (fun addrs ->
      let c = Cache.create ~name:"dut" ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
      let r = Ref_cache.create ~sets:8 ~assoc:2 ~line:64 in
      List.for_all (fun a -> Cache.access c a = Ref_cache.access r a) addrs)

(* ------------------------------------------------------------------ *)
(* Reference score function: Figure 7 computed from the edge list.      *)
(* ------------------------------------------------------------------ *)

let prop_score_matches_reference =
  QCheck2.Test.make ~name:"score: matches Figure 7 computed naively" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 15)
           (triple (int_range 0 5) (int_range 0 5) (int_range 1 20)))
        (list_size (int_range 1 6) (int_range 0 5)))
    (fun (edges, members) ->
      let g = Affinity_graph.create () in
      List.iter
        (fun (x, y, w) ->
          for _ = 1 to w do
            Affinity_graph.add_affinity g x y
          done)
        edges;
      let members = List.sort_uniq compare members in
      (* Naive Figure 7 over the member set. *)
      let inside x = List.mem x members in
      let edge_weights = Hashtbl.create 16 in
      List.iter
        (fun (x, y, w) ->
          let k = (min x y, max x y) in
          Hashtbl.replace edge_weights k
            (w + try Hashtbl.find edge_weights k with Not_found -> 0))
        edges;
      let sum = ref 0 and loops = ref 0 in
      Hashtbl.iter
        (fun (x, y) w ->
          if inside x && inside y && w > 0 then begin
            sum := !sum + w;
            if x = y then incr loops
          end)
        edge_weights;
      let n = List.length members in
      let denom = float_of_int !loops +. (float_of_int (n * (n - 1)) /. 2.0) in
      let expected = if denom <= 0.0 then 0.0 else float_of_int !sum /. denom in
      Float.abs (Score.score g members -. expected) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Selector evaluation: Identify.eval against literal DNF semantics.    *)
(* ------------------------------------------------------------------ *)

let prop_selector_eval_is_dnf =
  QCheck2.Test.make ~name:"identify: eval implements DNF over site membership"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 4) (list_size (int_range 1 4) (int_range 0 9)))
        (list_size (int_range 0 6) (int_range 0 9)))
    (fun (disjuncts, live_sites) ->
      let sel = { Identify.group = 0; disjuncts } in
      let live s = List.mem s live_sites in
      let expected =
        List.exists (fun conj -> List.for_all (fun s -> List.mem s live_sites) conj)
          disjuncts
      in
      Identify.eval live sel = expected)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_affinity_queue_matches_reference;
      prop_cache_matches_reference;
      prop_score_matches_reference;
      prop_selector_eval_is_dnf;
    ]
